#!/usr/bin/env python3
"""Compare all five switch-allocation schemes on one router and one network.

Reproduces the paper's two complementary views in miniature:

* Section 4.2's single-router study — allocation efficiency in isolation,
  where the maximum-matching AP allocator looks unbeatable;
* Section 4.3's network view — where AP's greedy local optimality stops
  paying off and VIX, which also lifts the input-port constraint, wins.

Run:  python examples/allocator_comparison.py
"""

from repro import SingleRouterExperiment, paper_config, saturation_throughput

ALLOCATORS = ("if", "wf", "ap", "pc", "vix")
NAMES = {
    "if": "Separable input-first",
    "wf": "Wavefront",
    "ap": "Augmenting path (max matching)",
    "pc": "Packet chaining",
    "vix": "VIX (2 virtual inputs)",
}


def single_router_view() -> None:
    print("1. Single radix-5 router, every VC backlogged (flits/cycle):")
    base = None
    for alloc in ALLOCATORS:
        exp = SingleRouterExperiment(alloc, radix=5, num_vcs=6, seed=1)
        thr = exp.run(3000).throughput
        base = base or thr
        print(f"   {NAMES[alloc]:<32s} {thr:5.2f}  ({thr / base - 1:+6.1%} vs IF)")
    print()


def network_view() -> None:
    print("2. 8x8 mesh at saturation (flits/cycle/node):")
    base = None
    for alloc in ALLOCATORS:
        cfg = paper_config(alloc)
        res = saturation_throughput(cfg, seed=1, warmup=500, measure=1500)
        thr = res.throughput_flits_per_node
        base = base or thr
        print(
            f"   {NAMES[alloc]:<32s} {thr:5.3f}  ({thr / base - 1:+6.1%} vs IF)"
            f"  fairness max/min {res.fairness:5.2f}"
        )
    print()
    print("   Note how AP's single-router dominance evaporates at network")
    print("   level while its unfairness explodes — the paper's Fig. 8/9.")


def main() -> None:
    single_router_view()
    network_view()


if __name__ == "__main__":
    main()
