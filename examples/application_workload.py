#!/usr/bin/env python3
"""Application-level study on the 64-core manycore system (Section 4.7).

Runs one of Table 4's multiprogrammed mixes on the full system — 64 2-wide
cores, private L1 miss streams, 64 shared L2 banks with MSHRs, 8 memory
controllers — once over the baseline (IF) network and once over VIX, and
reports the system speedup.

Run:  python examples/application_workload.py [MixN]
"""

import sys

from repro.manycore import ManycoreSystem, get_mix
from repro.network.config import paper_config


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "Mix6"
    mix = get_mix(mix_name)
    apps = ", ".join(f"{a}x{c}" for a, c in mix.apps)
    print(f"{mix_name}: {apps}")
    print(f"average MPKI/core: {mix.average_mpki():.1f}")
    print()

    results = {}
    for allocator in ("input_first", "vix"):
        system = ManycoreSystem(paper_config(allocator), mix, seed=1)
        res = system.run(warmup=1000, measure=4000)
        results[allocator] = res
        print(
            f"  {allocator:>12s}: aggregate IPC {res.aggregate_ipc:6.2f}, "
            f"avg network latency {res.avg_network_latency:5.1f} cycles, "
            f"L2 miss rate {res.l2_misses / (res.l2_hits + res.l2_misses):.2f}"
        )

    speedup = results["vix"].aggregate_ipc / results["input_first"].aggregate_ipc
    print()
    print(f"VIX system speedup over IF: {speedup:.3f} (paper Table 4: 1.03-1.07)")


if __name__ == "__main__":
    main()
