#!/usr/bin/env python3
"""Quickstart: build a mesh NoC, compare IF against VIX, print the result.

This is the 60-second tour of the library: one network configuration per
allocator, one simulation call each, and the headline comparison the paper
makes in Figure 8.

Run:  python examples/quickstart.py
"""

from repro import paper_config, run_simulation, saturation_throughput


def main() -> None:
    print("VIX quickstart: 8x8 mesh, uniform random traffic, 4-flit packets")
    print()

    # --- 1. moderate load: all allocators behave the same -----------------
    print("At low load (0.05 packets/cycle/node) allocation barely matters:")
    for allocator in ("input_first", "vix"):
        cfg = paper_config(allocator)
        result = run_simulation(
            cfg, injection_rate=0.05, seed=1, warmup=500, measure=1500
        )
        print(
            f"  {allocator:>12s}: avg latency {result.avg_latency:6.1f} cycles, "
            f"accepted {result.throughput_packets_per_node:.3f} pkt/cyc/node"
        )
    print()

    # --- 2. saturation: VIX pulls ahead ------------------------------------
    print("At saturation the virtual-input crossbar wins (paper: +16%):")
    results = {}
    for allocator in ("input_first", "vix"):
        cfg = paper_config(allocator)
        results[allocator] = saturation_throughput(
            cfg, seed=1, warmup=500, measure=1500
        )
        thr = results[allocator].throughput_flits_per_node
        print(f"  {allocator:>12s}: {thr:.3f} flits/cycle/node")
    gain = (
        results["vix"].throughput_flits_per_node
        / results["input_first"].throughput_flits_per_node
        - 1.0
    )
    print(f"  VIX throughput gain over IF: {gain:+.1%}")


if __name__ == "__main__":
    main()
