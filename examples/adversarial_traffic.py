#!/usr/bin/env python3
"""VIX across traffic patterns — where allocation efficiency matters.

Sweeps the classic permutation/hotspot patterns and compares the VIX gain
on each, plus the Section 2.3 dimension-aware VC assignment against a
naive max-credit policy.  The sweep makes an instructive point the paper's
uniform-random evaluation implies but never plots: VIX buys throughput
where the bottleneck is *switch allocation* (uniform random keeps many
differently-routed flits contending inside each router), while permutation
patterns on a DOR mesh are *link-bandwidth* limited — every flit at a port
wants the same few outputs, so no allocator can conjure extra link slots.

Run:  python examples/adversarial_traffic.py
"""

from repro import paper_config, saturation_throughput

PATTERNS = ("uniform", "transpose", "bit_complement", "shuffle", "tornado", "hotspot")


def measure(allocator: str, pattern: str, vc_policy: str | None = None) -> float:
    cfg = paper_config(allocator)
    if vc_policy is not None:
        cfg = cfg.with_router(vc_policy=vc_policy)
    res = saturation_throughput(
        cfg, pattern=pattern, seed=1, warmup=500, measure=1500
    )
    return res.throughput_flits_per_node


def main() -> None:
    print("Saturation throughput (flits/cycle/node), 8x8 mesh:")
    print()
    header = f"{'pattern':<15s} {'IF':>7s} {'VIX':>7s} {'gain':>7s} {'VIX naive-VC':>13s}"
    print(header)
    print("-" * len(header))
    for pattern in PATTERNS:
        base = measure("input_first", pattern)
        vix = measure("vix", pattern)                    # Section 2.3 policy
        naive = measure("vix", pattern, "max_credit")    # plain assignment
        print(
            f"{pattern:<15s} {base:>7.3f} {vix:>7.3f} {vix / base - 1:>+7.1%}"
            f" {naive:>13.3f}"
        )
    print()
    print("Reading the table: VIX shines under uniform random traffic, where")
    print("routers juggle flits bound for many different outputs and the")
    print("allocator is the bottleneck.  Permutation patterns saturate a few")
    print("DOR links instead, so every scheme hits the same wiring limit.")
    print("The last column shows the VC-assignment policy is second-order")
    print("under these patterns (it exists to keep both virtual inputs fed).")


if __name__ == "__main__":
    main()
