#!/usr/bin/env python3
"""Energy/bit vs load, and where the VIX crossbar overhead goes.

Figure 11 reports a single operating point (0.1 packets/cycle/node); this
example sweeps injection rate to show how energy/bit behaves across the
load range — at low load fixed costs (clock + leakage) dominate and the
VIX crossbar overhead disappears in them; near saturation the dynamic
components take over and the overhead settles at the paper's ~4%.

Run:  python examples/energy_exploration.py
"""

from repro.energy import ActivityCounters, EnergyModel
from repro.network.config import paper_config
from repro.report import line_chart
from repro.sim import run_simulation

RATES = (0.01, 0.03, 0.06, 0.09)


def energy_per_bit(allocator: str, rate: float) -> float:
    cfg = paper_config(allocator)
    res = run_simulation(
        cfg,
        injection_rate=rate,
        seed=1,
        warmup=400,
        measure=1200,
        drain_limit=0,
    )
    model = EnergyModel(
        radix=5,
        num_vcs=cfg.router.num_vcs,
        buffer_depth=cfg.router.buffer_depth,
        virtual_inputs=cfg.router.effective_virtual_inputs,
        num_routers=64,
        flit_width_bits=cfg.flit_width_bits,
    )
    return model.evaluate(ActivityCounters(**res.counters)).per_bit


def main() -> None:
    print("Network energy per bit (pJ/bit) vs injection rate, 8x8 mesh:")
    print()
    series = {"IF": [], "VIX": []}
    print(f"{'rate':>6s} {'IF':>8s} {'VIX':>8s} {'overhead':>9s}")
    for rate in RATES:
        base = energy_per_bit("input_first", rate)
        vix = energy_per_bit("vix", rate)
        series["IF"].append((rate, base))
        series["VIX"].append((rate, vix))
        print(f"{rate:>6.2f} {base:>8.3f} {vix:>8.3f} {vix / base - 1:>+9.1%}")
    print()
    print(line_chart(series, x_label="packets/cycle/node", y_label="pJ/bit"))
    print()
    print("Low load is dominated by clock + leakage (many idle cycles per")
    print("delivered bit); as load rises, energy/bit falls toward the pure")
    print("datapath cost and the bigger VIX crossbar shows up as a steady")
    print("few-percent overhead — Figure 11's +4% at 0.1 pkt/cyc/node.")


if __name__ == "__main__":
    main()
