#!/usr/bin/env python3
"""Find each allocator's saturation point with bisection search.

Latency-vs-load curves need many simulations; often all you want is the
knee — the highest injection rate the network still sustains.  This
example bisects for that rate per allocator across three mesh sizes and
reports the VIX headroom at each.

Run:  python examples/saturation_search.py
"""

from repro.network.config import NetworkConfig, RouterConfig
from repro.sim import find_saturation_rate


def config(allocator: str, terminals: int) -> NetworkConfig:
    return NetworkConfig(
        topology="mesh",
        num_terminals=terminals,
        router=RouterConfig(
            allocator=allocator,
            vc_policy="vix_dimension" if allocator == "vix" else "max_credit",
        ),
        packet_length=4,
    )


def main() -> None:
    print("Saturation injection rate (packets/cycle/node), bisection search:")
    print()
    for terminals in (16, 36, 64):
        side = int(terminals**0.5)
        rates = {}
        for allocator in ("input_first", "vix"):
            rates[allocator] = find_saturation_rate(
                config(allocator, terminals),
                high=0.4,
                tolerance=0.01,
                seed=1,
                warmup=400,
                measure=1200,
            )
        gain = rates["vix"] / rates["input_first"] - 1
        print(
            f"  {side}x{side} mesh: IF saturates at {rates['input_first']:.3f}, "
            f"VIX at {rates['vix']:.3f}  ({gain:+.1%})"
        )
    print()
    print("The knee moves down with mesh size (per-node capacity shrinks as")
    print("average hop count grows), while the VIX headroom stays in the")
    print("double digits at every scale.")


if __name__ == "__main__":
    main()
