#!/usr/bin/env python3
"""Buffer reduction with VIX (paper Section 4.6).

Router buffers dominate NoC area and leakage.  The paper shows VIX's
throughput headroom can instead be cashed in as a 33% buffer reduction:
a 4-VC router *with* VIX still out-performs a 6-VC router *without* it.

This example measures that trade on all three topologies and also prints
the crossbar-delay price from the calibrated timing model.

Run:  python examples/buffer_reduction.py
"""

from repro import paper_config, saturation_throughput
from repro.timing import router_delays

TOPOLOGY_RADIX = {"mesh": 5, "cmesh": 8, "fbfly": 10}


def measure(topology: str, allocator: str, num_vcs: int) -> float:
    cfg = paper_config(allocator, topology=topology, num_vcs=num_vcs)
    res = saturation_throughput(cfg, seed=1, warmup=500, measure=1500)
    return res.throughput_flits_per_node


def main() -> None:
    print("Can VIX pay for smaller buffers?  (saturation flits/cycle/node)")
    print()
    print(f"{'topology':<8s} {'6VC no-VIX':>11s} {'4VC VIX':>9s} {'delta':>7s}  verdict")
    for topology in ("mesh", "cmesh", "fbfly"):
        base = measure(topology, "input_first", 6)
        slim = measure(topology, "vix", 4)
        gain = slim / base - 1
        verdict = "4VC+VIX wins" if gain > 0 else "needs 6 VCs"
        print(f"{topology:<8s} {base:>11.3f} {slim:>9.3f} {gain:>+7.1%}  {verdict}")
    print()
    print("Buffer storage saved: 6 VCs -> 4 VCs = 33% fewer flit slots/port.")
    print()
    print("Crossbar-delay price of VIX (calibrated 45 nm models):")
    for topology, radix in TOPOLOGY_RADIX.items():
        base = router_delays(radix, 6, 1)
        vix = router_delays(radix, 6, 2)
        print(
            f"  {topology:<6s} {base.crossbar_size:>7s} -> {vix.crossbar_size:<7s}: "
            f"{base.xbar_ps:.0f} ps -> {vix.xbar_ps:.0f} ps "
            f"(cycle time {vix.cycle_time_ps:.0f} ps, crossbar still off the "
            f"critical path: {str(not vix.xbar_on_critical_path).lower()})"
        )


if __name__ == "__main__":
    main()
