"""Cross-allocator property tests (hypothesis).

Every switch allocator, whatever its strategy, must emit grants that
satisfy its scheme's structural invariants on *any* request matrix, and
must be work-conserving in the single-requester case.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ALLOCATOR_NAMES,
    canonical_allocator_name,
    make_allocator,
    validate_grants,
)
from repro.core.requests import RequestMatrix

PORTS = 5
VCS = 6


@st.composite
def request_matrices(draw):
    m = RequestMatrix(PORTS, PORTS, VCS)
    n = draw(st.integers(min_value=0, max_value=PORTS * VCS))
    for _ in range(n):
        p = draw(st.integers(0, PORTS - 1))
        v = draw(st.integers(0, VCS - 1))
        o = draw(st.integers(0, PORTS - 1))
        tail = draw(st.booleans())
        m.add(p, v, o, tail=tail)
    return m


@pytest.mark.parametrize("name", ALLOCATOR_NAMES)
@given(matrix=request_matrices(), cycles=st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_property_grants_respect_scheme_invariants(name, matrix, cycles):
    alloc = make_allocator(name, PORTS, PORTS, VCS)
    for _ in range(cycles):  # state carries over; re-offer the same matrix
        grants = alloc.allocate(matrix)
        validate_grants(
            matrix,
            grants,
            max_per_input_port=alloc.max_grants_per_input_port,
            virtual_inputs=alloc.virtual_inputs,
        )


@pytest.mark.parametrize("name", ALLOCATOR_NAMES)
@given(
    p=st.integers(0, PORTS - 1),
    v=st.integers(0, VCS - 1),
    o=st.integers(0, PORTS - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_lone_request_always_granted(name, p, v, o):
    """Work conservation: a single request in the router must win."""
    alloc = make_allocator(name, PORTS, PORTS, VCS)
    m = RequestMatrix(PORTS, PORTS, VCS)
    m.add(p, v, o, tail=True)
    grants = alloc.allocate(m)
    assert len(grants) == 1
    assert (grants[0].in_port, grants[0].vc, grants[0].out_port) == (p, v, o)


@pytest.mark.parametrize("name", ALLOCATOR_NAMES)
@given(matrix=request_matrices())
@settings(max_examples=40, deadline=None)
def test_property_some_grant_when_requests_exist(name, matrix):
    """No allocator may return an empty grant set for a non-empty matrix."""
    alloc = make_allocator(name, PORTS, PORTS, VCS)
    if matrix.has_requests():
        assert alloc.allocate(matrix)


@given(matrix=request_matrices())
@settings(max_examples=40, deadline=None)
def test_property_ideal_dominates_everyone(matrix):
    """Per-cycle, fresh-state grant count: ideal >= every other scheme."""
    ideal = make_allocator("ideal_vix", PORTS, PORTS, VCS)
    best = len(ideal.allocate(matrix))
    for name in ("input_first", "wavefront", "augmenting_path", "vix"):
        alloc = make_allocator(name, PORTS, PORTS, VCS)
        assert len(alloc.allocate(matrix)) <= best


@given(matrix=request_matrices())
@settings(max_examples=40, deadline=None)
def test_property_ap_dominates_port_level_schemes(matrix):
    """AP is a maximum port matching: >= IF and WF grant counts (fresh state)."""
    ap = make_allocator("augmenting_path", PORTS, PORTS, VCS)
    ap_count = len(ap.allocate(matrix))
    for name in ("input_first", "wavefront"):
        alloc = make_allocator(name, PORTS, PORTS, VCS)
        assert len(alloc.allocate(matrix)) <= ap_count


def test_canonical_names_cover_aliases():
    assert canonical_allocator_name("IF") == "input_first"
    assert canonical_allocator_name("wf") == "wavefront"
    assert canonical_allocator_name("AP") == "augmenting_path"
    assert canonical_allocator_name("Ideal") == "ideal_vix"
    with pytest.raises(ValueError):
        canonical_allocator_name("magic")
