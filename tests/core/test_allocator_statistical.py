"""Statistical behaviour of the allocator family across load levels.

These tests pin the *curves* rather than single points: how grant counts
respond to request density, and how the schemes rank at each density.
They are the unit-level shadow of Figure 7.
"""

import random

import pytest

from repro.core import make_allocator
from repro.core.requests import RequestMatrix

PORTS = 5
VCS = 6


def mean_grants(name, density, cycles=400, seed=9):
    """Average grants/cycle when each VC requests with prob ``density``."""
    rng = random.Random(seed)
    alloc = make_allocator(name, PORTS, PORTS, VCS)
    total = 0
    for _ in range(cycles):
        m = RequestMatrix(PORTS, PORTS, VCS)
        for p in range(PORTS):
            for v in range(VCS):
                if rng.random() < density:
                    m.add(p, v, rng.randrange(PORTS), tail=True)
        total += len(alloc.allocate(m))
    return total / cycles


DENSITIES = (0.1, 0.3, 0.6, 1.0)


@pytest.mark.parametrize(
    "name",
    ["input_first", "output_first", "wavefront", "augmenting_path",
     "vix", "ideal_vix"],
)
def test_grants_monotone_in_density(name):
    """More offered requests never reduce average grants.

    (SPAROFLO is deliberately excluded: its load-adaptive mode drops to
    one request per port near saturation, which is non-monotone by
    design — covered in test_sparoflo.py.)
    """
    curve = [mean_grants(name, d) for d in DENSITIES]
    for lo, hi in zip(curve, curve[1:]):
        assert hi >= lo * 0.97  # allow tiny statistical wiggle


@pytest.mark.parametrize("density", DENSITIES)
def test_ranking_stable_across_densities(density):
    """IF <= VIX <= ideal at every density; AP never beats ideal."""
    g_if = mean_grants("input_first", density)
    g_vix = mean_grants("vix", density)
    g_ap = mean_grants("augmenting_path", density)
    g_ideal = mean_grants("ideal_vix", density)
    assert g_if <= g_vix * 1.02
    assert g_vix <= g_ideal * 1.02
    assert g_ap <= g_ideal * 1.02


def test_ap_optimal_only_at_saturation():
    """AP achieves the ideal *port-level* matching, but below saturation
    the input-port constraint (one flit per port) keeps it measurably
    under ideal VIX — the paper's Section 1 argument at the unit level."""
    assert mean_grants("augmenting_path", 1.0) == pytest.approx(
        mean_grants("ideal_vix", 1.0), rel=0.01
    )
    mid_ap = mean_grants("augmenting_path", 0.3)
    mid_ideal = mean_grants("ideal_vix", 0.3)
    assert mid_ap < mid_ideal * 0.98


def test_very_low_density_everything_near_ideal():
    """With very sparse requests there are few conflicts: all schemes
    agree (the paper's low-load observation in Fig. 8)."""
    for name in ("input_first", "wavefront", "vix"):
        assert mean_grants(name, 0.02) == pytest.approx(
            mean_grants("ideal_vix", 0.02), rel=0.05
        )


def test_vix_gain_grows_with_density():
    """The VIX advantage is a high-load phenomenon."""
    gain_low = mean_grants("vix", 0.1) / mean_grants("input_first", 0.1)
    gain_high = mean_grants("vix", 1.0) / mean_grants("input_first", 1.0)
    assert gain_high > gain_low
    assert gain_high > 1.15
