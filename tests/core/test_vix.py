"""Unit tests for the VIX allocator — the paper's contribution."""

import random

import pytest

from repro.core.requests import RequestMatrix, validate_grants
from repro.core.separable import SeparableInputFirstAllocator
from repro.core.vix import IdealVIXAllocator, VIXAllocator


def matrix_for(alloc):
    return RequestMatrix(alloc.num_inputs, alloc.num_outputs, alloc.num_vcs)


class TestConstruction:
    def test_default_is_two_virtual_inputs(self):
        alloc = VIXAllocator(5, 5, 6)
        assert alloc.virtual_inputs == 2
        assert alloc.max_grants_per_input_port == 2
        assert alloc.crossbar_inputs == 10
        assert alloc.name == "VIX"

    def test_rejects_k1(self):
        with pytest.raises(ValueError, match="virtual_inputs >= 2"):
            VIXAllocator(5, 5, 6, virtual_inputs=1)

    def test_ideal_uses_one_input_per_vc(self):
        alloc = IdealVIXAllocator(5, 5, 6)
        assert alloc.virtual_inputs == 6
        assert alloc.group_size == 1
        assert alloc.name == "iVIX"


class TestInputPortConstraintRemoved:
    def test_two_vcs_of_one_port_can_both_win(self):
        """Fig. 4 of the paper: VC0 -> Local, VC2 -> East in one cycle."""
        alloc = VIXAllocator(5, 5, 4, virtual_inputs=2)
        m = matrix_for(alloc)
        m.add(2, 0, 0)  # West port, VC0 (group 0) -> Local
        m.add(2, 2, 1)  # West port, VC2 (group 1) -> East
        grants = alloc.allocate(m)
        assert len(grants) == 2
        assert {g.out_port for g in grants} == {0, 1}
        assert all(g.in_port == 2 for g in grants)

    def test_same_group_still_constrained(self):
        alloc = VIXAllocator(5, 5, 4, virtual_inputs=2)
        m = matrix_for(alloc)
        m.add(2, 0, 0)  # group 0
        m.add(2, 1, 1)  # group 0 too
        assert len(alloc.allocate(m)) == 1

    def test_never_exceeds_k_grants_per_port(self):
        alloc = VIXAllocator(5, 5, 6, virtual_inputs=2)
        m = matrix_for(alloc)
        for v in range(6):
            m.add(0, v, v % 5)
        grants = alloc.allocate(m)
        assert len(grants) <= 2
        validate_grants(m, grants, max_per_input_port=2, virtual_inputs=2)


class TestMatchingImprovement:
    def test_fig5_scenario_three_transfers(self):
        """Fig. 5(b): virtual inputs expose enough requests for 3 grants."""
        alloc = VIXAllocator(5, 5, 4, virtual_inputs=2)
        m = matrix_for(alloc)
        m.add(0, 0, 1)  # West VC0 (vin 0)  -> East
        m.add(1, 0, 3)  # South VC0 (vin 0) -> North
        m.add(1, 2, 1)  # South VC2 (vin 1) -> East
        grants = alloc.allocate(m)
        # Outputs 1 and 3 are both granted; the East conflict resolves to
        # one of the two requesters.
        assert {g.out_port for g in grants} == {1, 3}
        assert len(grants) == 2
        # Repeat with West also wanting North on its second virtual input:
        m.add(0, 2, 3)
        alloc.reset()
        grants = alloc.allocate(m)
        assert len(grants) == 2  # still 2 outputs requested in total

    def test_beats_if_on_saturated_random_requests(self):
        rng = random.Random(7)
        p, v = 5, 6
        if_alloc = SeparableInputFirstAllocator(p, p, v)
        vix = VIXAllocator(p, p, v, virtual_inputs=2)
        if_total = vix_total = 0
        for _ in range(400):
            m_if = RequestMatrix(p, p, v)
            m_vix = RequestMatrix(p, p, v)
            for i in range(p):
                for w in range(v):
                    out = rng.randrange(p)
                    m_if.add(i, w, out)
                    m_vix.add(i, w, out)
            if_total += len(if_alloc.allocate(m_if))
            vix_total += len(vix.allocate(m_vix))
        assert vix_total > if_total * 1.1  # paper: >25% at saturation


class TestIdealOptimality:
    def test_every_requested_output_granted(self):
        """k = v: any output with >= 1 requester must be granted (optimal)."""
        rng = random.Random(3)
        p, v = 5, 6
        alloc = IdealVIXAllocator(p, p, v)
        for _ in range(200):
            m = matrix_for(alloc)
            requested = set()
            for i in range(p):
                for w in range(v):
                    out = rng.randrange(p)
                    m.add(i, w, out)
                    requested.add(out)
            grants = alloc.allocate(m)
            assert {g.out_port for g in grants} == requested
            validate_grants(m, grants, max_per_input_port=None, virtual_inputs=v)

    def test_sparse_requests_all_granted(self):
        alloc = IdealVIXAllocator(4, 4, 4)
        m = matrix_for(alloc)
        m.add(0, 0, 0)
        m.add(0, 1, 1)
        m.add(0, 2, 2)
        m.add(0, 3, 3)
        # One port feeds all four outputs in a single cycle.
        assert len(alloc.allocate(m)) == 4
