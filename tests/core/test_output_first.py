"""Unit tests for the output-first separable allocator."""

import random

import pytest

from repro.core.output_first import SeparableOutputFirstAllocator
from repro.core.requests import RequestMatrix, validate_grants
from repro.core.separable import SeparableInputFirstAllocator


def matrix_for(alloc):
    return RequestMatrix(alloc.num_inputs, alloc.num_outputs, alloc.num_vcs)


class TestBasics:
    def test_single_request_granted(self):
        alloc = SeparableOutputFirstAllocator(5, 5, 6)
        m = matrix_for(alloc)
        m.add(2, 3, 4)
        assert [(g.in_port, g.vc, g.out_port) for g in alloc.allocate(m)] == [
            (2, 3, 4)
        ]

    def test_mirrored_conflict_outputs_pick_same_input(self):
        """The output-first pathology: outputs 1 and 2 both pick VCs of
        port 0 (its only requesters), so one output idles."""
        alloc = SeparableOutputFirstAllocator(3, 3, 2)
        m = matrix_for(alloc)
        m.add(0, 0, 1)
        m.add(0, 1, 2)
        grants = alloc.allocate(m)
        assert len(grants) == 1

    def test_disjoint_requests_all_granted(self):
        alloc = SeparableOutputFirstAllocator(5, 5, 6)
        m = matrix_for(alloc)
        for p in range(5):
            m.add(p, 0, p)
        assert len(alloc.allocate(m)) == 5

    def test_invariants_on_random_traffic(self):
        rng = random.Random(3)
        alloc = SeparableOutputFirstAllocator(5, 5, 6)
        for _ in range(300):
            m = matrix_for(alloc)
            for p in range(5):
                for v in range(6):
                    if rng.random() < 0.4:
                        m.add(p, v, rng.randrange(5))
            validate_grants(m, alloc.allocate(m), max_per_input_port=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SeparableOutputFirstAllocator(5, 5, 6, virtual_inputs=4)
        with pytest.raises(ValueError):
            SeparableOutputFirstAllocator(5, 5, 6, virtual_inputs=0)

    def test_reset_restores_determinism(self):
        alloc = SeparableOutputFirstAllocator(3, 3, 2)
        m = matrix_for(alloc)
        m.add(0, 0, 0)
        m.add(1, 0, 0)
        first = alloc.allocate(m)
        alloc.allocate(m)
        alloc.reset()
        assert alloc.allocate(m) == first


class TestVirtualInputs:
    def test_virtual_inputs_accept_parallel_grants(self):
        alloc = SeparableOutputFirstAllocator(3, 3, 4, virtual_inputs=2)
        m = matrix_for(alloc)
        m.add(0, 0, 1)  # group 0
        m.add(0, 2, 2)  # group 1
        grants = alloc.allocate(m)
        assert len(grants) == 2
        validate_grants(m, grants, max_per_input_port=2, virtual_inputs=2)


class TestComparability:
    def test_output_first_comparable_to_input_first_at_saturation(self):
        """Both separable phase orders land in the same efficiency band
        (within 15% of each other) under saturated uniform requests."""
        rng = random.Random(7)
        p, v = 5, 6
        of = SeparableOutputFirstAllocator(p, p, v)
        inf = SeparableInputFirstAllocator(p, p, v)
        of_total = if_total = 0
        for _ in range(600):
            m1 = RequestMatrix(p, p, v)
            m2 = RequestMatrix(p, p, v)
            for i in range(p):
                for w in range(v):
                    out = rng.randrange(p)
                    m1.add(i, w, out)
                    m2.add(i, w, out)
            of_total += len(of.allocate(m1))
            if_total += len(inf.allocate(m2))
        assert of_total == pytest.approx(if_total, rel=0.15)
