"""Unit tests for the Packet Chaining (PC) allocator."""

import random

from repro.core.packet_chaining import PacketChainingAllocator
from repro.core.requests import RequestMatrix, validate_grants
from repro.core.separable import SeparableInputFirstAllocator


def matrix_for(alloc, entries):
    m = RequestMatrix(alloc.num_inputs, alloc.num_outputs, alloc.num_vcs)
    for (p, v, o, tail) in entries:
        m.add(p, v, o, tail=tail)
    return m


class TestConnectionHold:
    def test_mid_packet_connection_held(self):
        """Once a head wins, body flits bypass allocation on that pair."""
        alloc = PacketChainingAllocator(3, 3, 2)
        m = matrix_for(alloc, [(0, 0, 1, False)])
        assert len(alloc.allocate(m)) == 1
        assert alloc.active_connections == 1
        # A competitor appears, but the held connection keeps the output.
        m2 = matrix_for(alloc, [(0, 0, 1, False), (1, 0, 1, True)])
        grants = alloc.allocate(m2)
        assert [(g.in_port, g.vc, g.out_port) for g in grants] == [(0, 0, 1)]

    def test_held_connection_blocks_other_outputs_for_that_input(self):
        alloc = PacketChainingAllocator(3, 3, 2)
        alloc.allocate(matrix_for(alloc, [(0, 0, 1, False)]))
        # Input 0 holds output 1; its VC1 cannot also win output 2.
        m = matrix_for(alloc, [(0, 0, 1, False), (0, 1, 2, True)])
        grants = alloc.allocate(m)
        assert [(g.in_port, g.out_port) for g in grants] == [(0, 1)]

    def test_hold_survives_bubble_cycle(self):
        alloc = PacketChainingAllocator(3, 3, 2)
        alloc.allocate(matrix_for(alloc, [(0, 0, 1, False)]))
        # Bubble: the VC has no request (e.g. no credit) this cycle.
        assert alloc.allocate(matrix_for(alloc, [])) == []
        assert alloc.active_connections == 1
        # Next cycle the packet continues on the held pair.
        grants = alloc.allocate(matrix_for(alloc, [(0, 0, 1, True)]))
        assert [(g.in_port, g.out_port) for g in grants] == [(0, 1)]


class TestChaining:
    def test_same_input_any_vc_chains(self):
        """After a tail, another packet at the same input inherits the pair."""
        alloc = PacketChainingAllocator(3, 3, 4)
        alloc.allocate(matrix_for(alloc, [(0, 0, 1, True)]))  # single-flit
        # Next cycle: a *different VC* of input 0 wants output 1, and a
        # competitor at input 1 also wants it.  The chain wins.
        m = matrix_for(alloc, [(0, 2, 1, True), (1, 0, 1, True)])
        grants = alloc.allocate(m)
        assert (grants[0].in_port, grants[0].vc, grants[0].out_port) == (0, 2, 1)

    def test_chain_released_when_nothing_to_chain(self):
        alloc = PacketChainingAllocator(3, 3, 2)
        alloc.allocate(matrix_for(alloc, [(0, 0, 1, True)]))
        assert alloc.active_connections == 1
        # Nobody at input 0 wants output 1 -> the connection dies and the
        # competitor wins through normal allocation.
        m = matrix_for(alloc, [(1, 0, 1, True)])
        grants = alloc.allocate(m)
        assert grants[0].in_port == 1
        # Connection state now belongs to input 1.
        m2 = matrix_for(alloc, [(1, 1, 1, True), (0, 0, 1, True)])
        grants2 = alloc.allocate(m2)
        assert grants2[0].in_port == 1

    def test_chained_input_excluded_from_residual_allocation(self):
        alloc = PacketChainingAllocator(3, 3, 2)
        alloc.allocate(matrix_for(alloc, [(0, 0, 1, True)]))
        # Input 0 chains on output 1 and also wants output 2 from VC1; the
        # chain consumes input 0, so output 2 goes unserved (k=1 crossbar).
        m = matrix_for(alloc, [(0, 0, 1, True), (0, 1, 2, True)])
        grants = alloc.allocate(m)
        assert [(g.in_port, g.out_port) for g in grants] == [(0, 1)]


class TestInvariantsAndReset:
    def test_grants_valid_on_random_single_flit_traffic(self):
        rng = random.Random(31)
        alloc = PacketChainingAllocator(5, 5, 6)
        for _ in range(300):
            m = RequestMatrix(5, 5, 6)
            for p in range(5):
                for v in range(6):
                    if rng.random() < 0.5:
                        m.add(p, v, rng.randrange(5), tail=True)
            grants = alloc.allocate(m)
            validate_grants(m, grants, max_per_input_port=1)

    def test_beats_if_on_single_flit_saturation(self):
        """PC's raison d'etre: reuse wins for single-flit packets."""
        rng = random.Random(13)
        p, v = 5, 6
        pc = PacketChainingAllocator(p, p, v)
        sep = SeparableInputFirstAllocator(p, p, v)
        pc_total = sep_total = 0
        # Persistent per-VC targets (chains need repeat requests); each
        # allocator drives its own copy so grants evolve independently.
        rng2 = random.Random(13)
        targets_pc = [[rng.randrange(p) for _ in range(v)] for _ in range(p)]
        targets_if = [row[:] for row in targets_pc]
        for _ in range(500):
            m1 = RequestMatrix(p, p, v)
            m2 = RequestMatrix(p, p, v)
            for i in range(p):
                for w in range(v):
                    m1.add(i, w, targets_pc[i][w], tail=True)
                    m2.add(i, w, targets_if[i][w], tail=True)
            g1 = pc.allocate(m1)
            g2 = sep.allocate(m2)
            pc_total += len(g1)
            sep_total += len(g2)
            for g in g1:
                targets_pc[g.in_port][g.vc] = rng.randrange(p)
            for g in g2:
                targets_if[g.in_port][g.vc] = rng2.randrange(p)
        assert pc_total > sep_total

    def test_reset_clears_connections(self):
        alloc = PacketChainingAllocator(3, 3, 2)
        alloc.allocate(matrix_for(alloc, [(0, 0, 1, False)]))
        alloc.reset()
        assert alloc.active_connections == 0
