"""Unit tests for output-VC assignment policies (paper Section 2.3)."""

import pytest

from repro.core.vc_policy import (
    DIR_X,
    DIR_Y,
    MaxCreditPolicy,
    VixDimensionPolicy,
    make_vc_policy,
)


class TestMaxCreditPolicy:
    def setup_method(self):
        self.policy = MaxCreditPolicy()

    def test_picks_most_credits(self):
        credits = [1, 5, 3, 2]
        assert self.policy.select(
            [0, 1, 2, 3], credits, num_vcs=4, virtual_inputs=1,
            downstream_direction=None,
        ) == 1

    def test_only_candidates_considered(self):
        credits = [9, 1, 2, 0]
        assert self.policy.select(
            [1, 2], credits, num_vcs=4, virtual_inputs=1,
            downstream_direction=None,
        ) == 2

    def test_tie_breaks_to_lowest_vc(self):
        credits = [3, 3, 3]
        assert self.policy.select(
            [2, 0, 1], credits, num_vcs=3, virtual_inputs=1,
            downstream_direction=None,
        ) == 0

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            self.policy.select(
                [], [1], num_vcs=1, virtual_inputs=1, downstream_direction=None
            )

    def test_ignores_direction(self):
        credits = [1, 1, 1, 5]
        got = self.policy.select(
            [0, 3], credits, num_vcs=4, virtual_inputs=2,
            downstream_direction=DIR_X,
        )
        assert got == 3


class TestVixDimensionPolicy:
    def setup_method(self):
        self.policy = VixDimensionPolicy()

    def select(self, candidates, credits, direction, num_vcs=6, k=2):
        return self.policy.select(
            candidates, credits, num_vcs=num_vcs, virtual_inputs=k,
            downstream_direction=direction,
        )

    def test_x_traffic_goes_to_group0(self):
        # 6 VCs, k=2: group 0 = VCs 0-2, group 1 = VCs 3-5.
        got = self.select([0, 1, 3, 4], [5] * 6, DIR_X)
        assert got in (0, 1)

    def test_y_traffic_goes_to_group1(self):
        got = self.select([0, 1, 3, 4], [5] * 6, DIR_Y)
        assert got in (3, 4)

    def test_max_credits_within_group(self):
        credits = [1, 9, 2, 5, 5, 5]
        assert self.select([0, 1, 2, 3], credits, DIR_X) == 1

    def test_falls_back_when_preferred_group_full(self):
        # Only group-1 VCs are free; X traffic must spill over.
        got = self.select([3, 4, 5], [5] * 6, DIR_X)
        assert got in (3, 4, 5)

    def test_ejecting_packets_load_balance(self):
        # direction None: pick the group with more free VCs.
        got = self.select([0, 3, 4, 5], [5] * 6, None)
        assert got in (3, 4, 5)

    def test_load_balance_tie_breaks_by_credits(self):
        # Equal free counts; group 1 has more total credits.
        credits = [1, 1, 0, 4, 4, 0]
        got = self.select([0, 1, 3, 4], credits, None)
        assert got in (3, 4)

    def test_k_wraps_direction_classes(self):
        # k=3 with 6 VCs: groups of 2; DIR_Y -> group 1 (VCs 2,3).
        got = self.policy.select(
            [0, 2, 3, 4], [5] * 6, num_vcs=6, virtual_inputs=3,
            downstream_direction=DIR_Y,
        )
        assert got in (2, 3)

    def test_degenerates_gracefully_with_k1(self):
        got = self.policy.select(
            [0, 1, 2], [1, 2, 3], num_vcs=3, virtual_inputs=1,
            downstream_direction=DIR_X,
        )
        assert got == 2  # one group: plain max-credit

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            self.select([], [5] * 6, DIR_X)


class TestFactory:
    def test_make_known_policies(self):
        assert isinstance(make_vc_policy("max_credit"), MaxCreditPolicy)
        assert isinstance(make_vc_policy("vix_dimension"), VixDimensionPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown VC policy"):
            make_vc_policy("psychic")
