"""Unit tests for the separable input-first allocator (IF baseline)."""

import pytest

from repro.core.requests import Grant, RequestMatrix, validate_grants
from repro.core.separable import SeparableInputFirstAllocator


def make(num_ports=5, num_vcs=6, k=1):
    return SeparableInputFirstAllocator(num_ports, num_ports, num_vcs, k)


def matrix_for(alloc):
    return RequestMatrix(alloc.num_inputs, alloc.num_outputs, alloc.num_vcs)


class TestConstruction:
    def test_defaults(self):
        alloc = make()
        assert alloc.virtual_inputs == 1
        assert alloc.max_grants_per_input_port == 1
        assert alloc.group_size == 6

    def test_rejects_uneven_partition(self):
        with pytest.raises(ValueError, match="divide evenly"):
            SeparableInputFirstAllocator(5, 5, 6, 4)

    def test_rejects_k_above_vcs(self):
        with pytest.raises(ValueError):
            SeparableInputFirstAllocator(5, 5, 4, 8)

    def test_vc_group_mapping(self):
        alloc = make(num_vcs=6, k=2)
        assert [alloc.vc_group(v) for v in range(6)] == [0, 0, 0, 1, 1, 1]


class TestAllocation:
    def test_empty_matrix_no_grants(self):
        alloc = make()
        assert alloc.allocate(matrix_for(alloc)) == []

    def test_single_request_granted(self):
        alloc = make()
        m = matrix_for(alloc)
        m.add(2, 3, 4)
        assert alloc.allocate(m) == [Grant(2, 3, 4)]

    def test_conflict_one_winner(self):
        alloc = make()
        m = matrix_for(alloc)
        m.add(0, 0, 1)
        m.add(1, 0, 1)
        grants = alloc.allocate(m)
        assert len(grants) == 1
        assert grants[0].out_port == 1

    def test_disjoint_requests_all_granted(self):
        alloc = make()
        m = matrix_for(alloc)
        for p in range(5):
            m.add(p, 0, p)
        assert len(alloc.allocate(m)) == 5

    def test_one_grant_per_input_port(self):
        alloc = make()
        m = matrix_for(alloc)
        # One port wants two different outputs: input-port constraint.
        m.add(0, 0, 1)
        m.add(0, 1, 2)
        grants = alloc.allocate(m)
        assert len(grants) == 1

    def test_suboptimal_matching_exists(self):
        """The paper's Fig. 5(a) scenario: separable IF can lose a pairing.

        West wants {East}; South wants {East, North}.  If South's input
        arbiter picks East, only one flit moves even though (West->East,
        South->North) was possible.  Force that by aligning pointers.
        """
        alloc = make(num_ports=5, num_vcs=2)
        m = matrix_for(alloc)
        m.add(0, 0, 2)          # "West" wants output 2
        m.add(1, 0, 2)          # "South" VC0 wants output 2
        m.add(1, 1, 3)          # "South" VC1 wants output 3
        grants = alloc.allocate(m)
        # Fresh allocator: both input arbiters pick VC0 -> both want output
        # 2 -> only one grant despite a 2-grant matching existing.
        assert len(grants) == 1

    def test_grants_always_valid(self):
        alloc = make()
        m = matrix_for(alloc)
        m.add(0, 0, 1)
        m.add(0, 5, 2)
        m.add(1, 2, 1)
        m.add(3, 3, 1)
        m.add(4, 4, 0)
        validate_grants(m, alloc.allocate(m), max_per_input_port=1)

    def test_round_robin_rotates_across_cycles(self):
        alloc = make(num_ports=2, num_vcs=2)
        m = matrix_for(alloc)
        m.add(0, 0, 0)
        m.add(1, 0, 0)
        winners = set()
        for _ in range(4):
            grants = alloc.allocate(m)
            assert len(grants) == 1
            winners.add(grants[0].in_port)
        assert winners == {0, 1}

    def test_reset_restores_determinism(self):
        alloc = make()
        m = matrix_for(alloc)
        m.add(0, 0, 1)
        m.add(1, 1, 1)
        first = alloc.allocate(m)
        alloc.allocate(m)
        alloc.reset()
        assert alloc.allocate(m) == first

    def test_input_arbiter_picks_within_port(self):
        alloc = make(num_ports=2, num_vcs=4)
        m = matrix_for(alloc)
        m.add(0, 1, 0)
        m.add(0, 2, 1)
        grants = alloc.allocate(m)
        assert len(grants) == 1
        assert grants[0].vc in (1, 2)
