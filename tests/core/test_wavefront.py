"""Unit tests for the wavefront allocator."""

import random

from repro.core.matching import kuhn_matching, matching_size
from repro.core.requests import RequestMatrix, validate_grants
from repro.core.separable import SeparableInputFirstAllocator
from repro.core.wavefront import WavefrontAllocator


def matrix_for(alloc):
    return RequestMatrix(alloc.num_inputs, alloc.num_outputs, alloc.num_vcs)


class TestBasics:
    def test_empty(self):
        alloc = WavefrontAllocator(5, 5, 6)
        assert alloc.allocate(matrix_for(alloc)) == []

    def test_single_request(self):
        alloc = WavefrontAllocator(5, 5, 6)
        m = matrix_for(alloc)
        m.add(3, 2, 4)
        grants = alloc.allocate(m)
        assert [(g.in_port, g.vc, g.out_port) for g in grants] == [(3, 2, 4)]

    def test_diagonal_rotates(self):
        alloc = WavefrontAllocator(4, 4, 2)
        start = alloc.priority_diagonal
        alloc.allocate(matrix_for(alloc))
        assert alloc.priority_diagonal == (start + 1) % 4

    def test_one_grant_per_row_and_column(self):
        alloc = WavefrontAllocator(4, 4, 3)
        m = matrix_for(alloc)
        for i in range(4):
            for v in range(3):
                m.add(i, v, (i + v) % 4)
        grants = alloc.allocate(m)
        validate_grants(m, grants, max_per_input_port=1)

    def test_reset(self):
        alloc = WavefrontAllocator(4, 4, 2)
        alloc.allocate(matrix_for(alloc))
        alloc.reset()
        assert alloc.priority_diagonal == 0


class TestMaximality:
    """Wavefront finds a *maximal* matching: no grantable pair left over."""

    def _is_maximal(self, matrix, grants):
        used_in = {g.in_port for g in grants}
        used_out = {g.out_port for g in grants}
        for i, outs in enumerate(matrix.port_request_sets()):
            if i in used_in:
                continue
            if outs - used_out:
                return False
        return True

    def test_maximal_on_random_matrices(self):
        rng = random.Random(11)
        alloc = WavefrontAllocator(5, 5, 6)
        for _ in range(300):
            m = matrix_for(alloc)
            for i in range(5):
                for v in range(6):
                    if rng.random() < 0.4:
                        m.add(i, v, rng.randrange(5))
            grants = alloc.allocate(m)
            validate_grants(m, grants, max_per_input_port=1)
            assert self._is_maximal(m, grants)

    def test_within_half_of_maximum(self):
        """A maximal matching is at least half the maximum matching."""
        rng = random.Random(5)
        alloc = WavefrontAllocator(6, 6, 4)
        for _ in range(200):
            m = matrix_for(alloc)
            for i in range(6):
                for v in range(4):
                    if rng.random() < 0.5:
                        m.add(i, v, rng.randrange(6))
            grants = alloc.allocate(m)
            adj = [sorted(s) for s in m.port_request_sets()]
            maximum = matching_size(kuhn_matching(6, 6, adj))
            assert len(grants) * 2 >= maximum

    def test_beats_separable_if_at_saturation(self):
        rng = random.Random(2)
        p, v = 5, 6
        wf = WavefrontAllocator(p, p, v)
        sep = SeparableInputFirstAllocator(p, p, v)
        wf_total = sep_total = 0
        for _ in range(400):
            m1 = RequestMatrix(p, p, v)
            m2 = RequestMatrix(p, p, v)
            for i in range(p):
                for w in range(v):
                    out = rng.randrange(p)
                    m1.add(i, w, out)
                    m2.add(i, w, out)
            wf_total += len(wf.allocate(m1))
            sep_total += len(sep.allocate(m2))
        assert wf_total > sep_total


class TestFairness:
    def test_rotating_diagonal_shares_grants(self):
        alloc = WavefrontAllocator(3, 3, 1)
        wins = {0: 0, 1: 0, 2: 0}
        for _ in range(300):
            m = matrix_for(alloc)
            for i in range(3):
                m.add(i, 0, 0)  # everyone wants output 0
            grants = alloc.allocate(m)
            assert len(grants) == 1
            wins[grants[0].in_port] += 1
        assert wins == {0: 100, 1: 100, 2: 100}
