"""Tests for the separable/VIX ablation knobs (pointer policy, partition)."""

import random

import pytest

from repro.core.requests import RequestMatrix, validate_grants
from repro.core.separable import SeparableInputFirstAllocator
from repro.core.vix import VIXAllocator


def saturated_matrix(p, v, rng):
    m = RequestMatrix(p, p, v)
    for i in range(p):
        for w in range(v):
            m.add(i, w, rng.randrange(p))
    return m


class TestPointerPolicy:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="pointer_policy"):
            SeparableInputFirstAllocator(5, 5, 6, pointer_policy="psychic")

    def test_on_grant_keeps_pointer_on_loss(self):
        """With on_grant, a losing phase-1 pick is retried next cycle."""
        alloc = SeparableInputFirstAllocator(2, 2, 2, pointer_policy="on_grant")
        m = RequestMatrix(2, 2, 2)
        m.add(0, 0, 0)
        m.add(1, 0, 0)  # both ports fight for output 0
        first = {g.in_port for g in alloc.allocate(m)}
        # The loser's input arbiter did not rotate: its VC0 still leads.
        second = alloc.allocate(m)
        assert len(second) == 1
        assert {g.in_port for g in second} != first  # output RR rotates ports

    def test_plain_rotates_always(self):
        alloc = SeparableInputFirstAllocator(1, 2, 2, pointer_policy="plain")
        m = RequestMatrix(1, 2, 2)
        m.add(0, 0, 0)
        m.add(0, 1, 1)
        vcs = [alloc.allocate(m)[0].vc for _ in range(4)]
        assert vcs == [0, 1, 0, 1]

    def test_both_policies_respect_invariants(self):
        rng = random.Random(3)
        for policy in ("plain", "on_grant"):
            alloc = VIXAllocator(5, 5, 6, 2, pointer_policy=policy)
            for _ in range(150):
                m = saturated_matrix(5, 6, rng)
                grants = alloc.allocate(m)
                validate_grants(m, grants, max_per_input_port=2, virtual_inputs=2)


class TestPartition:
    def test_rejects_unknown_partition(self):
        with pytest.raises(ValueError, match="partition"):
            SeparableInputFirstAllocator(5, 5, 6, partition="diagonal")

    def test_contiguous_grouping(self):
        alloc = VIXAllocator(5, 5, 6, 2, partition="contiguous")
        assert [alloc.vc_group(v) for v in range(6)] == [0, 0, 0, 1, 1, 1]

    def test_interleaved_grouping(self):
        alloc = VIXAllocator(5, 5, 6, 2, partition="interleaved")
        assert [alloc.vc_group(v) for v in range(6)] == [0, 1, 0, 1, 0, 1]

    def test_partition_maps_are_inverse(self):
        for partition in ("contiguous", "interleaved"):
            alloc = VIXAllocator(5, 5, 6, 3, partition=partition)
            for vc in range(6):
                g = alloc.vc_group(vc)
                local = alloc._local_of(vc)
                assert alloc._vc_of(g, local) == vc

    def test_interleaved_two_vcs_same_port_win(self):
        alloc = VIXAllocator(5, 5, 6, 2, partition="interleaved")
        m = RequestMatrix(5, 5, 6)
        m.add(0, 0, 1)  # group 0
        m.add(0, 1, 2)  # group 1
        grants = alloc.allocate(m)
        assert len(grants) == 2

    def test_interleaved_invariants_with_custom_group_map(self):
        rng = random.Random(9)
        alloc = VIXAllocator(5, 5, 6, 2, partition="interleaved")
        for _ in range(150):
            m = saturated_matrix(5, 6, rng)
            grants = alloc.allocate(m)
            validate_grants(
                m,
                grants,
                max_per_input_port=2,
                virtual_inputs=2,
                group_of=alloc.vc_group,
            )

    def test_throughput_similar_across_partitions(self):
        """The paper's contiguous wiring is a layout choice, not a
        performance one — uniform traffic shows near-identical efficiency."""
        rng = random.Random(1)
        totals = {}
        for partition in ("contiguous", "interleaved"):
            alloc = VIXAllocator(5, 5, 6, 2, partition=partition)
            rng_local = random.Random(1)
            total = 0
            for _ in range(500):
                m = saturated_matrix(5, 6, rng_local)
                total += len(alloc.allocate(m))
            totals[partition] = total
        ratio = totals["interleaved"] / totals["contiguous"]
        assert 0.95 < ratio < 1.05
