"""Unit tests for the arbiter building blocks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.arbiter import (
    FixedPriorityArbiter,
    MatrixArbiter,
    RoundRobinArbiter,
    make_arbiter,
)


class TestRoundRobinArbiter:
    def test_no_requests_returns_none(self):
        arb = RoundRobinArbiter(4)
        assert arb.arbitrate([]) is None

    def test_single_request_wins(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([2]) == 2

    def test_pointer_starts_at_zero(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([0, 1, 2, 3]) == 0

    def test_pointer_moves_past_winner(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([0, 1, 2, 3]) == 0
        assert arb.grant([0, 1, 2, 3]) == 1
        assert arb.grant([0, 1, 2, 3]) == 2
        assert arb.grant([0, 1, 2, 3]) == 3
        assert arb.grant([0, 1, 2, 3]) == 0

    def test_wraps_to_find_requester(self):
        arb = RoundRobinArbiter(4)
        arb.update(2)  # pointer now 3
        assert arb.grant([0, 1]) == 0

    def test_fair_under_sustained_contention(self):
        arb = RoundRobinArbiter(3)
        wins = {0: 0, 1: 0, 2: 0}
        for _ in range(300):
            wins[arb.grant([0, 1, 2])] += 1
        assert wins[0] == wins[1] == wins[2] == 100

    def test_arbitrate_does_not_move_pointer(self):
        arb = RoundRobinArbiter(4)
        assert arb.arbitrate([1, 2]) == 1
        assert arb.arbitrate([1, 2]) == 1

    def test_update_out_of_range_rejected(self):
        arb = RoundRobinArbiter(4)
        with pytest.raises(ValueError):
            arb.update(4)

    def test_reset_restores_pointer(self):
        arb = RoundRobinArbiter(4)
        arb.grant([3])
        arb.reset()
        assert arb.grant([0, 3]) == 0

    def test_rejects_zero_requesters(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)


class TestFixedPriorityArbiter:
    def test_lowest_index_always_wins(self):
        arb = FixedPriorityArbiter(5)
        for _ in range(10):
            assert arb.grant([4, 2, 3]) == 2

    def test_unfair_by_design(self):
        arb = FixedPriorityArbiter(3)
        wins = [arb.grant([0, 1, 2]) for _ in range(50)]
        assert all(w == 0 for w in wins)

    def test_empty_requests(self):
        assert FixedPriorityArbiter(3).arbitrate([]) is None

    def test_out_of_range_requests_ignored(self):
        arb = FixedPriorityArbiter(3)
        assert arb.arbitrate([7, -1, 2]) == 2


class TestMatrixArbiter:
    def test_initial_priority_is_index_order(self):
        arb = MatrixArbiter(4)
        assert arb.arbitrate([1, 3]) == 1

    def test_winner_becomes_lowest_priority(self):
        arb = MatrixArbiter(3)
        assert arb.grant([0, 1, 2]) == 0
        assert arb.grant([0, 1, 2]) == 1
        assert arb.grant([0, 1, 2]) == 2
        assert arb.grant([0, 1, 2]) == 0

    def test_least_recently_granted_wins(self):
        arb = MatrixArbiter(3)
        arb.grant([0])
        arb.grant([0])
        # 1 and 2 have not been granted; 1 ranked above 2 initially.
        assert arb.grant([0, 1, 2]) == 1

    def test_single_requester_fast_path(self):
        arb = MatrixArbiter(4)
        assert arb.arbitrate([3]) == 3

    def test_reset(self):
        arb = MatrixArbiter(3)
        arb.grant([0, 1, 2])
        arb.reset()
        assert arb.arbitrate([0, 1, 2]) == 0

    def test_fair_under_sustained_contention(self):
        arb = MatrixArbiter(4)
        wins = {i: 0 for i in range(4)}
        for _ in range(400):
            wins[arb.grant([0, 1, 2, 3])] += 1
        assert all(count == 100 for count in wins.values())


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("round_robin", RoundRobinArbiter),
        ("fixed", FixedPriorityArbiter),
        ("matrix", MatrixArbiter),
    ])
    def test_make_arbiter(self, kind, cls):
        assert isinstance(make_arbiter(kind, 4), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arbiter"):
            make_arbiter("oracle", 4)


@given(
    n=st.integers(min_value=1, max_value=16),
    reqs=st.lists(st.integers(min_value=0, max_value=15), max_size=20),
    kind=st.sampled_from(["round_robin", "matrix"]),
)
def test_property_winner_is_a_requester(n, reqs, kind):
    """Any grant must come from the requesting set."""
    arb = make_arbiter(kind, n)
    valid = [r for r in reqs if r < n]
    winner = arb.arbitrate(valid)
    if valid:
        assert winner in valid
    else:
        assert winner is None


@given(
    n=st.integers(min_value=2, max_value=12),
    rounds=st.integers(min_value=10, max_value=60),
)
def test_property_round_robin_starvation_freedom(n, rounds):
    """Under all-request contention every line wins within n grants."""
    arb = RoundRobinArbiter(n)
    last_win = {i: -1 for i in range(n)}
    everyone = list(range(n))
    for t in range(rounds * n):
        winner = arb.grant(everyone)
        last_win[winner] = t
    for i, t in last_win.items():
        assert t >= rounds * n - n, f"line {i} starved"
