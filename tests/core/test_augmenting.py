"""Unit tests for the augmenting-path (AP) allocator."""

import random

from repro.core.augmenting import AugmentingPathAllocator
from repro.core.matching import kuhn_matching, matching_size
from repro.core.requests import RequestMatrix, validate_grants


def matrix_for(alloc):
    return RequestMatrix(alloc.num_inputs, alloc.num_outputs, alloc.num_vcs)


class TestOptimalPortMatching:
    def test_finds_maximum_matching(self):
        alloc = AugmentingPathAllocator(3, 3, 2)
        m = matrix_for(alloc)
        # port 0 -> {0,1}, port 1 -> {0}: needs an augmenting path for 2.
        m.add(0, 0, 0)
        m.add(0, 1, 1)
        m.add(1, 0, 0)
        grants = alloc.allocate(m)
        assert len(grants) == 2
        assert {(g.in_port, g.out_port) for g in grants} == {(0, 1), (1, 0)}

    def test_matches_kuhn_size_on_random_matrices(self):
        rng = random.Random(9)
        alloc = AugmentingPathAllocator(5, 5, 6)
        for _ in range(200):
            m = matrix_for(alloc)
            for i in range(5):
                for v in range(6):
                    if rng.random() < 0.35:
                        m.add(i, v, rng.randrange(5))
            grants = alloc.allocate(m)
            validate_grants(m, grants, max_per_input_port=1)
            adj = [sorted(s) for s in m.port_request_sets()]
            assert len(grants) == matching_size(kuhn_matching(5, 5, adj))

    def test_input_port_constraint_still_binds(self):
        """The paper's point: optimal matching cannot beat 1 flit/port."""
        alloc = AugmentingPathAllocator(5, 5, 6)
        m = matrix_for(alloc)
        m.add(0, 0, 1)
        m.add(0, 1, 2)  # same port, two outputs
        grants = alloc.allocate(m)
        assert len(grants) == 1  # output 1 or 2 idles despite a requester


class TestDeterministicUnfairness:
    def test_ties_always_resolve_the_same_way(self):
        """Fixed-order augmenting is greedy: no rotation across cycles."""
        alloc = AugmentingPathAllocator(3, 3, 1)
        winners = set()
        for _ in range(20):
            m = matrix_for(alloc)
            m.add(0, 0, 0)
            m.add(1, 0, 0)  # ports 0 and 1 fight for output 0 forever
            grants = alloc.allocate(m)
            assert len(grants) == 1
            winners.add(grants[0].in_port)
        assert winners == {0}  # port 1 starves — the Figure 9 pathology

    def test_vc_selection_rotates(self):
        alloc = AugmentingPathAllocator(2, 2, 3)
        seen_vcs = set()
        for _ in range(6):
            m = matrix_for(alloc)
            m.add(0, 0, 1)
            m.add(0, 1, 1)
            m.add(0, 2, 1)
            grants = alloc.allocate(m)
            seen_vcs.add(grants[0].vc)
        assert seen_vcs == {0, 1, 2}

    def test_reset(self):
        alloc = AugmentingPathAllocator(2, 2, 2)
        m = matrix_for(alloc)
        m.add(0, 0, 0)
        m.add(0, 1, 0)
        first = alloc.allocate(m)
        alloc.allocate(m)
        alloc.reset()
        assert alloc.allocate(m) == first
