"""Differential tests for the forced-move ``allocate_fast`` entry point.

``allocate_fast(reqs)`` may bypass the :class:`RequestMatrix` only when its
result — the grants AND every piece of internal priority state — is exactly
what :meth:`SwitchAllocator.allocate` would have produced.  These tests
drive a fast-path allocator and a reference allocator with identical random
request streams (mirroring how the router uses the API: try the fast path,
fall back to the matrix) and demand identical grants and identical pointer
state after every single cycle.
"""

from __future__ import annotations

import random

import pytest

from repro.core import make_allocator
from repro.core.augmenting import AugmentingPathAllocator
from repro.core.requests import Grant, RequestMatrix
from repro.core.separable import SeparableInputFirstAllocator
from repro.core.wavefront import WavefrontAllocator

RADIX = 5
NUM_VCS = 4

FAMILIES = [
    pytest.param(
        lambda: make_allocator("input_first", RADIX, RADIX, NUM_VCS),
        id="input_first",
    ),
    pytest.param(
        lambda: SeparableInputFirstAllocator(
            RADIX, RADIX, NUM_VCS, 1, pointer_policy="on_grant"
        ),
        id="islip",
    ),
    pytest.param(
        lambda: SeparableInputFirstAllocator(
            RADIX, RADIX, NUM_VCS, 2, partition="interleaved"
        ),
        id="vix_interleaved",
    ),
    pytest.param(
        lambda: make_allocator("vix", RADIX, RADIX, NUM_VCS, virtual_inputs=2),
        id="vix",
    ),
    pytest.param(
        lambda: make_allocator("ideal_vix", RADIX, RADIX, NUM_VCS),
        id="ideal_vix",
    ),
    pytest.param(
        lambda: make_allocator("wavefront", RADIX, RADIX, NUM_VCS),
        id="wavefront",
    ),
    pytest.param(
        lambda: make_allocator("augmenting_path", RADIX, RADIX, NUM_VCS),
        id="augmenting_path",
    ),
]


def _state(alloc):
    """Every piece of priority state the allocator carries across cycles."""
    if isinstance(alloc, SeparableInputFirstAllocator):
        return (
            [[a._pointer for a in row] for row in alloc._input_arbiters],
            [a._pointer for a in alloc._output_arbiters],
        )
    if isinstance(alloc, WavefrontAllocator):
        return (alloc._diag, [a._pointer for a in alloc._vc_arbiters])
    if isinstance(alloc, AugmentingPathAllocator):
        return [a._pointer for a in alloc._vc_arbiters]
    raise AssertionError(f"no state extractor for {type(alloc).__name__}")


def _random_reqs(rng: random.Random) -> list[Grant]:
    """A random request set shaped like the router's: one request per
    (port, vc) cell, arbitrary outputs — sometimes conflict-free (the fast
    path's domain), sometimes contended (must fall back)."""
    cells = [(p, v) for p in range(RADIX) for v in range(NUM_VCS)]
    chosen = rng.sample(cells, rng.randint(1, 6))
    chosen.sort()  # the router scans _sa_active in a stable order
    return [Grant(p, v, rng.randrange(RADIX)) for p, v in chosen]


def _matrix_from(reqs: list[Grant]) -> RequestMatrix:
    matrix = RequestMatrix(RADIX, RADIX, NUM_VCS)
    for p, vc, out in reqs:
        matrix.add(p, vc, out, tail=False)
    return matrix


@pytest.mark.parametrize("build", FAMILIES)
def test_fast_path_matches_reference_allocator(build):
    fast_alloc = build()
    ref_alloc = build()
    if fast_alloc.allocate_fast is None:
        pytest.skip("no fast path")
    rng = random.Random(1234)
    fast_hits = 0
    for _ in range(300):
        reqs = _random_reqs(rng)
        grants = fast_alloc.allocate_fast(reqs)
        if grants is None:
            grants = fast_alloc.allocate(_matrix_from(reqs))
        else:
            fast_hits += 1
        ref_grants = ref_alloc.allocate(_matrix_from(reqs))
        assert sorted(grants) == sorted(ref_grants)
        assert _state(fast_alloc) == _state(ref_alloc)
    # The generator must actually exercise both paths.
    assert 0 < fast_hits < 300


@pytest.mark.parametrize("build", FAMILIES)
def test_fast_path_refuses_contended_sets(build):
    alloc = build()
    if alloc.allocate_fast is None:
        pytest.skip("no fast path")
    # Two VCs of port 0 fighting for output 0: contended for every scheme.
    contended = [Grant(0, 0, 0), Grant(0, 1, 0)]
    assert alloc.allocate_fast(contended) is None
    # Distinct ports fighting for one output: still contended.
    assert alloc.allocate_fast([Grant(0, 0, 2), Grant(1, 0, 2)]) is None


@pytest.mark.parametrize("build", FAMILIES)
def test_fast_path_grants_conflict_free_sets_verbatim(build):
    alloc = build()
    if alloc.allocate_fast is None:
        pytest.skip("no fast path")
    # One request per port, all outputs distinct: forced for every scheme.
    reqs = [Grant(p, 0, (p + 1) % RADIX) for p in range(RADIX)]
    assert alloc.allocate_fast(reqs) == reqs


def test_schemes_without_fast_path_expose_none():
    for name in ("packet_chaining", "sparoflo", "output_first"):
        assert make_allocator(name, RADIX, RADIX, NUM_VCS).allocate_fast is None
