"""Wavefront allocation on non-square (rectangular) request matrices.

Our topologies use square routers, but the wavefront sweep internally pads
to a square; these tests pin down that the padding logic is sound for
asymmetric port counts (e.g. half routers, concentration mismatches).
"""

import random

import pytest

from repro.core.requests import RequestMatrix, validate_grants
from repro.core.wavefront import WavefrontAllocator


@pytest.mark.parametrize("num_in,num_out", [(4, 6), (6, 4), (2, 8), (8, 2)])
class TestRectangularWavefront:
    def test_invariants_hold(self, num_in, num_out):
        rng = random.Random(5)
        alloc = WavefrontAllocator(num_in, num_out, 3)
        for _ in range(200):
            m = RequestMatrix(num_in, num_out, 3)
            for i in range(num_in):
                for v in range(3):
                    if rng.random() < 0.5:
                        m.add(i, v, rng.randrange(num_out))
            grants = alloc.allocate(m)
            validate_grants(m, grants, max_per_input_port=1)

    def test_maximal_matching(self, num_in, num_out):
        rng = random.Random(7)
        alloc = WavefrontAllocator(num_in, num_out, 2)
        for _ in range(100):
            m = RequestMatrix(num_in, num_out, 2)
            for i in range(num_in):
                for v in range(2):
                    if rng.random() < 0.6:
                        m.add(i, v, rng.randrange(num_out))
            grants = alloc.allocate(m)
            used_in = {g.in_port for g in grants}
            used_out = {g.out_port for g in grants}
            for i, outs in enumerate(m.port_request_sets()):
                if i not in used_in:
                    assert not (outs - used_out), "grantable pair left idle"

    def test_grant_count_bounded_by_smaller_side(self, num_in, num_out):
        alloc = WavefrontAllocator(num_in, num_out, 2)
        m = RequestMatrix(num_in, num_out, 2)
        for i in range(num_in):
            for v in range(2):
                m.add(i, v, (i + v) % num_out)
        grants = alloc.allocate(m)
        assert len(grants) <= min(num_in, num_out)
