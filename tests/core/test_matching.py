"""Unit + property tests for the bipartite-matching algorithms."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import hopcroft_karp, kuhn_matching, matching_size


def brute_force_maximum(num_left, num_right, adj):
    """Exponential-time oracle for tiny graphs."""
    best = 0
    lefts = [u for u in range(num_left) if adj[u]]
    for size in range(len(lefts), 0, -1):
        if size <= best:
            break
        for subset in itertools.combinations(lefts, size):
            for assignment in itertools.product(*(adj[u] for u in subset)):
                if len(set(assignment)) == size:
                    best = max(best, size)
                    break
            if best == size:
                break
    return best


class TestKuhn:
    def test_empty_graph(self):
        assert kuhn_matching(3, 3, [[], [], []]) == [-1, -1, -1]

    def test_perfect_matching(self):
        adj = [[0], [1], [2]]
        assert kuhn_matching(3, 3, adj) == [0, 1, 2]

    def test_requires_augmenting_path(self):
        # Greedy (no augmentation) would match 0->0 and leave 1 unmatched.
        adj = [[0, 1], [0]]
        match = kuhn_matching(2, 2, adj)
        assert matching_size(match) == 2
        assert match == [1, 0]

    def test_deterministic_tie_break_prefers_low_indices(self):
        adj = [[0], [0]]  # both want right-0; only one can have it
        match = kuhn_matching(2, 1, adj)
        assert match == [0, -1]

    def test_wrong_adjacency_length(self):
        with pytest.raises(ValueError):
            kuhn_matching(2, 2, [[0]])

    def test_out_of_range_right_vertex(self):
        with pytest.raises(ValueError):
            kuhn_matching(1, 1, [[5]])


class TestHopcroftKarp:
    def test_perfect_matching(self):
        adj = [[1, 2], [0], [2, 0]]
        assert matching_size(hopcroft_karp(3, 3, adj)) == 3

    def test_empty(self):
        assert hopcroft_karp(2, 2, [[], []]) == [-1, -1]

    def test_wrong_adjacency_length(self):
        with pytest.raises(ValueError):
            hopcroft_karp(3, 2, [[0]])


class TestCrossCheck:
    def test_agree_on_random_graphs(self):
        rng = random.Random(17)
        for _ in range(300):
            nl = rng.randint(1, 8)
            nr = rng.randint(1, 8)
            adj = [
                sorted({rng.randrange(nr) for _ in range(rng.randint(0, nr))})
                for _ in range(nl)
            ]
            size_k = matching_size(kuhn_matching(nl, nr, adj))
            size_hk = matching_size(hopcroft_karp(nl, nr, adj))
            assert size_k == size_hk

    def test_against_brute_force(self):
        rng = random.Random(23)
        for _ in range(60):
            nl = rng.randint(1, 5)
            nr = rng.randint(1, 5)
            adj = [
                sorted({rng.randrange(nr) for _ in range(rng.randint(0, nr))})
                for _ in range(nl)
            ]
            expected = brute_force_maximum(nl, nr, adj)
            assert matching_size(kuhn_matching(nl, nr, adj)) == expected


@st.composite
def bipartite_graphs(draw):
    nl = draw(st.integers(min_value=1, max_value=7))
    nr = draw(st.integers(min_value=1, max_value=7))
    adj = [
        sorted(
            draw(
                st.sets(st.integers(min_value=0, max_value=nr - 1), max_size=nr)
            )
        )
        for _ in range(nl)
    ]
    return nl, nr, adj


@given(bipartite_graphs())
@settings(max_examples=200)
def test_property_matching_is_valid_and_maximum(graph):
    nl, nr, adj = graph
    match = kuhn_matching(nl, nr, adj)
    # validity: matched edges exist, right vertices distinct
    used = [v for v in match if v != -1]
    assert len(used) == len(set(used))
    for u, v in enumerate(match):
        if v != -1:
            assert v in adj[u]
    # maximality vs the independent implementation
    assert matching_size(match) == matching_size(hopcroft_karp(nl, nr, adj))


@given(bipartite_graphs())
@settings(max_examples=100)
def test_property_matching_bounded_by_degrees(graph):
    nl, nr, adj = graph
    size = matching_size(kuhn_matching(nl, nr, adj))
    assert size <= min(nl, nr)
    assert size <= sum(1 for a in adj if a)
    covered = set().union(*adj) if any(adj) else set()
    assert size <= len(covered)
