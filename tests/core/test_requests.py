"""Unit tests for the request-matrix / grant model."""

import pytest

from repro.core.requests import NO_REQUEST, Grant, RequestMatrix, validate_grants


@pytest.fixture
def matrix():
    return RequestMatrix(num_inputs=3, num_outputs=3, num_vcs=4)


class TestRequestMatrix:
    def test_starts_empty(self, matrix):
        assert not matrix.has_requests()
        assert matrix.total_requests() == 0

    def test_add_and_query(self, matrix):
        matrix.add(1, 2, 0, tail=True)
        assert matrix.request_of(1, 2) == 0
        assert matrix.is_tail(1, 2)
        assert matrix.request_of(1, 3) == NO_REQUEST

    def test_clear(self, matrix):
        matrix.add(0, 0, 1)
        matrix.clear()
        assert not matrix.has_requests()
        assert not matrix.is_tail(0, 0)

    def test_vcs_requesting(self, matrix):
        matrix.add(0, 0, 2)
        matrix.add(0, 3, 2)
        matrix.add(0, 1, 1)
        assert matrix.vcs_requesting(0, 2) == [0, 3]
        assert matrix.vcs_requesting(0, 0) == []

    def test_port_request_sets(self, matrix):
        matrix.add(0, 0, 2)
        matrix.add(0, 1, 1)
        matrix.add(2, 0, 1)
        sets = matrix.port_request_sets()
        assert sets == [{1, 2}, set(), {1}]

    def test_total_requests(self, matrix):
        matrix.add(0, 0, 0)
        matrix.add(1, 1, 1)
        matrix.add(2, 2, 2)
        assert matrix.total_requests() == 3

    @pytest.mark.parametrize("args", [(-1, 0, 0), (3, 0, 0), (0, 4, 0), (0, 0, 3)])
    def test_add_rejects_out_of_range(self, matrix, args):
        with pytest.raises(ValueError):
            matrix.add(*args)

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ValueError):
            RequestMatrix(0, 3, 4)


class TestValidateGrants:
    def test_accepts_valid_grants(self, matrix):
        matrix.add(0, 0, 0)
        matrix.add(1, 0, 1)
        validate_grants(matrix, [Grant(0, 0, 0), Grant(1, 0, 1)])

    def test_rejects_phantom_grant(self, matrix):
        with pytest.raises(AssertionError, match="does not match"):
            validate_grants(matrix, [Grant(0, 0, 0)])

    def test_rejects_double_output(self, matrix):
        matrix.add(0, 0, 0)
        matrix.add(1, 0, 0)
        with pytest.raises(AssertionError, match="granted twice"):
            validate_grants(
                matrix, [Grant(0, 0, 0), Grant(1, 0, 0)], max_per_input_port=None
            )

    def test_rejects_two_grants_same_port_conventional(self, matrix):
        matrix.add(0, 0, 0)
        matrix.add(0, 3, 1)
        with pytest.raises(AssertionError):
            validate_grants(matrix, [Grant(0, 0, 0), Grant(0, 3, 1)])

    def test_vix_allows_two_groups_same_port(self, matrix):
        # 4 VCs, k=2 -> groups {0,1} and {2,3}.
        matrix.add(0, 0, 0)
        matrix.add(0, 3, 1)
        validate_grants(
            matrix,
            [Grant(0, 0, 0), Grant(0, 3, 1)],
            max_per_input_port=2,
            virtual_inputs=2,
        )

    def test_vix_rejects_two_grants_same_group(self, matrix):
        matrix.add(0, 2, 0)
        matrix.add(0, 3, 1)
        with pytest.raises(AssertionError, match="virtual input"):
            validate_grants(
                matrix,
                [Grant(0, 2, 0), Grant(0, 3, 1)],
                max_per_input_port=2,
                virtual_inputs=2,
            )

    def test_ideal_allows_every_vc(self, matrix):
        matrix.add(0, 0, 0)
        matrix.add(0, 1, 1)
        matrix.add(0, 2, 2)
        validate_grants(
            matrix,
            [Grant(0, 0, 0), Grant(0, 1, 1), Grant(0, 2, 2)],
            max_per_input_port=None,
            virtual_inputs=4,
        )
