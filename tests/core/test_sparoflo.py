"""Unit tests for the SPAROFLO-style allocator (Section 5 comparison)."""

import random

import pytest

from repro.core.requests import RequestMatrix, validate_grants
from repro.core.separable import SeparableInputFirstAllocator
from repro.core.sparoflo import SparofloAllocator
from repro.core.vix import VIXAllocator


def matrix_for(alloc):
    return RequestMatrix(alloc.num_inputs, alloc.num_outputs, alloc.num_vcs)


def saturated_matrix(p, v, rng):
    m = RequestMatrix(p, p, v)
    for i in range(p):
        for w in range(v):
            m.add(i, w, rng.randrange(p))
    return m


class TestBasics:
    def test_single_request_granted(self):
        alloc = SparofloAllocator(5, 5, 6)
        m = matrix_for(alloc)
        m.add(2, 3, 4)
        grants = alloc.allocate(m)
        assert [(g.in_port, g.vc, g.out_port) for g in grants] == [(2, 3, 4)]

    def test_one_grant_per_input_port(self):
        """No virtual inputs: the port constraint binds despite multiple
        requests being presented to output arbitration."""
        alloc = SparofloAllocator(5, 5, 6, dynamic=False)
        m = matrix_for(alloc)
        m.add(0, 0, 1)
        m.add(0, 1, 2)
        grants = alloc.allocate(m)
        assert len(grants) == 1  # output 1 or 2 idles — unlike VIX

    def test_conflict_detection_keeps_highest_priority(self):
        """Two outputs picking the same port resolve by selection priority."""
        alloc = SparofloAllocator(3, 3, 2, dynamic=False)
        m = matrix_for(alloc)
        m.add(0, 0, 1)  # first pick of port 0 -> priority 0
        m.add(0, 1, 2)  # second pick -> priority 1
        grants = alloc.allocate(m)
        assert len(grants) == 1
        assert grants[0].out_port == 1

    def test_invariants_on_random_traffic(self):
        rng = random.Random(3)
        alloc = SparofloAllocator(5, 5, 6)
        for _ in range(300):
            m = saturated_matrix(5, 6, rng)
            grants = alloc.allocate(m)
            validate_grants(m, grants, max_per_input_port=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SparofloAllocator(5, 5, 6, max_requests_per_port=0)

    def test_reset(self):
        alloc = SparofloAllocator(3, 3, 2)
        m = matrix_for(alloc)
        m.add(0, 0, 0)
        m.add(0, 1, 0)
        first = alloc.allocate(m)
        alloc.allocate(m)
        alloc.reset()
        assert alloc.allocate(m) == first


class TestLoadAdaptivity:
    def test_saturated_matrix_falls_back_to_one_request(self):
        """Dynamic mode degenerates to plain separable near saturation."""
        rng = random.Random(7)
        alloc = SparofloAllocator(5, 5, 6, dynamic=True)
        m = saturated_matrix(5, 6, rng)
        assert alloc._requests_per_port(m) == 1

    def test_light_matrix_presents_multiple_requests(self):
        alloc = SparofloAllocator(5, 5, 6, dynamic=True)
        m = matrix_for(alloc)
        m.add(0, 0, 1)
        m.add(0, 1, 2)
        assert alloc._requests_per_port(m) == 2
        assert len(alloc.allocate(m)) == 1  # still one grant (conflicts)

    def test_static_mode_ignores_load(self):
        rng = random.Random(7)
        alloc = SparofloAllocator(5, 5, 6, dynamic=False, max_requests_per_port=3)
        assert alloc._requests_per_port(saturated_matrix(5, 6, rng)) == 3


class TestPaperOrdering:
    """Section 5: 'conflicts limit the efficiency of SPAROFLO when
    compared to VIX' — IF < SPAROFLO(static) < VIX at saturation."""

    def test_if_below_sparoflo_below_vix(self):
        rng = random.Random(11)
        p, v = 5, 6
        allocators = {
            "if": SeparableInputFirstAllocator(p, p, v),
            "spf": SparofloAllocator(p, p, v, dynamic=False),
            "vix": VIXAllocator(p, p, v, 2),
        }
        totals = dict.fromkeys(allocators, 0)
        for _ in range(600):
            base = saturated_matrix(p, v, rng)
            for name, alloc in allocators.items():
                m = RequestMatrix(p, p, v)
                for i in range(p):
                    for w in range(v):
                        m.add(i, w, base.request_of(i, w))
                totals[name] += len(alloc.allocate(m))
        assert totals["if"] < totals["spf"] < totals["vix"]
