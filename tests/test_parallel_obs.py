"""Parallel layer x observability: job timing, span folding, worker metrics.

The parallel runner must stay observability-correct in both directions:
execution telemetry (max job wall time, per-phase spans) has to survive
the worker round trip, and observability-enabled runs have to bypass the
result cache — a cached result was produced blind and carries no metrics.
"""

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.obs import MetricsRegistry
from repro.parallel import ExecutionStats, ParallelRunner, SimJob


def tiny_job(seed=1, allocator="input_first"):
    return SimJob(
        NetworkConfig(
            topology="mesh",
            num_terminals=16,
            router=RouterConfig(allocator=allocator),
            packet_length=4,
        ),
        injection_rate=0.1,
        seed=seed,
        warmup=50,
        measure=200,
    )


class TestExecutionStatsFields:
    def test_merge_takes_max_job_and_sums_phases(self):
        a = ExecutionStats(max_job_seconds=1.5, phase_seconds={"warmup": 1.0})
        b = ExecutionStats(
            max_job_seconds=0.4, phase_seconds={"warmup": 2.0, "drain": 0.5}
        )
        a.merge(b)
        assert a.max_job_seconds == 1.5
        assert a.phase_seconds == {"warmup": 3.0, "drain": 0.5}

    def test_absorb_counters_folds_spans(self):
        stats = ExecutionStats()
        stats.absorb_counters(
            {"span_warmup_us": 500_000, "span_measure_us": 250_000,
             "router_wakeups": 3, "cycles_skipped": 10}
        )
        assert stats.phase_seconds == pytest.approx(
            {"warmup": 0.5, "measure": 0.25}
        )
        assert stats.router_wakeups == 3
        assert stats.cycles_skipped == 10

    def test_observe_job_tracks_slowest(self):
        stats = ExecutionStats()
        for seconds in (0.1, 0.8, 0.3):
            stats.observe_job(seconds)
        assert stats.max_job_seconds == 0.8

    def test_as_dict_and_summary_surface_new_fields(self):
        stats = ExecutionStats(jobs_run=2, max_job_seconds=1.234)
        data = stats.as_dict()
        assert data["max_job_seconds"] == 1.234
        assert "phase_seconds" not in data  # omitted while empty
        stats.phase_seconds["measure"] = 2.0
        assert stats.as_dict()["phase_seconds"] == {"measure": 2.0}
        summary = stats.summary()
        assert "max job: 1.23s" in summary
        assert "phases: measure=2.00s" in summary


class TestRunnerJobTiming:
    def test_max_job_seconds_populated_serially(self):
        runner = ParallelRunner(1, cache=None)
        runner.run([tiny_job(seed=1), tiny_job(seed=2)])
        assert 0 < runner.stats.max_job_seconds <= runner.stats.wall_seconds

    def test_max_job_seconds_populated_through_workers(self):
        runner = ParallelRunner(2, cache=None)
        runner.run([tiny_job(seed=1), tiny_job(seed=2)])
        assert runner.stats.max_job_seconds > 0
        # The slowest single job cannot be faster than half the two-job
        # serial work, and never slower than the whole batch's wall clock
        # as seen by any single worker — just sanity-bound it.
        assert runner.stats.max_job_seconds < 60

    def test_cache_hits_do_not_touch_max_job(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        job = tiny_job(seed=3)
        warm = ParallelRunner(1)
        warm.run([job])
        assert warm.stats.jobs_run == 1
        hit = ParallelRunner(1)
        hit.run([job])
        assert hit.stats.cache_hits == 1
        assert hit.stats.jobs_run == 0
        assert hit.stats.max_job_seconds == 0.0


class TestWorkerMetrics:
    def test_metrics_merge_across_workers(self, tmp_path, monkeypatch):
        out = tmp_path / "metrics.jsonl"
        monkeypatch.setenv("REPRO_METRICS_OUT", str(out))
        runner = ParallelRunner(2, cache="default")
        assert runner.cache is None  # obs env forces execution
        results = runner.run([tiny_job(seed=1), tiny_job(seed=2)])
        assert all(r.metrics is not None for r in results)
        assert out.exists() and len(out.read_text().splitlines()) == 2

        merged = MetricsRegistry()
        merged.gauge("sa_matching_efficiency")  # float field, last-writer-wins
        for r in results:
            merged.merge(r.metrics)
        data = merged.as_dict()
        assert data["sa_requests"] == sum(
            r.metrics["sa_requests"] for r in results
        )
        assert data["sa_grants"] == sum(r.metrics["sa_grants"] for r in results)
        assert (
            data["sa_matching_efficiency"]
            == results[-1].metrics["sa_matching_efficiency"]
        )

    def test_serial_and_parallel_observed_results_agree(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_METRICS_OUT", str(tmp_path / "m.jsonl"))
        jobs = [tiny_job(seed=1), tiny_job(seed=2)]
        serial = ParallelRunner(1, cache=None).run(jobs)
        parallel = ParallelRunner(2, cache=None).run(jobs)
        for s, p in zip(serial, parallel):
            assert s.metrics == p.metrics
            assert s.avg_latency == p.avg_latency
            assert s.counters == p.counters


class TestCacheBypass:
    @pytest.mark.parametrize(
        "var,value",
        [
            ("REPRO_TRACE", "/tmp/t.jsonl"),
            ("REPRO_METRICS_OUT", "/tmp/m.jsonl"),
            ("REPRO_PROFILE", "1"),
            ("REPRO_PROFILE_DIR", "/tmp/prof"),
        ],
    )
    def test_default_cache_disabled_by_obs_env(self, monkeypatch, var, value):
        monkeypatch.setenv(var, value)
        assert ParallelRunner(1, cache="default").cache is None

    def test_default_cache_active_without_obs_env(self, monkeypatch, tmp_path):
        for var in ("REPRO_TRACE", "REPRO_METRICS_OUT", "REPRO_PROFILE",
                    "REPRO_PROFILE_DIR"):
            monkeypatch.delenv(var, raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert ParallelRunner(1, cache="default").cache is not None

    def test_explicit_cache_instance_is_respected(self, monkeypatch, tmp_path):
        # Opting in explicitly overrides the bypass: the caller asked.
        from repro.parallel.cache import ResultCache

        monkeypatch.setenv("REPRO_PROFILE", "1")
        cache = ResultCache(tmp_path)
        assert ParallelRunner(1, cache=cache).cache is cache
