"""PhaseTimer spans and per-job cProfile capture."""

import pstats

from repro.obs import PhaseTimer, profiled_call, spans_from_counters


class TestPhaseTimer:
    def test_add_accumulates(self):
        t = PhaseTimer()
        t.add("measure", 0.5)
        t.add("measure", 0.25)
        assert t.seconds == {"measure": 0.75}

    def test_time_charges_wall_clock_and_returns_value(self):
        t = PhaseTimer()
        assert t.time("warmup", lambda: 42) == 42
        assert t.seconds["warmup"] >= 0.0

    def test_counter_round_trip(self):
        t = PhaseTimer()
        t.add("warmup", 0.123456)
        t.add("drain", 2.0)
        counters = t.counter_items()
        assert counters["span_warmup_us"] == 123456
        assert counters["span_drain_us"] == 2_000_000
        spans = spans_from_counters({**counters, "router_wakeups": 7})
        assert spans == {"warmup": 0.123456, "drain": 2.0}


class TestProfiledCall:
    def test_dumps_readable_pstats(self, tmp_path):
        result = profiled_call(lambda: sum(range(1000)), tmp_path, "job-x")
        assert result == sum(range(1000))
        dump = tmp_path / "job-x.pstats"
        assert dump.exists()
        # The dump must be loadable by the stdlib consumer.
        pstats.Stats(str(dump))

    def test_unwritable_dir_never_fails_the_call(self):
        assert profiled_call(lambda: 7, "/proc/definitely/nope", "t") == 7

    def test_exception_propagates_after_profiler_stops(self, tmp_path):
        def boom():
            raise RuntimeError("boom")

        try:
            profiled_call(boom, tmp_path, "t")
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("exception swallowed")
        # The profiler was disabled on the way out: a second call works.
        assert profiled_call(lambda: 1, tmp_path, "t2") == 1
