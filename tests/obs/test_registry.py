"""MetricsRegistry: counters/gauges/histograms, merge semantics, export."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import NULL_METRIC, Histogram


class TestMetricKinds:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(4)
        assert reg.as_dict() == {"hits": 5}

    def test_gauge_last_writer_wins(self):
        reg = MetricsRegistry()
        reg.gauge("eff").set(0.5)
        reg.gauge("eff").set(0.9)
        assert reg.as_dict() == {"eff": 0.9}

    def test_histogram_buckets_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(10, 20))
        for v in (5, 10, 11, 99):
            h.observe(v)
        data = reg.as_dict()["lat"]
        assert data["kind"] == "histogram"
        assert data["counts"] == [2, 1]
        assert data["overflow"] == 1
        assert data["total"] == 4
        assert h.mean() == pytest.approx((5 + 10 + 11 + 99) / 4)

    def test_histogram_needs_bounds(self):
        with pytest.raises(ValueError):
            Histogram("empty", ())

    def test_histogram_bounds_must_match_on_reuse(self):
        reg = MetricsRegistry()
        reg.histogram("lat", bounds=(1, 2))
        with pytest.raises(ValueError):
            reg.histogram("lat", bounds=(1, 3))

    def test_name_cannot_change_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_disabled_registry_hands_out_null_metric(self):
        reg = MetricsRegistry(enabled=False)
        metric = reg.counter("hits")
        assert metric is NULL_METRIC
        metric.inc(100)
        reg.gauge("g").set(1.0)
        reg.histogram("h", (1,)).observe(5)
        assert reg.as_dict() == {}


class TestMerge:
    def test_counters_add_gauges_overwrite(self):
        a = MetricsRegistry()
        a.counter("n").inc(3)
        a.gauge("eff").set(0.5)
        b = MetricsRegistry()
        b.counter("n").inc(4)
        b.gauge("eff").set(0.8)
        a.merge(b)
        assert a.as_dict() == {"eff": 0.8, "n": 7}

    def test_histograms_merge_elementwise(self):
        a = MetricsRegistry()
        a.histogram("lat", (10, 20)).observe(5)
        b = MetricsRegistry()
        b.histogram("lat", (10, 20)).observe(15)
        b.histogram("lat", (10, 20)).observe(99)
        a.merge(b)
        data = a.as_dict()["lat"]
        assert data["counts"] == [1, 1]
        assert data["overflow"] == 1
        assert data["total"] == 3

    def test_merge_from_plain_dict(self):
        # The cross-process form: a worker ships as_dict(), parent merges.
        a = MetricsRegistry()
        a.counter("n").inc(1)
        a.merge({"n": 2, "lat": {
            "kind": "histogram", "bounds": [10], "counts": [4],
            "overflow": 0, "total": 4, "sum": 12.0,
        }})
        data = a.as_dict()
        assert data["n"] == 3
        assert data["lat"]["counts"] == [4]

    def test_merge_mismatched_histogram_buckets_raises(self):
        a = MetricsRegistry()
        a.histogram("lat", (10,)).observe(1)
        with pytest.raises(ValueError):
            a.merge({"lat": {
                "kind": "histogram", "bounds": [10], "counts": [1, 2],
                "overflow": 0, "total": 3, "sum": 0.0,
            }})


class TestQuantile:
    def test_interpolates_within_landing_bucket(self):
        h = Histogram("lat", (10.0, 20.0))
        for _ in range(10):
            h.observe(5)  # all ten samples in the first bucket
        # Rank q*10 interpolated across [0, 10] (first lower edge is 0).
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_crosses_buckets_cumulatively(self):
        h = Histogram("lat", (10.0, 20.0))
        for _ in range(5):
            h.observe(5)
        for _ in range(5):
            h.observe(15)
        assert h.quantile(0.5) == pytest.approx(10.0)
        assert h.quantile(0.75) == pytest.approx(15.0)

    def test_overflow_rank_clamps_to_largest_finite_bound(self):
        h = Histogram("lat", (10.0,))
        h.observe(5)
        h.observe(999)  # overflow (+Inf) bucket
        assert h.quantile(0.99) == 10.0

    def test_empty_histogram_is_nan(self):
        import math

        assert math.isnan(Histogram("lat", (10.0,)).quantile(0.5))
        assert math.isnan(NULL_METRIC.quantile(0.5))

    def test_rejects_out_of_range_q(self):
        h = Histogram("lat", (10.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_agrees_with_prometheus_endpoint_buckets(self):
        # The quantile read off the registry and the one a Prometheus
        # histogram_quantile computes from /metrics share the same
        # cumulative-bucket math; spot-check through the text exporter.
        from repro.obs.exporters import prometheus_text

        reg = MetricsRegistry()
        h = reg.histogram("lat", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        text = prometheus_text(reg)
        assert 'lat_bucket{le="2"} 3' in text  # cumulative, like quantile()
        assert h.quantile(0.75) == pytest.approx(2.0)


class TestExport:
    def test_jsonl_appends_context_stamped_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        for seed in (1, 2):
            reg = MetricsRegistry()
            reg.counter("n").inc(seed)
            reg.export_jsonl(path, allocator="IF", seed=seed)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["allocator"] == "IF"
        assert [l["metrics"]["n"] for l in lines] == [1, 2]

    def test_csv_expands_histograms(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.histogram("lat", (10,)).observe(3)
        text = reg.export_csv(tmp_path / "m.csv").read_text()
        assert "name,value" in text
        assert "n,2" in text
        assert "lat_le_10,1" in text
        assert "lat_total,1" in text

    def test_csv_histogram_rows_are_cumulative_with_inf(self, tmp_path):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (10, 20))
        for v in (5, 5, 15, 99):
            h.observe(v)
        text = reg.export_csv(tmp_path / "m.csv").read_text()
        # Prometheus shape: each le row includes everything below it,
        # +Inf is the total (overflow included), _overflow stays raw.
        assert "lat_le_10,2" in text
        assert "lat_le_20,3" in text
        assert "lat_le_+Inf,4" in text
        assert "lat_overflow,1" in text
        assert "lat_total,4" in text
