"""End-to-end observability: result identity, IF-vs-VIX telemetry, traces.

The two load-bearing guarantees:

* **Result identity** — enabling metrics/tracing must not change a single
  simulation output field (the probes disable the grant-equivalent fast
  paths, so this actually exercises the equivalence claim).
* **The paper's story is measurable** — at equal load the baseline IF
  allocator shows non-zero phase-2 kills and input-port-constraint blocks,
  and 1:2 VIX shows strictly fewer blocks, a strictly lower overall
  lost-opportunity rate, and strictly higher matching efficiency.
"""

import dataclasses
import json
import math

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.obs import ObservabilityConfig
from repro.sim.engine import run_simulation


def mesh_config(allocator="input_first", **router_overrides):
    return NetworkConfig(
        topology="mesh",
        num_terminals=16,
        router=RouterConfig(allocator=allocator, **router_overrides),
        packet_length=4,
    )


def run(config, *, obs=None, rate=0.15, **overrides):
    defaults = dict(injection_rate=rate, seed=3, warmup=100, measure=400)
    defaults.update(overrides)
    return run_simulation(config, obs=obs, **defaults)


METRICS = ObservabilityConfig(metrics=True)
FULL_TRACE = ObservabilityConfig(metrics=True, trace=True)


class TestResultIdentity:
    @pytest.mark.parametrize("allocator", ["input_first", "vix", "wavefront"])
    def test_observability_does_not_change_results(self, allocator):
        base = run(mesh_config(allocator))
        observed = run(mesh_config(allocator), obs=FULL_TRACE)
        assert base.metrics is None
        assert observed.metrics is not None
        for f in dataclasses.fields(base):
            if f.name == "metrics":
                continue
            assert getattr(base, f.name) == getattr(observed, f.name), f.name

    def test_disabled_default_attaches_nothing(self, monkeypatch):
        for var in ("REPRO_TRACE", "REPRO_METRICS_OUT", "REPRO_PROFILE",
                    "REPRO_PROFILE_DIR"):
            monkeypatch.delenv(var, raising=False)
        from repro.sim.engine import Simulation

        sim = Simulation(mesh_config())
        assert sim._obs is None
        assert sim.network.tracer is None
        assert all(r.allocator.probe is None for r in sim.network.routers)
        assert all(r._alloc_fast is not None for r in sim.network.routers)

    def test_gated_and_dense_telemetry_identical(self):
        gated = run(mesh_config(), obs=METRICS, activity_gating=True)
        dense = run(mesh_config(), obs=METRICS, activity_gating=False)
        g, d = dict(gated.metrics), dict(dense.metrics)
        # Gating-bookkeeping counters legitimately differ; the telemetry
        # the probes produce must not.
        for key in ("router_wakeups", "cycles_skipped"):
            g.pop(key, None)
            d.pop(key, None)
        assert g == d


class TestPaperStory:
    def test_if_vs_vix_matching_telemetry(self):
        m_if = run(mesh_config("input_first"), rate=0.2).metrics or {}
        assert m_if == {}  # sanity: disabled runs carry no metrics
        m_if = run(mesh_config("input_first"), obs=METRICS, rate=0.2).metrics
        m_vix = run(mesh_config("vix"), obs=METRICS, rate=0.2).metrics

        # Baseline IF suffers both problems the paper names.
        assert m_if["sa_phase2_kills"] > 0
        assert m_if["sa_input_port_blocks"] > 0
        # 1:2 VIX relaxes the input-port constraint: strictly fewer
        # requests hidden behind a busy crossbar input...
        assert m_vix["sa_input_port_blocks"] < m_if["sa_input_port_blocks"]
        # ...at the price of more phase-2 exposure, but the *total* lost
        # opportunity per exposed request strictly drops...
        lost_if = (m_if["sa_phase2_kills"] + m_if["sa_input_port_blocks"]) / m_if["sa_requests"]
        lost_vix = (m_vix["sa_phase2_kills"] + m_vix["sa_input_port_blocks"]) / m_vix["sa_requests"]
        assert lost_vix < lost_if
        # ...and achieved/maximal matching strictly improves.
        assert m_vix["sa_matching_efficiency"] > m_if["sa_matching_efficiency"]

    def test_probe_accounting_is_self_consistent(self):
        m = run(mesh_config("input_first"), obs=METRICS, rate=0.2).metrics
        assert m["sa_requests"] == (
            m["sa_phase1_winners"] + m["sa_input_port_blocks"]
        )
        assert m["sa_phase1_winners"] == m["sa_grants"] + m["sa_phase2_kills"]
        assert m["sa_grants"] <= m["sa_max_matching"]


class TestTraceIntegration:
    def test_trace_schema_and_per_packet_ordering(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs = ObservabilityConfig(trace=True, trace_path=str(path))
        res = run(mesh_config("vix"), obs=obs)
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert events
        stages_seen = set()
        by_pid = {}
        for ev in events:
            assert set(ev) >= {"cycle", "pid", "flit", "router", "stage", "vc", "vin"}
            stages_seen.add(ev["stage"])
            by_pid.setdefault(ev["pid"], []).append(ev)
        assert stages_seen == {"inject", "arrive", "va", "sa", "eject"}
        # Cycles are monotonic within a packet (events recorded in order)
        # and each fully traced packet starts with inject, ends with eject.
        full = [evs for evs in by_pid.values()
                if evs[0]["stage"] == "inject" and evs[-1]["stage"] == "eject"]
        assert full
        for evs in full:
            cycles = [e["cycle"] for e in evs]
            assert cycles == sorted(cycles)
        # VIX uses both virtual inputs of a port somewhere in the run.
        vins = {ev["vin"] for ev in events if ev["stage"] == "sa"}
        assert vins == {0, 1}
        assert res.packets_ejected > 0

    def test_sampled_trace_is_a_subset(self):
        full = run(mesh_config(), obs=ObservabilityConfig(trace=True))
        # No trace_path: nothing written, but the engine still traced.
        assert full.metrics is None
        sampled = run(
            mesh_config(),
            obs=ObservabilityConfig(
                metrics=True, trace=True, trace_sample=0.2
            ),
        ).metrics
        everything = run(
            mesh_config(), obs=ObservabilityConfig(metrics=True, trace=True)
        ).metrics
        assert 0 < sampled["trace_events_recorded"] < everything["trace_events_recorded"]

    def test_ring_buffer_drop_accounting_surfaces_in_metrics(self):
        m = run(
            mesh_config(),
            obs=ObservabilityConfig(metrics=True, trace=True, trace_buffer=50),
        ).metrics
        assert m["trace_events_buffered"] <= 50
        assert (
            m["trace_events_recorded"]
            == m["trace_events_buffered"] + m["trace_dropped_events"]
        )


class TestMetricsFileAndPercentiles:
    def test_metrics_jsonl_carries_run_context(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        obs = ObservabilityConfig(metrics=True, metrics_path=str(path))
        run(mesh_config("vix"), obs=obs)
        run(mesh_config(), obs=obs)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["allocator"] == "vix"
        assert lines[0]["virtual_inputs"] == 2
        assert lines[1]["allocator"] == "input_first"
        assert lines[0]["metrics"]["sa_rounds"] > 0

    def test_latency_percentiles_on_result(self):
        res = run(mesh_config())
        assert res.latency_p50 <= res.latency_p95 <= res.latency_p99
        assert res.latency_p50 > 0
        # Percentiles live in the same units/ballpark as the mean.
        assert res.latency_p99 >= res.avg_latency >= res.latency_p50 / 3

    def test_percentiles_nan_when_nothing_measured(self):
        res = run(mesh_config(), rate=0.0, warmup=10, measure=50)
        assert math.isnan(res.latency_p50)
        assert math.isnan(res.latency_p99)
