"""TelemetryServer: /status, /metrics, /events SSE over a live monitor."""

import json
import threading
import urllib.request

import pytest

from repro.obs import RunMonitor, TelemetryServer


@pytest.fixture
def served():
    monitor = RunMonitor(label="fig8", run_key="cafe01")
    server = TelemetryServer(monitor, port=0).start()
    yield monitor, server
    server.close()
    monitor.close()


def get(server, path, timeout=5):
    with urllib.request.urlopen(server.url + path, timeout=timeout) as resp:
        return resp.status, resp.headers, resp.read().decode()


class TestEndpoints:
    def test_index_lists_endpoints(self, served):
        monitor, server = served
        status, _, body = get(server, "/")
        assert status == 200
        doc = json.loads(body)
        assert doc["endpoints"] == ["/status", "/metrics", "/events"]
        assert doc["label"] == "fig8"

    def test_status_reflects_monitor_mid_run(self, served):
        monitor, server = served
        monitor.emit("batch_start", jobs=4)
        monitor.emit("job_start", index=0, attempt=0, pid=77)
        _, headers, body = get(server, "/status")
        assert headers["Content-Type"] == "application/json"
        doc = json.loads(body)
        assert doc["jobs_total"] == 4
        assert doc["in_flight_count"] == 1
        assert doc["in_flight"][0]["pid"] == 77
        assert doc["run_key"] == "cafe01"

    def test_metrics_is_prometheus_text(self, served):
        monitor, server = served
        monitor.emit("batch_start", jobs=2)
        monitor.emit("cache_hit", index=0, key="ab")
        _, headers, body = get(server, "/metrics")
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert "# TYPE repro_jobs_total counter" in body
        assert "repro_jobs_total 2" in body
        assert "repro_cache_hits 1" in body
        assert body.endswith("\n")

    def test_unknown_path_is_json_404(self, served):
        _, server = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/nope")
        assert err.value.code == 404
        assert json.loads(err.value.read().decode())["error"]

    def test_port_zero_resolves_to_concrete_url(self, served):
        _, server = served
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"


class TestSSE:
    def read_sse_events(self, server, n, emit_after):
        """Open /events, then emit, then read ``n`` data lines."""
        req = urllib.request.urlopen(server.url + "/events", timeout=10)
        assert req.headers["Content-Type"] == "text/event-stream"
        emitted = threading.Thread(target=emit_after)
        emitted.start()
        events = []
        while len(events) < n:
            line = req.readline().decode()
            if line.startswith("data: "):
                events.append(json.loads(line[len("data: "):]))
        emitted.join()
        req.close()
        return events

    def test_replays_buffered_tail_then_streams_live(self, served):
        monitor, server = served
        monitor.emit("run_start", experiment="fig8")
        monitor.emit("batch_start", jobs=1)

        def emit_live():
            monitor.emit("job_start", index=0, attempt=0, pid=5)

        events = self.read_sse_events(server, 3, emit_live)
        assert [e["kind"] for e in events] == [
            "run_start", "batch_start", "job_start",
        ]
        # seq ids are strictly increasing across replay + live.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == 3

    def test_stream_ends_when_monitor_closes(self, served):
        monitor, server = served
        monitor.emit("run_start")
        req = urllib.request.urlopen(server.url + "/events", timeout=10)
        req.readline()  # id: of the replayed event
        closer = threading.Timer(0.1, monitor.close)
        closer.start()
        # The handler exits on the close sentinel; the body then ends.
        assert b"run_start" in req.read()
        closer.join()


class TestLifecycle:
    def test_close_is_idempotent_and_releases_port(self):
        monitor = RunMonitor()
        server = TelemetryServer(monitor, port=0).start()
        port = server.port
        server.close()
        server.close()
        # Port is free again: a new server can bind it immediately.
        relisten = TelemetryServer(monitor, port=port).start()
        relisten.close()
        monitor.close()

    def test_context_manager(self):
        monitor = RunMonitor()
        with TelemetryServer(monitor, port=0) as server:
            status, _, _ = get(server, "/")
            assert status == 200
        monitor.close()
