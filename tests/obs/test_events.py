"""EventStream: seq assignment, JSONL durability, bounded replay ring."""

import json

import pytest

from repro.obs import EVENT_KINDS, EventStream, RunEvent, event_stream_path
from repro.obs.events import ordered


class TestRunEvent:
    def test_to_dict_flattens_data(self):
        ev = RunEvent(seq=3, t=12.5, kind="job_start", data={"index": 7, "pid": 42})
        assert ev.to_dict() == {
            "seq": 3, "t": 12.5, "kind": "job_start", "index": 7, "pid": 42,
        }

    def test_round_trip(self):
        ev = RunEvent(seq=9, t=1.25, kind="job_finish",
                      data={"index": 0, "seconds": 0.5, "engine": "gated"})
        assert RunEvent.from_dict(ev.to_dict()) == ev

    def test_from_dict_tolerates_missing_fields(self):
        ev = RunEvent.from_dict({"kind": "progress"})
        assert ev.seq == 0
        assert ev.t == 0.0
        assert ev.data == {}

    def test_kind_table_matches_module_doc(self):
        # The lifecycle kinds the runner emits must all be registered.
        for kind in ("job_start", "job_finish", "job_cancel", "job_error",
                     "job_retry", "job_failed", "job_interrupted",
                     "chunk_bisect", "cache_hit", "progress"):
            assert kind in EVENT_KINDS


class TestSeqAssignment:
    def test_seqs_are_dense_and_monotonic(self):
        stream = EventStream()
        events = [stream.append("progress", total=i) for i in range(10)]
        assert [e.seq for e in events] == list(range(10))
        assert stream.appended == 10

    def test_ordered_restores_total_order(self):
        stream = EventStream()
        events = [stream.append("progress", total=i) for i in range(5)]
        shuffled = [events[3], events[0], events[4], events[2], events[1]]
        assert ordered(shuffled) == events


class TestReplayRing:
    def test_capacity_bounds_buffer_with_explicit_drop_counter(self):
        stream = EventStream(capacity=4)
        for i in range(10):
            stream.append("progress", total=i)
        assert len(stream) == 4
        assert stream.appended == 10
        assert stream.dropped == 6
        # Oldest-first truncation: the tail survives.
        assert [e.data["total"] for e in stream.events()] == [6, 7, 8, 9]

    def test_tail(self):
        stream = EventStream()
        for i in range(5):
            stream.append("progress", total=i)
        assert [e.data["total"] for e in stream.tail(2)] == [3, 4]
        assert stream.tail(0) == []
        assert len(stream.tail(99)) == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventStream(capacity=0)


class TestJsonlFile:
    def test_appends_one_sorted_json_line_per_event(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stream = EventStream(path)
        stream.append("run_start", experiment="fig8")
        stream.append("job_finish", index=0, seconds=0.25)
        stream.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["kind"] for l in lines] == ["run_start", "job_finish"]
        assert lines[0]["experiment"] == "fig8"
        assert lines[1]["seq"] == 1

    def test_ring_drops_do_not_truncate_the_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stream = EventStream(path, capacity=2)
        for i in range(6):
            stream.append("progress", total=i)
        stream.close()
        assert len(path.read_text().splitlines()) == 6
        assert stream.dropped == 4

    def test_load_round_trips_and_skips_torn_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stream = EventStream(path)
        stream.append("run_start")
        stream.append("run_finish")
        stream.close()
        with open(path, "a") as handle:
            handle.write('{"kind": "job_st')  # torn by a crash mid-write
        events = EventStream.load(path)
        assert [e.kind for e in events] == ["run_start", "run_finish"]

    def test_load_missing_file_is_empty_stream(self, tmp_path):
        assert EventStream.load(tmp_path / "nope.jsonl") == []

    def test_unwritable_path_degrades_to_memory_only(self, tmp_path):
        # Journal durability contract: telemetry files never fail the run.
        stream = EventStream(tmp_path / "dir-not-file")
        (tmp_path / "dir-not-file").mkdir()
        stream.append("run_start")
        assert stream.path is None  # file writes disabled, loudly
        stream.append("progress")
        assert len(stream) == 2  # in-memory ring still collects

    def test_event_stream_path_lives_next_to_journal(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        path = event_stream_path("abc123")
        assert path == tmp_path / "events" / "abc123.jsonl"
