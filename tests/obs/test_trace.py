"""FlitTracer: deterministic sampling, ring bound, JSONL schema."""

import json

import pytest

from repro.obs import FlitTracer
from repro.obs.trace import STAGES


class TestSampling:
    def test_full_sampling_records_everything(self):
        t = FlitTracer(sample=1.0, capacity=100)
        for pid in range(50):
            t.record(1, pid, 0, 0, "inject", 0)
        assert t.recorded == 50

    def test_sampling_is_per_packet_and_deterministic(self):
        a = FlitTracer(sample=0.25, capacity=10_000)
        b = FlitTracer(sample=0.25, capacity=10_000)
        for pid in range(2000):
            a.record(1, pid, 0, 0, "inject", 0)
            b.record(1, pid, 0, 0, "inject", 0)
        assert 0 < a.recorded < 2000  # a real subset
        assert a.recorded == b.recorded
        assert [e["pid"] for e in a.events()] == [e["pid"] for e in b.events()]
        # wants() agrees with what record() kept.
        kept = {e["pid"] for e in a.events()}
        assert all(a.wants(pid) == (pid in kept) for pid in range(2000))

    def test_sampled_packet_traced_through_whole_lifetime(self):
        t = FlitTracer(sample=0.25, capacity=10_000)
        pid = next(p for p in range(1000) if t.wants(p))
        for i, stage in enumerate(STAGES):
            t.record(i, pid, 0, 0, stage, 0)
        assert [e["stage"] for e in t.packet_events(pid)] == list(STAGES)

    def test_invalid_sample_rates_rejected(self):
        with pytest.raises(ValueError):
            FlitTracer(sample=0.0)
        with pytest.raises(ValueError):
            FlitTracer(sample=1.5)
        with pytest.raises(ValueError):
            FlitTracer(capacity=0)


class TestRingBuffer:
    def test_oldest_events_drop_beyond_capacity(self):
        t = FlitTracer(sample=1.0, capacity=10)
        for cycle in range(25):
            t.record(cycle, 0, 0, 0, "sa", 0)
        assert len(t) == 10
        assert t.recorded == 25
        assert t.dropped == 15
        assert [e["cycle"] for e in t.events()] == list(range(15, 25))
        stats = t.stats()
        assert stats["trace_events_recorded"] == 25
        assert stats["trace_events_buffered"] == 10
        assert stats["trace_dropped_events"] == 15


class TestExport:
    def test_jsonl_schema_and_context(self, tmp_path):
        t = FlitTracer()
        t.record(7, 3, 1, 5, "arrive", 2, vin=1)
        path = t.write_jsonl(tmp_path / "t.jsonl", allocator="vix", seed=9)
        (line,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert line == {
            "allocator": "vix", "seed": 9,
            "cycle": 7, "pid": 3, "flit": 1, "router": 5,
            "stage": "arrive", "vc": 2, "vin": 1,
        }

    def test_jsonl_appends_across_runs(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for run in (1, 2):
            t = FlitTracer()
            t.record(0, run, 0, 0, "inject", 0)
            t.write_jsonl(path, run=run)
        assert len(path.read_text().splitlines()) == 2
