"""AllocatorProbe arithmetic and the allocator recording sites."""

import pytest

from repro.core.matching import maximum_matching_size
from repro.core.requests import RequestMatrix
from repro.core.separable import SeparableInputFirstAllocator
from repro.core.wavefront import WavefrontAllocator
from repro.core.augmenting import AugmentingPathAllocator
from repro.obs import AllocatorProbe, MetricsRegistry


class TestProbeArithmetic:
    def test_record_derives_blocks_and_kills(self):
        p = AllocatorProbe()
        p.record(requests=6, phase1_winners=4, grants=3, max_matching=4)
        assert p.sa_rounds == 1
        assert p.sa_input_port_blocks == 2  # 6 requests - 4 winners
        assert p.sa_phase2_kills == 1  # 4 winners - 3 grants
        assert p.matching_efficiency() == pytest.approx(3 / 4)
        assert p.kill_rate() == pytest.approx(1 / 4)

    def test_empty_probe_ratios_are_neutral(self):
        p = AllocatorProbe()
        assert p.matching_efficiency() == 1.0
        assert p.kill_rate() == 0.0

    def test_merge_adds_counters(self):
        a = AllocatorProbe()
        a.record(4, 3, 2, 3)
        b = AllocatorProbe()
        b.record(2, 2, 2, 2)
        a.merge(b)
        assert a.sa_rounds == 2
        assert a.sa_requests == 6
        assert a.sa_grants == 4
        # Snapshot form (the cross-process transport) merges identically.
        c = AllocatorProbe()
        c.merge(a.snapshot())
        assert c.snapshot() == a.snapshot()

    def test_publish_writes_counters_and_efficiency_gauge(self):
        p = AllocatorProbe()
        p.record(4, 3, 3, 3)
        reg = MetricsRegistry()
        p.publish(reg)
        data = reg.as_dict()
        assert data["sa_requests"] == 4
        assert data["sa_matching_efficiency"] == 1.0


class TestMaximumMatchingSize:
    def test_perfect_matching(self):
        assert maximum_matching_size([{0}, {1}, {2}], 3) == 3

    def test_contended_output_limits_matching(self):
        # All rows want output 0: only one can have it.
        assert maximum_matching_size([{0}, {0}, {0}], 3) == 1

    def test_augmenting_path_found(self):
        # Greedy would grant row0->0 then block row1; the maximum is 2.
        assert maximum_matching_size([{0, 1}, {0}], 2) == 2


def _matrix(num_ports, num_vcs, entries):
    m = RequestMatrix(num_ports, num_ports, num_vcs)
    for port, vc, out in entries:
        m.add(port, vc, out)
    return m


class TestAllocatorRecordingSites:
    def test_separable_contended_round(self):
        alloc = SeparableInputFirstAllocator(2, 2, 2, virtual_inputs=1)
        probe = AllocatorProbe()
        alloc.probe = probe
        # Port 0 VCs both want output 0 (input-port conflict); port 1 wants
        # output 0 too (output conflict).
        alloc.allocate(_matrix(2, 2, [(0, 0, 0), (0, 1, 0), (1, 0, 0)]))
        assert probe.sa_requests == 3
        assert probe.sa_phase1_winners == 2  # one per requesting port
        assert probe.sa_input_port_blocks == 1
        assert probe.sa_grants == 1  # single output can grant once
        assert probe.sa_phase2_kills == 1
        assert probe.sa_max_matching == 1

    def test_separable_lone_request_fast_path_records(self):
        alloc = SeparableInputFirstAllocator(2, 2, 2)
        probe = AllocatorProbe()
        alloc.probe = probe
        grants = alloc.allocate(_matrix(2, 2, [(0, 0, 1)]))
        assert len(grants) == 1
        assert probe.sa_rounds == 1
        assert probe.snapshot()["sa_requests"] == 1
        assert probe.sa_phase2_kills == 0

    def test_vix_virtual_inputs_expose_sibling_vcs(self):
        # k=2: the two VCs of port 0 sit on distinct crossbar inputs, so
        # both survive phase 1 — no input-port block, distinct outputs grant.
        alloc = SeparableInputFirstAllocator(2, 2, 2, virtual_inputs=2)
        probe = AllocatorProbe()
        alloc.probe = probe
        grants = alloc.allocate(_matrix(2, 2, [(0, 0, 0), (0, 1, 1)]))
        assert len(grants) == 2
        assert probe.sa_input_port_blocks == 0
        assert probe.sa_phase2_kills == 0
        assert probe.matching_efficiency() == 1.0

    def test_wavefront_records_port_level_matching(self):
        alloc = WavefrontAllocator(2, 2, 2)
        probe = AllocatorProbe()
        alloc.probe = probe
        alloc.allocate(_matrix(2, 2, [(0, 0, 0), (0, 1, 1), (1, 0, 1)]))
        assert probe.sa_requests == 3
        assert probe.sa_phase1_winners == 2  # two requesting ports
        assert probe.sa_grants == 2
        assert probe.sa_max_matching == 2

    def test_augmenting_path_achieves_its_own_maximum(self):
        alloc = AugmentingPathAllocator(2, 2, 2)
        probe = AllocatorProbe()
        alloc.probe = probe
        alloc.allocate(_matrix(2, 2, [(0, 0, 0), (1, 0, 0), (1, 1, 1)]))
        assert probe.sa_grants == probe.sa_max_matching == 2
        assert probe.matching_efficiency() == 1.0

    def test_no_probe_by_default(self):
        assert SeparableInputFirstAllocator(2, 2, 2).probe is None
        assert WavefrontAllocator(2, 2, 2).probe is None
        assert AugmentingPathAllocator(2, 2, 2).probe is None
