"""RunMonitor: aggregation, snapshot/registry views, worker queue, lifecycle."""

import io
import time

from repro.obs import EventStream, MetricsRegistry, RunMonitor, emit_worker_event
from repro.obs.monitor import JOB_SECONDS_BOUNDS


def feed(monitor, *events):
    for kind, data in events:
        monitor.emit(kind, **data)


def small_sweep(monitor):
    """A 3-job sweep: one cache hit, one retry-then-finish, one finish."""
    feed(
        monitor,
        ("run_start", {"experiment": "fig8"}),
        ("batch_start", {"jobs": 3}),
        ("cache_hit", {"index": 0, "key": "aaaa"}),
        ("job_start", {"index": 1, "attempt": 0, "pid": 101}),
        ("job_error", {"index": 1, "attempt": 1, "reason": "crash"}),
        ("job_retry", {"index": 1, "attempt": 1}),
        ("job_start", {"index": 1, "attempt": 1, "pid": 102}),
        ("job_finish", {"index": 1, "attempt": 1, "pid": 102,
                        "seconds": 0.2, "engine": "gated"}),
        ("job_start", {"index": 2, "attempt": 0, "pid": 101}),
        ("job_finish", {"index": 2, "attempt": 0, "pid": 101,
                        "seconds": 1.5, "engine": "vectorized"}),
    )


class TestAggregation:
    def test_counts_per_kind(self):
        monitor = RunMonitor()
        small_sweep(monitor)
        assert monitor.jobs_total == 3
        assert monitor.cache_hits == 1
        assert monitor.completed == 3  # cache hit + two finishes
        assert monitor.errors == 1
        assert monitor.retries == 1
        assert monitor.failures == 0
        assert monitor.engines == {"gated": 1, "vectorized": 1}
        assert monitor.workers == {101, 102}

    def test_in_flight_tracks_start_to_terminal_event(self):
        monitor = RunMonitor()
        monitor.emit("job_start", index=0, attempt=0, pid=1)
        monitor.emit("job_start", index=1, attempt=0, pid=2)
        assert set(monitor._in_flight) == {0, 1}
        monitor.emit("job_finish", index=0, attempt=0, pid=1, seconds=0.1)
        assert set(monitor._in_flight) == {1}
        monitor.emit("job_cancel", index=1, attempt=1)
        assert monitor._in_flight == {}
        assert monitor.cancellations == 1

    def test_interrupted_and_bisect(self):
        monitor = RunMonitor()
        monitor.emit("job_start", index=4, attempt=0, pid=9)
        monitor.emit("job_interrupted", index=4, attempt=0)
        monitor.emit("chunk_bisect", jobs=4, indices=[0, 1, 2, 3])
        assert monitor.interrupted == 1
        assert monitor.bisections == 1
        assert monitor._in_flight == {}

    def test_every_event_lands_in_the_stream_in_emit_order(self):
        stream = EventStream()
        monitor = RunMonitor(stream=stream)
        small_sweep(monitor)
        kinds = [e.kind for e in stream.events()]
        assert kinds[0] == "run_start"
        assert kinds.count("job_start") == 3
        assert [e.seq for e in stream.events()] == list(range(len(kinds)))


class TestSnapshot:
    def test_status_document_shape(self):
        monitor = RunMonitor(label="fig8_mesh", run_key="deadbeef")
        small_sweep(monitor)
        monitor.emit("job_start", index=5, attempt=0, pid=103)
        snap = monitor.snapshot()
        assert snap["label"] == "fig8_mesh"
        assert snap["run_key"] == "deadbeef"
        assert snap["jobs_total"] == 3
        assert snap["completed"] == 3
        assert snap["cache_hits"] == 1
        assert snap["retries"] == 1
        assert snap["in_flight_count"] == 1
        (job,) = snap["in_flight"]
        assert job["index"] == 5 and job["pid"] == 103
        assert snap["finished"] is False
        assert snap["engines"] == {"gated": 1, "vectorized": 1}
        assert snap["workers"] == [101, 102, 103]
        assert snap["recent_events"][-1]["kind"] == "job_start"

    def test_run_finish_freezes_elapsed(self):
        monitor = RunMonitor()
        monitor.emit("run_finish", experiment="fig8")
        snap = monitor.snapshot()
        assert snap["finished"] is True
        frozen = snap["elapsed_seconds"]
        time.sleep(0.02)
        assert monitor.snapshot()["elapsed_seconds"] == frozen


class TestRegistryView:
    def test_counters_and_histogram(self):
        monitor = RunMonitor()
        small_sweep(monitor)
        reg = monitor.registry()
        assert isinstance(reg, MetricsRegistry)
        data = reg.as_dict()
        assert data["repro_jobs_total"] == 3
        assert data["repro_jobs_completed"] == 3
        assert data["repro_cache_hits"] == 1
        assert data["repro_job_retries"] == 1
        assert data["repro_engine_jobs_gated"] == 1
        assert data["repro_engine_jobs_vectorized"] == 1
        hist = data["repro_job_seconds"]
        assert hist["kind"] == "histogram"
        assert hist["bounds"] == list(JOB_SECONDS_BOUNDS)
        assert hist["total"] == 2  # the two job_finish seconds samples
        assert hist["sum"] == 1.7

    def test_view_is_a_copy(self):
        monitor = RunMonitor()
        small_sweep(monitor)
        monitor.registry().counter("repro_cache_hits").inc(100)
        assert monitor.registry().as_dict()["repro_cache_hits"] == 1


class TestWorkerQueue:
    def test_worker_events_fold_into_dispatch(self):
        monitor = RunMonitor()
        queue = monitor.worker_queue()
        assert monitor.worker_queue() is queue  # created once
        emit_worker_event(queue, "job_start", index=0, attempt=0)
        emit_worker_event(queue, "job_finish", index=0, attempt=0,
                          seconds=0.1, engine="gated")
        monitor.flush()
        assert monitor.completed == 1
        assert monitor.engines == {"gated": 1}
        kinds = [e.kind for e in monitor.stream.events()]
        assert kinds == ["job_start", "job_finish"]
        # Worker payloads carry their pid automatically.
        assert monitor.stream.events()[0].data["pid"] > 0
        monitor.close()

    def test_flush_sequences_run_finish_after_backlog(self):
        monitor = RunMonitor()
        queue = monitor.worker_queue()
        for i in range(50):
            emit_worker_event(queue, "job_finish", index=i, seconds=0.0)
        monitor.flush()
        monitor.emit("run_finish")
        monitor.close()
        kinds = [e.kind for e in monitor.stream.events()]
        assert kinds[-1] == "run_finish"
        assert kinds.count("job_finish") == 50

    def test_close_drains_backlog_before_closing(self):
        monitor = RunMonitor()
        queue = monitor.worker_queue()
        for i in range(20):
            emit_worker_event(queue, "job_finish", index=i, seconds=0.0)
        monitor.close()
        assert monitor.completed == 20

    def test_emit_worker_event_without_queue_is_noop(self):
        emit_worker_event(None, "job_start", index=0)  # must not raise


class TestSubscribers:
    def test_subscribers_receive_live_events(self):
        monitor = RunMonitor()
        sub = monitor.subscribe()
        monitor.emit("progress", in_flight=2)
        event = sub.get(timeout=1)
        assert event.kind == "progress"
        monitor.unsubscribe(sub)
        monitor.emit("progress", in_flight=1)
        assert sub.empty()

    def test_close_wakes_subscribers_with_sentinel(self):
        monitor = RunMonitor()
        sub = monitor.subscribe()
        monitor.close()
        assert sub.get(timeout=1) is None


class TestLifecycle:
    def test_emit_after_close_is_dropped(self):
        monitor = RunMonitor()
        monitor.emit("run_start")
        monitor.close()
        monitor.emit("progress")
        monitor.tick()
        assert [e.kind for e in monitor.stream.events()] == ["run_start"]

    def test_close_is_idempotent(self):
        monitor = RunMonitor()
        monitor.worker_queue()
        monitor.close()
        monitor.close()

    def test_tick_rate_limits_progress_events(self):
        monitor = RunMonitor()
        for _ in range(10):
            monitor.tick()
        progress = [e for e in monitor.stream.events() if e.kind == "progress"]
        assert len(progress) == 1  # one per _PROGRESS_INTERVAL window

    def test_live_render_writes_progress_line(self):
        out = io.StringIO()
        monitor = RunMonitor(live=True, label="fig8", out=out)
        small_sweep(monitor)
        monitor.close()
        text = out.getvalue()
        assert "[monitor] fig8" in text
        assert "3/3 jobs" in text
        assert text.endswith("\n")  # close() finishes the live line
