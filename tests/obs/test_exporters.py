"""Exporters: Prometheus exposition text and Chrome trace-event layout."""

import json

from repro.obs import MetricsRegistry, RunEvent, chrome_trace_events, export_chrome_trace
from repro.obs.exporters import prometheus_text


class TestPrometheusText:
    def test_counters_and_gauges_with_type_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total").inc(6)
        reg.gauge("repro_jobs_in_flight").set(2.0)
        text = prometheus_text(reg)
        assert "# TYPE repro_jobs_total counter\nrepro_jobs_total 6\n" in text
        assert "# TYPE repro_jobs_in_flight gauge\nrepro_jobs_in_flight 2\n" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_job_seconds", (0.1, 1.0))
        for v in (0.05, 0.05, 0.5, 99.0):
            h.observe(v)
        text = prometheus_text(reg)
        assert '# TYPE repro_job_seconds histogram' in text
        assert 'repro_job_seconds_bucket{le="0.1"} 2' in text
        # Cumulative: the 1.0 bucket includes the 0.1 bucket's samples.
        assert 'repro_job_seconds_bucket{le="1"} 3' in text
        # +Inf is the mandatory total (overflow included).
        assert 'repro_job_seconds_bucket{le="+Inf"} 4' in text
        assert 'repro_job_seconds_count 4' in text
        assert 'repro_job_seconds_sum 99.6' in text

    def test_invalid_name_characters_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("jobs.by-engine/gated").inc(1)
        text = prometheus_text(reg)
        assert "jobs_by_engine_gated 1" in text

    def test_format_is_line_parseable(self):
        # Every non-comment line is exactly "<name or name{labels}> <value>".
        reg = MetricsRegistry()
        reg.counter("c").inc(1)
        reg.gauge("g").set(0.5)
        reg.histogram("h", (1.0,)).observe(0.5)
        for line in prometheus_text(reg).splitlines():
            if not line or line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value)  # parseable sample value


def make_events(*specs):
    return [RunEvent(seq=i, t=t, kind=kind, data=data)
            for i, (t, kind, data) in enumerate(specs)]


class TestChromeTrace:
    def test_paired_start_finish_becomes_complete_slice(self):
        events = make_events(
            (100.0, "job_start", {"index": 0, "attempt": 0, "pid": 42}),
            (100.5, "job_finish", {"index": 0, "attempt": 0, "pid": 42,
                                   "seconds": 0.5, "engine": "gated"}),
        )
        (slice_,) = [e for e in chrome_trace_events(events) if e["ph"] == "X"]
        assert slice_["name"] == "job 0"
        assert slice_["pid"] == 42
        assert slice_["ts"] == 0  # relative to earliest event
        assert slice_["dur"] == 500_000  # microseconds
        assert slice_["args"]["engine"] == "gated"
        assert slice_["args"]["seconds"] == 0.5

    def test_starts_pair_per_attempt(self):
        # Attempt 0 died (no finish); attempt 1 completed. Only the
        # completed attempt becomes a slice, paired with its own start.
        events = make_events(
            (10.0, "job_start", {"index": 3, "attempt": 0, "pid": 1}),
            (11.0, "job_start", {"index": 3, "attempt": 1, "pid": 2}),
            (11.25, "job_finish", {"index": 3, "attempt": 1, "pid": 2,
                                   "seconds": 0.25}),
        )
        slices = [e for e in chrome_trace_events(events) if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["ts"] == 1_000_000
        assert slices[0]["args"]["attempt"] == 1

    def test_lost_start_reconstructed_from_seconds(self):
        events = make_events(
            (50.0, "job_finish", {"index": 0, "attempt": 0, "pid": 7,
                                  "seconds": 2.0}),
        )
        (slice_,) = [e for e in chrome_trace_events(events) if e["ph"] == "X"]
        assert slice_["dur"] == 2_000_000

    def test_phase_spans_become_nested_slices(self):
        events = make_events(
            (0.0, "job_start", {"index": 0, "attempt": 0, "pid": 5}),
            (1.0, "job_finish", {"index": 0, "attempt": 0, "pid": 5,
                                 "seconds": 1.0,
                                 "spans": {"measure": 0.6, "warmup": 0.3}}),
        )
        trace = chrome_trace_events(events)
        phases = [e for e in trace if e.get("cat") == "phase"]
        assert [p["name"] for p in phases] == ["warmup", "measure"]
        assert all(p["tid"] == 1 and p["pid"] == 5 for p in phases)
        # Laid out cursor-sequentially from the job start.
        assert phases[0]["ts"] == 0
        assert phases[1]["ts"] == 300_000

    def test_progress_becomes_counter_track(self):
        events = make_events(
            (0.0, "progress", {"in_flight": 3, "completed": 1, "total": 6}),
        )
        (counter,) = chrome_trace_events(events)[:1]
        assert counter["ph"] == "C"
        assert counter["name"] == "in_flight"
        assert counter["args"] == {"in_flight": 3}

    def test_run_markers_are_instant_events(self):
        events = make_events(
            (0.0, "run_start", {"experiment": "fig8"}),
            (5.0, "job_cancel", {"index": 2, "attempt": 1}),
            (9.0, "run_finish", {"experiment": "fig8"}),
        )
        instants = [e for e in chrome_trace_events(events) if e["ph"] == "i"]
        assert [i["name"] for i in instants] == ["run_start", "job_cancel", "run_finish"]

    def test_worker_process_metadata(self):
        events = make_events(
            (0.0, "job_start", {"index": 0, "attempt": 0, "pid": 11}),
            (1.0, "job_finish", {"index": 0, "attempt": 0, "pid": 11,
                                 "seconds": 1.0}),
        )
        meta = [e for e in chrome_trace_events(events) if e["ph"] == "M"]
        names = {e["pid"]: e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
        assert names == {0: "coordinator", 11: "worker-11"}

    def test_empty_stream_is_empty_trace(self):
        assert chrome_trace_events([]) == []

    def test_export_writes_loadable_document(self, tmp_path):
        events = make_events(
            (0.0, "job_start", {"index": 0, "attempt": 0, "pid": 1}),
            (0.5, "job_finish", {"index": 0, "attempt": 0, "pid": 1,
                                 "seconds": 0.5}),
        )
        path = export_chrome_trace(events, tmp_path / "trace.json",
                                   experiment="fig8")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"experiment": "fig8"}
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
