"""Unit tests for the 2D mesh topology."""

import pytest

from repro.topology.mesh import (
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
    MeshTopology,
)


@pytest.fixture
def mesh():
    return MeshTopology(8, 8)


class TestStructure:
    def test_sizes(self, mesh):
        assert mesh.num_routers == 64
        assert mesh.num_terminals == 64
        assert mesh.radix == 5
        assert mesh.concentration == 1

    def test_coords_roundtrip(self, mesh):
        for r in range(64):
            x, y = mesh.coords(r)
            assert mesh.router_at(x, y) == r

    def test_neighbor_symmetry(self, mesh):
        """If A reaches B via port p, B reaches A via the opposite port."""
        for r in range(64):
            for p in range(1, 5):
                nb = mesh.neighbor(r, p)
                if nb is None:
                    continue
                other, in_port = nb
                back = mesh.neighbor(other, in_port)
                assert back == (r, p)

    def test_corner_has_two_neighbors(self, mesh):
        links = [p for p in range(1, 5) if mesh.neighbor(0, p) is not None]
        assert len(links) == 2

    def test_center_has_four_neighbors(self, mesh):
        center = mesh.router_at(4, 4)
        links = [p for p in range(1, 5) if mesh.neighbor(center, p) is not None]
        assert len(links) == 4

    def test_local_port_has_no_neighbor(self, mesh):
        assert mesh.neighbor(10, PORT_LOCAL) is None

    def test_link_count(self, mesh):
        # 8x8 mesh: 2 * (7*8 + 7*8) directed links.
        assert len(mesh.links()) == 2 * 2 * 7 * 8

    def test_terminal_attachment(self, mesh):
        assert mesh.router_of(13) == (13, PORT_LOCAL)
        assert mesh.terminal_of(13, PORT_LOCAL) == 13


class TestRouting:
    def test_local_delivery(self, mesh):
        assert mesh.route(5, 5) == PORT_LOCAL

    def test_x_first(self, mesh):
        # From (0,0) to (3,3): go east until x resolves.
        assert mesh.route(0, mesh.router_at(3, 3)) == PORT_EAST
        # From (3,0) to (3,3): x resolved, go south.
        assert mesh.route(mesh.router_at(3, 0), mesh.router_at(3, 3)) == PORT_SOUTH

    def test_all_directions(self, mesh):
        center = mesh.router_at(4, 4)
        assert mesh.route(center, mesh.router_at(6, 4)) == PORT_EAST
        assert mesh.route(center, mesh.router_at(2, 4)) == PORT_WEST
        assert mesh.route(center, mesh.router_at(4, 2)) == PORT_NORTH
        assert mesh.route(center, mesh.router_at(4, 6)) == PORT_SOUTH

    def test_every_pair_reaches_destination(self, mesh):
        for src in range(0, 64, 7):
            for dst in range(64):
                path = mesh.path(src, dst)
                assert path[-1] == dst
                assert len(path) - 1 == mesh.min_hops(src, dst)

    def test_dor_is_minimal_and_x_before_y(self, mesh):
        path = mesh.path(0, mesh.router_at(5, 3))
        xs = [mesh.coords(r)[0] for r in path]
        ys = [mesh.coords(r)[1] for r in path]
        # X changes first, then stays; Y only changes after X settles.
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        first_y_move = next(i for i in range(1, len(ys)) if ys[i] != ys[i - 1])
        assert xs[first_y_move - 1] == 5


class TestDirectionClasses:
    def test_classes(self, mesh):
        assert mesh.port_direction_class(PORT_LOCAL) is None
        assert mesh.port_direction_class(PORT_EAST) == 0
        assert mesh.port_direction_class(PORT_WEST) == 0
        assert mesh.port_direction_class(PORT_NORTH) == 1
        assert mesh.port_direction_class(PORT_SOUTH) == 1

    def test_lookahead_matches_next_hop(self, mesh):
        # Packet at router 0 heading to (3,2): next hop router (1,0),
        # where it keeps going east -> direction class 0.
        dst = mesh.router_at(3, 2)
        assert mesh.lookahead_direction(0, PORT_EAST, dst) == 0
        # At (3,0) heading south to (3,2): downstream (3,1) continues
        # south -> class 1.
        r = mesh.router_at(3, 0)
        assert mesh.lookahead_direction(r, PORT_SOUTH, dst) == 1
        # At (3,1) the downstream router is the destination -> None.
        r = mesh.router_at(3, 1)
        assert mesh.lookahead_direction(r, PORT_SOUTH, dst) is None


class TestValidation:
    def test_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            MeshTopology(1, 8)

    def test_bad_router_id(self, mesh):
        with pytest.raises(ValueError):
            mesh.coords(64)

    def test_bad_port(self, mesh):
        with pytest.raises(ValueError):
            mesh.neighbor(0, 9)
