"""Unit tests for the flattened-butterfly topology."""

import pytest

from repro.topology.flattened_butterfly import FlattenedButterflyTopology


@pytest.fixture
def fbfly():
    return FlattenedButterflyTopology(4, 4, concentration=4)


class TestStructure:
    def test_paper_configuration(self, fbfly):
        assert fbfly.num_routers == 16
        assert fbfly.num_terminals == 64
        assert fbfly.radix == 10  # 4 local + 3 row + 3 column

    def test_row_fully_connected(self, fbfly):
        # Router (0,0) reaches every other column in its row directly.
        reached = set()
        for p in range(4, 7):
            nb = fbfly.neighbor(0, p)
            assert nb is not None
            reached.add(fbfly.coords(nb[0]))
        assert reached == {(1, 0), (2, 0), (3, 0)}

    def test_column_fully_connected(self, fbfly):
        reached = set()
        for p in range(7, 10):
            nb = fbfly.neighbor(0, p)
            assert nb is not None
            reached.add(fbfly.coords(nb[0]))
        assert reached == {(0, 1), (0, 2), (0, 3)}

    def test_neighbor_symmetry(self, fbfly):
        for r in range(16):
            for p in range(4, 10):
                other, in_port = fbfly.neighbor(r, p)
                assert fbfly.neighbor(other, in_port) == (r, p)

    def test_no_dead_ports(self, fbfly):
        """Unlike a mesh, every non-local port is wired (fully connected)."""
        for r in range(16):
            for p in range(4, 10):
                assert fbfly.neighbor(r, p) is not None

    def test_link_count(self, fbfly):
        # Per row: 4 routers * 3 row ports = 12 directed; 4 rows -> 48.
        # Same for columns -> 96 total.
        assert len(fbfly.links()) == 96

    def test_row_port_lookup(self, fbfly):
        r = fbfly.router_at(2, 0)
        assert fbfly.row_port(r, 0) == 4
        assert fbfly.row_port(r, 1) == 5
        assert fbfly.row_port(r, 3) == 6
        with pytest.raises(ValueError):
            fbfly.row_port(r, 2)  # own column


class TestRouting:
    def test_at_most_two_hops(self, fbfly):
        for src in range(0, 64, 3):
            for dst in range(64):
                assert fbfly.min_hops(src, dst) <= 2
                path = fbfly.path(src, dst)
                assert len(path) - 1 == fbfly.min_hops(src, dst)
                assert path[-1] == fbfly.router_of(dst)[0]

    def test_x_dimension_first(self, fbfly):
        # (0,0) -> terminal at (3,2): first hop must go to column 3.
        dst_router = fbfly.router_at(3, 2)
        dst = fbfly.terminal_of(dst_router, 0)
        port = fbfly.route(0, dst)
        nb = fbfly.neighbor(0, port)
        assert fbfly.coords(nb[0]) == (3, 0)

    def test_direct_express_hop(self, fbfly):
        # Same row: exactly one hop regardless of column distance.
        src = fbfly.terminal_of(fbfly.router_at(0, 1), 0)
        dst = fbfly.terminal_of(fbfly.router_at(3, 1), 0)
        assert fbfly.min_hops(src, dst) == 1

    def test_direction_classes(self, fbfly):
        assert fbfly.port_direction_class(0) is None
        for p in range(4, 7):
            assert fbfly.port_direction_class(p) == 0
        for p in range(7, 10):
            assert fbfly.port_direction_class(p) == 1

    def test_local_delivery(self, fbfly):
        assert fbfly.route(0, 1) == 1

    def test_bad_port(self, fbfly):
        with pytest.raises(ValueError):
            fbfly.neighbor(0, 10)
