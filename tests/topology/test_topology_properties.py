"""Property tests and factory tests spanning all topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    CMeshTopology,
    FlattenedButterflyTopology,
    MeshTopology,
    TorusTopology,
    make_topology,
)

TOPOLOGIES = {
    "mesh": MeshTopology(8, 8),
    "cmesh": CMeshTopology(4, 4, 4),
    "fbfly": FlattenedButterflyTopology(4, 4, 4),
    "torus": TorusTopology(4, 4),
}


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_property_routes_terminate_minimally(name, data):
    topo = TOPOLOGIES[name]
    src = data.draw(st.integers(0, topo.num_terminals - 1))
    dst = data.draw(st.integers(0, topo.num_terminals - 1))
    path = topo.path(src, dst)
    assert path[0] == topo.router_of(src)[0]
    assert path[-1] == topo.router_of(dst)[0]
    assert len(path) - 1 == topo.min_hops(src, dst)
    assert len(set(path)) == len(path)  # no router revisited (loop-free)


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_links_are_consistent_with_neighbor(name):
    topo = TOPOLOGIES[name]
    for spec in topo.links():
        assert topo.neighbor(spec.src_router, spec.src_port) == (
            spec.dst_router,
            spec.dst_port,
        )


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_every_input_port_has_unique_upstream(name):
    """No two output ports feed the same input port."""
    topo = TOPOLOGIES[name]
    seen = set()
    for spec in topo.links():
        key = (spec.dst_router, spec.dst_port)
        assert key not in seen, f"input port {key} fed twice"
        seen.add(key)


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_terminals_partition_local_ports(name):
    topo = TOPOLOGIES[name]
    seen = set()
    for t in range(topo.num_terminals):
        r, lp = topo.router_of(t)
        assert topo.is_local_port(lp)
        assert (r, lp) not in seen
        seen.add((r, lp))
    assert len(seen) == topo.num_terminals


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_property_lookahead_consistent_with_path(name, data):
    """lookahead_direction must describe the hop actually taken downstream."""
    topo = TOPOLOGIES[name]
    src = data.draw(st.integers(0, topo.num_terminals - 1))
    dst = data.draw(st.integers(0, topo.num_terminals - 1))
    router = topo.router_of(src)[0]
    port = topo.route(router, dst)
    if topo.is_local_port(port):
        return
    direction = topo.lookahead_direction(router, port, dst)
    downstream = topo.neighbor(router, port)[0]
    next_port = topo.route(downstream, dst)
    assert direction == topo.port_direction_class(next_port)


class TestDORDeadlockFreedom:
    """DOR is deadlock-free iff no Y->X port dependency ever occurs."""

    @pytest.mark.parametrize("name", ["mesh", "cmesh"])
    def test_no_y_to_x_turns(self, name):
        topo = TOPOLOGIES[name]
        for src in range(topo.num_terminals):
            for dst in range(0, topo.num_terminals, 7):
                path = topo.path(src, dst)
                classes = []
                for i, router in enumerate(path[:-1]):
                    port = topo.route(router, dst)
                    classes.append(topo.port_direction_class(port))
                # Once a Y-class hop happens, no X-class hop may follow.
                seen_y = False
                for c in classes:
                    if c == 1:
                        seen_y = True
                    elif c == 0:
                        assert not seen_y, f"Y->X turn on {src}->{dst}"


class TestFactory:
    def test_make_all(self):
        assert make_topology("mesh", 64).num_routers == 64
        assert make_topology("cmesh", 64).num_routers == 16
        assert make_topology("fbfly", 64).num_routers == 16

    def test_scales_to_other_sizes(self):
        assert make_topology("mesh", 16).num_routers == 16
        assert make_topology("cmesh", 16).num_routers == 4

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            make_topology("mesh", 48)
        with pytest.raises(ValueError):
            make_topology("cmesh", 60)

    def test_torus_supported(self):
        topo = make_topology("torus", 64)
        assert topo.name == "torus"
        assert topo.num_routers == 64

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("hypercube", 64)
