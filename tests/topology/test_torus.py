"""Unit + integration tests for the torus topology with dateline VCs."""

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.flit import Packet
from repro.network.network import Network
from repro.topology.torus import (
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
    TorusTopology,
    _ring_crossed_wrap,
    _ring_direction,
)


@pytest.fixture
def torus():
    return TorusTopology(4, 4)


class TestRingHelpers:
    def test_direction_minimal(self):
        assert _ring_direction(0, 1, 8) == 1
        assert _ring_direction(0, 7, 8) == -1
        assert _ring_direction(7, 0, 8) == 1  # wrap forward is shorter

    def test_direction_tie_goes_positive(self):
        assert _ring_direction(0, 4, 8) == 1

    def test_crossed_wrap_forward(self):
        # 6 -> 1 travelling east crosses 7 -> 0.
        assert not _ring_crossed_wrap(6, 7, 1, 8)
        assert _ring_crossed_wrap(6, 0, 1, 8)
        assert _ring_crossed_wrap(6, 1, 1, 8)

    def test_crossed_wrap_backward(self):
        # 1 -> 6 travelling west crosses 0 -> 7.
        assert not _ring_crossed_wrap(1, 0, 6, 8)
        assert _ring_crossed_wrap(1, 7, 6, 8)

    def test_no_wrap_on_direct_path(self):
        assert not _ring_crossed_wrap(1, 3, 4, 8)


class TestStructure:
    def test_every_port_wired(self, torus):
        """Unlike a mesh, a torus has no dead edge ports."""
        for r in range(16):
            for p in range(1, 5):
                assert torus.neighbor(r, p) is not None

    def test_wraparound_links(self, torus):
        # East of the last column wraps to column 0.
        east = torus.neighbor(torus.router_at(3, 0), PORT_EAST)
        assert east == (torus.router_at(0, 0), PORT_WEST)
        north = torus.neighbor(torus.router_at(0, 0), PORT_NORTH)
        assert north == (torus.router_at(0, 3), PORT_SOUTH)

    def test_neighbor_symmetry(self, torus):
        for r in range(16):
            for p in range(1, 5):
                other, in_port = torus.neighbor(r, p)
                assert torus.neighbor(other, in_port) == (r, p)

    def test_link_count(self, torus):
        # Every router drives 4 links: 16 * 4 directed links.
        assert len(torus.links()) == 64

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            TorusTopology(2, 4)


class TestRouting:
    def test_takes_wrap_shortcut(self, torus):
        # (0,0) -> (3,0): one hop west around the wrap, not 3 east.
        dst = torus.router_at(3, 0)
        assert torus.route(0, dst) == PORT_WEST
        assert torus.min_hops(0, dst) == 1

    def test_all_pairs_minimal(self, torus):
        for src in range(16):
            for dst in range(16):
                path = torus.path(src, dst)
                assert path[-1] == dst
                assert len(path) - 1 == torus.min_hops(src, dst)

    def test_max_hops_half_ring_each_dimension(self, torus):
        assert max(
            torus.min_hops(s, d) for s in range(16) for d in range(16)
        ) == 4  # 2 + 2 on a 4x4 torus

    def test_direction_classes(self, torus):
        assert torus.port_direction_class(PORT_LOCAL) is None
        assert torus.port_direction_class(PORT_EAST) == 0
        assert torus.port_direction_class(PORT_SOUTH) == 1


class TestDatelineClasses:
    def test_class_zero_before_wrap(self, torus):
        # 1 -> 3 on the x ring (east, wraps? (3-1)%4=2 <= 2 -> east, no wrap).
        assert torus.vc_class_at(2, 1, 3, via_dim=0) == 0

    def test_class_one_after_wrap(self, torus):
        # (3,0) -> (1,0): east with wrap through x=0.
        src = torus.router_at(3, 0)
        dst = torus.router_at(1, 0)
        assert torus.vc_class_at(torus.router_at(0, 0), src, dst, via_dim=0) == 1
        assert torus.vc_class_at(dst, src, dst, via_dim=0) == 1

    def test_turn_router_keeps_incoming_ring_class(self, torus):
        """(3,0) -> (1,1): the packet reaches the turn router (1,0) over
        the X ring having crossed the X wrap, so its buffer there is an
        X-ring class-1 VC — even though its next hop is in Y.  (Classifying
        by the next hop instead re-opens the X-ring cycle: the 64-node
        deadlock regression below.)"""
        src = torus.router_at(3, 0)
        dst = torus.router_at(1, 1)
        mid = torus.router_at(1, 0)  # X resolved, Y pending
        assert torus.vc_class_at(mid, src, dst, via_dim=0) == 1
        # The Y hop out of the turn router allocates a fresh class-0 VC.
        assert torus.vc_class_at(dst, src, dst, via_dim=1) == 0

    def test_via_dim_validation(self, torus):
        with pytest.raises(ValueError):
            torus.vc_class_at(0, 0, 1, via_dim=2)

    def test_allowed_vcs_partition(self, torus):
        allowed0 = torus.allowed_vcs(1, PORT_EAST, 1, 3, 6)
        assert allowed0 == [0, 2, 4]
        src = torus.router_at(3, 0)
        dst = torus.router_at(1, 0)
        allowed1 = torus.allowed_vcs(src, PORT_EAST, src, dst, 6)
        assert allowed1 == [1, 3, 5]

    def test_ejection_unrestricted(self, torus):
        assert torus.allowed_vcs(3, PORT_LOCAL, 0, 3, 6) is None

    def test_needs_two_vcs(self, torus):
        with pytest.raises(ValueError):
            torus.allowed_vcs(0, PORT_EAST, 0, 1, 1)


class TestTorusNetworkIntegration:
    def _network(self, allocator="input_first", num_vcs=4):
        cfg = NetworkConfig(
            topology="torus",
            num_terminals=16,
            router=RouterConfig(allocator=allocator, num_vcs=num_vcs),
            packet_length=4,
        )
        return Network(cfg)

    @pytest.mark.parametrize("allocator", ["input_first", "vix"])
    def test_heavy_traffic_drains_no_deadlock(self, allocator):
        """Wrap-crossing traffic under load must drain: the dateline VC
        classes break the ring cycles."""
        net = self._network(allocator)
        delivered = []

        class Obs:
            def on_flit_ejected(self, terminal, cycle):
                pass

            def on_packet_ejected(self, packet, cycle):
                delivered.append(packet.pid)

        net.stats = Obs()
        # Tornado-style pattern: every node sends halfway around its row —
        # the worst case for ring deadlock.
        packets = []
        pid = 0
        for round_ in range(5):
            for src in range(16):
                x, y = src % 4, src // 4
                dst = y * 4 + (x + 2) % 4
                packets.append(Packet(pid, src, dst, 4, 0))
                pid += 1
        for p in packets:
            assert net.inject(p)
        for _ in range(5000):
            net.step()
            if net.idle():
                break
        assert net.idle(), "torus deadlocked or stalled"
        assert len(delivered) == len(packets)

    def test_64_node_saturation_makes_progress(self):
        """Deadlock regression: the 8x8 torus under saturated uniform
        traffic must keep delivering (the next-hop-class bug froze it
        solid within a few hundred cycles)."""
        from repro.network.config import paper_config
        from repro.traffic.injector import TrafficInjector
        from repro.traffic.patterns import UniformRandom

        net = Network(paper_config("if", topology="torus"))
        inj = TrafficInjector(net, UniformRandom(64), 1.0, seed=1)
        for _ in range(400):
            inj.tick(net.cycle)
            net.step()
        mid = net.counters.packets_ejected
        for _ in range(400):
            inj.tick(net.cycle)
            net.step()
        assert net.counters.packets_ejected > mid * 1.5  # still flowing

    def test_packets_occupy_correct_class_vcs(self):
        """A wrap-crossing packet must sit in odd (class-1) VCs downstream
        of the dateline."""
        net = self._network(num_vcs=4)
        topo = net.topology
        src = topo.router_at(3, 0)
        dst = topo.router_at(1, 0)
        net.inject(Packet(0, src, dst, 4, 0))
        # Observe the VC-allocation decision at the dateline router (3,0):
        # the downstream VC it assigns (an input VC of router (0,0), past
        # the wrap) must belong to class 1 (odd indices).
        from repro.network.buffer import VCState

        assigned = set()
        src_router = net.routers[src]
        for _ in range(20):
            net.step()
            for port_vcs in src_router.inputs:
                for ivc in port_vcs:
                    if ivc.state is VCState.ACTIVE and ivc.out_port == PORT_EAST:
                        assigned.add(ivc.out_vc)
        assert assigned, "packet never held the dateline-crossing output"
        assert all(vc % 2 == 1 for vc in assigned)
