"""Partition plans: grid cuts, degenerate 1x1, and boundary-port algebra.

The ``grid`` partitioner (ISSUE 9 tentpole) slices a router grid into
``px x py`` rectangular chiplet domains.  These tests pin the pure-data
contract everything downstream consumes: a total router->domain
assignment, terminals following their routers, cut links exactly the
inter-domain topology links, and boundary ports in one-to-one
correspondence with cut-link endpoints.
"""

from __future__ import annotations

import pytest

from repro.registry import partitioners, topologies
from repro.topology import make_topology
from repro.topology.partition import PartitionPlan, grid_partition, make_partition


def _mesh64():
    return make_topology("mesh", 64)


class TestGridPartition:
    def test_2x2_mesh_assignment(self):
        topo = _mesh64()
        plan = grid_partition(topo, (2, 2))
        assert plan.num_domains == 4
        assert plan.dims == (2, 2)
        # Every domain owns a 4x4 quadrant of the 8x8 router grid.
        assert all(len(routers) == 16 for routers in plan.domain_routers)
        # The assignment is total and consistent with the per-domain sets.
        assert len(plan.router_domain) == topo.num_routers
        for dom, routers in enumerate(plan.domain_routers):
            for rid in routers:
                assert plan.router_domain[rid] == dom
        # Router 0 is in the top-left quadrant, router 63 bottom-right.
        assert plan.router_domain[0] == 0
        assert plan.router_domain[63] == 3

    def test_terminals_follow_their_router(self):
        topo = _mesh64()
        plan = grid_partition(topo, (2, 2))
        for dom, terminals in enumerate(plan.domain_terminals):
            for t in terminals:
                assert plan.router_domain[topo.router_of(t)[0]] == dom
        total = sum(len(t) for t in plan.domain_terminals)
        assert total == topo.num_terminals

    def test_cut_links_are_exactly_the_boundary(self):
        topo = _mesh64()
        plan = grid_partition(topo, (2, 2))
        expected = [
            spec
            for spec in topo.links()
            if plan.router_domain[spec.src_router] != plan.router_domain[spec.dst_router]
        ]
        assert list(plan.cut_links) == expected
        # 8x8 mesh cut into quadrants: one vertical and one horizontal
        # seam, 8 bidirectional channel pairs each -> 32 directed links.
        assert len(plan.cut_links) == 32

    def test_boundary_ports_match_cut_endpoints(self):
        topo = _mesh64()
        plan = grid_partition(topo, (2, 2))
        egress_total = 0
        ingress_total = 0
        for dom in range(plan.num_domains):
            ports = plan.boundary_ports(dom)
            egress_total += len(ports["egress"])
            ingress_total += len(ports["ingress"])
            for rid, _port in ports["egress"]:
                assert plan.router_domain[rid] == dom
            for rid, _port in ports["ingress"]:
                assert plan.router_domain[rid] == dom
        assert egress_total == len(plan.cut_links)
        assert ingress_total == len(plan.cut_links)

    def test_asymmetric_grid(self):
        topo = _mesh64()
        plan = grid_partition(topo, (4, 1))
        assert plan.num_domains == 4
        # Four 2x8 column slabs: three vertical seams x 8 rows x 2 dirs.
        assert all(len(r) == 16 for r in plan.domain_routers)
        assert len(plan.cut_links) == 48


class TestDegenerate1x1:
    @pytest.mark.parametrize("name", [i.name for i in topologies.infos()])
    def test_1x1_owns_everything_no_cuts(self, name):
        topo = make_topology(name, 64)
        plan = grid_partition(topo, (1, 1))
        assert plan.num_domains == 1
        assert plan.domain_routers[0] == tuple(range(topo.num_routers))
        assert plan.domain_terminals[0] == tuple(range(topo.num_terminals))
        assert plan.cut_links == ()
        assert plan.boundary_ports(0) == {"egress": (), "ingress": ()}


class TestErrors:
    def test_non_dividing_grid_rejected(self):
        with pytest.raises(ValueError, match="does not divide"):
            grid_partition(_mesh64(), (3, 2))

    def test_degenerate_dims_rejected(self):
        with pytest.raises(ValueError, match=">= 1x1"):
            grid_partition(_mesh64(), (0, 1))


class TestRegistry:
    def test_registered_scheme_and_alias(self):
        assert partitioners.canonical("grid") == "grid"
        assert partitioners.canonical("chiplet_grid") == "grid"

    def test_make_partition_dispatches(self):
        plan = make_partition("chiplet_grid", _mesh64(), (2, 2))
        assert isinstance(plan, PartitionPlan)
        assert plan.num_domains == 4
