"""Unit tests for the concentrated mesh topology."""

import pytest

from repro.topology.cmesh import CMeshTopology


@pytest.fixture
def cmesh():
    return CMeshTopology(4, 4, concentration=4)


class TestStructure:
    def test_paper_configuration(self, cmesh):
        assert cmesh.num_routers == 16
        assert cmesh.num_terminals == 64
        assert cmesh.radix == 8  # 4 locals + E/W/N/S
        assert cmesh.concentration == 4

    def test_local_ports(self, cmesh):
        for p in range(4):
            assert cmesh.is_local_port(p)
            assert cmesh.neighbor(0, p) is None
        for p in range(4, 8):
            assert not cmesh.is_local_port(p)

    def test_terminal_mapping(self, cmesh):
        assert cmesh.router_of(0) == (0, 0)
        assert cmesh.router_of(5) == (1, 1)
        assert cmesh.router_of(63) == (15, 3)
        for t in range(64):
            r, lp = cmesh.router_of(t)
            assert cmesh.terminal_of(r, lp) == t

    def test_neighbor_symmetry(self, cmesh):
        for r in range(16):
            for p in range(4, 8):
                nb = cmesh.neighbor(r, p)
                if nb is None:
                    continue
                other, in_port = nb
                assert cmesh.neighbor(other, in_port) == (r, p)

    def test_link_count(self, cmesh):
        # 4x4 mesh of routers: 2 * 2 * 3 * 4 directed links.
        assert len(cmesh.links()) == 48


class TestRouting:
    def test_same_router_delivery(self, cmesh):
        # Terminals 0..3 share router 0.
        assert cmesh.route(0, 2) == 2  # local port 2

    def test_x_then_y(self, cmesh):
        # Router 0 (0,0) to terminal on router (2,1) = router 6.
        dst = cmesh.terminal_of(6, 0)
        assert cmesh.route(0, dst) == 4  # East
        # Router 2 at (2,0): x resolved, go south (port 7).
        assert cmesh.route(2, dst) == 7

    def test_every_pair_reaches_destination(self, cmesh):
        for src in range(0, 64, 5):
            for dst in range(64):
                path = cmesh.path(src, dst)
                r_dst, _ = cmesh.router_of(dst)
                assert path[-1] == r_dst
                assert len(path) - 1 == cmesh.min_hops(src, dst)

    def test_min_hops_same_router_is_zero(self, cmesh):
        assert cmesh.min_hops(0, 3) == 0

    def test_direction_classes(self, cmesh):
        assert cmesh.port_direction_class(0) is None
        assert cmesh.port_direction_class(4) == 0  # E
        assert cmesh.port_direction_class(5) == 0  # W
        assert cmesh.port_direction_class(6) == 1  # N
        assert cmesh.port_direction_class(7) == 1  # S

    def test_bad_port(self, cmesh):
        with pytest.raises(ValueError):
            cmesh.neighbor(0, 8)
