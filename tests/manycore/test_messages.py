"""Unit tests for manycore protocol messages."""

import pytest

from repro.manycore.messages import (
    CONTROL_FLITS,
    DATA_FLITS,
    Message,
    MessageKind,
)


class TestMessageSizes:
    def test_requests_are_single_flit(self):
        for kind in (MessageKind.L2_REQUEST, MessageKind.MEM_REQUEST):
            msg = Message(0, 1, 2, 0, kind, 0x40, 1)
            assert msg.num_flits == CONTROL_FLITS == 1

    def test_data_replies_carry_a_block(self):
        """64B block on a 128-bit datapath: 4 data flits + head = 5."""
        for kind in (MessageKind.L2_REPLY, MessageKind.MEM_REPLY):
            msg = Message(0, 1, 2, 0, kind, 0x40, 1)
            assert msg.num_flits == DATA_FLITS == 5


class TestMessageFields:
    def test_packet_fields_inherited(self):
        msg = Message(7, 3, 9, 100, MessageKind.L2_REQUEST, 0xABC, 3)
        assert (msg.pid, msg.src, msg.dst, msg.created_cycle) == (7, 3, 9, 100)
        assert msg.block_addr == 0xABC
        assert msg.core_id == 3

    def test_flit_segmentation_works(self):
        msg = Message(0, 1, 2, 0, MessageKind.MEM_REPLY, 0x40, 1)
        flits = msg.make_flits()
        assert len(flits) == 5
        assert flits[0].is_head and flits[-1].is_tail
        assert all(f.packet is msg for f in flits)

    def test_repr_mentions_kind(self):
        msg = Message(0, 1, 2, 0, MessageKind.MEM_REQUEST, 0x40, 1)
        assert "MEM_REQUEST" in repr(msg)
