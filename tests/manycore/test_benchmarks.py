"""Tests for the benchmark catalogue and workload mixes (Table 4 inputs)."""

import pytest

from repro.manycore.benchmarks import BENCHMARKS, BenchmarkProfile, get_benchmark
from repro.manycore.workloads import (
    MIXES,
    PAPER_MIX_MPKI,
    PAPER_MIX_SPEEDUP,
    WorkloadMix,
    get_mix,
)


class TestCatalogue:
    def test_suite_has_35_benchmarks(self):
        assert len(BENCHMARKS) == 35

    def test_commercial_workloads_present(self):
        for name in ("sap", "tpcw", "sjbb", "sjas"):
            assert name in BENCHMARKS

    def test_mpki_decomposition_consistent(self):
        for b in BENCHMARKS.values():
            assert b.l1_mpki + b.l2_mpki == pytest.approx(b.mpki)
            assert b.l2_mpki == pytest.approx(b.l1_mpki * b.l2_miss_ratio)

    def test_lookup_case_insensitive(self):
        assert get_benchmark("MCF") is BENCHMARKS["mcf"]

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("doom")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", -1.0, 0.5)
        with pytest.raises(ValueError):
            BenchmarkProfile("x", 10.0, 1.5)


class TestMixes:
    def test_eight_mixes(self):
        assert sorted(MIXES) == [f"Mix{i}" for i in range(1, 9)]

    def test_every_mix_fills_64_cores(self):
        for mix in MIXES.values():
            assert mix.num_cores == 64

    def test_every_mix_has_six_unique_apps(self):
        for mix in MIXES.values():
            apps = [a for a, _ in mix.apps]
            assert len(apps) == 6
            assert len(set(apps)) == 6

    @pytest.mark.parametrize("name", sorted(PAPER_MIX_MPKI))
    def test_average_mpki_matches_table4(self, name):
        """The catalogue was fitted so each mix reproduces Table 4 exactly."""
        assert get_mix(name).average_mpki() == pytest.approx(
            PAPER_MIX_MPKI[name], abs=0.05
        )

    def test_mpki_ordering_matches_paper(self):
        """Table 4 lists mixes in increasing avg-MPKI order."""
        values = [get_mix(f"Mix{i}").average_mpki() for i in range(1, 9)]
        assert values == sorted(values)

    def test_paper_speedups_increase_with_mpki(self):
        speedups = [PAPER_MIX_SPEEDUP[f"Mix{i}"] for i in range(1, 9)]
        assert speedups == sorted(speedups)

    def test_core_assignment_matches_counts(self):
        mix = get_mix("Mix1")
        profiles = mix.core_assignment()
        assert len(profiles) == 64
        assert sum(1 for p in profiles if p.name == "milc") == 11
        assert sum(1 for p in profiles if p.name == "hmmer") == 10

    def test_unknown_mix(self):
        with pytest.raises(KeyError):
            get_mix("Mix9")

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            WorkloadMix("bad", (("doom", 11),))
        with pytest.raises(ValueError):
            WorkloadMix("bad", (("mcf", 0),))
