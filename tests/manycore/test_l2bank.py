"""Unit tests for the shared L2 bank."""

import pytest

from repro.manycore.l2bank import L2Bank
from repro.manycore.messages import Message, MessageKind


def req(pid, addr, core=0, src=0, dst=5):
    return Message(pid, src, dst, 0, MessageKind.L2_REQUEST, addr, core)


def mem_reply(pid, addr, mc=9, bank=5):
    return Message(pid, mc, bank, 0, MessageKind.MEM_REPLY, addr, 0)


def make_bank(**kwargs):
    defaults = dict(size_bytes=1024, assoc=2, block_bytes=64, mshrs=2,
                    hit_latency=6)
    defaults.update(kwargs)
    return L2Bank(5, 5, mc_terminal=9, **defaults)


class TestHitPath:
    def test_hit_replies_after_hit_latency(self):
        bank = make_bank()
        bank.cache.fill(100)
        bank.receive_request(req(0, 100, core=3, src=3), cycle=10)
        assert bank.tick(15) == []  # 6-cycle latency not elapsed
        out = bank.tick(16)
        assert out == [(MessageKind.L2_REPLY, 3, 100, 3)]
        assert bank.hits == 1

    def test_requests_processed_in_order(self):
        bank = make_bank()
        bank.cache.fill(1)
        bank.cache.fill(2)
        bank.receive_request(req(0, 1, src=1), cycle=0)
        bank.receive_request(req(1, 2, src=2), cycle=1)
        out = bank.tick(10)
        assert [d[1] for d in out] == [1, 2]


class TestMissPath:
    def test_miss_sends_memory_request(self):
        bank = make_bank()
        bank.receive_request(req(0, 77), cycle=0)
        out = bank.tick(6)
        assert out == [(MessageKind.MEM_REQUEST, 9, 77, 0)]
        assert bank.mshrs.outstanding(77)

    def test_secondary_miss_merges(self):
        bank = make_bank()
        bank.receive_request(req(0, 77, core=1, src=1), cycle=0)
        bank.receive_request(req(1, 77, core=2, src=2), cycle=0)
        out = bank.tick(6)
        assert len(out) == 1  # only one memory request
        replies = bank.receive_fill(mem_reply(9, 77))
        assert len(replies) == 2
        assert {r[1] for r in replies} == {1, 2}

    def test_fill_makes_block_resident(self):
        bank = make_bank()
        bank.receive_request(req(0, 77), cycle=0)
        bank.tick(6)
        bank.receive_fill(mem_reply(9, 77))
        assert bank.cache.lookup(77)

    def test_mshr_full_retries_later(self):
        bank = make_bank(mshrs=1)
        bank.receive_request(req(0, 1), cycle=0)
        bank.receive_request(req(1, 2), cycle=0)
        out = bank.tick(6)
        assert len(out) == 1  # block 2 stuck in retry queue
        assert bank.busy
        bank.receive_fill(mem_reply(9, 1))
        out2 = bank.tick(7)
        assert (MessageKind.MEM_REQUEST, 9, 2, 0) in out2

    def test_wrong_message_kinds_rejected(self):
        bank = make_bank()
        with pytest.raises(ValueError):
            bank.receive_request(mem_reply(0, 1), 0)
        with pytest.raises(ValueError):
            bank.receive_fill(req(0, 1))

    def test_busy_flag(self):
        bank = make_bank()
        assert not bank.busy
        bank.receive_request(req(0, 1), cycle=0)
        assert bank.busy
        bank.tick(6)
        assert bank.busy  # MSHR outstanding
        bank.receive_fill(mem_reply(9, 1))
        assert not bank.busy
