"""Unit tests for the synthetic trace-driven core model."""

import pytest

from repro.manycore.benchmarks import BenchmarkProfile
from repro.manycore.core_model import Core


def make_core(mpki=50.0, l2r=0.5, width=2, mlp=4, seed=1):
    profile = BenchmarkProfile("test", mpki, l2r)
    return Core(0, 0, profile, width=width, max_outstanding=mlp, seed=seed)


class TestRetirement:
    def test_unstalled_core_retires_at_width(self):
        core = make_core(mpki=0.001)  # effectively never misses
        for t in range(100):
            core.tick(t)
        assert core.instructions == 200
        assert core.stall_cycles == 0

    def test_core_stalls_at_mlp_limit(self):
        core = make_core(mpki=1000.0, mlp=2)  # miss on ~every instruction
        misses = []
        for t in range(50):
            misses.extend(core.tick(t))
        assert len(core.outstanding) == 2
        assert core.stall_cycles > 0

    def test_reply_unblocks(self):
        core = make_core(mpki=1000.0, mlp=1)
        addrs = core.tick(0)
        assert len(addrs) == 1
        assert core.tick(1) == []  # stalled
        core.receive_reply(addrs[0])
        # Misses are probabilistic (p = l1_mpki/1000 per instruction), so
        # poll a handful of cycles for the next one.
        issued = []
        for t in range(2, 20):
            issued = core.tick(t)
            if issued:
                break
        assert issued

    def test_miss_rate_tracks_mpki(self):
        core = make_core(mpki=50.0, l2r=0.5, mlp=1000)
        for t in range(20000):
            core.tick(t)
            # complete everything instantly: no stalls, pure rate test
            for a in list(core.outstanding):
                core.receive_reply(a)
        # 50 total MPKI at l2r=0.5 -> L1-MPKI = 33.3
        measured = 1000 * core.misses_issued / core.instructions
        assert measured == pytest.approx(50.0 / 1.5, rel=0.15)

    def test_reset_counters(self):
        core = make_core()
        core.tick(0)
        core.reset_counters()
        assert core.instructions == 0
        assert core.stall_cycles == 0

    def test_ipc(self):
        core = make_core(mpki=0.001)
        for t in range(100):
            core.tick(t)
        assert core.ipc(100) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            core.ipc(0)


class TestAddressStream:
    def test_addresses_in_private_region(self):
        core = make_core(mpki=1000.0, mlp=64)
        core2 = Core(3, 3, BenchmarkProfile("t", 1000.0, 0.5),
                     max_outstanding=64, seed=1)
        a1, a2 = set(), set()
        for t in range(50):
            a1.update(core.tick(t))
            a2.update(core2.tick(t))
            for a in list(core.outstanding):
                core.receive_reply(a)
            for a in list(core2.outstanding):
                core2.receive_reply(a)
        assert not (a1 & a2)  # regions never collide

    def test_reuse_fraction_tracks_l2_ratio(self):
        """~(1 - l2_miss_ratio) of misses re-reference recent blocks."""
        core = make_core(mpki=1000.0, l2r=0.3, mlp=10**9)
        seen: set[int] = set()
        fresh = reused = 0
        for t in range(5000):
            for a in core.tick(t):
                if a in seen:
                    reused += 1
                else:
                    fresh += 1
                    seen.add(a)
                core.receive_reply(a)
        frac_fresh = fresh / (fresh + reused)
        assert frac_fresh == pytest.approx(0.3, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_core(width=0)
        with pytest.raises(ValueError):
            make_core(mlp=0)

    def test_deterministic_per_seed(self):
        a = make_core(seed=5)
        b = make_core(seed=5)
        for t in range(50):
            assert a.tick(t) == b.tick(t)
            for addr in list(a.outstanding):
                a.receive_reply(addr)
            for addr in list(b.outstanding):
                b.receive_reply(addr)
