"""Unit tests for the memory controller model."""

import pytest

from repro.manycore.memory import MemoryController
from repro.manycore.messages import Message, MessageKind


def mem_req(pid, addr, bank=5):
    return Message(pid, bank, 9, 0, MessageKind.MEM_REQUEST, addr, 0)


class TestMemoryController:
    def test_reply_after_access_latency(self):
        mc = MemoryController(0, 9, access_latency=160, service_interval=4)
        mc.receive_request(mem_req(0, 42), cycle=0)
        assert mc.tick(0) == []   # issued at cycle 0, completes at 160
        assert mc.tick(159) == []
        out = mc.tick(160)
        assert out == [(MessageKind.MEM_REPLY, 5, 42, 0)]
        assert mc.requests_served == 1

    def test_bandwidth_serialization(self):
        mc = MemoryController(0, 9, access_latency=10, service_interval=4)
        for i in range(3):
            mc.receive_request(mem_req(i, i), cycle=0)
        completions = []
        for t in range(40):
            for reply in mc.tick(t):
                completions.append((t, reply[2]))
        # Issues at 0, 4, 8 -> completes at 10, 14, 18.
        assert [t for t, _ in completions] == [10, 14, 18]

    def test_busy_and_queue_depth(self):
        mc = MemoryController(0, 9, access_latency=10, service_interval=4)
        assert not mc.busy
        mc.receive_request(mem_req(0, 1), cycle=0)
        mc.receive_request(mem_req(1, 2), cycle=0)
        assert mc.queue_depth == 2
        mc.tick(0)
        assert mc.queue_depth == 1
        assert mc.busy
        assert mc.peak_queue == 2

    def test_rejects_wrong_kind(self):
        mc = MemoryController(0, 9)
        with pytest.raises(ValueError):
            mc.receive_request(
                Message(0, 0, 9, 0, MessageKind.L2_REQUEST, 1, 0), 0
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryController(0, 9, access_latency=0)
        with pytest.raises(ValueError):
            MemoryController(0, 9, service_interval=0)
