"""Integration tests for the full manycore system."""

import pytest

from repro.manycore.benchmarks import BenchmarkProfile
from repro.manycore.system import (
    ManycoreConfig,
    ManycoreSystem,
    default_mc_terminals,
)
from repro.manycore.workloads import get_mix
from repro.network.config import NetworkConfig, RouterConfig, paper_config


def uniform_workload(n, mpki=30.0, l2r=0.4):
    return [BenchmarkProfile(f"synth{i}", mpki, l2r) for i in range(n)]


def small_system(allocator="input_first", mpki=30.0, seed=1):
    cfg = NetworkConfig(
        topology="mesh",
        num_terminals=16,
        router=RouterConfig(allocator=allocator),
        packet_length=4,
    )
    return ManycoreSystem(cfg, uniform_workload(16, mpki), seed=seed)


class TestMCPlacement:
    def test_eight_mcs_on_64_terminals(self):
        placement = default_mc_terminals(64, 8)
        assert len(placement) == 8
        assert len(set(placement)) == 8
        assert all(0 <= t < 64 for t in placement)
        # Split across the top and bottom halves of the die.
        assert sum(1 for t in placement if t < 32) == 4

    def test_small_network_fallback(self):
        placement = default_mc_terminals(16, 8)
        assert len(set(placement)) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            default_mc_terminals(4, 8)


class TestSystemIntegration:
    def test_workload_size_must_match(self):
        cfg = NetworkConfig(topology="mesh", num_terminals=16,
                            router=RouterConfig())
        with pytest.raises(ValueError):
            ManycoreSystem(cfg, uniform_workload(64))

    def test_end_to_end_misses_complete(self):
        sys_ = small_system(mpki=80.0)
        res = sys_.run(warmup=200, measure=800)
        assert res.total_instructions > 0
        assert sys_.messages_delivered > 0
        assert res.l2_hits + res.l2_misses > 0
        assert res.mem_requests > 0
        assert res.avg_network_latency > 5

    def test_l2_miss_ratio_tracks_profile(self):
        """The observed L2 miss ratio follows the profile parameter.

        Secondary misses (reuse of blocks whose refill is still in flight)
        merge in the MSHRs but still count as misses, so the observed
        ratio sits somewhat above the profile's compulsory-miss fraction —
        the check is on correlation and a loose absolute band.
        """
        ratios = {}
        for l2r in (0.2, 0.6):
            sys_ = ManycoreSystem(
                NetworkConfig(topology="mesh", num_terminals=16,
                              router=RouterConfig()),
                uniform_workload(16, mpki=100.0, l2r=l2r),
                seed=1,
            )
            res = sys_.run(warmup=500, measure=3000)
            ratios[l2r] = res.l2_misses / (res.l2_hits + res.l2_misses)
        assert ratios[0.2] < ratios[0.6]
        assert ratios[0.2] == pytest.approx(0.2, abs=0.2)
        assert ratios[0.6] == pytest.approx(0.6, abs=0.2)

    def test_low_mpki_cores_run_at_full_width(self):
        sys_ = small_system(mpki=0.5)
        res = sys_.run(warmup=100, measure=500)
        assert res.aggregate_ipc == pytest.approx(2.0 * 16, rel=0.02)

    def test_high_mpki_hurts_ipc(self):
        low = small_system(mpki=1.0, seed=3).run(warmup=200, measure=800)
        high = small_system(mpki=100.0, seed=3).run(warmup=200, measure=800)
        assert high.aggregate_ipc < low.aggregate_ipc

    def test_deterministic(self):
        a = small_system(seed=7).run(warmup=100, measure=400)
        b = small_system(seed=7).run(warmup=100, measure=400)
        assert a.total_instructions == b.total_instructions
        assert a.per_core_ipc == b.per_core_ipc

    def test_validation(self):
        sys_ = small_system()
        with pytest.raises(ValueError):
            sys_.run(warmup=-1, measure=10)
        with pytest.raises(ValueError):
            sys_.run(warmup=0, measure=0)


class TestAllocatorSensitivity:
    def test_vix_ipc_at_least_baseline_on_memory_bound_mix(self):
        """The Table 4 mechanism: better allocation -> lower memory latency
        -> higher IPC for memory-bound workloads."""
        base = small_system("input_first", mpki=120.0, seed=5).run(
            warmup=300, measure=1500
        )
        vix = small_system("vix", mpki=120.0, seed=5).run(
            warmup=300, measure=1500
        )
        assert vix.aggregate_ipc >= base.aggregate_ipc * 0.99

    def test_paper_mix_runs_on_64_terminals(self):
        sys_ = ManycoreSystem(paper_config("if"), get_mix("Mix1"), seed=2)
        res = sys_.run(warmup=100, measure=300)
        assert res.total_instructions > 0
        assert len(res.per_core_ipc) == 64


class TestConfig:
    def test_custom_config_propagates(self):
        cfg = NetworkConfig(topology="mesh", num_terminals=16,
                            router=RouterConfig())
        mc_cfg = ManycoreConfig(core_width=1, max_outstanding=2, num_mcs=4)
        sys_ = ManycoreSystem(cfg, uniform_workload(16), config=mc_cfg, seed=1)
        assert len(sys_.mcs) == 4
        assert all(c.width == 1 for c in sys_.cores)
