"""Tests for writeback traffic (dirty L1/L2 evictions)."""

import pytest

from repro.manycore.benchmarks import BenchmarkProfile
from repro.manycore.core_model import Core
from repro.manycore.l2bank import L2Bank
from repro.manycore.memory import MemoryController
from repro.manycore.messages import Message, MessageKind
from repro.manycore.system import ManycoreConfig, ManycoreSystem
from repro.network.config import NetworkConfig, RouterConfig


def make_core(dirty=0.5, seed=1):
    profile = BenchmarkProfile("t", 200.0, 0.5)
    return Core(0, 0, profile, max_outstanding=64, dirty_fraction=dirty, seed=seed)


class TestCoreWritebacks:
    def test_writebacks_generated_at_dirty_fraction(self):
        core = make_core(dirty=0.5)
        for t in range(3000):
            core.tick(t)
            for a in list(core.outstanding):
                core.receive_reply(a)
            core.take_writebacks()
        assert core.writebacks_issued == pytest.approx(
            0.5 * core.misses_issued, rel=0.15
        )

    def test_zero_dirty_fraction_means_no_writebacks(self):
        core = make_core(dirty=0.0)
        for t in range(500):
            core.tick(t)
            for a in list(core.outstanding):
                core.receive_reply(a)
        assert core.writebacks_issued == 0
        assert core.take_writebacks() == []

    def test_take_writebacks_drains(self):
        core = make_core(dirty=1.0)
        for t in range(100):
            core.tick(t)
            for a in list(core.outstanding):
                core.receive_reply(a)
        first = core.take_writebacks()
        assert first
        assert core.take_writebacks() == []

    def test_dirty_fraction_validation(self):
        with pytest.raises(ValueError):
            make_core(dirty=1.5)


class TestBankWritebacks:
    def make_bank(self, dirty=1.0):
        return L2Bank(5, 5, mc_terminal=9, size_bytes=128, assoc=2,
                      block_bytes=64, mshrs=4, dirty_fraction=dirty, seed=1)

    def test_l1_writeback_installs_block_silently(self):
        bank = self.make_bank()
        msg = Message(0, 1, 5, 0, MessageKind.L1_WRITEBACK, 7, 1)
        bank.receive_writeback(msg)
        assert bank.cache.lookup(7)
        assert bank.writebacks_received == 1
        # Demand statistics untouched.
        assert bank.hits == 0 and bank.misses == 0

    def test_fill_eviction_emits_l2_writeback(self):
        bank = self.make_bank(dirty=1.0)  # 1 set, 2 ways
        for addr in (0, 1):
            bank.receive_request(
                Message(addr, 1, 5, 0, MessageKind.L2_REQUEST, addr, 1), 0
            )
        bank.tick(10)  # two MEM_REQUESTs out
        bank.receive_fill(Message(10, 9, 5, 0, MessageKind.MEM_REPLY, 0, 1))
        bank.receive_fill(Message(11, 9, 5, 0, MessageKind.MEM_REPLY, 1, 1))
        # Third block forces an eviction; with dirty_fraction=1 a writeback
        # to the MC must appear among the fill's outgoing messages.
        bank.receive_request(
            Message(2, 1, 5, 0, MessageKind.L2_REQUEST, 2, 1), 20
        )
        bank.tick(30)
        out = bank.receive_fill(Message(12, 9, 5, 0, MessageKind.MEM_REPLY, 2, 1))
        kinds = [d[0] for d in out]
        assert MessageKind.L2_WRITEBACK in kinds
        wb = next(d for d in out if d[0] is MessageKind.L2_WRITEBACK)
        assert wb[1] == 9  # to the MC terminal

    def test_wrong_kind_rejected(self):
        bank = self.make_bank()
        with pytest.raises(ValueError):
            bank.receive_writeback(
                Message(0, 1, 5, 0, MessageKind.L2_REQUEST, 7, 1)
            )


class TestMemoryWritebacks:
    def test_writeback_consumes_bandwidth_but_no_reply(self):
        mc = MemoryController(0, 9, access_latency=10, service_interval=4)
        mc.receive_request(
            Message(0, 5, 9, 0, MessageKind.L2_WRITEBACK, 7, -1), 0
        )
        mc.receive_request(
            Message(1, 5, 9, 0, MessageKind.MEM_REQUEST, 8, 1), 0
        )
        replies = []
        for t in range(30):
            replies.extend(mc.tick(t))
        # Only the read produces a reply; the writeback delayed its issue.
        assert len(replies) == 1
        assert replies[0][0] is MessageKind.MEM_REPLY
        assert mc.requests_served == 2


class TestSystemWritebacks:
    def test_writeback_traffic_flows_end_to_end(self):
        cfg = NetworkConfig(topology="mesh", num_terminals=16,
                            router=RouterConfig())
        profiles = [BenchmarkProfile(f"s{i}", 80.0, 0.5) for i in range(16)]
        system = ManycoreSystem(
            cfg, profiles, config=ManycoreConfig(dirty_fraction=0.8), seed=1
        )
        system.run(warmup=200, measure=1500)
        assert sum(c.writebacks_issued for c in system.cores) > 0
        assert sum(b.writebacks_received for b in system.banks) > 0

    def test_dirty_fraction_zero_suppresses_writebacks(self):
        cfg = NetworkConfig(topology="mesh", num_terminals=16,
                            router=RouterConfig())
        profiles = [BenchmarkProfile(f"s{i}", 80.0, 0.5) for i in range(16)]
        system = ManycoreSystem(
            cfg, profiles, config=ManycoreConfig(dirty_fraction=0.0), seed=1
        )
        system.run(warmup=200, measure=800)
        assert sum(b.writebacks_received for b in system.banks) == 0
        assert sum(b.writebacks_emitted for b in system.banks) == 0