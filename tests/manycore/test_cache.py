"""Unit + property tests for the cache and MSHR models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.manycore.cache import Cache, MSHRFile


class TestCacheGeometry:
    def test_paper_l2_bank_geometry(self):
        c = Cache(256 * 1024, assoc=16, block_bytes=64)
        assert c.num_sets == 256  # 4096 blocks / 16 ways

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(100, assoc=16, block_bytes=64)  # not divisible
        with pytest.raises(ValueError):
            Cache(0, assoc=1)


class TestCacheBehaviour:
    def test_cold_miss_then_hit_after_fill(self):
        c = Cache(1024, assoc=2, block_bytes=64)
        assert not c.access(5)
        assert not c.lookup(5)  # miss does not fill
        c.fill(5)
        assert c.access(5)

    def test_lru_eviction(self):
        c = Cache(128, assoc=2, block_bytes=64)  # 1 set, 2 ways
        c.fill(0)
        c.fill(1)
        c.access(0)          # 0 becomes MRU
        evicted = c.fill(2)  # evicts LRU = 1
        assert evicted == 1
        assert c.lookup(0) and c.lookup(2) and not c.lookup(1)

    def test_fill_of_resident_block_evicts_nothing(self):
        c = Cache(128, assoc=2, block_bytes=64)
        c.fill(0)
        assert c.fill(0) is None
        assert c.occupancy == 1

    def test_set_index_separation(self):
        c = Cache(256, assoc=1, block_bytes=64)  # 4 sets, direct mapped
        c.fill(0)
        c.fill(1)  # different set
        assert c.lookup(0) and c.lookup(1)
        evicted = c.fill(4)  # same set as 0 (4 % 4 == 0)
        assert evicted == 0

    def test_statistics(self):
        c = Cache(128, assoc=2, block_bytes=64)
        c.access(0)
        c.fill(0)
        c.access(0)
        assert c.hits == 1 and c.misses == 1
        assert c.miss_rate() == 0.5

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_occupancy_bounded(self, addrs):
        c = Cache(512, assoc=2, block_bytes=64)  # 8 blocks
        for a in addrs:
            if not c.access(a):
                c.fill(a)
        assert c.occupancy <= 8

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_fill_makes_resident(self, addrs):
        c = Cache(1024, assoc=4, block_bytes=64)
        for a in addrs:
            c.fill(a)
            assert c.lookup(a)


class TestMSHR:
    def test_allocate_and_release(self):
        m = MSHRFile(2)
        assert m.allocate(10, "a") == "new"
        assert m.outstanding(10)
        assert m.release(10) == ["a"]
        assert not m.outstanding(10)

    def test_merge_same_block(self):
        m = MSHRFile(2)
        assert m.allocate(10, "a") == "new"
        assert m.allocate(10, "b") == "merged"
        assert m.merges == 1
        assert m.occupancy == 1  # merged, no new entry
        assert m.release(10) == ["a", "b"]

    def test_full_rejects_new_blocks_but_merges(self):
        m = MSHRFile(1)
        assert m.allocate(1, "a") == "new"
        assert m.allocate(2, "b") == "full"
        assert m.allocation_failures == 1
        assert m.allocate(1, "c") == "merged"  # merging needs no entry

    def test_release_unknown_block(self):
        with pytest.raises(KeyError):
            MSHRFile(2).release(5)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_occupancy_never_exceeds_capacity(self, addrs):
        m = MSHRFile(4)
        rng = random.Random(1)
        for a in addrs:
            m.allocate(a, None)
            if m.occupancy and rng.random() < 0.3:
                # complete a random outstanding miss
                block = next(iter(m._entries))
                m.release(block)
            assert m.occupancy <= 4
