"""Scheme-registry behaviour: completeness, ordering, errors, flags."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.registry import (
    ALL_REGISTRIES,
    ENLARGES_CROSSBAR,
    NETWORK_COMPARISON,
    VIRTUAL_INPUT_PER_VC,
    Registry,
    UnknownSchemeError,
    allocators,
    patterns,
    topologies,
    vc_policies,
)


class TestAllocatorCompleteness:
    def test_every_allocator_is_constructible(self):
        for name in allocators.names():
            allocator = allocators.create(name, 5, 5, 6, 2)
            assert hasattr(allocator, "allocate"), name

    def test_expected_schemes_present(self):
        assert allocators.names() == (
            "input_first",
            "output_first",
            "wavefront",
            "augmenting_path",
            "packet_chaining",
            "sparoflo",
            "vix",
            "ideal_vix",
        )

    def test_network_comparison_set_matches_paper(self):
        # Figures 8-10 compare exactly these, in this order.
        assert allocators.select(flag=NETWORK_COMPARISON) == (
            "input_first",
            "wavefront",
            "augmenting_path",
            "vix",
        )

    def test_constructor_options_reach_the_class(self):
        allocator = allocators.create(
            "input_first", 5, 5, 6, 1, pointer_policy="on_grant"
        )
        assert allocator.pointer_policy == "on_grant"

    def test_explicit_virtual_inputs_option_overrides_positional(self):
        # Ablation A6: conventional separable allocators accept an explicit
        # virtual_inputs keyword through options even though the positional
        # config-level value is dropped for them.
        allocator = allocators.create("output_first", 5, 5, 6, 1, virtual_inputs=2)
        assert allocator.virtual_inputs == 2


class TestLookupSemantics:
    def test_aliases_resolve_to_canonical(self):
        assert allocators.canonical("if") == "input_first"
        assert allocators.canonical("IF") == "input_first"
        assert allocators.canonical("separable") == "input_first"
        assert allocators.canonical("ivix") == "ideal_vix"
        assert topologies.canonical("flattened_butterfly") == "fbfly"
        assert patterns.canonical("ur") == "uniform"
        assert vc_policies.canonical("dimension") == "vix_dimension"

    def test_unknown_name_raises_single_registry_error(self):
        with pytest.raises(UnknownSchemeError) as exc_info:
            allocators.canonical("no_such_scheme")
        message = str(exc_info.value)
        assert "no_such_scheme" in message
        for valid in allocators.names():
            assert valid in message

    def test_error_is_both_value_and_key_error(self):
        with pytest.raises(ValueError):
            allocators.get("bogus")
        with pytest.raises(KeyError):
            allocators.get("bogus")

    def test_select_preserves_registration_order(self):
        assert allocators.select(("vix", "input_first")) == ("input_first", "vix")
        assert allocators.select(("wf", "if")) == ("input_first", "wavefront")

    def test_labels_follow_selection(self):
        labels = allocators.labels(("if", "vix"))
        assert labels == {"input_first": "IF", "vix": "VIX"}

    def test_contains_and_iteration(self):
        assert "vix" in allocators
        assert "if" in allocators
        assert "nonsense" not in allocators
        assert 3 not in allocators
        assert list(allocators) == list(allocators.names())
        assert len(allocators) == len(allocators.names())

    def test_duplicate_registration_rejected(self):
        registry = Registry("toy")
        registry.register("a", object, aliases=("b",))
        with pytest.raises(ValueError):
            registry.register("a", object)
        with pytest.raises(ValueError):
            registry.register("b", object)
        with pytest.raises(ValueError):
            registry.register("c", object, aliases=("a",))


class TestCapabilityFlags:
    def test_crossbar_flags(self):
        assert allocators.get("vix").enlarges_crossbar
        assert allocators.get("ideal_vix").enlarges_crossbar
        assert not allocators.get("input_first").enlarges_crossbar
        assert not allocators.get("sparoflo").enlarges_crossbar
        assert VIRTUAL_INPUT_PER_VC in allocators.get("ideal_vix").flags
        assert VIRTUAL_INPUT_PER_VC not in allocators.get("vix").flags

    def test_effective_virtual_inputs(self):
        assert allocators.get("input_first").effective_virtual_inputs(2, 6) == 1
        assert allocators.get("vix").effective_virtual_inputs(2, 6) == 2
        assert allocators.get("vix").effective_virtual_inputs(8, 6) == 6
        assert allocators.get("ideal_vix").effective_virtual_inputs(2, 6) == 6

    def test_router_config_resolves_through_registry(self):
        from repro.network.config import RouterConfig

        assert RouterConfig(allocator="if").effective_virtual_inputs == 1
        assert (
            RouterConfig(allocator="vix", virtual_inputs=2).effective_virtual_inputs
            == 2
        )
        assert (
            RouterConfig(allocator="ideal", num_vcs=6).effective_virtual_inputs == 6
        )


class TestCliList:
    def test_python_m_repro_list_names_every_scheme(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            check=True,
        )
        for registry in ALL_REGISTRIES:
            for info in registry.infos():
                assert info.name in result.stdout, (registry.kind, info.name)
