"""Tests for the ASCII chart renderers."""

import math

import pytest

from repro.report.ascii_chart import bar_chart, line_chart


class TestLineChart:
    def test_renders_single_series(self):
        text = line_chart(
            {"IF": [(0.0, 10.0), (0.5, 20.0), (1.0, 40.0)]},
            width=20,
            height=6,
            x_label="rate",
            y_label="latency",
        )
        assert "*" in text
        assert "latency vs rate" in text
        assert "* IF" in text

    def test_multiple_series_get_distinct_markers(self):
        text = line_chart(
            {"IF": [(0, 1), (1, 2)], "VIX": [(0, 1), (1, 1.5)]},
            width=20,
            height=6,
        )
        assert "* IF" in text and "o VIX" in text

    def test_monotone_series_rises_leftward_to_rightward(self):
        text = line_chart({"s": [(0, 0), (1, 100)]}, width=20, height=5)
        rows = [line[10:] for line in text.splitlines()[:5]]
        top_col = rows[0].index("*")
        bottom_col = rows[-1].index("*")
        assert bottom_col < top_col

    def test_skips_non_finite_points(self):
        text = line_chart(
            {"s": [(0, 1.0), (0.5, math.nan), (1.0, math.inf), (1.5, 2.0)]},
            width=20,
            height=5,
        )
        grid_only = "\n".join(text.splitlines()[:5])  # exclude axis + legend
        assert grid_only.count("*") == 2

    def test_y_cap_clamps_outliers(self):
        text = line_chart(
            {"s": [(0, 1.0), (1, 1000.0)]}, width=20, height=5, y_max=10.0
        )
        assert "10" in text.splitlines()[0]

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0, math.nan)]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0, 1)]}, width=2, height=2)


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart({"IF": 1.0, "VIX": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_values_printed(self):
        text = bar_chart({"a": 0.377, "b": 0.429}, unit=" f/c")
        assert "0.377 f/c" in text and "0.429 f/c" in text

    def test_non_finite_marked(self):
        text = bar_chart({"a": 1.0, "b": math.inf})
        assert "n/a" in text

    def test_zero_value_gets_empty_bar(self):
        text = bar_chart({"a": 0.0, "b": 1.0})
        assert "|" in text.splitlines()[0]
        assert "#" not in text.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})
