"""Property tests on the analytic timing models (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing.delay_model import (
    crossbar_delay,
    router_delays,
    sa_stage_delay,
    va_stage_delay,
)


@given(
    radix=st.integers(min_value=2, max_value=32),
    num_vcs=st.sampled_from([2, 4, 6, 8]),
)
@settings(max_examples=80)
def test_property_va_monotone_and_positive(radix, num_vcs):
    d = va_stage_delay(radix, num_vcs)
    assert d > 0
    assert va_stage_delay(radix + 1, num_vcs) > d
    assert va_stage_delay(radix, num_vcs * 2) > d


@given(
    radix=st.integers(min_value=2, max_value=32),
    num_vcs=st.sampled_from([2, 4, 6, 8, 12]),
)
@settings(max_examples=80)
def test_property_sa_grows_with_radix(radix, num_vcs):
    d = sa_stage_delay(radix, num_vcs, 1)
    assert d > 0
    assert sa_stage_delay(radix + 1, num_vcs, 1) > d


@given(
    num_vcs=st.sampled_from([4, 6, 8, 12]),
    radix=st.integers(min_value=2, max_value=20),
)
@settings(max_examples=80)
def test_property_vix_sa_overhead_small_and_positive(num_vcs, radix):
    """Doubled output arbiters dominate halved input arbiters, slightly."""
    base = sa_stage_delay(radix, num_vcs, 1)
    vix = sa_stage_delay(radix, num_vcs, 2)
    assert 0 < vix - base < 60


@given(
    rows=st.integers(min_value=1, max_value=64),
    cols=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=80)
def test_property_crossbar_monotone_in_both_dimensions(rows, cols):
    d = crossbar_delay(rows, cols)
    assert d > 0
    assert crossbar_delay(rows + 1, cols) > d
    assert crossbar_delay(rows, cols + 1) > d


@given(radix=st.integers(min_value=2, max_value=16))
@settings(max_examples=40)
def test_property_cycle_time_is_max_stage(radix):
    d = router_delays(radix, 6, 2, calibrated=False)
    assert d.cycle_time_ps == max(d.va_ps, d.sa_ps, d.xbar_ps)
    assert 0 < d.xbar_slack_fraction <= 1.0 or d.xbar_on_critical_path
