"""Tests for the calibrated circuit delay models (Tables 1 and 3)."""

import math

import pytest

from repro.timing.delay_model import (
    WAVEFRONT_OVERHEAD,
    allocator_delay,
    crossbar_delay,
    router_delays,
    sa_stage_delay,
    va_stage_delay,
)

TABLE1 = [
    # (radix, k, va, sa, xbar)
    (5, 1, 300.0, 280.0, 167.0),
    (5, 2, 300.0, 290.0, 205.0),
    (8, 1, 340.0, 315.0, 205.0),
    (8, 2, 340.0, 330.0, 289.0),
    (10, 1, 360.0, 340.0, 238.0),
    (10, 2, 360.0, 345.0, 359.0),
]


class TestTable1Calibration:
    @pytest.mark.parametrize("radix,k,va,sa,xbar", TABLE1)
    def test_published_values_exact(self, radix, k, va, sa, xbar):
        d = router_delays(radix, 6, k)
        assert d.va_ps == va
        assert d.sa_ps == sa
        assert d.xbar_ps == xbar

    @pytest.mark.parametrize("radix,k,va,sa,xbar", TABLE1)
    def test_analytic_models_within_tolerance(self, radix, k, va, sa, xbar):
        """The fitted models track synthesis within a few picoseconds."""
        d = router_delays(radix, 6, k, calibrated=False)
        assert d.va_ps == pytest.approx(va, abs=2.0)
        assert d.sa_ps == pytest.approx(sa, abs=5.0)
        assert d.xbar_ps == pytest.approx(xbar, abs=2.0)

    def test_crossbar_size_string(self):
        assert router_delays(5, 6, 2).crossbar_size == "10 x 5"
        assert router_delays(10, 6, 1).crossbar_size == "10 x 10"


class TestArchitecturalConclusions:
    """The claims Section 2.4 draws from Table 1."""

    @pytest.mark.parametrize("radix,k,va,sa,xbar", TABLE1)
    def test_crossbar_never_on_critical_path(self, radix, k, va, sa, xbar):
        d = router_delays(radix, 6, k)
        assert not d.xbar_on_critical_path
        assert d.cycle_time_ps == max(va, sa)

    def test_mesh_vix_crossbar_within_70_percent(self):
        d = router_delays(5, 6, 2)
        assert d.xbar_slack_fraction <= 0.70

    def test_mesh_vix_crossbar_increase_22_percent(self):
        base = router_delays(5, 6, 1).xbar_ps
        vix = router_delays(5, 6, 2).xbar_ps
        assert vix / base == pytest.approx(1.22, abs=0.02)

    def test_fbfly_vix_crossbar_increase_about_50_percent(self):
        base = router_delays(10, 6, 1).xbar_ps
        vix = router_delays(10, 6, 2).xbar_ps
        assert vix / base == pytest.approx(1.50, abs=0.02)

    def test_va_unaffected_by_vix(self):
        for radix in (5, 8, 10):
            assert router_delays(radix, 6, 1).va_ps == router_delays(radix, 6, 2).va_ps


class TestAnalyticModels:
    def test_va_monotone_in_radix_and_vcs(self):
        assert va_stage_delay(8, 6) > va_stage_delay(5, 6)
        assert va_stage_delay(5, 8) > va_stage_delay(5, 6)

    def test_sa_monotone_in_output_arbiter(self):
        assert sa_stage_delay(8, 6) > sa_stage_delay(5, 6)

    def test_vix_sa_slightly_slower(self):
        """Halved input arbiters almost offset doubled output arbiters."""
        base = sa_stage_delay(5, 6, 1)
        vix = sa_stage_delay(5, 6, 2)
        assert 0 < vix - base < 25

    def test_crossbar_monotone(self):
        assert crossbar_delay(10, 5) > crossbar_delay(5, 5)
        assert crossbar_delay(5, 10) > crossbar_delay(5, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            va_stage_delay(0, 6)
        with pytest.raises(ValueError):
            sa_stage_delay(5, 6, 7)
        with pytest.raises(ValueError):
            crossbar_delay(0, 5)

    def test_extrapolates_to_unsynthesized_configs(self):
        d = router_delays(6, 4, 2)  # not in the paper's table
        assert d.va_ps > 0 and d.sa_ps > 0 and d.xbar_ps > 0


class TestTable3:
    def test_separable_280ps(self):
        assert allocator_delay("if") == 280.0

    def test_wavefront_39_percent_slower(self):
        wf = allocator_delay("wavefront")
        assert wf == pytest.approx(390.0, abs=1.0)
        assert WAVEFRONT_OVERHEAD == pytest.approx(1.393, abs=0.01)

    def test_augmenting_path_infeasible(self):
        assert math.isinf(allocator_delay("ap"))

    def test_vix_delay_within_router_budget(self):
        """VIX SA (290 ps) stays below the VA stage (300 ps): no slowdown."""
        assert allocator_delay("vix") <= va_stage_delay(5, 6) + 1

    def test_packet_chaining_uses_separable_delay(self):
        assert allocator_delay("pc") == allocator_delay("if")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            allocator_delay("quantum")
