"""Public-API surface tests: everything advertised must import and exist."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro.core",
    "repro.network",
    "repro.topology",
    "repro.routing",
    "repro.traffic",
    "repro.sim",
    "repro.timing",
    "repro.energy",
    "repro.manycore",
    "repro.parallel",
    "repro.analysis",
    "repro.report",
    "repro.experiments",
    "repro.cli",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


@pytest.mark.parametrize("package", PACKAGES[:-1])
def test_subpackage_all_resolves(package):
    mod = importlib.import_module(package)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{package}.{name} missing"


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_headline_workflow_composes():
    """The README quickstart snippet works as written (tiny scale)."""
    from repro import paper_config, saturation_throughput

    cfg = paper_config("vix")
    assert cfg.router.allocator == "vix"
    # A 16-terminal stand-in keeps this a unit test.
    from dataclasses import replace

    small = replace(cfg, num_terminals=16)
    res = saturation_throughput(small, seed=1, warmup=100, measure=300)
    assert res.throughput_flits_per_node > 0
