"""Tests for the analytic channel-load bounds."""

import pytest

from repro.analysis.bounds import channel_loads, saturation_bound
from repro.topology import make_topology
from repro.traffic.patterns import (
    Hotspot,
    Neighbor,
    Tornado,
    Transpose,
    UniformRandom,
    make_pattern,
)


class TestUniformMeshBound:
    def test_8x8_mesh_uniform_bisection_bound(self):
        """Textbook result: DOR uniform random on a k x k mesh is limited
        by the bisection channels at 0.5 flits/cycle/node... adjusted for
        self-traffic exclusion."""
        topo = make_topology("mesh", 64)
        bound = saturation_bound(topo, UniformRandom(64))
        # Center X channels carry 4*8*8/2... exact value with self-traffic
        # excluded is slightly above the 0.5 textbook figure.
        assert bound == pytest.approx(0.5, rel=0.05)

    def test_bound_is_per_channel_maximum(self):
        topo = make_topology("mesh", 16)
        analysis = channel_loads(topo, UniformRandom(16))
        assert analysis.saturation_bound == pytest.approx(1.0 / analysis.max_load)

    def test_hottest_channels_are_central_x_links(self):
        topo = make_topology("mesh", 64)
        analysis = channel_loads(topo, UniformRandom(64))
        for (router, port), _load in analysis.hottest_channels(4):
            x, _y = topo.coords(router)
            assert port in (1, 2)  # East/West
            assert x in (3, 4)  # the bisection columns


class TestPermutationBounds:
    def test_neighbor_traffic_is_cheap(self):
        topo = make_topology("mesh", 64)
        bound = saturation_bound(topo, Neighbor(64))
        # Every flow is a single hop; each link carries at most one flow.
        assert bound == pytest.approx(1.0)

    def test_tornado_loads_x_rings(self):
        topo = make_topology("mesh", 64)
        bound = saturation_bound(topo, Tornado(64))
        # 3-hop x-only flows on a mesh row: max 3 overlapping -> 1/3.
        assert bound == pytest.approx(1 / 3, rel=0.01)

    def test_transpose_bound_below_uniform(self):
        topo = make_topology("mesh", 64)
        uniform = saturation_bound(topo, UniformRandom(64))
        transpose = saturation_bound(topo, Transpose(64))
        assert transpose < uniform

    def test_hotspot_bound_collapses_with_fraction(self):
        topo = make_topology("mesh", 64)
        mild = saturation_bound(topo, Hotspot(64, hotspots=(27,), fraction=0.1))
        harsh = saturation_bound(topo, Hotspot(64, hotspots=(27,), fraction=0.5))
        assert harsh < mild


class TestCrossTopology:
    @pytest.mark.parametrize("name", ["mesh", "cmesh", "fbfly", "torus"])
    def test_bounds_finite_and_positive(self, name):
        topo = make_topology(name, 64)
        bound = saturation_bound(topo, UniformRandom(64))
        assert 0 < bound < 10

    def test_torus_beats_mesh_on_uniform(self):
        """Wraparound halves the worst channel load."""
        mesh = saturation_bound(make_topology("mesh", 64), UniformRandom(64))
        torus = saturation_bound(make_topology("torus", 64), UniformRandom(64))
        assert torus > mesh * 1.5

    def test_fbfly_has_high_capacity(self):
        fbfly = saturation_bound(make_topology("fbfly", 64), UniformRandom(64))
        mesh = saturation_bound(make_topology("mesh", 64), UniformRandom(64))
        assert fbfly > mesh


class TestValidationAgainstSimulation:
    def test_measured_throughput_below_bound(self):
        """No allocator may beat the wiring bound; ideal VIX approaches it."""
        from repro.network.config import paper_config
        from repro.sim.engine import saturation_throughput

        topo = make_topology("mesh", 64)
        bound = saturation_bound(topo, UniformRandom(64))
        for alloc in ("input_first", "ideal_vix"):
            res = saturation_throughput(
                paper_config(alloc), seed=3, warmup=400, measure=1200
            )
            assert res.throughput_flits_per_node <= bound * 1.02
        # The ideal allocator gets close to the bound (> 80%).
        assert res.throughput_flits_per_node > 0.8 * bound

    def test_errors(self):
        topo = make_topology("mesh", 16)
        with pytest.raises(ValueError, match="sized for"):
            channel_loads(topo, UniformRandom(64))

        class NoDist(UniformRandom):
            def distribution(self, src):
                return None

        with pytest.raises(ValueError, match="distribution"):
            channel_loads(topo, NoDist(16))
        with pytest.raises(ValueError):
            channel_loads(topo, UniformRandom(16)).hottest_channels(0)
