"""Tests for JSON result export."""

import json
import math
from dataclasses import dataclass, field

import pytest

from repro.experiments import table1_delays
from repro.experiments.export import load_result, save_result, to_jsonable


@dataclass
class _Inner:
    value: float


@dataclass
class _Outer:
    name: str
    scores: dict
    inner: _Inner
    items: tuple = ()


class TestToJsonable:
    def test_nested_dataclasses(self):
        obj = _Outer("x", {}, _Inner(1.5), (1, 2))
        out = to_jsonable(obj)
        assert out == {
            "name": "x",
            "scores": {},
            "inner": {"value": 1.5},
            "items": [1, 2],
        }

    def test_tuple_keys_flattened(self):
        out = to_jsonable({(5, "vix"): 1.0, "plain": 2})
        assert out == {"5/vix": 1.0, "plain": 2}

    def test_non_finite_floats(self):
        out = to_jsonable({"a": math.inf, "b": -math.inf, "c": math.nan})
        assert out == {"a": "inf", "b": "-inf", "c": "nan"}

    def test_exotic_objects_fall_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert to_jsonable(Weird()) == "<weird>"

    def test_real_experiment_result_serialises(self):
        rows = table1_delays.run()
        text = json.dumps(to_jsonable(rows))
        assert "Mesh with VIX" in text


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        rows = table1_delays.run()
        path = save_result(tmp_path / "t1.json", "t1", rows, fast=True)
        doc = load_result(path)
        assert doc["experiment"] == "t1"
        assert doc["fidelity"] == "fast"
        assert doc["result"][0]["design"] == "Mesh"

    def test_creates_parent_dirs(self, tmp_path):
        path = save_result(tmp_path / "deep" / "dir" / "x.json", "t3", {}, fast=False)
        assert path.exists()
        assert load_result(path)["fidelity"] == "full"


class TestCLIJson:
    def test_cli_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["t1", "--json", str(tmp_path)]) == 0
        doc = load_result(tmp_path / "t1.json")
        assert doc["experiment"] == "t1"
        assert "result written" in capsys.readouterr().out
