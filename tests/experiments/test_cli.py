"""Tests for the vix-repro command-line interface."""

import pytest

import repro.experiments.runner as runner
from repro.cli import main


@pytest.fixture(autouse=True)
def tiny_runs(monkeypatch):
    monkeypatch.setattr(
        runner,
        "FAST",
        runner.RunLengths(
            warmup=50,
            measure=150,
            single_router_cycles=150,
            manycore_warmup=50,
            manycore_measure=150,
        ),
    )
    monkeypatch.delenv("REPRO_FULL", raising=False)


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "t1" in out and "f12" in out

    def test_static_experiment(self, capsys):
        assert main(["t1"]) == 0
        out = capsys.readouterr().out
        assert "Mesh with VIX" in out

    def test_simulation_experiment_with_seed(self, capsys):
        assert main(["f7", "--seed", "3"]) == 0
        assert "Radix-5" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["f99"]) == 2

    def test_case_insensitive(self, capsys):
        assert main(["T3"]) == 0
        assert "Infeasible" in capsys.readouterr().out
