"""Scenario specs across every registered topology: serialization
round-trips, stable content keys, and 2x2 partitionability.

ISSUE 9 satellite: the spec layer grew partition fields, so the
round-trip contract is re-pinned over the *whole* topology registry —
any future topology automatically inherits the guarantee — and every
regular-grid topology must accept the 2x2 grid partitioner with a
boundary-port count matching its cut edges.
"""

from __future__ import annotations

import pytest

from repro.experiments.spec import ExperimentSpec, ScenarioSpec
from repro.registry import topologies
from repro.topology import make_topology
from repro.topology.partition import grid_partition

ALL_TOPOLOGIES = [info.name for info in topologies.infos()]


def _scenario(topology: str, **overrides) -> ScenarioSpec:
    kwargs = dict(
        key=("t", topology),
        allocator="vix",
        topology=topology,
        num_terminals=64,
        injection_rate=0.08,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestRoundTripEveryTopology:
    @pytest.mark.parametrize("topology", ALL_TOPOLOGIES)
    def test_plain_scenario_round_trips(self, topology):
        spec = _scenario(topology)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("topology", ALL_TOPOLOGIES)
    def test_partitioned_scenario_round_trips(self, topology):
        spec = _scenario(
            topology,
            partition="grid",
            partition_dims=(2, 2),
            link="credit",
            link_latency=4,
            link_width=2,
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.partition_config() == spec.partition_config()

    @pytest.mark.parametrize("topology", ALL_TOPOLOGIES)
    def test_content_key_stable_across_round_trip(self, topology):
        spec = ExperimentSpec(
            name="rt",
            scenarios=(
                _scenario(topology),
                _scenario(
                    topology, key=("p", topology), partition="grid", link_latency=2
                ),
            ),
        )
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.content_key() == spec.content_key()

    def test_partition_fields_change_the_key(self):
        base = ExperimentSpec(name="k", scenarios=(_scenario("mesh"),))
        cut = ExperimentSpec(
            name="k", scenarios=(_scenario("mesh", partition="grid"),)
        )
        assert base.content_key() != cut.content_key()

    def test_partition_aliases_canonicalize(self):
        spec = _scenario("mesh", partition="chiplet_grid", link="interchip")
        assert spec.partition == "grid"
        assert spec.link == "credit"
        cfg = spec.partition_config()
        assert cfg is not None and cfg.scheme == "grid" and cfg.link == "credit"

    def test_monolithic_scenario_has_no_partition_config(self):
        assert _scenario("mesh").partition_config() is None


class TestEveryGridTopologyPartitions:
    @pytest.mark.parametrize("topology", ALL_TOPOLOGIES)
    def test_2x2_boundary_ports_match_cut_edges(self, topology):
        topo = make_topology(topology, 64)
        plan = grid_partition(topo, (2, 2))
        assert plan.num_domains == 4
        egress = sum(len(plan.boundary_ports(d)["egress"]) for d in range(4))
        ingress = sum(len(plan.boundary_ports(d)["ingress"]) for d in range(4))
        assert egress == len(plan.cut_links)
        assert ingress == len(plan.cut_links)
        assert len(plan.cut_links) > 0
