"""The chiplet experiment driver: spec shape and a small end-to-end run."""

from __future__ import annotations

from repro.experiments import fig_chiplet
from repro.experiments.spec import ExperimentSpec


class TestSpec:
    def test_default_spec_shape(self):
        spec = fig_chiplet.spec()
        assert isinstance(spec, ExperimentSpec)
        assert spec.name == "chiplet"
        # 2 sizes x 2 allocators x 3 latencies, every point partitioned.
        assert len(spec.scenarios) == 12
        for s in spec.scenarios:
            assert s.key[0] == "sat"
            assert s.topology == "cmesh"
            assert s.partition == "grid"
            assert s.injection_rate == 1.0
            assert s.drain_limit == 0
        sizes = {s.key[1] for s in spec.scenarios}
        assert sizes == {16, 32}
        by_size = {s.key[1]: s for s in spec.scenarios}
        assert by_size[16].partition_dims == (2, 2)
        assert by_size[16].num_terminals == 16 * 16 * 4
        assert by_size[32].partition_dims == (4, 4)
        assert by_size[32].num_terminals == 32 * 32 * 4
        assert {s.key[3] for s in spec.scenarios} == {0, 4, 8}

    def test_spec_round_trips(self):
        spec = fig_chiplet.spec(sizes=(16,), latencies=(0, 8))
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_registered_as_chiplet(self):
        from repro.experiments import EXPERIMENTS

        assert EXPERIMENTS["chiplet"] is fig_chiplet


class TestSmallRun:
    def test_8x8_single_latency_runs_and_reports(self):
        # An 8x8 CMesh (256 terminals, 2x2 chiplets) keeps the end-to-end
        # path cheap; the real figure sizes (16/32) run from the CLI.
        result = fig_chiplet.run(
            sizes=(8,), latencies=(4,), allocators=("input_first", "vix"), fast=True
        )
        text = fig_chiplet.report(result)
        assert "8x8 CMesh" in text
        assert "partitioned engine" in text
        for alloc in ("input_first", "vix"):
            assert result.throughput(8, alloc, 4) > 0
