"""Tests for the radix-scaling extension experiment."""

from repro.experiments import radix_scaling


class TestRadixScaling:
    def test_paper_topologies_all_fit(self):
        """Radices 5, 8, 10 (mesh/cmesh/fbfly) support VIX — Section 2.4."""
        result = radix_scaling.run(radices=(5, 8, 10))
        assert all(p.vix_fits for p in result.points)
        assert result.scaling_limit() is None

    def test_fbfly_is_the_borderline_case(self):
        """The paper calls radix 10 marginal: crossbar just under VA delay."""
        point = radix_scaling.run(radices=(10,)).points[0]
        assert point.vix_fits
        assert point.xbar_vix_ps > 0.95 * point.allocation_ps

    def test_scaling_limit_is_just_past_the_paper_configs(self):
        result = radix_scaling.run()
        limit = result.scaling_limit()
        assert limit is not None
        assert 11 <= limit <= 14

    def test_crossbar_grows_faster_than_allocation(self):
        """The structural reason for the limit: wire-RC vs log-depth logic."""
        result = radix_scaling.run()
        ratios = [p.xbar_vix_ps / p.allocation_ps for p in result.points]
        assert ratios == sorted(ratios)

    def test_report_flags_the_limit(self):
        text = radix_scaling.report()
        assert "radix 11" in text
        assert "NO" in text
