"""Smoke tests for the topology-comparison extension driver."""

import pytest

import repro.experiments.runner as runner
from repro.experiments import topology_comparison


@pytest.fixture(autouse=True)
def tiny_runs(monkeypatch):
    monkeypatch.setattr(
        runner,
        "FAST",
        runner.RunLengths(
            warmup=100,
            measure=300,
            single_router_cycles=300,
            manycore_warmup=100,
            manycore_measure=300,
        ),
    )
    monkeypatch.delenv("REPRO_FULL", raising=False)


def test_subset_run_and_report():
    res = topology_comparison.run(topologies=("mesh", "torus"), fast=True, seed=2)
    assert set(res.bounds) == {"mesh", "torus"}
    assert res.bounds["torus"] > res.bounds["mesh"]
    for topo in ("mesh", "torus"):
        assert 0 < res.efficiency(topo, "input_first") <= 1.05
        assert res.throughput[(topo, "vix")] > 0
    text = topology_comparison.report(res)
    assert "Bound" in text and "torus" in text


def test_registered_in_cli():
    from repro.experiments import EXPERIMENTS

    assert EXPERIMENTS["topo"] is topology_comparison
