"""Declarative experiment specs: round-trips, cache identity, validation."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.experiments import (
    ablations,
    fig7_single_router,
    fig8_mesh,
    fig9_fairness,
    fig10_packet_chaining,
    fig11_energy,
    fig12_virtual_inputs,
    radix_scaling,
    table1_delays,
    table3_allocator_delays,
    table4_applications,
    topology_comparison,
)
from repro.experiments.spec import ExperimentSpec, ScenarioSpec
from repro.registry import UnknownSchemeError

ALL_DRIVERS = [
    table1_delays,
    table3_allocator_delays,
    fig7_single_router,
    fig8_mesh,
    fig9_fairness,
    fig10_packet_chaining,
    fig11_energy,
    fig12_virtual_inputs,
    table4_applications,
    ablations,
    radix_scaling,
    topology_comparison,
]


class TestScenarioValidation:
    def test_scheme_names_canonicalized_at_construction(self):
        scenario = ScenarioSpec(allocator="IF", topology="flattened_butterfly")
        assert scenario.allocator == "input_first"
        assert scenario.topology == "fbfly"

    def test_unknown_allocator_fails_fast_with_choices(self):
        with pytest.raises(UnknownSchemeError) as exc_info:
            ScenarioSpec(allocator="not_an_allocator")
        message = str(exc_info.value)
        assert "not_an_allocator" in message
        assert "input_first" in message and "vix" in message

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="scenario kind"):
            ScenarioSpec(kind="quantum")

    def test_unknown_analytic_fn_rejected(self):
        with pytest.raises(ValueError, match="analytic fn"):
            ScenarioSpec(kind="analytic", fn="frobnicate")

    def test_default_vc_policy_follows_crossbar_flag(self):
        assert ScenarioSpec(allocator="vix").resolved_vc_policy() == "vix_dimension"
        assert ScenarioSpec(allocator="if").resolved_vc_policy() == "max_credit"
        assert (
            ScenarioSpec(allocator="vix", vc_policy="max_credit").resolved_vc_policy()
            == "max_credit"
        )

    def test_pattern_options_canonicalized_from_dict(self):
        a = ScenarioSpec(
            pattern="hotspot", pattern_options={"hotspots": (0,), "fraction": 0.2}
        )
        b = ScenarioSpec(
            pattern="hotspot", pattern_options={"fraction": 0.2, "hotspots": [0]}
        )
        assert a == b
        assert a.pattern_options == (("fraction", 0.2), ("hotspots", (0,)))

    def test_duplicate_scenario_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate scenario key"):
            ExperimentSpec(
                name="dup",
                scenarios=(
                    ScenarioSpec(key=("a", 1)),
                    ScenarioSpec(key=("a", 1), allocator="vix"),
                ),
            )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "driver", ALL_DRIVERS, ids=lambda m: m.__name__.rsplit(".", 1)[-1]
    )
    def test_driver_spec_round_trips_identically(self, driver):
        spec = driver.spec()
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.canonical_json() == spec.canonical_json()
        assert rebuilt.content_key() == spec.content_key()

    def test_scenario_round_trip_preserves_every_field(self):
        scenario = ScenarioSpec(
            key=("curve", "vix", 0.42),
            allocator="vix",
            topology="torus",
            num_vcs=4,
            buffer_depth=3,
            virtual_inputs=3,
            vc_policy="max_credit",
            packet_length=1,
            pattern="hotspot",
            pattern_options={"fraction": 0.2},
            injection_rate=0.42,
            drain_limit=0,
            burst_length=4.0,
        )
        assert ScenarioSpec.from_dict(scenario.to_dict()) == scenario


class TestCacheIdentity:
    def test_content_key_stable_across_processes(self):
        spec = fig8_mesh.spec(fast=True)
        script = (
            "from repro.experiments import fig8_mesh;"
            "print(fig8_mesh.spec(fast=True).content_key())"
        )
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True
        )
        assert result.stdout.strip() == spec.content_key()

    def test_content_key_tracks_package_version(self, monkeypatch):
        import repro

        spec = fig9_fairness.spec()
        before = spec.content_key()
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert spec.content_key() != before

    def test_sim_job_keys_stable_across_processes(self):
        spec = fig8_mesh.spec(fast=True)
        keys = [
            s.sim_job(100, 200, spec.seed).key()
            for s in spec.scenarios
            if s.kind == "network"
        ]
        script = (
            "from repro.experiments import fig8_mesh;"
            "spec = fig8_mesh.spec(fast=True);"
            "print('\\n'.join(s.sim_job(100, 200, spec.seed).key()"
            " for s in spec.scenarios if s.kind == 'network'))"
        )
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True
        )
        assert result.stdout.split() == keys

    def test_equal_specs_share_keys_distinct_specs_do_not(self):
        assert fig8_mesh.spec().content_key() == fig8_mesh.spec().content_key()
        assert (
            fig8_mesh.spec(seed=2).content_key() != fig8_mesh.spec().content_key()
        )
        assert fig8_mesh.spec().content_key() != fig9_fairness.spec().content_key()


class TestDriverSpecs:
    @pytest.mark.parametrize(
        "driver", ALL_DRIVERS, ids=lambda m: m.__name__.rsplit(".", 1)[-1]
    )
    def test_spec_names_match_registry_ids(self, driver):
        from repro.registry import experiments as experiment_registry

        spec = driver.spec()
        assert spec.name in experiment_registry.names()
        assert experiment_registry.get(spec.name).factory is driver
        assert spec.title == driver.TITLE

    def test_network_scenarios_produce_runnable_jobs(self):
        spec = fig9_fairness.spec()
        for scenario in spec.scenarios:
            job = scenario.sim_job(10, 20, spec.seed)
            assert job.key()
            assert job.config.router.allocator == scenario.allocator

    def test_sim_job_rejected_for_non_network_kinds(self):
        scenario = ScenarioSpec(kind="single_router", allocator="vix")
        with pytest.raises(ValueError, match="single_router"):
            scenario.sim_job(10, 20, 1)
