"""Smoke tests: every experiment driver runs end to end and its report
renders.  Run lengths are shrunk via the runner's FAST preset so the whole
file stays fast; the paper-shape assertions live in the benchmark harness.
"""

import math

import pytest

import repro.experiments.runner as runner
from repro.experiments import (
    EXPERIMENTS,
    ablations,
    fig7_single_router,
    fig8_mesh,
    fig9_fairness,
    fig10_packet_chaining,
    fig11_energy,
    fig12_virtual_inputs,
    get_experiment,
    table1_delays,
    table3_allocator_delays,
    table4_applications,
)

TINY = runner.RunLengths(
    warmup=100,
    measure=300,
    single_router_cycles=300,
    manycore_warmup=100,
    manycore_measure=300,
)


@pytest.fixture(autouse=True)
def tiny_runs(monkeypatch):
    monkeypatch.setattr(runner, "FAST", TINY)
    monkeypatch.delenv("REPRO_FULL", raising=False)


class TestStaticExperiments:
    def test_t1_matches_paper_exactly(self):
        rows = table1_delays.run()
        for row in rows:
            va, sa, xb = table1_delays.PAPER_VALUES[row.design]
            assert (row.va_ps, row.sa_ps, row.xbar_ps) == (va, sa, xb)
        assert "Mesh with VIX" in table1_delays.report(rows)

    def test_t3_matches_paper(self):
        values = table3_allocator_delays.run()
        assert values["input_first"] == 280.0
        assert values["wavefront"] == 390.0
        assert math.isinf(values["augmenting_path"])
        assert "Infeasible" in table3_allocator_delays.report(values)


class TestSimulationExperiments:
    def test_f7_runs_and_ranks(self):
        res = fig7_single_router.run(fast=True, seed=2)
        for radix in fig7_single_router.RADICES:
            assert res.throughput[(radix, "vix")] > res.throughput[(radix, "input_first")]
        assert "Radix-5" in fig7_single_router.report(res)

    def test_f8_curves_and_saturation(self):
        res = fig8_mesh.run(
            rates=(0.02,), allocators=("input_first", "vix"), fast=True, seed=2
        )
        assert res.curves["input_first"][0].drained
        assert res.saturation_flits_per_node("vix") > 0
        assert res.throughput_gain("vix") > 0
        assert "Figure 8" in fig8_mesh.report(res)

    def test_f9_fairness_values_sane(self):
        res = fig9_fairness.run(fast=True, seed=2)
        for alloc, value in res.fairness.items():
            assert value >= 1.0
        assert "Max/Min" in fig9_fairness.report(res)

    def test_f10_single_flit_comparison(self):
        res = fig10_packet_chaining.run(fast=True, seed=2)
        assert res.gain_over_if("vix") > 0
        assert res.gain_over_if("packet_chaining") > 0
        assert "single-flit" in fig10_packet_chaining.report(res)

    def test_f11_energy_breakdown(self):
        res = fig11_energy.run(fast=True, seed=2)
        assert 0.0 < res.vix_total_overhead() < 0.15
        base = res.breakdowns["input_first"].per_bit_components()
        vix = res.breakdowns["vix"].per_bit_components()
        assert vix["crossbar"] > base["crossbar"]
        assert "pJ/bit" in fig11_energy.report(res)

    def test_f12_subset_sweep(self):
        res = fig12_virtual_inputs.run(
            topologies=("mesh",), vc_counts=(4,), fast=True, seed=2
        )
        assert res.gain("mesh", 4) > 0
        assert res.throughput[("mesh", 4, "ideal VIX")] >= res.throughput[
            ("mesh", 4, "no VIX")
        ]
        assert "mesh" in fig12_virtual_inputs.report(res)

    def test_ablations_run_and_report(self):
        res = ablations.run(fast=True, seed=2)
        # Every study produced values and the report renders them.
        studies = {key[0] for key in res.values}
        assert studies == {
            "vc_policy", "pointer", "partition", "sparoflo", "vinputs", "phase_order",
        }
        text = ablations.report(res)
        assert "SPAROFLO" in text and "pointer" in text.lower()

    def test_t4_single_mix(self):
        res = table4_applications.run(mixes=("Mix8",), fast=True, seed=2)
        assert res.speedup("Mix8") > 0.9
        assert res.avg_mpki["Mix8"] == pytest.approx(66.9, abs=0.1)
        assert "Mix8" in table4_applications.report(res)


class TestRegistry:
    def test_every_id_resolves(self):
        for key in EXPERIMENTS:
            module = get_experiment(key)
            assert hasattr(module, "run")
            assert hasattr(module, "report")
            assert hasattr(module, "main")

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("f99")


class TestRunner:
    def test_run_lengths_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert runner.run_lengths() is runner.FULL
        monkeypatch.setenv("REPRO_FULL", "0")
        assert runner.run_lengths() is runner.FAST
        assert runner.run_lengths(fast=False) is runner.FULL

    def test_format_table_alignment(self):
        text = runner.format_table(["a", "bb"], [["x", 1], ["yyy", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            runner.format_table(["a"], [["x", "y"]])

    def test_improvement(self):
        assert runner.improvement(1.16, 1.0) == pytest.approx(0.16)
        with pytest.raises(ValueError):
            runner.improvement(1.0, 0.0)
