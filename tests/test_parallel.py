"""Tests for the parallel execution layer: job specs, fan-out, caching.

The headline property is *serial equivalence*: any number of worker
processes must produce results field-for-field identical to a plain serial
loop, including after cache hits and worker-crash fallbacks.
"""

import dataclasses
import json
import multiprocessing
import os
import pickle

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.parallel import (
    ExecutionStats,
    ParallelRunner,
    ResultCache,
    SimJob,
    resolve_jobs,
    result_from_jsonable,
    result_to_jsonable,
    run_sim_jobs,
)
from repro.sim.sweep import find_saturation_rate, latency_sweep
from repro.traffic.patterns import Transpose


def small_config(allocator="input_first"):
    return NetworkConfig(
        topology="mesh",
        num_terminals=16,
        router=RouterConfig(
            allocator=allocator,
            vc_policy="vix_dimension" if allocator == "vix" else "max_credit",
        ),
        packet_length=4,
    )


def small_job(allocator="input_first", **overrides):
    defaults = dict(injection_rate=0.05, seed=2, warmup=100, measure=300)
    defaults.update(overrides)
    return SimJob(small_config(allocator), **defaults)


class TestSimJob:
    def test_hashable_and_picklable(self):
        job = small_job()
        assert hash(job) == hash(small_job())
        assert pickle.loads(pickle.dumps(job)) == job

    def test_key_is_stable_and_content_addressed(self):
        job = small_job()
        assert job.key() == small_job().key()
        assert len(job.key()) == 64
        # Any semantic change moves the address.
        assert job.key() != small_job(seed=3).key()
        assert job.key() != small_job(injection_rate=0.06).key()
        assert job.key() != small_job("vix").key()
        assert job.key() != small_job(drain_limit=0).key()

    def test_pattern_identity_in_key(self):
        by_name = small_job(pattern="transpose")
        by_instance = small_job(pattern=Transpose(16))
        assert by_name.key() != small_job(pattern="uniform").key()
        # Name and instance are distinct spellings, hence distinct keys,
        # but each is self-consistent.
        assert by_instance.key() == small_job(pattern=Transpose(16)).key()
        assert by_name.key() == small_job(pattern="transpose").key()

    def test_run_matches_direct_call(self):
        from repro.sim.engine import run_simulation

        job = small_job()
        direct = run_simulation(
            job.config,
            injection_rate=job.injection_rate,
            seed=job.seed,
            warmup=job.warmup,
            measure=job.measure,
        )
        assert job.run() == direct


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = small_job()
        result = job.run()
        key = job.key()
        assert cache.get(key) is None
        cache.put(key, result)
        restored = cache.get(key)
        assert restored == result
        for f in dataclasses.fields(result):
            assert getattr(restored, f.name) == getattr(result, f.name)

    def test_jsonable_round_trip(self):
        result = small_job().run()
        data = json.loads(json.dumps(result_to_jsonable(result)))
        assert result_from_jsonable(data) == result

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = small_job().key()
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert cache.get(key) is None
        assert not path.exists()

    def test_unknown_envelope_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = small_job()
        cache.put(job.key(), job.run())
        path = cache.path_for(job.key())
        document = json.loads(path.read_text())
        document["envelope"] = 999
        path.write_text(json.dumps(document))
        assert cache.get(job.key()) is None
        # The stale-envelope entry must be dropped so the slot can be
        # rewritten cleanly by the current version.
        assert not path.exists()

    def test_put_survives_unwritable_root(self):
        cache = ResultCache("/proc/definitely-not-writable/repro")
        job = small_job()
        cache.put(job.key(), job.run())  # must not raise

    def test_put_skips_on_readonly_root_and_cleans_temp(
        self, monkeypatch, tmp_path
    ):
        # Root runs ignore permission bits, so model a read-only cache
        # root by failing the atomic rename itself.
        cache = ResultCache(tmp_path)
        job = small_job()

        def denied(src, dst):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(os, "replace", denied)
        cache.put(job.key(), job.run())  # must not raise
        assert cache.get(job.key()) is None
        # The orphaned temp file must not accumulate.
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_put_skips_when_temp_creation_fails(self, monkeypatch, tmp_path):
        import tempfile

        cache = ResultCache(tmp_path)
        job = small_job()

        def denied(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(tempfile, "mkstemp", denied)
        cache.put(job.key(), job.run())  # must not raise
        assert cache.get(job.key()) is None
        assert cache.get(job.key()) is None

    def test_default_honours_no_cache_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert ResultCache.default() is None
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        assert ResultCache.default() is not None

    def test_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert ResultCache().root == tmp_path / "alt"


class TestResolveJobs:
    def test_explicit_values(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs("3") == 3
        assert resolve_jobs("auto") == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_non_numeric_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "max")
        with pytest.raises(ValueError) as excinfo:
            resolve_jobs(None)
        message = str(excinfo.value)
        assert "$REPRO_JOBS" in message
        assert "'max'" in message
        assert "auto" in message

    def test_non_numeric_argument_error_omits_env_var(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_jobs("many")
        message = str(excinfo.value)
        assert "REPRO_JOBS" not in message
        assert "auto" in message


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("allocator", ["input_first", "wavefront", "vix"])
    def test_run_sim_jobs_identical(self, allocator):
        jobs = [small_job(allocator, injection_rate=r) for r in (0.03, 0.06)]
        serial = run_sim_jobs(jobs, jobs=1, cache=None)
        parallel = run_sim_jobs(jobs, jobs=4, cache=None)
        assert serial == parallel

    def test_latency_sweep_identical(self):
        cfg = small_config("vix")
        kwargs = dict(rates=(0.02, 0.05, 0.08), seed=2, warmup=100, measure=300)
        serial = latency_sweep(cfg, cache=None, jobs=1, **kwargs)
        parallel = latency_sweep(cfg, cache=None, jobs=4, **kwargs)
        assert serial == parallel

    def test_find_saturation_rate_identical(self):
        cfg = small_config("vix")
        kwargs = dict(high=0.4, warmup=100, measure=400, seed=2)
        serial = find_saturation_rate(cfg, cache=None, jobs=1, **kwargs)
        parallel = find_saturation_rate(cfg, cache=None, jobs=2, **kwargs)
        assert serial == parallel


class TestRunnerCaching:
    def test_second_run_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [small_job(injection_rate=r) for r in (0.03, 0.06, 0.09)]
        first = ParallelRunner(1, cache=cache)
        cold = first.run(jobs)
        assert first.stats.jobs_run == 3 and first.stats.cache_hits == 0
        second = ParallelRunner(1, cache=cache)
        warm = second.run(jobs)
        assert second.stats.jobs_run == 0 and second.stats.cache_hits == 3
        assert warm == cold

    def test_sweep_cache_hit_rate(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = small_config()
        kwargs = dict(rates=(0.02, 0.05, 0.08), seed=2, warmup=100, measure=300)
        stats = ExecutionStats()
        cold = latency_sweep(cfg, cache=cache, stats=stats, **kwargs)
        again = ExecutionStats()
        warm = latency_sweep(cfg, cache=cache, stats=again, **kwargs)
        assert warm == cold
        # The acceptance bar: >= 90% of the repeat sweep comes from cache.
        assert again.cache_hits / len(kwargs["rates"]) >= 0.9
        assert again.jobs_run == 0

    def test_saturation_probes_each_rate_once(self, monkeypatch):
        import repro.sim.engine as engine

        probed = []
        real = engine.run_simulation

        def counting(config, **kwargs):
            probed.append(kwargs["injection_rate"])
            return real(config, **kwargs)

        # SimJob.run resolves run_simulation at call time, so patching the
        # engine module intercepts every probe.
        monkeypatch.setattr(engine, "run_simulation", counting)
        find_saturation_rate(
            small_config(), high=0.4, warmup=100, measure=300, cache=None, jobs=1
        )
        assert probed, "bisection ran no simulations"
        assert len(probed) == len(set(probed)), "a rate was simulated twice"


def _crash_in_worker(value):
    """Succeed inline, die instantly inside a pool worker."""
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return value * 2


class TestWorkerCrashFallback:
    def test_retry_then_inline_fallback(self):
        runner = ParallelRunner(2)
        with pytest.warns(RuntimeWarning, match="falling back to inline"):
            outputs = runner.map(_crash_in_worker, [1, 2, 3])
        assert outputs == [2, 4, 6]
        assert runner.stats.worker_retries > 0
        assert runner.stats.inline_fallbacks > 0

    def test_job_exception_does_not_crash_runner(self):
        with pytest.warns(RuntimeWarning):
            with pytest.raises(ZeroDivisionError):
                ParallelRunner(2).map(_divide, [1, 0])


def _divide(value):
    return 1 // value
