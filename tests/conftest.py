"""Shared test configuration.

Simulations executed through :mod:`repro.parallel` cache their results on
disk.  Point the cache at a per-session temporary directory so test runs
are hermetic — they exercise the cache code without touching (or being
influenced by) the user's real ``~/.cache/repro``.
"""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    cache_root = tmp_path_factory.mktemp("repro-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(cache_root))
    yield
    mp.undo()
