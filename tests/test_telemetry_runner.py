"""Runner x telemetry: cross-process events, metrics merge, fault lifecycle.

The streaming-telemetry contract at the execution layer:

* worker-side events (``job_start``/``job_finish``) cross the
  multiprocessing queue and interleave with coordinator events into one
  totally ordered stream (strictly increasing ``seq``);
* a monitored run returns the exact results of an unmonitored run —
  telemetry observes, never participates;
* the failure lifecycle is evented exactly once per incident: a
  fault-injected crash yields one ``job_error`` + one ``job_retry``, a
  hung job killed on its budget yields one ``job_cancel`` — and the
  sweep still completes.

Worker-side :class:`MetricsRegistry` snapshots must also survive the
round trip: ``as_dict()`` in the worker, ``merge()`` in the parent.
"""

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.obs import MetricsRegistry, RunMonitor
from repro.parallel import ParallelRunner, SimJob


def tiny_job(seed=1, allocator="input_first"):
    return SimJob(
        NetworkConfig(
            topology="mesh",
            num_terminals=16,
            router=RouterConfig(allocator=allocator),
            packet_length=4,
        ),
        injection_rate=0.1,
        seed=seed,
        warmup=50,
        measure=200,
    )


def worker_metrics(seed: int) -> dict:
    """Module-level (picklable) worker: one registry snapshot per process."""
    reg = MetricsRegistry()
    reg.counter("jobs_seen").inc()
    reg.gauge("last_seed").set(float(seed))
    reg.histogram("seed_value", (2.0, 10.0)).observe(float(seed))
    return reg.as_dict()


def run_monitored(jobs, *, workers=2, monitor=None, **runner_kwargs):
    runner = ParallelRunner(
        workers, cache=None, monitor=monitor, backoff=0.0, **runner_kwargs
    )
    try:
        return runner.run(jobs), runner
    finally:
        if monitor is not None:
            monitor.flush()
            monitor.close()


def events_by_kind(monitor):
    out = {}
    for event in monitor.stream.events():
        out.setdefault(event.kind, []).append(event)
    return out


class TestCrossProcessRegistryMerge:
    def test_worker_snapshots_merge_in_parent(self):
        seeds = [1, 2, 3, 4, 5]
        runner = ParallelRunner(2, cache=None)
        snapshots = runner.map(worker_metrics, seeds)
        merged = MetricsRegistry()
        # A flattened dict no longer knows metric kinds: gauges must be
        # pre-registered in the receiver to keep last-writer-wins.
        merged.gauge("last_seed")
        for snap in snapshots:
            merged.merge(snap)
        data = merged.as_dict()
        assert data["jobs_seen"] == len(seeds)
        hist = data["seed_value"]
        assert hist["total"] == len(seeds)
        assert hist["counts"] == [2, 3]  # seeds <=2, seeds in (2, 10]
        assert hist["sum"] == float(sum(seeds))
        # map() returns in job order, so the last writer is the last seed.
        assert data["last_seed"] == float(seeds[-1])


class TestEventOrderingAcrossProcesses:
    def test_worker_events_form_one_totally_ordered_stream(self):
        jobs = [tiny_job(seed=s) for s in (1, 2, 3, 4)]
        monitor = RunMonitor()
        results, _ = run_monitored(jobs, monitor=monitor)
        assert all(r is not None for r in results)

        events = monitor.stream.events()
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

        by_kind = events_by_kind(monitor)
        assert len(by_kind["job_start"]) == 4
        assert len(by_kind["job_finish"]) == 4
        # Per job: the start is sequenced before its finish.
        start_seq = {e.data["index"]: e.seq for e in by_kind["job_start"]}
        for finish in by_kind["job_finish"]:
            assert start_seq[finish.data["index"]] < finish.seq
        # Worker events carry their emitting pid; at least one worker ran.
        assert all(e.data["pid"] > 0 for e in by_kind["job_start"])
        assert monitor.engines and sum(monitor.engines.values()) == 4
        assert monitor.completed == 4

    def test_serial_path_emits_through_the_same_queue(self):
        jobs = [tiny_job(seed=s) for s in (1, 2)]
        monitor = RunMonitor()
        results, _ = run_monitored(jobs, workers=1, monitor=monitor)
        assert all(r is not None for r in results)
        by_kind = events_by_kind(monitor)
        assert len(by_kind["job_start"]) == 2
        assert len(by_kind["job_finish"]) == 2
        finish = by_kind["job_finish"][0].data
        assert finish["seconds"] > 0
        assert finish["engine"]

    def test_monitored_results_identical_to_unmonitored(self):
        jobs = [tiny_job(seed=s) for s in (1, 2, 3)]
        plain, _ = run_monitored(jobs)
        monitored, _ = run_monitored(jobs, monitor=RunMonitor())
        assert plain == monitored

    def test_cache_hits_are_evented(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        jobs = [tiny_job(seed=s) for s in (1, 2)]
        warm = ParallelRunner(2, monitor=None)
        warm.run(jobs)
        monitor = RunMonitor()
        runner = ParallelRunner(2, monitor=monitor)
        cached = runner.run(jobs)
        monitor.close()
        assert all(r is not None for r in cached)
        by_kind = events_by_kind(monitor)
        assert len(by_kind["cache_hit"]) == 2
        assert "job_start" not in by_kind
        assert monitor.cache_hits == 2


class TestFaultLifecycleEvents:
    def test_injected_crash_events_error_and_retry_exactly_once(self, monkeypatch):
        # Job 0's first attempt raises inside the worker; the retry runs
        # clean (fault directives default to the first attempt only).
        monkeypatch.setenv("REPRO_FAULTS", "raise@0")
        jobs = [tiny_job(seed=s) for s in (1, 2, 3)]
        monitor = RunMonitor()
        results, _ = run_monitored(jobs, monitor=monitor, max_retries=2)
        assert all(r is not None for r in results)

        by_kind = events_by_kind(monitor)
        assert len(by_kind["job_error"]) == 1
        assert len(by_kind["job_retry"]) == 1
        assert "job_failed" not in by_kind
        error = by_kind["job_error"][0].data
        assert error["index"] == 0
        assert error["reason"] == "error"
        assert "injected" in error["error"]
        retry = by_kind["job_retry"][0].data
        assert retry["index"] == 0 and retry["attempt"] == 1
        # The retry is sequenced after the error it answers, and the
        # job's eventual finish after both.
        assert by_kind["job_error"][0].seq < by_kind["job_retry"][0].seq
        finishes = {e.data["index"]: e for e in by_kind["job_finish"]}
        assert finishes[0].seq > by_kind["job_retry"][0].seq
        assert len(by_kind["job_finish"]) == 3
        assert monitor.errors == 1 and monitor.retries == 1

    def test_hung_job_events_cancel_exactly_once(self, monkeypatch):
        # Job 0's first attempt hangs far past the budget; the runner
        # kills its worker on the timeout and the retry runs clean.
        monkeypatch.setenv("REPRO_FAULTS", "hang@0")
        monkeypatch.setenv("REPRO_FAULT_HANG_SECONDS", "600")
        jobs = [tiny_job(seed=s) for s in (1, 2)]
        monitor = RunMonitor()
        results, runner = run_monitored(
            jobs, monitor=monitor, timeout=2.0, max_retries=2
        )
        assert all(r is not None for r in results)

        by_kind = events_by_kind(monitor)
        assert len(by_kind["job_cancel"]) == 1
        cancel = by_kind["job_cancel"][0].data
        assert cancel["index"] == 0
        # The cancelled attempt is requeued, not failed.
        retries = [e for e in by_kind["job_retry"] if e.data["index"] == 0]
        assert len(retries) == 1
        assert "job_failed" not in by_kind
        assert len(by_kind["job_finish"]) == 2
        assert monitor.cancellations == 1
        assert runner.stats.cancellations >= 1
