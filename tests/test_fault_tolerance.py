"""Fault-tolerance tests: cancellation, retry, bisection, journal, resume.

These exercise the failure paths of the parallel layer under the
deterministic fault-injection harness (:mod:`repro.parallel.faults`):
hung workers must be genuinely killed (no zombie completes the job a
second time, pool shutdown never blocks), crashes retry per job with
chunk bisection fencing off the poisoned job, and an interrupted sweep
resumes from the checkpoint journal with byte-identical results.
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.experiments.runner import execute_spec
from repro.experiments.spec import ExperimentSpec, ScenarioSpec
from repro.parallel import (
    FaultInjected,
    JobTimeoutError,
    ParallelRunner,
    RunJournal,
    journal_path,
    result_to_jsonable,
)
from repro.parallel.faults import (
    FAULTS_ENV,
    HANG_SECONDS_ENV,
    FaultSpec,
    hang_seconds,
    parse_faults,
)
from repro.parallel.journal import COMPLETED_STATUSES
from repro.parallel.runner import BACKOFF_CAP_SECONDS


def _double(value):
    return value * 2


def _touch(path_str):
    """Touch a marker file — detects zombie (post-kill) job completion."""
    Path(path_str).touch()
    return path_str


def _exit_on_three(value):
    """Hard worker death for value 3; succeeds inline (bisection probe)."""
    if value == 3 and multiprocessing.parent_process() is not None:
        os._exit(86)
    return value * 2


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    """Fault/knob variables never leak between tests."""
    for name in (
        FAULTS_ENV,
        HANG_SECONDS_ENV,
        "REPRO_TIMEOUT",
        "REPRO_MAX_RETRIES",
        "REPRO_RETRY_BACKOFF",
        "REPRO_RESUME",
        "REPRO_JOBS",
    ):
        monkeypatch.delenv(name, raising=False)


class TestFaultParsing:
    def test_directives(self):
        assert parse_faults("raise@0") == (FaultSpec("raise", 0, 1),)
        assert parse_faults("exit@1, hang@2x3") == (
            FaultSpec("exit", 1, 1),
            FaultSpec("hang", 2, 3),
        )
        assert parse_faults("raise@4x*") == (FaultSpec("raise", 4, None),)
        assert parse_faults("") == ()

    def test_matching_counts_attempts(self):
        once = FaultSpec("raise", 2, 1)
        assert once.matches(2, 0) and not once.matches(2, 1)
        assert not once.matches(1, 0)
        forever = FaultSpec("raise", 2, None)
        assert forever.matches(2, 0) and forever.matches(2, 7)

    @pytest.mark.parametrize(
        "text", ["nuke@0", "raise@", "raise@x2", "hang@1x0", "raise@-1"]
    )
    def test_invalid_directives(self, text):
        with pytest.raises(ValueError, match="REPRO_FAULTS|must be >="):
            parse_faults(text)

    def test_hang_seconds_env(self, monkeypatch):
        assert hang_seconds() == 300.0
        monkeypatch.setenv(HANG_SECONDS_ENV, "2.5")
        assert hang_seconds() == 2.5


class TestTimeoutCancellation:
    def test_hung_job_is_killed_not_awaited(self, monkeypatch, tmp_path):
        """A hanging job is killed within ~2x its budget; no zombie runs it."""
        monkeypatch.setenv(FAULTS_ENV, "hang@1x*")
        monkeypatch.setenv(HANG_SECONDS_ENV, "2")
        markers = [str(tmp_path / f"job{i}.done") for i in range(3)]
        runner = ParallelRunner(2, cache=None, timeout=0.5, max_retries=0)
        start = time.monotonic()
        with pytest.raises(JobTimeoutError, match="index 1"):
            runner.map(_touch, markers)
        elapsed = time.monotonic() - start
        # Far below the 2s hang: the worker was killed, not waited out.
        assert elapsed < 2.0
        assert runner.stats.cancellations >= 1
        # A zombie would finish its 2s sleep and touch the marker; wait
        # past that horizon and verify the kill really took.
        time.sleep(max(0.0, 2.3 - elapsed))
        assert not os.path.exists(markers[1])
        assert os.path.exists(markers[0]) and os.path.exists(markers[2])

    def test_hang_once_then_retry_succeeds(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "hang@0")
        monkeypatch.setenv(HANG_SECONDS_ENV, "30")
        runner = ParallelRunner(2, cache=None, timeout=1.0, max_retries=1)
        assert runner.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert runner.stats.cancellations >= 1
        assert runner.stats.worker_retries >= 1


class TestCrashIsolation:
    def test_bisection_fences_off_poisoned_job(self):
        runner = ParallelRunner(2, cache=None, chunksize=4, max_retries=1)
        with pytest.warns(RuntimeWarning, match="falling back to inline"):
            out = runner.map(_exit_on_three, list(range(8)))
        assert out == [v * 2 for v in range(8)]
        # The poisoned chunk was split instead of dooming its chunk-mates:
        # only the one bad job reached the inline fallback.
        assert runner.stats.chunk_bisections >= 2
        assert runner.stats.inline_fallbacks == 1

    def test_persistent_raise_fault_propagates(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise@0x*")
        runner = ParallelRunner(2, cache=None, max_retries=1)
        with pytest.warns(RuntimeWarning, match="falling back to inline"):
            with pytest.raises(FaultInjected):
                runner.map(_double, [1, 2])
        assert runner.stats.worker_retries >= 1

    def test_transient_raise_fault_retried(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise@1")
        runner = ParallelRunner(2, cache=None, max_retries=2)
        assert runner.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert runner.stats.worker_retries == 1
        assert runner.stats.inline_fallbacks == 0


class TestBackoff:
    def test_capped_exponential_schedule(self):
        runner = ParallelRunner(2, cache=None, backoff=0.2)
        assert runner._backoff_delay(1) == pytest.approx(0.2)
        assert runner._backoff_delay(2) == pytest.approx(0.4)
        assert runner._backoff_delay(3) == pytest.approx(0.8)
        assert runner._backoff_delay(10) == BACKOFF_CAP_SECONDS

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
        monkeypatch.setenv("REPRO_TIMEOUT", "7.5")
        runner = ParallelRunner(2, cache=None)
        assert runner.max_retries == 5
        assert runner.backoff == 0.01
        assert runner.timeout == 7.5

    @pytest.mark.parametrize(
        ("name", "value", "match"),
        [
            ("REPRO_MAX_RETRIES", "lots", "REPRO_MAX_RETRIES"),
            ("REPRO_RETRY_BACKOFF", "soon", "REPRO_RETRY_BACKOFF"),
            ("REPRO_TIMEOUT", "never", "REPRO_TIMEOUT"),
            ("REPRO_TIMEOUT", "-1", "must be > 0"),
        ],
    )
    def test_env_knob_errors(self, monkeypatch, name, value, match):
        monkeypatch.setenv(name, value)
        with pytest.raises(ValueError, match=match):
            ParallelRunner(2, cache=None)


class TestRunJournal:
    def test_record_load_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("k1", "completed", attempt=0, seconds=1.5)
        journal.record("k2", "timeout", attempt=1)
        journal.record("k2", "retry", attempt=1)
        journal.record("k2", "completed", attempt=1, seconds=0.2)
        entries = RunJournal.load(path)
        assert [e["status"] for e in entries] == [
            "completed",
            "timeout",
            "retry",
            "completed",
        ]
        assert entries[0] == {
            "job_key": "k1",
            "status": "completed",
            "attempt": 0,
            "seconds": 1.5,
        }
        assert RunJournal.completed_keys(path) == {"k1", "k2"}

    def test_resumed_counts_as_complete(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal(path).record("k1", "resumed")
        assert "resumed" in COMPLETED_STATUSES
        assert RunJournal.completed_keys(path) == {"k1"}

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        good = json.dumps({"job_key": "k1", "status": "completed"})
        path.write_text(f'{good}\n{{"job_key": "k2", "st\n[1, 2]\n')
        assert RunJournal.completed_keys(path) == {"k1"}

    def test_missing_file_is_empty(self, tmp_path):
        assert RunJournal.load(tmp_path / "absent.jsonl") == []
        assert RunJournal.completed_keys(tmp_path / "absent.jsonl") == frozenset()

    def test_fresh_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal(path).record("k1", "completed")
        RunJournal(path, fresh=True)
        assert RunJournal.load(path) == []

    def test_record_swallows_filesystem_errors(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        RunJournal(blocker / "run.jsonl").record("k1", "completed")

    def test_journal_path_lives_next_to_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert journal_path("abc") == tmp_path / "journals" / "abc.jsonl"


def _tiny_spec():
    scenarios = tuple(
        ScenarioSpec(
            key=("r", rate),
            num_terminals=16,
            num_vcs=2,
            buffer_depth=3,
            injection_rate=rate,
        )
        for rate in (0.02, 0.04, 0.06)
    )
    return ExperimentSpec(name="tiny", scenarios=scenarios, seed=3, fast=True)


class TestExecuteSpecResume:
    def test_interrupted_sweep_resumes_with_identical_results(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        spec = _tiny_spec()

        # Run 1 dies on its third job: two jobs journal as completed.
        monkeypatch.setenv(FAULTS_ENV, "raise@2x*")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "0")
        with pytest.raises(FaultInjected):
            execute_spec(spec, jobs=1)
        path = journal_path(spec.content_key())
        assert len(RunJournal.completed_keys(path)) == 2

        # Run 2 resumes: only the missing job executes.
        monkeypatch.delenv(FAULTS_ENV)
        resumed = execute_spec(spec, jobs=1, resume=True)
        assert resumed.stats.resumed_jobs == 2
        assert resumed.stats.jobs_run == 1
        statuses = {e["status"] for e in RunJournal.load(path)}
        assert {"resumed", "completed"} <= statuses

        # The resumed sweep is field-for-field identical to a clean one.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "scratch"))
        clean = execute_spec(spec, jobs=1)
        assert set(resumed.values) == set(clean.values)
        for key, value in clean.values.items():
            assert result_to_jsonable(resumed.values[key]) == result_to_jsonable(
                value
            )

    def test_resume_env_flag(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        spec = _tiny_spec()
        execute_spec(spec, jobs=1)
        monkeypatch.setenv("REPRO_RESUME", "1")
        resumed = execute_spec(spec, jobs=1)
        assert resumed.stats.resumed_jobs == 3
        assert resumed.stats.jobs_run == 0

    def test_stats_published_to_metrics_registry(self, monkeypatch, tmp_path):
        from repro.obs import MetricsRegistry
        from repro.parallel import ExecutionStats

        stats = ExecutionStats(
            jobs_run=3, worker_retries=2, cancellations=1, resumed_jobs=4
        )
        registry = MetricsRegistry()
        stats.publish(registry)
        data = registry.as_dict()
        assert data["runner_jobs_run"] == 3
        assert data["runner_worker_retries"] == 2
        assert data["runner_cancellations"] == 1
        assert data["runner_resumed_jobs"] == 4

        # execute_spec exports one execution_stats line when --metrics-out
        # is active.
        metrics_path = tmp_path / "metrics.jsonl"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_METRICS_OUT", str(metrics_path))
        execute_spec(_tiny_spec(), jobs=1)
        monkeypatch.delenv("REPRO_METRICS_OUT")
        lines = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
            if line.strip()
        ]
        summary = [l for l in lines if l.get("kind") == "execution_stats"]
        assert len(summary) == 1
        assert summary[0]["experiment"] == "tiny"
        assert summary[0]["metrics"]["runner_jobs_run"] == 3

    def test_fresh_run_restarts_journal(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        spec = _tiny_spec()
        execute_spec(spec, jobs=1)
        # Without --resume the journal restarts; cached results are hits
        # but not "resumed" (nothing was interrupted).
        rerun = execute_spec(spec, jobs=1)
        assert rerun.stats.cache_hits == 3
        assert rerun.stats.resumed_jobs == 0
