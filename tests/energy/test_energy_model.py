"""Tests for the energy model and activity accounting (Fig. 11 substrate)."""

import pytest

from repro.energy.activity import ActivityCounters
from repro.energy.energy_model import EnergyModel, EnergyParams


def counters(**kwargs):
    c = ActivityCounters()
    for k, v in kwargs.items():
        setattr(c, k, v)
    return c


class TestActivityCounters:
    def test_reset(self):
        c = counters(buffer_writes=5, cycles=10)
        c.reset()
        assert c.buffer_writes == 0
        assert c.cycles == 0

    def test_snapshot_roundtrip(self):
        c = counters(buffer_reads=3, link_traversals=7)
        snap = c.snapshot()
        assert snap["buffer_reads"] == 3
        assert ActivityCounters(**snap).link_traversals == 7


class TestEnergyModel:
    def make(self, k=1):
        return EnergyModel(
            radix=5, num_vcs=6, buffer_depth=5, virtual_inputs=k,
            num_routers=64, flit_width_bits=128,
        )

    def test_crossbar_geometry(self):
        assert self.make(1).crossbar_rows == 5
        assert self.make(2).crossbar_rows == 10
        assert self.make(2).crossbar_cols == 5

    def test_vix_crossbar_traversal_costs_1_5x(self):
        """(10+5)/(5+5) = 1.5x span -> 1.5x per-traversal energy."""
        assert self.make(2).xbar_traversal_pj == pytest.approx(
            1.5 * self.make(1).xbar_traversal_pj
        )

    def test_component_accounting_is_linear(self):
        model = self.make()
        c1 = counters(buffer_writes=10, buffer_reads=10, xbar_traversals=10,
                      link_traversals=10, flits_ejected=10, cycles=10)
        c2 = counters(buffer_writes=20, buffer_reads=20, xbar_traversals=20,
                      link_traversals=20, flits_ejected=20, cycles=20)
        b1, b2 = model.evaluate(c1), model.evaluate(c2)
        assert b2.total == pytest.approx(2 * b1.total)
        assert b2.per_bit == pytest.approx(b1.per_bit)

    def test_per_bit_components_sum_to_total(self):
        model = self.make()
        c = counters(buffer_writes=100, buffer_reads=100, xbar_traversals=100,
                     link_traversals=80, flits_ejected=100, cycles=50)
        bd = model.evaluate(c)
        comp = bd.per_bit_components()
        assert sum(comp.values()) == pytest.approx(bd.per_bit)

    def test_zero_bits_rejected(self):
        bd = self.make().evaluate(counters(cycles=10))
        with pytest.raises(ValueError):
            _ = bd.per_bit

    def test_idle_network_burns_clock_and_leakage_only(self):
        bd = self.make().evaluate(counters(cycles=100, flits_ejected=1))
        assert bd.buffer == 0
        assert bd.crossbar == 0
        assert bd.link == 0
        assert bd.clock > 0
        assert bd.leakage > 0

    def test_custom_params(self):
        params = EnergyParams(link_pj=10.0)
        model = EnergyModel(radix=5, num_vcs=6, buffer_depth=5, params=params)
        bd = model.evaluate(counters(link_traversals=3, flits_ejected=1))
        assert bd.link == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(radix=0, num_vcs=6, buffer_depth=5)


class TestVixOverheadShape:
    def test_same_activity_vix_costs_a_few_percent_more(self):
        """With identical traffic, VIX pays only for the bigger crossbar —
        the Fig. 11 result (~+4%)."""
        act = counters(
            buffer_writes=1600, buffer_reads=1600, xbar_traversals=1600,
            link_traversals=1350, flits_ejected=1600, cycles=1000,
        )
        base = EnergyModel(radix=5, num_vcs=6, buffer_depth=5,
                           virtual_inputs=1).evaluate(act)
        vix = EnergyModel(radix=5, num_vcs=6, buffer_depth=5,
                          virtual_inputs=2).evaluate(act)
        overhead = vix.total / base.total - 1
        assert 0.01 < overhead < 0.08
        comp_b = base.per_bit_components()
        comp_v = vix.per_bit_components()
        assert comp_v["crossbar"] > comp_b["crossbar"]
        assert comp_v["buffer"] == pytest.approx(comp_b["buffer"])
        assert comp_v["link"] == pytest.approx(comp_b["link"])
