"""Unit tests for the dimension-order routing helpers."""

from repro.routing.dor import (
    MeshDirection,
    fbfly_hops,
    fbfly_next_dimension,
    mesh_hops,
    mesh_next_direction,
)


class TestMeshNextDirection:
    def test_local(self):
        assert mesh_next_direction(3, 3, 3, 3) is MeshDirection.LOCAL

    def test_x_resolves_first(self):
        assert mesh_next_direction(0, 0, 2, 5) is MeshDirection.EAST
        assert mesh_next_direction(4, 0, 2, 5) is MeshDirection.WEST

    def test_y_after_x(self):
        assert mesh_next_direction(2, 0, 2, 5) is MeshDirection.SOUTH
        assert mesh_next_direction(2, 7, 2, 5) is MeshDirection.NORTH

    def test_hops_is_manhattan(self):
        assert mesh_hops(0, 0, 3, 4) == 7
        assert mesh_hops(5, 5, 5, 5) == 0


class TestFbflyNextDimension:
    def test_local(self):
        assert fbfly_next_dimension(1, 2, 1, 2) is None

    def test_x_first(self):
        assert fbfly_next_dimension(0, 0, 3, 2) == (0, 3)

    def test_y_after_x(self):
        assert fbfly_next_dimension(3, 0, 3, 2) == (1, 2)

    def test_hops(self):
        assert fbfly_hops(0, 0, 3, 2) == 2
        assert fbfly_hops(0, 2, 3, 2) == 1
        assert fbfly_hops(3, 2, 3, 2) == 0
