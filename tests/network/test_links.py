"""Inter-chip links: config validation, serialization width, environment
resolution, and the event-kind constants shared with the network core.
"""

from __future__ import annotations

import pytest

from repro.network import network as network_module
from repro.network.config import NetworkConfig
from repro.network.domain import DomainNetwork
from repro.network.links import (
    InterChipLink,
    LinkConfig,
    LinkIngress,
    PartitionConfig,
)
from repro.network.links import _ARRIVAL as LINK_ARRIVAL
from repro.network.links import _CREDIT as LINK_CREDIT
from repro.registry import links as link_registry
from repro.topology import make_topology
from repro.topology.partition import grid_partition


class TestEventKindSync:
    def test_constants_match_network_module(self):
        """links.py duplicates the wheel event kinds to avoid an import
        cycle; this is the guard that keeps the copies in sync."""
        assert LINK_ARRIVAL == network_module._ARRIVAL
        assert LINK_CREDIT == network_module._CREDIT


class TestLinkConfig:
    def test_defaults_model_an_on_chip_hop(self):
        cfg = LinkConfig()
        assert cfg.latency == 0
        assert cfg.width == 0
        assert cfg.effective_credit_latency == 0

    def test_credit_latency_mirrors_latency_by_default(self):
        assert LinkConfig(latency=7).effective_credit_latency == 7
        assert LinkConfig(latency=7, credit_latency=2).effective_credit_latency == 2

    @pytest.mark.parametrize(
        "kwargs",
        [dict(latency=-1), dict(width=-2), dict(credit_latency=-1)],
    )
    def test_negative_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LinkConfig(**kwargs)

    def test_min_cross_delay_is_the_conservative_epoch(self):
        cfg = LinkConfig(latency=4)
        # min(pipeline + latency, credit_delay + credit_latency)
        assert cfg.min_cross_delay(3, 2) == min(3 + 4, 2 + 4)
        assert LinkConfig().min_cross_delay(3, 2) == 2
        assert LinkConfig(latency=10, credit_latency=0).min_cross_delay(3, 2) == 2

    def test_registry_schemes(self):
        assert link_registry.canonical("interchip") == "credit"
        assert link_registry.canonical("zero") == "ideal"
        credit = link_registry.create("credit", latency=5, width=2)
        assert (credit.latency, credit.width) == (5, 2)
        ideal = link_registry.create("ideal", latency=5, width=2)
        assert (ideal.latency, ideal.width, ideal.effective_credit_latency) == (0, 0, 0)


def _linked_pair(link_config: LinkConfig):
    """Two neighbouring domains of a 2x1-partitioned 4x4 mesh plus the
    first cut link between them, wired for in-process stepping."""
    config = NetworkConfig(topology="mesh", num_terminals=16)
    topo = make_topology("mesh", 16)
    plan = grid_partition(topo, (2, 1))
    domains = [DomainNetwork(config, plan, d, topo) for d in range(2)]
    spec = next(s for s in plan.cut_links if plan.router_domain[s.src_router] == 0)
    link = InterChipLink(
        0, spec, link_config, src_net=domains[0], dst_net=domains[1]
    )
    domains[1].attach_ingress(link)
    return domains, spec, link


class TestInterChipLink:
    def test_wiring_installs_port_link_and_ingress(self):
        domains, spec, link = _linked_pair(LinkConfig())
        out = domains[0].routers[spec.src_router].outputs[spec.src_port]
        assert out.link is link
        up = domains[1].routers[spec.dst_router].upstream[spec.dst_port]
        assert isinstance(up, LinkIngress)
        assert up.owner == -2
        assert up.link is link

    def test_zero_latency_flit_timing_matches_monolith(self):
        domains, spec, link = _linked_pair(LinkConfig())
        pipe = domains[0].config.router.pipeline_stages
        link.send_flit(100, 0, object())
        ((when, events),) = list(domains[1]._events.items())
        assert when == 100 + pipe
        assert events[0][0] == LINK_ARRIVAL
        assert link.flits_carried == 1

    def test_latency_adds_to_pipeline(self):
        domains, spec, link = _linked_pair(LinkConfig(latency=6))
        pipe = domains[0].config.router.pipeline_stages
        link.send_flit(100, 0, object())
        assert min(domains[1]._events) == 100 + pipe + 6

    def test_width_serializes_back_to_back_flits(self):
        domains, spec, link = _linked_pair(LinkConfig(width=3))
        pipe = domains[0].config.router.pipeline_stages
        for _ in range(3):
            link.send_flit(100, 0, object())
        # Slots 100, 103, 106: one flit per `width` cycles.
        assert sorted(domains[1]._events) == [100 + pipe, 103 + pipe, 106 + pipe]

    def test_width_leq_one_never_serializes(self):
        domains, spec, link = _linked_pair(LinkConfig(width=1))
        pipe = domains[0].config.router.pipeline_stages
        link.send_flit(100, 0, object())
        link.send_flit(100, 1, object())
        assert list(domains[1]._events) == [100 + pipe]
        assert len(domains[1]._events[100 + pipe]) == 2

    def test_credit_timing_matches_monolith(self):
        domains, spec, link = _linked_pair(LinkConfig())
        delay = domains[0].config.router.credit_delay
        link.send_credit(200, 1, True)
        ((when, events),) = list(domains[0]._events.items())
        assert when == 200 + delay
        kind, sink, vc, release = events[0]
        assert kind == LINK_CREDIT
        assert sink is domains[0].routers[spec.src_router].outputs[spec.src_port]
        assert (vc, release) == (1, True)
        assert link.credits_returned == 1

    def test_detached_dst_buffers_flits_in_outbox(self):
        """Worker mode, source side: the remote destination is severed, so
        granted flits buffer in the outbox until the coordinator ferries."""
        domains, spec, link = _linked_pair(LinkConfig())
        link.dst_net = None
        link.send_flit(10, 0, object())
        assert link.pending() == 1
        msgs = link.drain_outbox()
        assert len(msgs) == 1 and link.outbox == []
        # The destination-side copy ingests the ferried batch.
        link.dst_net = domains[1]
        link.ingest(msgs)
        assert any(
            e[0] == LINK_ARRIVAL for evs in domains[1]._events.values() for e in evs
        )
        assert link.pending() == 0

    def test_detached_src_buffers_credits_in_outbox(self):
        """Worker mode, destination side: the remote source is severed, so
        returning credits buffer in the outbox (flit-count stays zero)."""
        domains, spec, link = _linked_pair(LinkConfig())
        link.src_net = None
        link.send_credit(10, 1, True)
        assert link.pending() == 0
        msgs = link.drain_outbox()
        assert len(msgs) == 1
        link.src_net = domains[0]
        link.ingest(msgs)
        assert any(
            e[0] == LINK_CREDIT for evs in domains[0]._events.values() for e in evs
        )


class TestPartitionConfig:
    def test_canonicalizes_scheme_and_link(self):
        cfg = PartitionConfig(scheme="chiplet_grid", link="interchip")
        assert cfg.scheme == "grid"
        assert cfg.link == "credit"

    def test_accepts_vectorized_domain_engine(self):
        assert PartitionConfig(domain_engine="vectorized").domain_engine == "vectorized"

    def test_rejects_unknown_domain_engine(self):
        with pytest.raises(ValueError, match="domain_engine.*'simd'"):
            PartitionConfig(domain_engine="simd")

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError, match="dims"):
            PartitionConfig(dims=(0, 2))

    def test_spec_excludes_workers(self):
        a = PartitionConfig(workers=1)
        b = PartitionConfig(workers="auto")
        assert a.spec() == b.spec()
        assert "workers" not in a.spec()

    def test_link_config_carries_latency_and_width(self):
        cfg = PartitionConfig(link_latency=4, link_width=2).link_config()
        assert (cfg.latency, cfg.width) == (4, 2)

    def test_link_config_carries_credit_latency(self):
        cfg = PartitionConfig(link_latency=4, link_credit_latency=1).link_config()
        assert cfg.effective_credit_latency == 1

    def test_credit_latency_defaults_to_forward_latency(self):
        cfg = PartitionConfig(link_latency=4).link_config()
        assert cfg.effective_credit_latency == 4

    def test_spec_includes_credit_latency(self):
        a = PartitionConfig(link_latency=4)
        b = PartitionConfig(link_latency=4, link_credit_latency=1)
        assert a.spec() != b.spec()
        assert b.spec()["link_credit_latency"] == 1

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITION", "4x2")
        monkeypatch.setenv("REPRO_PARTITION_LINK", "ideal")
        monkeypatch.setenv("REPRO_LINK_LATENCY", "3")
        monkeypatch.setenv("REPRO_LINK_WIDTH", "2")
        monkeypatch.setenv("REPRO_LINK_CREDIT_LATENCY", "1")
        monkeypatch.setenv("REPRO_DOMAIN_ENGINE", "dense")
        monkeypatch.setenv("REPRO_PARTITION_WORKERS", "auto")
        cfg = PartitionConfig.from_env()
        assert cfg.dims == (4, 2)
        assert cfg.link == "ideal"
        assert (cfg.link_latency, cfg.link_width) == (3, 2)
        assert cfg.link_credit_latency == 1
        assert cfg.domain_engine == "dense"
        assert cfg.workers == "auto"

    def test_from_env_defaults(self, monkeypatch):
        for var in (
            "REPRO_PARTITION",
            "REPRO_PARTITION_LINK",
            "REPRO_LINK_LATENCY",
            "REPRO_LINK_WIDTH",
            "REPRO_LINK_CREDIT_LATENCY",
            "REPRO_DOMAIN_ENGINE",
            "REPRO_PARTITION_WORKERS",
        ):
            monkeypatch.delenv(var, raising=False)
        cfg = PartitionConfig.from_env()
        assert cfg == PartitionConfig()
        assert cfg.link_credit_latency is None

    def test_from_env_rejects_malformed_grid(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITION", "2by2")
        with pytest.raises(ValueError, match="REPRO_PARTITION"):
            PartitionConfig.from_env()

    @pytest.mark.parametrize(
        "var",
        ["REPRO_LINK_LATENCY", "REPRO_LINK_WIDTH", "REPRO_LINK_CREDIT_LATENCY"],
    )
    def test_from_env_names_bad_integer_var(self, var, monkeypatch):
        """Malformed numbers name the offending variable, not a bare
        int() traceback (the $REPRO_JOBS error-contract precedent)."""
        monkeypatch.setenv(var, "fast")
        with pytest.raises(ValueError, match=rf"\${var}.*integer"):
            PartitionConfig.from_env()

    def test_from_env_names_bad_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITION_WORKERS", "many")
        with pytest.raises(
            ValueError, match=r"\$REPRO_PARTITION_WORKERS.*integer or 'auto'"
        ):
            PartitionConfig.from_env()
