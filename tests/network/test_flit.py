"""Unit tests for packets and flits."""

import pytest

from repro.network.flit import Flit, FlitType, Packet


class TestPacket:
    def test_basic_fields(self):
        p = Packet(7, src=1, dst=2, num_flits=4, created_cycle=10)
        assert (p.pid, p.src, p.dst, p.num_flits, p.created_cycle) == (7, 1, 2, 4, 10)
        assert p.ejected_cycle == -1

    def test_latency_requires_ejection(self):
        p = Packet(0, 0, 1, 1, 5)
        with pytest.raises(ValueError):
            _ = p.latency
        p.ejected_cycle = 25
        assert p.latency == 20

    def test_rejects_empty_packet(self):
        with pytest.raises(ValueError):
            Packet(0, 0, 1, 0, 0)

    def test_multiflit_segmentation(self):
        p = Packet(0, 0, 1, 4, 0)
        flits = p.make_flits()
        assert [f.ftype for f in flits] == [
            FlitType.HEAD, FlitType.BODY, FlitType.BODY, FlitType.TAIL,
        ]
        assert [f.seq for f in flits] == [0, 1, 2, 3]
        assert all(f.packet is p for f in flits)

    def test_two_flit_packet_has_no_body(self):
        flits = Packet(0, 0, 1, 2, 0).make_flits()
        assert [f.ftype for f in flits] == [FlitType.HEAD, FlitType.TAIL]

    def test_single_flit_packet(self):
        flits = Packet(0, 0, 1, 1, 0).make_flits()
        assert len(flits) == 1
        assert flits[0].ftype is FlitType.SINGLE


class TestFlit:
    def test_head_predicate(self):
        p = Packet(0, 0, 1, 4, 0)
        assert Flit(p, FlitType.HEAD, 0).is_head
        assert Flit(p, FlitType.SINGLE, 0).is_head
        assert not Flit(p, FlitType.BODY, 1).is_head
        assert not Flit(p, FlitType.TAIL, 3).is_head

    def test_tail_predicate(self):
        p = Packet(0, 0, 1, 4, 0)
        assert Flit(p, FlitType.TAIL, 3).is_tail
        assert Flit(p, FlitType.SINGLE, 0).is_tail
        assert not Flit(p, FlitType.HEAD, 0).is_tail
        assert not Flit(p, FlitType.BODY, 1).is_tail

    def test_exactly_one_head_one_tail_per_packet(self):
        for n in (1, 2, 3, 8):
            flits = Packet(0, 0, 1, n, 0).make_flits()
            assert sum(1 for f in flits if f.is_head) == 1
            assert sum(1 for f in flits if f.is_tail) == 1
            assert len(flits) == n
