"""End-to-end property tests: conservation and protocol restoration hold
for *any* small configuration and packet population.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.flit import Packet
from repro.network.network import Network


class _Collector:
    def __init__(self):
        self.packets = 0
        self.flits = 0

    def on_flit_ejected(self, terminal, cycle):
        self.flits += 1

    def on_packet_ejected(self, packet, cycle):
        self.packets += 1


@st.composite
def network_scenarios(draw):
    allocator = draw(
        st.sampled_from(
            ["input_first", "wavefront", "augmenting_path",
             "packet_chaining", "sparoflo", "vix", "ideal_vix"]
        )
    )
    num_vcs = draw(st.sampled_from([2, 4, 6]))
    buffer_depth = draw(st.integers(min_value=1, max_value=5))
    credit_delay = draw(st.integers(min_value=1, max_value=3))
    packet_length = draw(st.integers(min_value=1, max_value=5))
    cfg = NetworkConfig(
        topology="mesh",
        num_terminals=16,
        router=RouterConfig(
            allocator=allocator,
            num_vcs=num_vcs,
            buffer_depth=buffer_depth,
            credit_delay=credit_delay,
            virtual_inputs=2,
        ),
        packet_length=packet_length,
    )
    n_packets = draw(st.integers(min_value=1, max_value=25))
    pairs = [
        (draw(st.integers(0, 15)), draw(st.integers(0, 15)))
        for _ in range(n_packets)
    ]
    return cfg, pairs, packet_length


@given(network_scenarios())
@settings(max_examples=30, deadline=None)
def test_property_every_flit_delivered_and_protocol_restored(scenario):
    cfg, pairs, packet_length = scenario
    net = Network(cfg)
    obs = _Collector()
    net.stats = obs
    for pid, (src, dst) in enumerate(pairs):
        assert net.inject(Packet(pid, src, dst, packet_length, 0))

    for _ in range(6000):
        net.step()
        if net.idle():
            break

    # Conservation: everything injected comes out, exactly once.
    assert net.idle(), "network failed to drain"
    assert obs.packets == len(pairs)
    assert obs.flits == len(pairs) * packet_length

    # Protocol restoration: all credits returned, no VC left allocated.
    depth = cfg.router.buffer_depth
    for router in net.routers:
        for out in router.outputs:
            if out is None or out.is_ejection:
                continue
            for ovc in out.out_vcs:
                assert ovc.credits == depth and not ovc.allocated
        for port in router.inputs:
            for ivc in port:
                assert ivc.occupancy == 0
    for ni in net.interfaces:
        for ovc in ni.out_vcs:
            assert ovc.credits == depth and not ovc.allocated

    # Counter consistency on a drained network.
    c = net.counters
    assert c.buffer_reads == c.buffer_writes == c.xbar_traversals
    assert c.flits_ejected == obs.flits
