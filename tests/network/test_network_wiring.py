"""Structural tests: the Network must wire routers exactly per topology."""

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.interface import NetworkInterface
from repro.network.network import Network


def make_network(topology="mesh", terminals=16):
    return Network(
        NetworkConfig(topology=topology, num_terminals=terminals,
                      router=RouterConfig())
    )


@pytest.mark.parametrize("topology,terminals", [
    ("mesh", 16), ("cmesh", 16), ("fbfly", 16), ("mesh", 64),
])
class TestWiring:
    def test_output_ports_match_topology(self, topology, terminals):
        net = make_network(topology, terminals)
        topo = net.topology
        for router in net.routers:
            for port in range(topo.radix):
                out = router.outputs[port]
                if topo.is_local_port(port):
                    assert out is not None and out.is_ejection
                elif topo.neighbor(router.rid, port) is None:
                    assert out is None  # dead mesh edge
                else:
                    nb = topo.neighbor(router.rid, port)
                    assert (out.dest_router, out.dest_port) == nb

    def test_upstream_pointers_are_consistent(self, topology, terminals):
        """router B's input p upstream must be the OutputPort that targets
        (B, p) — or the NI on local ports."""
        net = make_network(topology, terminals)
        topo = net.topology
        for router in net.routers:
            for port in range(topo.radix):
                upstream = router.upstream[port]
                if topo.is_local_port(port):
                    if upstream is not None:  # local port with a terminal
                        assert isinstance(upstream, NetworkInterface)
                        assert upstream.router_id == router.rid
                        assert upstream.local_port == port
                elif upstream is not None:
                    assert upstream.dest_router == router.rid
                    assert upstream.dest_port == port

    def test_every_terminal_has_an_interface(self, topology, terminals):
        net = make_network(topology, terminals)
        assert len(net.interfaces) == terminals
        for t, ni in enumerate(net.interfaces):
            assert ni.terminal == t
            r, lp = net.topology.router_of(t)
            assert (ni.router_id, ni.local_port) == (r, lp)


class TestConstructionErrors:
    def test_terminal_count_mismatch_with_custom_topology(self):
        from repro.topology import make_topology

        topo = make_topology("mesh", 16)
        cfg = NetworkConfig(topology="mesh", num_terminals=64,
                            router=RouterConfig())
        with pytest.raises(ValueError, match="terminals"):
            Network(cfg, topology=topo)

    def test_counters_start_at_zero(self):
        net = make_network()
        assert net.counters.cycles == 0
        assert net.cycle == 0
        assert net.idle()
