"""Integration tests: whole-network behaviour end to end."""

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.flit import Packet
from repro.network.network import Network


def make_network(allocator="input_first", terminals=16, topology="mesh", **rk):
    cfg = NetworkConfig(
        topology=topology,
        num_terminals=terminals,
        router=RouterConfig(allocator=allocator, **rk),
        packet_length=4,
    )
    return Network(cfg)


class RecordingStats:
    """Minimal observer capturing ejection events."""

    def __init__(self):
        self.packets = []
        self.flits = []

    def on_flit_ejected(self, terminal, cycle):
        self.flits.append((terminal, cycle))

    def on_packet_ejected(self, packet, cycle):
        self.packets.append((packet, cycle))


def deliver(net, packets, max_cycles=500):
    stats = RecordingStats()
    net.stats = stats
    for p in packets:
        assert net.inject(p)
    for _ in range(max_cycles):
        net.step()
        if net.idle():
            break
    return stats


class TestSinglePacketDelivery:
    def test_packet_reaches_destination(self):
        net = make_network()
        stats = deliver(net, [Packet(0, src=0, dst=15, num_flits=4, created_cycle=0)])
        assert len(stats.packets) == 1
        packet, cycle = stats.packets[0]
        assert packet.pid == 0
        assert packet.ejected_cycle == cycle

    def test_all_flits_ejected_at_destination(self):
        net = make_network()
        stats = deliver(net, [Packet(0, 0, 15, 4, 0)])
        assert len(stats.flits) == 4
        assert all(term == 15 for term, _ in stats.flits)

    def test_self_traffic_same_terminal(self):
        net = make_network()
        stats = deliver(net, [Packet(0, 5, 5, 4, 0)])
        assert len(stats.packets) == 1

    def test_network_idle_after_drain(self):
        net = make_network()
        deliver(net, [Packet(0, 0, 15, 4, 0)])
        assert net.idle()
        assert net.outstanding_flits() == 0

    def test_zero_load_latency_scales_with_hops(self):
        """Each extra mesh hop costs exactly pipeline_stages cycles."""
        lat = {}
        for dst in (1, 2, 3):  # 1, 2, 3 hops east on the 4x4 mesh
            net = make_network()
            stats = deliver(net, [Packet(0, 0, dst, 4, 0)])
            lat[dst] = stats.packets[0][1]
        assert lat[2] - lat[1] == 3
        assert lat[3] - lat[2] == 3


class TestConservationAndOrdering:
    @pytest.mark.parametrize(
        "allocator",
        ["input_first", "wavefront", "augmenting_path", "packet_chaining", "vix", "ideal_vix"],
    )
    def test_flit_conservation(self, allocator):
        """Every injected flit is ejected exactly once, for every allocator."""
        net = make_network(allocator=allocator)
        packets = [
            Packet(i, src=i % 16, dst=(i * 7 + 3) % 16, num_flits=4, created_cycle=0)
            for i in range(40)
        ]
        stats = deliver(net, packets, max_cycles=3000)
        assert len(stats.packets) == 40
        assert len(stats.flits) == 40 * 4
        assert net.counters.flits_ejected == 160
        assert net.counters.packets_ejected == 40

    def test_flits_of_packet_arrive_in_order(self):
        net = make_network()

        seen = []

        class OrderStats(RecordingStats):
            def on_flit_ejected(self, terminal, cycle):
                seen.append(cycle)

        net.stats = OrderStats()
        net.inject(Packet(0, 0, 15, 4, 0))
        for _ in range(200):
            net.step()
            if net.idle():
                break
        assert seen == sorted(seen)
        assert len(seen) == 4

    def test_per_flow_packet_order_preserved(self):
        """Same src->dst packets leave in injection order (same VC path
        ordering is not guaranteed across VCs, but tails cannot overtake
        when using distinct pids we can still check count)."""
        net = make_network()
        packets = [Packet(i, 0, 15, 4, 0) for i in range(6)]
        stats = deliver(net, packets, max_cycles=1000)
        assert len(stats.packets) == 6


class TestCreditProtocol:
    def test_credits_restored_after_drain(self):
        net = make_network()
        deliver(net, [Packet(0, 0, 15, 4, 0)])
        for router in net.routers:
            for out in router.outputs:
                if out is None or out.is_ejection:
                    continue
                for ovc in out.out_vcs:
                    assert ovc.credits == net.config.router.buffer_depth
                    assert not ovc.allocated
        for ni in net.interfaces:
            for ovc in ni.out_vcs:
                assert ovc.credits == net.config.router.buffer_depth
                assert not ovc.allocated

    def test_no_buffer_overflow_under_stress(self):
        """Hammer one destination: credits must prevent any overflow."""
        net = make_network(buffer_depth=2, num_vcs=2)
        packets = [Packet(i, src=i % 15, dst=15, num_flits=4, created_cycle=0)
                   for i in range(30)]
        stats = deliver(net, packets, max_cycles=5000)
        assert len(stats.packets) == 30  # OverflowError would have raised

    def test_activity_counters_consistent(self):
        net = make_network()
        deliver(net, [Packet(0, 0, 3, 4, 0)])
        c = net.counters
        assert c.buffer_reads == c.buffer_writes  # drained network
        assert c.xbar_traversals == c.buffer_reads
        # Terminal 0 -> 3: routers 0-1-2-3, i.e. 3 inter-router links,
        # crossed by each of the 4 flits (injection is not a network link).
        assert c.link_traversals == 4 * 3
        assert c.buffer_writes == 4 * 4  # buffered in each of 4 routers


class TestTopologies:
    @pytest.mark.parametrize("topology,terminals", [("cmesh", 16), ("fbfly", 16)])
    def test_delivery_on_concentrated_topologies(self, topology, terminals):
        net = make_network(topology=topology, terminals=terminals)
        packets = [
            Packet(i, src=i % terminals, dst=(i * 5 + 2) % terminals,
                   num_flits=4, created_cycle=0)
            for i in range(30)
        ]
        stats = deliver(net, packets, max_cycles=3000)
        assert len(stats.packets) == 30


class TestVIXBehaviour:
    def test_two_flits_leave_one_input_port_same_cycle(self):
        """The Fig. 4 property observed in the real router pipeline."""
        net = make_network(allocator="vix", virtual_inputs=2)
        router = net.routers[1]  # middle of the bottom row
        # Two packets arrive on the west input port in different VC groups,
        # one ejecting locally, one continuing east.
        p_local = Packet(0, 0, 1, 1, 0)
        p_east = Packet(1, 0, 2, 1, 0)
        router.accept_flit(2, 0, p_local.make_flits()[0])  # VC0, group 0
        router.accept_flit(2, 3, p_east.make_flits()[0])   # VC3, group 1
        router.vc_allocate()
        grants = router.switch_allocate()
        assert len(grants) == 2
        assert {g.out_port for g in grants} == {0, 1}  # local + east
