"""Unit tests for router/network configuration."""

import pytest

from repro.network.config import NetworkConfig, RouterConfig, paper_config


class TestRouterConfig:
    def test_paper_defaults(self):
        rc = RouterConfig()
        assert rc.num_vcs == 6
        assert rc.buffer_depth == 5
        assert rc.pipeline_stages == 3
        assert rc.allocator == "input_first"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_vcs", 0),
            ("buffer_depth", 0),
            ("virtual_inputs", 0),
            ("credit_delay", -1),
            ("pipeline_stages", 0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            RouterConfig(**{field: value})

    def test_effective_virtual_inputs_baseline(self):
        assert RouterConfig(allocator="input_first").effective_virtual_inputs == 1
        assert RouterConfig(allocator="wavefront").effective_virtual_inputs == 1
        assert RouterConfig(allocator="augmenting_path").effective_virtual_inputs == 1

    def test_effective_virtual_inputs_vix(self):
        assert RouterConfig(allocator="vix", virtual_inputs=2).effective_virtual_inputs == 2
        assert RouterConfig(allocator="ideal_vix").effective_virtual_inputs == 6

    def test_vix_k_capped_by_vcs(self):
        rc = RouterConfig(allocator="vix", virtual_inputs=8, num_vcs=4)
        assert rc.effective_virtual_inputs == 4


class TestNetworkConfig:
    def test_defaults_match_methodology(self):
        cfg = NetworkConfig()
        assert cfg.num_terminals == 64
        assert cfg.flit_width_bits == 128
        assert cfg.packet_length == 4  # 512-bit packets

    def test_with_router_replaces_fields(self):
        cfg = NetworkConfig()
        cfg2 = cfg.with_router(num_vcs=4)
        assert cfg2.router.num_vcs == 4
        assert cfg.router.num_vcs == 6  # original untouched

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            NetworkConfig(num_terminals=1)


class TestPaperConfig:
    def test_vix_enables_dimension_policy(self):
        cfg = paper_config("vix")
        assert cfg.router.vc_policy == "vix_dimension"
        assert cfg.router.allocator == "vix"

    def test_baseline_uses_max_credit(self):
        cfg = paper_config("if")
        assert cfg.router.vc_policy == "max_credit"
        assert cfg.router.allocator == "input_first"

    def test_aliases_resolve(self):
        assert paper_config("WF").router.allocator == "wavefront"
        assert paper_config("ideal").router.allocator == "ideal_vix"

    def test_topology_and_vcs_pass_through(self):
        cfg = paper_config("vix", topology="fbfly", num_vcs=4)
        assert cfg.topology == "fbfly"
        assert cfg.router.num_vcs == 4
