"""Unit tests for the router pipeline (VA + SA stages)."""

import pytest

from repro.network.buffer import VCState
from repro.network.config import NetworkConfig, RouterConfig
from repro.network.flit import Packet
from repro.network.network import Network
from repro.topology.mesh import PORT_EAST, PORT_LOCAL, PORT_WEST


def make_network(**router_kwargs):
    cfg = NetworkConfig(
        topology="mesh",
        num_terminals=16,
        router=RouterConfig(**router_kwargs),
        packet_length=4,
    )
    return Network(cfg)


def head_flit(dst, num_flits=1, pid=0):
    return Packet(pid, 0, dst, num_flits, 0).make_flits()[0]


class TestArrival:
    def test_head_flit_triggers_lookahead_routing(self):
        net = make_network()
        router = net.routers[0]
        # Destination terminal 3 is due east of router 0.
        router.accept_flit(PORT_LOCAL, 0, head_flit(dst=3))
        ivc = router.inputs[PORT_LOCAL][0]
        assert ivc.out_port == PORT_EAST
        assert ivc.state is VCState.VA_WAIT
        assert ivc.dst == 3

    def test_head_to_local_destination_skips_va(self):
        net = make_network()
        router = net.routers[0]
        router.accept_flit(PORT_LOCAL, 0, head_flit(dst=0))
        ivc = router.inputs[PORT_LOCAL][0]
        assert ivc.out_port == PORT_LOCAL
        assert ivc.state is VCState.ACTIVE  # ejection needs no out VC
        assert ivc.out_vc == 0

    def test_head_on_busy_vc_is_protocol_violation(self):
        net = make_network()
        router = net.routers[0]
        router.accept_flit(PORT_LOCAL, 0, head_flit(dst=3))
        with pytest.raises(RuntimeError, match="busy VC"):
            router.accept_flit(PORT_LOCAL, 0, head_flit(dst=5, pid=1))


class TestVCAllocation:
    def test_va_grants_free_downstream_vc(self):
        net = make_network()
        router = net.routers[0]
        router.accept_flit(PORT_LOCAL, 0, head_flit(dst=3))
        assert router.vc_allocate() == 1
        ivc = router.inputs[PORT_LOCAL][0]
        assert ivc.state is VCState.ACTIVE
        assert 0 <= ivc.out_vc < 6
        out = router.outputs[PORT_EAST]
        assert out.out_vcs[ivc.out_vc].allocated

    def test_va_blocks_when_all_vcs_allocated(self):
        net = make_network(num_vcs=2)
        router = net.routers[0]
        out = router.outputs[PORT_EAST]
        for ovc in out.out_vcs:
            ovc.allocated = True
        router.accept_flit(PORT_LOCAL, 0, head_flit(dst=3))
        assert router.vc_allocate() == 0
        assert router.inputs[PORT_LOCAL][0].state is VCState.VA_WAIT

    def test_va_grants_multiple_vcs_per_output_per_cycle(self):
        net = make_network()
        router = net.routers[0]
        router.accept_flit(PORT_LOCAL, 0, head_flit(dst=3, pid=0))
        router.accept_flit(PORT_WEST, 1, head_flit(dst=3, pid=1))
        assert router.vc_allocate() == 2
        a = router.inputs[PORT_LOCAL][0].out_vc
        b = router.inputs[PORT_WEST][1].out_vc
        assert a != b  # distinct downstream VCs

    def test_va_respects_queue_order_fairness(self):
        net = make_network(num_vcs=1)  # only one downstream VC
        router = net.routers[0]
        router.accept_flit(PORT_LOCAL, 0, head_flit(dst=3, pid=0))
        router.accept_flit(PORT_WEST, 0, head_flit(dst=3, pid=1))
        assert router.vc_allocate() == 1
        granted = [
            p for p, port in ((PORT_LOCAL, router.inputs[PORT_LOCAL][0]),
                              (PORT_WEST, router.inputs[PORT_WEST][0]))
            if port.state is VCState.ACTIVE
        ]
        assert len(granted) == 1


class TestSwitchAllocation:
    def test_active_vc_with_credit_requests(self):
        net = make_network()
        router = net.routers[0]
        router.accept_flit(PORT_LOCAL, 0, head_flit(dst=3))
        router.vc_allocate()
        grants = router.switch_allocate()
        assert len(grants) == 1
        g = grants[0]
        assert (g.in_port, g.vc, g.out_port) == (PORT_LOCAL, 0, PORT_EAST)

    def test_no_credit_no_request(self):
        net = make_network()
        router = net.routers[0]
        router.accept_flit(PORT_LOCAL, 0, head_flit(dst=3))
        router.vc_allocate()
        ivc = router.inputs[PORT_LOCAL][0]
        router.outputs[PORT_EAST].out_vcs[ivc.out_vc].credits = 0
        assert router.switch_allocate() == []

    def test_ejection_needs_no_credit(self):
        net = make_network()
        router = net.routers[0]
        router.accept_flit(PORT_WEST, 0, head_flit(dst=0))
        grants = router.switch_allocate()
        assert len(grants) == 1
        assert grants[0].out_port == PORT_LOCAL

    def test_empty_router_no_grants(self):
        net = make_network()
        assert net.routers[5].switch_allocate() == []

    def test_buffered_flits_counts(self):
        net = make_network()
        router = net.routers[0]
        flits = Packet(0, 0, 3, 3, 0).make_flits()
        for i, f in enumerate(flits):
            router.inputs[PORT_LOCAL][0].push(f) if i else router.accept_flit(
                PORT_LOCAL, 0, f
            )
        assert router.buffered_flits() == 3
