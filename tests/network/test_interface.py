"""Unit tests for the network interface (injection side)."""

from repro.core.vc_policy import MaxCreditPolicy
from repro.network.config import RouterConfig
from repro.network.flit import Packet
from repro.network.interface import NetworkInterface
from repro.topology.mesh import MeshTopology


def make_ni(max_queue=4, **router_kwargs):
    topo = MeshTopology(4, 4)
    rc = RouterConfig(**router_kwargs)
    return NetworkInterface(
        terminal=0,
        router_id=0,
        local_port=0,
        config=rc,
        policy=MaxCreditPolicy(),
        topology=topo,
        max_queue=max_queue,
    )


class TestQueueing:
    def test_enqueue_within_limit(self):
        ni = make_ni(max_queue=2)
        assert ni.enqueue(Packet(0, 0, 3, 4, 0))
        assert ni.enqueue(Packet(1, 0, 3, 4, 0))
        assert not ni.enqueue(Packet(2, 0, 3, 4, 0))
        assert ni.packets_dropped == 1
        assert ni.queue_length == 2

    def test_pending_flits_counts_queued_packets(self):
        ni = make_ni()
        ni.enqueue(Packet(0, 0, 3, 4, 0))
        assert ni.pending_flits() == 4


class TestInjection:
    def test_idle_ni_sends_nothing(self):
        assert make_ni().next_flit() is None

    def test_head_flit_allocates_vc_and_consumes_credit(self):
        ni = make_ni()
        ni.enqueue(Packet(0, 0, 3, 4, 0))
        vc, flit = ni.next_flit()
        assert flit.is_head
        assert ni.out_vcs[vc].allocated
        assert ni.out_vcs[vc].credits == 4  # depth 5 minus 1

    def test_one_flit_per_cycle(self):
        ni = make_ni()
        ni.enqueue(Packet(0, 0, 3, 4, 0))
        sent = [ni.next_flit() for _ in range(4)]
        assert all(s is not None for s in sent)
        vcs = {vc for vc, _ in sent}
        assert len(vcs) == 1  # whole packet on one VC
        assert sent[-1][1].is_tail
        assert ni.next_flit() is None

    def test_blocks_without_credit(self):
        ni = make_ni(buffer_depth=2)
        ni.enqueue(Packet(0, 0, 3, 4, 0))
        assert ni.next_flit() is not None
        assert ni.next_flit() is not None
        assert ni.next_flit() is None  # 2 credits gone
        vc = [i for i, o in enumerate(ni.out_vcs) if o.allocated][0]
        ni.out_vcs[vc].credits += 1
        assert ni.next_flit() is not None

    def test_blocks_when_all_vcs_allocated(self):
        ni = make_ni(num_vcs=1)
        ni.enqueue(Packet(0, 0, 3, 1, 0))
        ni.next_flit()
        # VC 0 allocated (tail credit not yet returned); next packet waits.
        ni.enqueue(Packet(1, 0, 5, 1, 0))
        assert ni.next_flit() is None
        ni.out_vcs[0].allocated = False
        assert ni.next_flit() is not None

    def test_second_packet_uses_free_vc(self):
        ni = make_ni()
        ni.enqueue(Packet(0, 0, 3, 1, 0))
        ni.enqueue(Packet(1, 0, 5, 1, 0))
        vc0, f0 = ni.next_flit()
        vc1, f1 = ni.next_flit()
        assert f0.packet.pid == 0 and f1.packet.pid == 1
        assert vc0 != vc1  # first VC still allocated
