"""Integration tests across router configuration variations.

The credit protocol, pipeline model, and VC policies must stay correct at
configuration extremes (single VC, depth-1 buffers, long credit delays,
deeper pipelines), not just at the paper's defaults.
"""

import pytest

from repro.network.buffer import VCState
from repro.network.config import NetworkConfig, RouterConfig
from repro.network.flit import Packet
from repro.network.network import Network


def make_network(**rk):
    cfg = NetworkConfig(
        topology="mesh",
        num_terminals=16,
        router=RouterConfig(**rk),
        packet_length=4,
    )
    return Network(cfg)


def deliver_all(net, packets, max_cycles=4000):
    done = []

    class Obs:
        def on_flit_ejected(self, terminal, cycle):
            pass

        def on_packet_ejected(self, packet, cycle):
            done.append((packet, cycle))

    net.stats = Obs()
    for p in packets:
        assert net.inject(p)
    for _ in range(max_cycles):
        net.step()
        if net.idle():
            break
    return done


def burst(n=20, terminals=16):
    return [
        Packet(i, src=i % terminals, dst=(i * 7 + 3) % terminals, num_flits=4,
               created_cycle=0)
        for i in range(n)
    ]


class TestBufferExtremes:
    def test_depth_one_buffers_still_deliver(self):
        net = make_network(buffer_depth=1)
        assert len(deliver_all(net, burst())) == 20

    def test_single_vc_still_delivers(self):
        net = make_network(num_vcs=1, virtual_inputs=1)
        assert len(deliver_all(net, burst())) == 20

    def test_single_vc_depth_one_worst_case(self):
        net = make_network(num_vcs=1, buffer_depth=1)
        assert len(deliver_all(net, burst(10))) == 10

    def test_deep_buffers(self):
        net = make_network(buffer_depth=16)
        assert len(deliver_all(net, burst())) == 20


class TestCreditDelay:
    @pytest.mark.parametrize("delay", [1, 4, 8])
    def test_delivery_across_credit_delays(self, delay):
        net = make_network(credit_delay=delay)
        assert len(deliver_all(net, burst())) == 20

    def test_zero_credit_delay_rejected(self):
        """A credit cannot arrive in the cycle that produced it — delay 0
        would silently drop credit events (regression test)."""
        with pytest.raises(ValueError, match="credit_delay"):
            make_network(credit_delay=0)

    def test_credits_fully_restore_at_minimum_delay(self):
        net = make_network(credit_delay=1)
        deliver_all(net, burst(10))
        assert net.idle()
        for ni in net.interfaces:
            assert all(o.credits == 5 and not o.allocated for o in ni.out_vcs)

    def test_longer_credit_delay_never_speeds_things_up(self):
        times = {}
        for delay in (1, 6):
            net = make_network(credit_delay=delay, buffer_depth=2)
            done = deliver_all(net, burst(30))
            times[delay] = max(cycle for _, cycle in done)
        assert times[6] >= times[1]


class TestPipelineDepth:
    @pytest.mark.parametrize("stages", [1, 2, 3, 5])
    def test_delivery_across_pipeline_depths(self, stages):
        net = make_network(pipeline_stages=stages)
        assert len(deliver_all(net, burst())) == 20

    def test_latency_scales_with_pipeline_depth(self):
        lat = {}
        for stages in (3, 5):
            net = make_network(pipeline_stages=stages)
            done = deliver_all(net, [Packet(0, 0, 15, 4, 0)])
            lat[stages] = done[0][1]
        # 0 -> 15 on the 4x4 mesh: 6 router hops + ejection.
        assert lat[5] - lat[3] == 2 * 7


class TestVixPolicySteering:
    def test_dimension_policy_steers_groups_at_network_level(self):
        """X-bound packets occupy group-0 VCs, Y-bound ones group-1."""
        net = make_network(
            allocator="vix", virtual_inputs=2, vc_policy="vix_dimension"
        )
        # Packet from terminal 0 to 3 travels east the whole way; at
        # intermediate routers its downstream direction class is X (0),
        # so VA must put it in group 0 (VCs 0-2).
        net.inject(Packet(0, 0, 3, 4, 0))
        seen_groups = set()
        for _ in range(6):
            net.step()
            for rid in (1, 2):
                for vc_index, ivc in enumerate(net.routers[rid].inputs[2]):
                    if ivc.state is not VCState.IDLE:
                        seen_groups.add(vc_index // 3)
        deliver_all(net, [])
        assert seen_groups == {0}

    def test_y_bound_packets_use_group_one(self):
        net = make_network(
            allocator="vix", virtual_inputs=2, vc_policy="vix_dimension"
        )
        # Terminal 1 -> 13: one hop east... actually (1,0) -> (1,3): pure
        # south path through routers 5 and 9 (north input port 3).
        net.inject(Packet(0, 1, 13, 4, 0))
        seen_groups = set()
        for _ in range(10):
            net.step()
            for rid in (5, 9):
                for vc_index, ivc in enumerate(net.routers[rid].inputs[3]):
                    if ivc.state is not VCState.IDLE:
                        seen_groups.add(vc_index // 3)
        deliver_all(net, [])
        assert seen_groups == {1}


class TestAllAllocatorsAtExtremes:
    @pytest.mark.parametrize(
        "allocator", ["wavefront", "augmenting_path", "packet_chaining", "sparoflo"]
    )
    def test_depth_one_single_vc_every_allocator(self, allocator):
        net = make_network(allocator=allocator, num_vcs=1, buffer_depth=1)
        assert len(deliver_all(net, burst(10))) == 10

    def test_ideal_vix_with_four_vcs(self):
        net = make_network(allocator="ideal_vix", num_vcs=4)
        assert len(deliver_all(net, burst())) == 20
