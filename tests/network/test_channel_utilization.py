"""Tests for per-link utilization tracking."""

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.flit import Packet
from repro.network.network import Network
from repro.topology.mesh import PORT_EAST


def make_network():
    return Network(
        NetworkConfig(topology="mesh", num_terminals=16,
                      router=RouterConfig(), packet_length=4)
    )


def run_until_idle(net, packets, max_cycles=2000):
    for p in packets:
        assert net.inject(p)
    for _ in range(max_cycles):
        net.step()
        if net.idle():
            break


class TestLinkAccounting:
    def test_every_topology_link_tracked(self):
        net = make_network()
        assert len(net.link_flits) == len(net.topology.links())
        assert all(v == 0 for v in net.link_flits.values())

    def test_single_packet_path_counted(self):
        net = make_network()
        run_until_idle(net, [Packet(0, 0, 3, 4, 0)])
        # Path 0 -> 1 -> 2 -> 3, each eastbound link carries 4 flits.
        for rid in (0, 1, 2):
            assert net.link_flits[(rid, PORT_EAST)] == 4
        # Links off the path carried nothing.
        assert net.link_flits[(4, PORT_EAST)] == 0

    def test_total_matches_counter(self):
        net = make_network()
        packets = [Packet(i, i % 16, (i * 5 + 2) % 16, 4, 0) for i in range(20)]
        run_until_idle(net, packets)
        assert sum(net.link_flits.values()) == net.counters.link_traversals


class TestUtilization:
    def test_utilization_bounded_by_one(self):
        net = make_network()
        packets = [Packet(i, i % 16, (i * 5 + 2) % 16, 4, 0) for i in range(40)]
        run_until_idle(net, packets)
        util = net.channel_utilization()
        assert all(0.0 <= u <= 1.0 for u in util.values())

    def test_hottest_links_sorted(self):
        net = make_network()
        # All traffic from the west edge to the east edge: row links load up.
        packets = [Packet(i, 0, 3, 4, 0) for i in range(10)]
        run_until_idle(net, packets)
        hottest = net.hottest_links(3)
        utils = [u for _, u in hottest]
        assert utils == sorted(utils, reverse=True)
        assert hottest[0][1] > 0

    def test_hottest_links_validation(self):
        with pytest.raises(ValueError):
            make_network().hottest_links(0)

    def test_idle_network_reports_zero(self):
        net = make_network()
        net.run(10)
        assert all(u == 0.0 for u in net.channel_utilization().values())
