"""Unit tests for VC buffers and credit state."""

import pytest

from repro.network.buffer import InputVC, OutVC, VCState
from repro.network.flit import Packet


def flits(n=4):
    return Packet(0, 0, 1, n, 0).make_flits()


class TestInputVC:
    def test_initial_state(self):
        vc = InputVC(port=1, index=2, depth=5)
        assert vc.state is VCState.IDLE
        assert vc.occupancy == 0
        assert vc.head() is None
        assert vc.out_port == -1

    def test_push_pop_fifo(self):
        vc = InputVC(0, 0, 5)
        fs = flits(3)
        for f in fs:
            vc.push(f)
        assert vc.occupancy == 3
        assert vc.head() is fs[0]
        assert [vc.pop() for _ in range(3)] == fs

    def test_overflow_raises(self):
        vc = InputVC(0, 0, 2)
        fs = flits(3)
        vc.push(fs[0])
        vc.push(fs[1])
        with pytest.raises(OverflowError, match="credit protocol"):
            vc.push(fs[2])

    def test_release_resets_routing_state(self):
        vc = InputVC(0, 0, 5)
        vc.state = VCState.ACTIVE
        vc.out_port = 3
        vc.out_vc = 2
        vc.dst = 9
        vc.release()
        assert vc.state is VCState.IDLE
        assert (vc.out_port, vc.out_vc, vc.dst) == (-1, -1, -1)

    def test_release_with_flits_buffered_is_an_error(self):
        vc = InputVC(0, 0, 5)
        vc.push(flits(1)[0])
        with pytest.raises(RuntimeError, match="atomic VC allocation"):
            vc.release()


class TestOutVC:
    def test_initial_credits_equal_depth(self):
        ovc = OutVC(5)
        assert ovc.credits == 5
        assert not ovc.allocated

    def test_credit_cycle(self):
        ovc = OutVC(2)
        ovc.allocated = True
        ovc.credits -= 1
        ovc.credits -= 1
        assert ovc.credits == 0
        ovc.credits += 1
        assert ovc.credits == 1
