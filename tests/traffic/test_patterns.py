"""Unit + property tests for traffic patterns."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.patterns import (
    PATTERN_NAMES,
    BitComplement,
    BitReverse,
    Hotspot,
    Neighbor,
    Shuffle,
    Tornado,
    Transpose,
    UniformRandom,
    make_pattern,
)


class TestUniformRandom:
    def test_never_self(self):
        pat = UniformRandom(64)
        rng = random.Random(1)
        assert all(pat.destination(s, rng) != s for s in range(64) for _ in range(20))

    def test_covers_all_destinations(self):
        pat = UniformRandom(8)
        rng = random.Random(2)
        seen = {pat.destination(0, rng) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_roughly_uniform(self):
        pat = UniformRandom(16)
        rng = random.Random(3)
        counts = Counter(pat.destination(5, rng) for _ in range(15000))
        expected = 15000 / 15
        assert all(0.7 * expected < counts[d] < 1.3 * expected for d in counts)

    def test_bad_source(self):
        with pytest.raises(ValueError):
            UniformRandom(8).destination(8, random.Random(0))


class TestPermutations:
    def test_bit_complement(self):
        pat = BitComplement(64)
        assert pat.destination(0, None) == 63
        assert pat.destination(0b101010, None) == 0b010101

    def test_bit_reverse(self):
        pat = BitReverse(64)  # 6 bits
        assert pat.destination(0b000001, None) == 0b100000
        assert pat.destination(0b110000, None) == 0b000011

    def test_shuffle(self):
        pat = Shuffle(8)  # 3 bits: rotate left
        assert pat.destination(0b001, None) == 0b010
        assert pat.destination(0b100, None) == 0b001

    def test_transpose(self):
        pat = Transpose(64)
        # (x=3, y=1) -> (x=1, y=3)
        assert pat.destination(1 * 8 + 3, None) == 3 * 8 + 1

    def test_tornado_half_ring(self):
        pat = Tornado(64)
        # (x, y) -> (x+3 mod 8, y)
        assert pat.destination(0, None) == 3
        assert pat.destination(6, None) == 1

    def test_neighbor(self):
        pat = Neighbor(64)
        assert pat.destination(0, None) == 1
        assert pat.destination(7, None) == 0  # wraps in x

    @pytest.mark.parametrize("cls", [BitComplement, BitReverse, Shuffle])
    def test_bit_patterns_need_power_of_two(self, cls):
        with pytest.raises(ValueError):
            cls(48)

    @pytest.mark.parametrize("cls", [Transpose, Tornado, Neighbor])
    def test_grid_patterns_need_square(self, cls):
        with pytest.raises(ValueError):
            cls(48)

    @pytest.mark.parametrize(
        "cls", [BitComplement, BitReverse, Transpose, Tornado, Neighbor]
    )
    def test_is_a_permutation(self, cls):
        pat = cls(64)
        dsts = [pat.destination(s, None) for s in range(64)]
        assert sorted(dsts) == list(range(64))


class TestHotspot:
    def test_hotspot_gets_extra_traffic(self):
        pat = Hotspot(64, hotspots=(7,), fraction=0.5)
        rng = random.Random(4)
        counts = Counter(pat.destination(0, rng) for _ in range(4000))
        assert counts[7] > 1500  # ~50% plus uniform share

    def test_fraction_zero_is_uniform(self):
        pat = Hotspot(64, hotspots=(7,), fraction=0.0)
        rng = random.Random(5)
        counts = Counter(pat.destination(0, rng) for _ in range(2000))
        assert counts[7] < 100

    def test_validation(self):
        with pytest.raises(ValueError):
            Hotspot(64, hotspots=())
        with pytest.raises(ValueError):
            Hotspot(64, hotspots=(99,))
        with pytest.raises(ValueError):
            Hotspot(64, fraction=1.5)


class TestFactory:
    @pytest.mark.parametrize("name", PATTERN_NAMES)
    def test_make_every_pattern(self, name):
        pat = make_pattern(name, 64)
        assert pat.num_terminals == 64

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_pattern("telepathy", 64)


@given(
    name=st.sampled_from(PATTERN_NAMES),
    src=st.integers(min_value=0, max_value=63),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=150)
def test_property_destination_in_range(name, src, seed):
    pat = make_pattern(name, 64)
    dst = pat.destination(src, random.Random(seed))
    assert 0 <= dst < 64
