"""Unit tests for the Bernoulli traffic injector."""

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.network import Network
from repro.traffic.injector import TrafficInjector
from repro.traffic.patterns import UniformRandom


def make_network(terminals=16):
    return Network(
        NetworkConfig(
            topology="mesh",
            num_terminals=terminals,
            router=RouterConfig(),
            packet_length=4,
        )
    )


class TestInjection:
    def test_rate_zero_injects_nothing(self):
        net = make_network()
        inj = TrafficInjector(net, UniformRandom(16), rate=0.0, seed=1)
        assert sum(inj.tick(t) for t in range(50)) == 0

    def test_rate_controls_volume(self):
        net = make_network()
        inj = TrafficInjector(net, UniformRandom(16), rate=0.1, seed=1)
        total = sum(inj.tick(t) for t in range(200))
        expected = 0.1 * 16 * 200
        assert expected * 0.8 < total < expected * 1.2

    def test_saturated_sources_keep_bounded_backlog(self):
        net = make_network()
        inj = TrafficInjector(net, UniformRandom(16), rate=1.0, seed=1)
        for t in range(20):
            inj.tick(t)
            net.step()
        for ni in net.interfaces:
            assert ni.queue_length <= 4

    def test_packet_length_override(self):
        net = make_network()
        inj = TrafficInjector(net, UniformRandom(16), rate=1.0,
                              packet_length=1, seed=1)
        inj.tick(0)
        assert all(p.num_flits == 1
                   for ni in net.interfaces for p in ni.queue)

    def test_created_counter_and_pids_unique(self):
        net = make_network()
        inj = TrafficInjector(net, UniformRandom(16), rate=0.5, seed=2)
        for t in range(30):
            inj.tick(t)
            net.step()
        assert inj.packets_created > 0

    def test_validation(self):
        net = make_network()
        with pytest.raises(ValueError):
            TrafficInjector(net, UniformRandom(16), rate=-0.1)
        with pytest.raises(ValueError):
            TrafficInjector(net, UniformRandom(64), rate=0.1)  # size mismatch
        with pytest.raises(ValueError):
            TrafficInjector(net, UniformRandom(16), rate=0.1, packet_length=0)

    def test_deterministic_with_seed(self):
        net1, net2 = make_network(), make_network()
        inj1 = TrafficInjector(net1, UniformRandom(16), rate=0.3, seed=9)
        inj2 = TrafficInjector(net2, UniformRandom(16), rate=0.3, seed=9)
        for t in range(20):
            assert inj1.tick(t) == inj2.tick(t)
            net1.step()
            net2.step()
