"""Tests for the bursty (Markov-modulated) injection process."""

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.network import Network
from repro.sim.engine import run_simulation
from repro.traffic.injector import TrafficInjector
from repro.traffic.patterns import UniformRandom


def make_network(terminals=16):
    return Network(
        NetworkConfig(topology="mesh", num_terminals=terminals,
                      router=RouterConfig(), packet_length=4)
    )


def generation_trace(rate, burst_length, cycles=4000, seed=2):
    """Per-cycle generated-packet counts (queue pressure excluded by
    draining the NIs each cycle)."""
    net = make_network()
    inj = TrafficInjector(net, UniformRandom(16), rate,
                          seed=seed, burst_length=burst_length)
    counts = []
    for t in range(cycles):
        counts.append(inj.tick(t))
        for ni in net.interfaces:  # drain so queues never refuse
            ni.queue.clear()
            ni._current_flits.clear()
    return counts


class TestBurstyProcess:
    def test_long_run_rate_matches_target(self):
        counts = generation_trace(rate=0.2, burst_length=8)
        mean = sum(counts) / len(counts) / 16
        assert mean == pytest.approx(0.2, rel=0.12)

    def test_burstiness_raises_windowed_variance(self):
        """Bursty arrivals are temporally correlated: the variance of
        10-cycle traffic windows grows well beyond Bernoulli's (the
        per-cycle marginal is identical by construction)."""
        import statistics

        def window_sums(counts, w=10):
            return [sum(counts[i : i + w]) for i in range(0, len(counts) - w, w)]

        smooth = window_sums(generation_trace(rate=0.2, burst_length=1))
        bursty = window_sums(generation_trace(rate=0.2, burst_length=8))
        assert statistics.pvariance(bursty) > 2.0 * statistics.pvariance(smooth)

    def test_burst_length_one_is_plain_bernoulli(self):
        net = make_network()
        inj = TrafficInjector(net, UniformRandom(16), 0.2, seed=2,
                              burst_length=1.0)
        assert not inj._bursty

    def test_validation(self):
        net = make_network()
        with pytest.raises(ValueError, match="burst_length"):
            TrafficInjector(net, UniformRandom(16), 0.2, burst_length=0.5)

    def test_bursty_disabled_at_saturation(self):
        """rate >= 1 is the saturated mode regardless of burstiness."""
        net = make_network()
        inj = TrafficInjector(net, UniformRandom(16), 1.0, burst_length=8)
        assert not inj._bursty


class TestBurstySimulation:
    def test_end_to_end_run(self):
        cfg = NetworkConfig(topology="mesh", num_terminals=16,
                            router=RouterConfig(), packet_length=4)
        res = run_simulation(
            cfg, injection_rate=0.04, burst_length=6, seed=3,
            warmup=200, measure=800,
        )
        assert res.packets_ejected > 0

    def test_bursty_traffic_hurts_latency(self):
        cfg = NetworkConfig(topology="mesh", num_terminals=16,
                            router=RouterConfig(), packet_length=4)
        smooth = run_simulation(cfg, injection_rate=0.05, seed=3,
                                warmup=300, measure=1200)
        bursty = run_simulation(cfg, injection_rate=0.05, burst_length=10,
                                seed=3, warmup=300, measure=1200)
        assert bursty.avg_latency > smooth.avg_latency