"""Tests for the single-router saturation harness (Fig. 7 testbench)."""

import pytest

from repro.sim.single_router import SingleRouterExperiment


class TestHarness:
    def test_throughput_bounded_by_radix(self):
        exp = SingleRouterExperiment("ideal", radix=5, num_vcs=6, seed=1)
        res = exp.run(500)
        assert 0 < res.throughput <= 5
        assert res.efficiency <= 1.0

    def test_validation_mode_checks_invariants(self):
        exp = SingleRouterExperiment("vix", radix=5, num_vcs=6, validate=True, seed=1)
        exp.run(200)  # would raise on any invariant violation

    def test_deterministic(self):
        a = SingleRouterExperiment("if", radix=5, num_vcs=6, seed=7).run(300)
        b = SingleRouterExperiment("if", radix=5, num_vcs=6, seed=7).run(300)
        assert a.flits_transferred == b.flits_transferred

    def test_packet_length_supported(self):
        res = SingleRouterExperiment("if", radix=5, num_vcs=6,
                                     packet_length=4, seed=1).run(400)
        assert res.packet_length == 4
        assert res.throughput > 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            SingleRouterExperiment("if", radix=1)
        with pytest.raises(ValueError):
            SingleRouterExperiment("if", packet_length=0)
        with pytest.raises(ValueError):
            SingleRouterExperiment("if").run(0)


class TestPaperOrdering:
    """Fig. 7's qualitative result: IF < VIX < AP <= ideal at saturation."""

    @pytest.mark.parametrize("radix", [5, 8, 10])
    def test_allocator_ranking(self, radix):
        thr = {}
        for alloc in ("if", "vix", "ap", "ideal"):
            exp = SingleRouterExperiment(alloc, radix=radix, num_vcs=6, seed=3)
            thr[alloc] = exp.run(1500).throughput
        assert thr["if"] < thr["vix"] < thr["ap"]
        assert thr["ap"] <= thr["ideal"] * 1.02

    def test_vix_gain_over_if_exceeds_20_percent(self):
        """Paper: 'VIX provides above 25% throughput improvement over IF'."""
        base = SingleRouterExperiment("if", radix=5, num_vcs=6, seed=3).run(2000)
        vix = SingleRouterExperiment("vix", radix=5, num_vcs=6, seed=3).run(2000)
        assert vix.throughput / base.throughput > 1.20

    def test_ap_gain_over_if_exceeds_30_percent(self):
        base = SingleRouterExperiment("if", radix=5, num_vcs=6, seed=3).run(2000)
        ap = SingleRouterExperiment("ap", radix=5, num_vcs=6, seed=3).run(2000)
        assert ap.throughput / base.throughput > 1.30

    def test_ideal_tracks_distinct_request_count(self):
        """Ideal allocation = number of distinct requested outputs/cycle."""
        exp = SingleRouterExperiment("ideal", radix=5, num_vcs=6, seed=5,
                                     validate=True)
        res = exp.run(800)
        # With 30 uniform requests over 5 outputs, nearly every output is
        # requested almost every cycle: efficiency close to 1.
        assert res.efficiency > 0.9
