"""Activity gating: dense-vs-gated equivalence, the event wheel, wake/sleep
bookkeeping, and geometric-gap injection.

The contract under test (ISSUE 2 tentpole): with ``fast_injection=False``,
activity-gated stepping must produce **byte-identical** ``SimulationResult``s
to the dense every-component loop — same RNG stream, same latencies, same
activity counters (modulo the new ``router_wakeups`` / ``cycles_skipped``
bookkeeping, which measures the gating itself).
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.network import Network
from repro.sim.engine import run_simulation
from repro.traffic.injector import TrafficInjector
from repro.traffic.patterns import make_pattern

#: Counters introduced by the gating work: allowed to differ between the
#: dense and gated runs (the dense loop never sleeps, so it never wakes).
GATING_COUNTERS = ("router_wakeups", "cycles_skipped")

ALLOCATORS = ("input_first", "vix", "ideal_vix")

#: (label, injection rate).  "saturation" drives every source at rate 1.
RATES = (("0.05", 0.05), ("0.2", 0.2), ("saturation", 1.0))

#: "single" is a 1x1 concentrated mesh: one router, four terminals — the
#: smallest Network that exercises injection, allocation, and ejection.
TOPOLOGIES = (("mesh", "mesh", 16), ("single", "cmesh", 4))

SEEDS = (1, 2)


def _config(allocator: str, topology: str, num_terminals: int) -> NetworkConfig:
    return NetworkConfig(
        topology=topology,
        num_terminals=num_terminals,
        router=RouterConfig(
            num_vcs=4,
            allocator=allocator,
            virtual_inputs=2,
            vc_policy="vix_dimension" if allocator != "input_first" else "max_credit",
        ),
    )


def _comparable(result) -> dict:
    """SimulationResult as a dict, gating-only counters removed."""
    d = dataclasses.asdict(result)
    for key in GATING_COUNTERS:
        d["counters"].pop(key, None)
    return d


class TestDenseGatedEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("topo_label,topology,terminals", TOPOLOGIES,
                             ids=[t[0] for t in TOPOLOGIES])
    @pytest.mark.parametrize("rate_label,rate", RATES, ids=[r[0] for r in RATES])
    @pytest.mark.parametrize("allocator", ALLOCATORS)
    def test_matrix(self, allocator, rate_label, rate, topo_label, topology,
                    terminals, seed):
        cfg = _config(allocator, topology, terminals)
        kwargs = dict(
            injection_rate=rate, seed=seed, warmup=100, measure=300,
            drain_limit=300,
        )
        dense = run_simulation(cfg, activity_gating=False, **kwargs)
        gated = run_simulation(cfg, activity_gating=True, **kwargs)
        assert _comparable(dense) == _comparable(gated)

    def test_gated_run_reports_wakeups(self):
        cfg = _config("vix", "mesh", 16)
        res = run_simulation(cfg, injection_rate=0.05, seed=1,
                             warmup=100, measure=300)
        assert res.counters["router_wakeups"] > 0
        # Per-cycle Bernoulli injection at rate > 0 keeps the injector
        # active every cycle, so gating alone never skips cycles.
        assert res.counters["cycles_skipped"] == 0


class TestEventWheel:
    def _net(self) -> Network:
        return Network(_config("input_first", "mesh", 16))

    def test_empty_wheel(self):
        net = self._net()
        assert net.next_event_time() is None

    def test_next_event_time_is_min(self):
        net = self._net()
        net._schedule(7, ("x",))
        net._schedule(3, ("y",))
        net._schedule(7, ("z",))
        assert net.next_event_time() == 3

    def test_delivery_pops_the_time(self):
        net = self._net()
        # A returning credit is the simplest event to deliver by hand.
        target = next(o for o in net.routers[1].outputs
                      if o is not None and not o.is_ejection)
        target.out_vcs[0].credits -= 1
        net._schedule(net.cycle, (1, target, 0, False))  # _CREDIT tuple
        assert net.next_event_time() == net.cycle
        net._deliver(net.cycle)
        assert net.next_event_time() is None

    def test_skip_to_counts_cycles(self):
        net = self._net()
        net.skip_to(250)
        assert net.cycle == 250
        assert net.counters.cycles == 250
        assert net.counters.cycles_skipped == 250
        net.skip_to(100)  # backwards: no-op
        assert net.cycle == 250
        assert net.counters.cycles == 250


class TestWakeSleep:
    def test_idle_network_has_no_active_work(self):
        net = Network(_config("input_first", "mesh", 16))
        assert not net.has_active_work()
        net.step()
        assert not net.has_active_work()

    def test_injection_wakes_and_drain_sleeps(self):
        net = Network(_config("input_first", "mesh", 16))
        from repro.network.flit import Packet

        assert net.inject(Packet(0, src=0, dst=15, num_flits=2, created_cycle=0))
        assert net.has_active_work()
        for _ in range(200):
            net.step()
            if not net.has_active_work() and net.next_event_time() is None:
                break
        assert net.idle()
        assert not net._active_routers and not net._active_nis
        assert net.counters.packets_ejected == 1
        assert net.counters.router_wakeups > 0


class TestInjectorFastPaths:
    def _injector(self, rate, *, fast=False, seed=1, terminals=16):
        net = Network(_config("input_first", "mesh", terminals))
        pattern = make_pattern("uniform", terminals)
        return TrafficInjector(net, pattern, rate, seed=seed,
                               fast_injection=fast)

    def test_rate_zero_returns_immediately(self):
        inj = self._injector(0.0)
        assert inj.tick(0) == 0
        assert inj.packets_created == 0
        assert inj.next_active_cycle(5) is None

    def test_fast_mode_disabled_outside_bernoulli(self):
        assert not self._injector(0.0, fast=True).fast_injection
        assert not self._injector(1.0, fast=True).fast_injection
        assert self._injector(0.1, fast=True).fast_injection

    def test_fast_mode_knows_next_injection(self):
        inj = self._injector(0.01, fast=True)
        wake = inj.next_active_cycle(0)
        assert wake is not None
        assert wake == max(0, inj._next_heap[0][0])
        # Bernoulli mode must poll every cycle.
        assert self._injector(0.01).next_active_cycle(7) == 7

    @pytest.mark.parametrize("seed", (1, 2))
    @pytest.mark.parametrize("fast", (False, True))
    def test_injection_attempts_match_bernoulli_law(self, fast, seed):
        """Attempts over N*T trials must sit inside 5 sigma of Binomial."""
        rate, cycles, terminals = 0.1, 4000, 16
        inj = self._injector(rate, fast=fast, seed=seed, terminals=terminals)
        for cycle in range(cycles):
            inj.tick(cycle)
        attempts = inj.packets_created + inj.packets_refused
        trials = cycles * terminals
        mean = trials * rate
        sigma = math.sqrt(trials * rate * (1 - rate))
        assert abs(attempts - mean) < 5 * sigma


class TestFastInjectionStatisticalEquivalence:
    def test_end_to_end_results_equivalent(self):
        """Geometric-gap runs must match Bernoulli runs in distribution."""
        cfg = _config("vix", "mesh", 16)
        lat = {False: [], True: []}
        thr = {False: [], True: []}
        for fast in (False, True):
            for seed in (1, 2, 3):
                res = run_simulation(cfg, injection_rate=0.05, seed=seed,
                                     warmup=300, measure=2000,
                                     fast_injection=fast)
                assert res.drained
                lat[fast].append(res.avg_latency)
                thr[fast].append(res.throughput_flits)
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(lat[True]) == pytest.approx(mean(lat[False]), rel=0.10)
        assert mean(thr[True]) == pytest.approx(mean(thr[False]), rel=0.10)


class TestEngineFastForward:
    def test_zero_rate_run_is_all_skips(self):
        cfg = _config("input_first", "mesh", 16)
        res = run_simulation(cfg, injection_rate=0.0, seed=1,
                             warmup=500, measure=1500)
        assert res.cycles == 2000
        assert res.counters["cycles_skipped"] == 2000
        assert math.isnan(res.avg_latency)

    def test_low_load_fast_injection_skips_idle_gaps(self):
        cfg = _config("input_first", "mesh", 16)
        res = run_simulation(cfg, injection_rate=0.001, seed=1,
                             warmup=500, measure=3000, fast_injection=True)
        assert res.counters["cycles_skipped"] > 0
        assert res.counters["cycles"] >= 3500

    def test_dense_mode_never_skips(self):
        cfg = _config("input_first", "mesh", 16)
        res = run_simulation(cfg, injection_rate=0.001, seed=1, warmup=500,
                             measure=1000, fast_injection=True,
                             activity_gating=False)
        assert res.counters["cycles_skipped"] == 0
