"""Focused tests for engine details: drain semantics, result fields."""

import math

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.sim.engine import Simulation, run_simulation


def small_config(**rk):
    return NetworkConfig(
        topology="mesh",
        num_terminals=16,
        router=RouterConfig(**rk),
        packet_length=4,
    )


class TestDrainSemantics:
    def test_drain_limit_zero_skips_drain(self):
        sim = Simulation(small_config(), injection_rate=0.05, seed=3)
        res = sim.run(warmup=100, measure=300, drain_limit=0)
        # Cycles = warmup + measure exactly: no drain phase ran.
        assert res.cycles == 400

    def test_drain_runs_until_measured_packets_finish(self):
        res = run_simulation(
            small_config(), injection_rate=0.02, seed=3,
            warmup=100, measure=300,
        )
        assert res.drained
        # Latency samples exist for (nearly) all measured packets.
        assert res.packets_created > 0

    def test_undrained_run_reports_partial_latency(self):
        res = run_simulation(
            small_config(), injection_rate=1.0, seed=3,
            warmup=100, measure=300, drain_limit=50,
        )
        assert not res.drained
        # Latency is still reported over the delivered subset.
        assert math.isnan(res.avg_latency) or res.avg_latency > 0


class TestResultFields:
    def test_throughput_flits_per_node_divides_by_terminals(self):
        res = run_simulation(
            small_config(), injection_rate=0.03, seed=3,
            warmup=100, measure=400,
        )
        assert res.throughput_flits_per_node == pytest.approx(
            res.throughput_flits / 16
        )

    def test_counters_snapshot_present(self):
        res = run_simulation(
            small_config(), injection_rate=0.03, seed=3,
            warmup=50, measure=200,
        )
        assert res.counters["cycles"] >= 250
        assert res.counters["flits_ejected"] > 0

    def test_per_source_counts_shape(self):
        res = run_simulation(
            small_config(), injection_rate=0.05, seed=3,
            warmup=100, measure=300,
        )
        assert len(res.per_source_ejected) == 16
        assert sum(res.per_source_ejected) == res.packets_ejected

    def test_metadata_fields(self):
        res = run_simulation(
            small_config(allocator="vix"), injection_rate=0.02, seed=3,
            warmup=50, measure=150,
        )
        assert res.allocator == "vix"
        assert res.topology == "mesh"
        assert res.injection_rate == 0.02
        assert res.packet_length == 4


class TestPatternIntegration:
    @pytest.mark.parametrize("pattern", ["transpose", "neighbor", "tornado"])
    def test_permutation_patterns_run_end_to_end(self, pattern):
        res = run_simulation(
            small_config(), pattern=pattern, injection_rate=0.05, seed=3,
            warmup=100, measure=400,
        )
        assert res.packets_ejected > 0

    def test_pattern_object_accepted(self):
        from repro.traffic.patterns import Transpose

        res = run_simulation(
            small_config(), pattern=Transpose(16), injection_rate=0.05,
            seed=3, warmup=100, measure=300,
        )
        assert res.packets_ejected > 0
