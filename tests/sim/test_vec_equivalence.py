"""Vectorized engine: byte-identical results, state drift guard, capability
gating, and the engine axis in cache identities.

The contract under test (ISSUE 7 tentpole): for every configuration the
SoA kernel supports, ``engine="vectorized"`` must produce **byte-identical**
``SimulationResult``s to the dense object loop — same RNG stream, same
latencies, same activity counters (modulo the scheduling bookkeeping that
measures the engines themselves).  Everything it cannot support must fail
loudly with the registry-style error naming the engines that can.
"""

from __future__ import annotations

import dataclasses

import pytest

np = pytest.importorskip("numpy")

from repro.core.arbiter import rr_winner
from repro.network.config import NetworkConfig, RouterConfig
from repro.registry import UnknownSchemeError
from repro.sim.engine import run_simulation
from repro.sim.vec import (
    SUPPORTED_ALLOCATORS,
    vectorization_unsupported_reason,
)
from repro.sim.vec.engine import VectorizedSimulation
from repro.sim.vec.kernels import rr_pick

#: Counters measuring the engines themselves: allowed to differ (the dense
#: loop never sleeps or runs the kernel, so it never counts either).
ENGINE_COUNTERS = ("router_wakeups", "cycles_skipped", "vec_kernel_cycles")

#: (allocator, vc_policy, virtual_inputs) points covering both separable
#: phases, the VIX sub-group axis, and the ideal (per-VC) crossbar.
SCHEMES = (
    ("input_first", "max_credit", 1),
    ("input_first", "vix_dimension", 1),
    ("output_first", "max_credit", 1),
    ("vix", "vix_dimension", 2),
    ("ideal_vix", "vix_dimension", 4),
)

RATES = (("0.05", 0.05), ("saturation", 1.0))
SEEDS = (1, 2)


def _config(
    allocator: str,
    vc_policy: str,
    virtual_inputs: int,
    topology: str = "mesh",
    num_terminals: int = 16,
) -> NetworkConfig:
    return NetworkConfig(
        topology=topology,
        num_terminals=num_terminals,
        router=RouterConfig(
            num_vcs=4,
            allocator=allocator,
            virtual_inputs=virtual_inputs,
            vc_policy=vc_policy,
        ),
    )


def _comparable(result) -> dict:
    """SimulationResult as a dict, engine-bookkeeping counters removed."""
    d = dataclasses.asdict(result)
    for key in ENGINE_COUNTERS:
        d["counters"].pop(key, None)
    return d


WINDOWS = dict(warmup=100, measure=300, drain_limit=300)


@pytest.fixture(autouse=True)
def _no_delegation(monkeypatch):
    """Force the SoA kernel even at low load (delegation is tested apart)."""
    monkeypatch.setenv("REPRO_VEC_MIN_FLITS", "0")


class TestDenseVectorizedEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("rate_label,rate", RATES, ids=[r[0] for r in RATES])
    @pytest.mark.parametrize(
        "allocator,vc_policy,virtual_inputs",
        SCHEMES,
        ids=[f"{s[0]}-{s[1]}" for s in SCHEMES],
    )
    def test_matrix(self, allocator, vc_policy, virtual_inputs, rate_label,
                    rate, seed):
        cfg = _config(allocator, vc_policy, virtual_inputs)
        kwargs = dict(injection_rate=rate, seed=seed, **WINDOWS)
        dense = run_simulation(cfg, engine="dense", **kwargs)
        vec = run_simulation(cfg, engine="vectorized", **kwargs)
        assert _comparable(dense) == _comparable(vec)

    def test_concentrated_mesh(self):
        cfg = _config("vix", "vix_dimension", 2, topology="cmesh",
                      num_terminals=16)
        kwargs = dict(injection_rate=1.0, seed=3, **WINDOWS)
        dense = run_simulation(cfg, engine="dense", **kwargs)
        vec = run_simulation(cfg, engine="vectorized", **kwargs)
        assert _comparable(dense) == _comparable(vec)

    def test_kernel_actually_ran(self):
        cfg = _config("input_first", "max_credit", 1)
        vec = run_simulation(cfg, engine="vectorized", injection_rate=1.0,
                             seed=1, **WINDOWS)
        assert vec.counters["vec_kernel_cycles"] > 0


class TestFlowStateDriftGuard:
    """Engines must agree on *state*, not just results: byte-identical
    output could in principle hide compensating credit/pointer errors."""

    @pytest.mark.parametrize("allocator,vc_policy,virtual_inputs",
                             SCHEMES[::2], ids=[SCHEMES[i][0] for i in (0, 2, 4)])
    def test_state_matches_after_identical_runs(self, allocator, vc_policy,
                                                virtual_inputs):
        from repro.sim.engine import Simulation

        cfg = _config(allocator, vc_policy, virtual_inputs)
        kwargs = dict(pattern="uniform", injection_rate=1.0, seed=5)
        dense = Simulation(cfg, activity_gating=False, **kwargs)
        dense.run(**WINDOWS)
        vec = VectorizedSimulation(cfg, **kwargs)
        vec.run(**WINDOWS)
        assert dense.flow_state() == vec.flow_state()

    def test_roundtrip(self):
        import json

        from repro.network.state import export_flow_state, import_flow_state
        from repro.sim.engine import Simulation

        cfg = _config("vix", "vix_dimension", 2)
        sim = Simulation(cfg, injection_rate=0.5, seed=2)
        sim.run(**WINDOWS)
        state = sim.flow_state()
        json.dumps(state)  # plain data, serializable as-is
        fresh = Simulation(cfg, injection_rate=0.5, seed=2)
        import_flow_state(fresh.network, state)
        assert export_flow_state(fresh.network) == state

    def test_import_rejects_mismatched_shape(self):
        from repro.network.state import import_flow_state
        from repro.sim.engine import Simulation

        small = Simulation(_config("input_first", "max_credit", 1,
                                   num_terminals=4))
        big = Simulation(_config("input_first", "max_credit", 1))
        with pytest.raises(ValueError, match="routers"):
            import_flow_state(big.network, small.flow_state())


class TestCapabilityGating:
    @pytest.mark.parametrize("allocator", ("wavefront", "packet_chaining"))
    def test_unsupported_allocator_raises(self, allocator):
        cfg = NetworkConfig(
            topology="mesh",
            num_terminals=16,
            router=RouterConfig(num_vcs=4, allocator=allocator),
        )
        with pytest.raises(UnknownSchemeError) as exc:
            run_simulation(cfg, engine="vectorized", injection_rate=0.1,
                           warmup=10, measure=10)
        # The error names the engines that *can* run the configuration.
        assert "dense" in str(exc.value) and "gated" in str(exc.value)

    def test_torus_dateline_masking_raises(self):
        cfg = NetworkConfig(
            topology="torus",
            num_terminals=16,
            router=RouterConfig(num_vcs=4, allocator="input_first"),
        )
        assert vectorization_unsupported_reason(cfg) is not None
        with pytest.raises(UnknownSchemeError, match="allowed_vcs"):
            run_simulation(cfg, engine="vectorized", injection_rate=0.1,
                           warmup=10, measure=10)

    def test_supported_reason_is_none(self):
        for allocator, vc_policy, virtual_inputs in SCHEMES:
            cfg = _config(allocator, vc_policy, virtual_inputs)
            assert vectorization_unsupported_reason(cfg) is None
        assert set(a for a, _, _ in SCHEMES) == set(SUPPORTED_ALLOCATORS)

    def test_env_default_falls_back_leniently(self, monkeypatch):
        """REPRO_ENGINE=vectorized must not break non-vectorizable schemes:
        the environment default is a preference, not a hard selection —
        but the substitution is announced with a RuntimeWarning."""
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        cfg = NetworkConfig(
            topology="mesh",
            num_terminals=16,
            router=RouterConfig(num_vcs=4, allocator="wavefront"),
        )
        with pytest.warns(RuntimeWarning, match="'gated' engine instead"):
            result = run_simulation(cfg, injection_rate=0.1, seed=1, warmup=50,
                                    measure=100, drain_limit=200)
        assert result.packets_ejected > 0

    def test_engine_alias_canonicalizes(self):
        cfg = _config("input_first", "max_credit", 1)
        kwargs = dict(injection_rate=0.3, seed=1, **WINDOWS)
        via_alias = run_simulation(cfg, engine="vec", **kwargs)
        via_name = run_simulation(cfg, engine="vectorized", **kwargs)
        assert _comparable(via_alias) == _comparable(via_name)


class TestDelegation:
    def test_low_load_delegates_to_gated(self, monkeypatch):
        monkeypatch.delenv("REPRO_VEC_MIN_FLITS", raising=False)
        cfg = _config("input_first", "max_credit", 1)
        sim = VectorizedSimulation(cfg, injection_rate=0.01, seed=1)
        assert sim._delegate is not None
        result = sim.run(**WINDOWS)
        dense = run_simulation(cfg, engine="dense", injection_rate=0.01,
                               seed=1, **WINDOWS)
        assert _comparable(result) == _comparable(dense)

    def test_saturation_does_not_delegate(self):
        cfg = _config("input_first", "max_credit", 1, num_terminals=64)
        sim = VectorizedSimulation(cfg, injection_rate=1.0, seed=1)
        assert sim._delegate is None


class TestArbiterDriftGuard:
    """The batched round-robin rule is pinned to the scalar definition."""

    def test_rr_pick_matches_rr_winner(self):
        rng = np.random.default_rng(0)
        n = 7
        mask = rng.random((64, n)) < 0.4
        ptr = rng.integers(0, n, 64)
        picked = rr_pick(mask, ptr, n)
        for row in range(64):
            requests = np.flatnonzero(mask[row]).tolist()
            expected = rr_winner(int(ptr[row]), requests, n)
            if expected is None:
                continue  # no requester: rr_pick's 0 is masked by callers
            assert picked[row] == expected


class TestEngineInCacheIdentity:
    def test_sim_job_key_includes_engine(self):
        from repro.parallel import SimJob

        cfg = _config("input_first", "max_credit", 1)
        base = SimJob(cfg, injection_rate=0.1)
        vec = SimJob(cfg, injection_rate=0.1, engine="vectorized")
        alias = SimJob(cfg, injection_rate=0.1, engine="vec")
        assert base.key() != vec.key()
        assert alias.key() == vec.key()  # aliases share one cache identity
        assert vec.spec()["engine"] == "vectorized"

    def test_scenario_spec_engine_roundtrip(self):
        from repro.experiments.spec import ExperimentSpec, ScenarioSpec

        scenario = ScenarioSpec(key=("x",), engine="vec")
        assert scenario.engine == "vectorized"  # canonicalized at build
        rebuilt = ScenarioSpec.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert scenario.to_dict()["engine"] == "vectorized"
        spec = ExperimentSpec(name="t", scenarios=(scenario,))
        other = ExperimentSpec(
            name="t", scenarios=(ScenarioSpec(key=("x",), engine="dense"),)
        )
        assert spec.content_key() != other.content_key()
        assert "vectorized" in spec.canonical_json()

    def test_scenario_spec_default_engine_is_runtime(self):
        from repro.experiments.spec import ScenarioSpec

        scenario = ScenarioSpec(key=("x",))
        assert scenario.engine == ""
        assert scenario.sim_job(10, 10, 1).engine is None
