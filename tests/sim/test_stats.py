"""Unit tests for the statistics collector."""

import math

import pytest

from repro.network.flit import Packet
from repro.sim.stats import StatsCollector


def make_packet(pid, src=0, created=10):
    return Packet(pid, src, 1, 4, created)


class TestWindowing:
    def test_open_window_validation(self):
        s = StatsCollector(4)
        with pytest.raises(ValueError):
            s.open_window(10, 10)

    def test_events_outside_window_ignored(self):
        s = StatsCollector(4)
        s.open_window(10, 20)
        s.on_packet_created(make_packet(0, created=5))   # too early
        s.on_packet_created(make_packet(1, created=20))  # too late
        assert s.packets_created == 0
        s.on_flit_ejected(0, 9)
        s.on_flit_ejected(0, 20)
        assert s.flits_ejected == 0

    def test_events_inside_window_counted(self):
        s = StatsCollector(4)
        s.open_window(10, 20)
        s.on_packet_created(make_packet(0, created=10))
        s.on_flit_ejected(0, 19)
        assert s.packets_created == 1
        assert s.flits_ejected == 1


class TestLatency:
    def test_latency_of_measured_packet(self):
        s = StatsCollector(4)
        s.open_window(0, 100)
        p = make_packet(0, created=10)
        s.on_packet_created(p)
        p.ejected_cycle = 42
        s.on_packet_ejected(p, 42)
        assert s.avg_latency() == 32
        assert s.outstanding == 0

    def test_latency_recorded_even_after_window(self):
        """Packets created in-window are tracked through the drain phase."""
        s = StatsCollector(4)
        s.open_window(0, 20)
        p = make_packet(0, created=15)
        s.on_packet_created(p)
        s.on_packet_ejected(p, 90)
        assert s.avg_latency() == 75

    def test_unmeasured_packet_ignored_for_latency(self):
        s = StatsCollector(4)
        s.open_window(10, 20)
        p = make_packet(0, created=5)
        s.on_packet_created(p)
        s.on_packet_ejected(p, 15)
        assert math.isnan(s.avg_latency())

    def test_percentiles(self):
        s = StatsCollector(4)
        s.open_window(0, 1000)
        for i in range(10):
            p = make_packet(i, created=0)
            s.on_packet_created(p)
            s.on_packet_ejected(p, (i + 1) * 10)
        assert s.latency_percentile(0) == 10
        assert s.latency_percentile(100) == 100
        # index round(4.5) = 4 under banker's rounding -> 5th smallest.
        assert s.latency_percentile(50) == 50
        with pytest.raises(ValueError):
            s.latency_percentile(120)

    def test_percentile_nan_when_nothing_measured(self):
        s = StatsCollector(4)
        s.open_window(0, 100)
        assert math.isnan(s.latency_percentile(50))

    def test_percentile_validates_q_before_empty_data_shortcut(self):
        """An out-of-range q raises even with no samples — a bad q is a
        caller bug, not a "no data yet" condition."""
        s = StatsCollector(4)
        s.open_window(0, 100)
        with pytest.raises(ValueError, match="percentile"):
            s.latency_percentile(-5)
        with pytest.raises(ValueError, match="percentile"):
            s.latency_percentile(120)
        # The valid-q empty-data path still reports "no data".
        assert math.isnan(s.latency_percentile(0))
        assert math.isnan(s.latency_percentile(100))

    def test_percentile_single_sample_is_that_sample(self):
        s = StatsCollector(4)
        s.open_window(0, 100)
        p = make_packet(0, created=1)
        s.on_packet_created(p)
        s.on_packet_ejected(p, 42)
        for q in (0, 50, 95, 99, 100):
            assert s.latency_percentile(q) == 41.0


class TestThroughputAndFairness:
    def test_throughput_metrics(self):
        s = StatsCollector(4)
        s.open_window(0, 100)
        for i in range(20):
            p = make_packet(i, src=i % 4, created=1)
            s.on_packet_created(p)
            s.on_packet_ejected(p, 50)
            for _ in range(4):
                s.on_flit_ejected(1, 50)
        assert s.throughput_flits_per_cycle() == pytest.approx(0.8)
        assert s.throughput_packets_per_node() == pytest.approx(0.05)

    def test_fairness_ratio(self):
        s = StatsCollector(2)
        s.open_window(0, 100)
        for i, src in enumerate([0, 0, 0, 1]):
            p = make_packet(i, src=src, created=1)
            s.on_packet_created(p)
            s.on_packet_ejected(p, 10)
        assert s.fairness_max_min_ratio() == 3.0

    def test_fairness_with_starved_source_is_inf(self):
        s = StatsCollector(2)
        s.open_window(0, 100)
        p = make_packet(0, src=0, created=1)
        s.on_packet_created(p)
        s.on_packet_ejected(p, 10)
        assert s.fairness_max_min_ratio() == math.inf

    def test_fairness_nan_when_nothing_delivered(self):
        s = StatsCollector(2)
        s.open_window(0, 100)
        assert math.isnan(s.fairness_max_min_ratio())

    def test_fairness_perfectly_fair_is_one(self):
        s = StatsCollector(2)
        s.open_window(0, 100)
        for i, src in enumerate([0, 1, 0, 1]):
            p = make_packet(i, src=src, created=1)
            s.on_packet_created(p)
            s.on_packet_ejected(p, 10)
        assert s.fairness_max_min_ratio() == 1.0
