"""Partition invariants: flit conservation and credit accounting, checked
cycle-by-cycle on a live 2x2-partitioned 8x8 mesh.

These are the properties that make the domain decomposition trustworthy:
no flit is ever lost or duplicated crossing a cut, and every source-side
credit counter still mirrors its destination buffer exactly (the boundary
credit contract).  The checkers run mid-flight through the engine's
``on_cycle`` hook — a violation would surface at the first bad cycle,
not as a skewed end-of-run statistic.
"""

from __future__ import annotations

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.links import PartitionConfig
from repro.sim.partition import (
    PartitionedSimulation,
    PartitionInvariantError,
    check_credit_accounting,
    check_flit_conservation,
    check_invariants,
)


def _sim(**partition_kwargs) -> PartitionedSimulation:
    cfg = NetworkConfig(
        topology="mesh",
        num_terminals=64,
        router=RouterConfig(num_vcs=4, allocator="input_first"),
    )
    partition = PartitionConfig(dims=(2, 2), **partition_kwargs)
    return PartitionedSimulation(cfg, partition=partition, injection_rate=0.1, seed=1)


class TestInvariantsHold:
    def test_throughout_a_2x2_run(self):
        sim = _sim(link_latency=2)
        checked = 0

        def hook(s):
            nonlocal checked
            if s.cycle % 7 == 0:
                check_invariants(s)
                checked += 1

        sim.on_cycle = hook
        result = sim.run(warmup=100, measure=300, drain_limit=400)
        check_invariants(sim)
        assert checked > 0
        assert result.packets_ejected > 0

    def test_with_serialized_narrow_links(self):
        sim = _sim(link_latency=1, link_width=2)
        sim.on_cycle = lambda s: s.cycle % 11 or check_invariants(s)
        sim.run(warmup=50, measure=200, drain_limit=300)
        check_invariants(sim)

    def test_at_saturation_with_outstanding_flits(self):
        sim = _sim()
        sim.run(warmup=50, measure=100, drain_limit=0)
        # Flits are still in flight everywhere; the books must balance.
        check_flit_conservation(sim)
        check_credit_accounting(sim)

    def test_with_asymmetric_credit_latency(self):
        """Slow forward path, fast credit return: the loop stays closed."""
        sim = _sim(link_latency=3, link_credit_latency=1)
        sim.on_cycle = lambda s: s.cycle % 5 or check_invariants(s)
        sim.run(warmup=50, measure=200, drain_limit=300)
        check_invariants(sim)

    def test_with_slow_credit_return(self):
        """Credit latency above the forward latency (the worst case for
        an over-release bug: credits linger on the wire longest)."""
        sim = _sim(link_latency=1, link_credit_latency=6, link_width=2)
        sim.on_cycle = lambda s: s.cycle % 5 or check_invariants(s)
        sim.run(warmup=50, measure=200, drain_limit=300)
        check_invariants(sim)

    def test_vectorized_domains_throughout_a_run(self):
        pytest.importorskip("numpy")
        sim = _sim(link_latency=2, link_width=2, domain_engine="vectorized")
        checked = 0

        def hook(s):
            nonlocal checked
            if s.cycle % 7 == 0:
                check_invariants(s)
                checked += 1

        sim.on_cycle = hook
        result = sim.run(warmup=100, measure=300, drain_limit=400)
        check_invariants(sim)
        assert checked > 0
        assert result.packets_ejected > 0

    def test_vectorized_domains_asymmetric_credit_latency(self):
        pytest.importorskip("numpy")
        sim = _sim(link_latency=3, link_credit_latency=1, domain_engine="vectorized")
        sim.on_cycle = lambda s: s.cycle % 5 or check_invariants(s)
        sim.run(warmup=50, measure=200, drain_limit=300)
        check_invariants(sim)


class TestViolationsDetected:
    """The checkers must actually fail when the books are cooked."""

    def test_lost_flit_detected(self):
        sim = _sim()
        sim.run(warmup=50, measure=100, drain_limit=0)
        dom = sim.domains[0]
        dom.counters.flits_ejected += 1  # phantom ejection
        with pytest.raises(PartitionInvariantError, match="conservation"):
            check_flit_conservation(sim)

    def test_leaked_credit_detected(self):
        sim = _sim()
        sim.run(warmup=50, measure=100, drain_limit=0)
        link = sim.links[0]
        out = sim.domains[
            sim.plan.router_domain[link.spec.src_router]
        ].routers[link.spec.src_router].outputs[link.spec.src_port]
        out.out_vcs[0].credits += 1  # conjured credit
        with pytest.raises(PartitionInvariantError, match="credit"):
            check_credit_accounting(sim)

    def test_error_is_an_assertion(self):
        assert issubclass(PartitionInvariantError, AssertionError)
