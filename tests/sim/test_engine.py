"""Integration tests for the simulation engine (warmup/measure/drain)."""

import math

import pytest

from repro.network.config import NetworkConfig, RouterConfig, paper_config
from repro.sim.engine import (
    Simulation,
    is_saturated,
    run_simulation,
    saturation_throughput,
)


def small_config(allocator="input_first", **rk):
    return NetworkConfig(
        topology="mesh",
        num_terminals=16,
        router=RouterConfig(allocator=allocator, **rk),
        packet_length=4,
    )


class TestBasicRuns:
    def test_low_load_drains_and_measures(self):
        res = run_simulation(
            small_config(), injection_rate=0.02, seed=3, warmup=200, measure=400
        )
        assert res.drained
        assert res.packets_created > 0
        assert res.packets_ejected > 0
        assert not math.isnan(res.avg_latency)
        assert res.avg_latency > 10  # several hops of pipeline
        assert 0 < res.throughput_packets_per_node < 0.05

    def test_throughput_tracks_offered_load_below_saturation(self):
        res = run_simulation(
            small_config(), injection_rate=0.03, seed=5, warmup=300, measure=800
        )
        assert res.throughput_packets_per_node == pytest.approx(0.03, rel=0.25)

    def test_latency_grows_with_load(self):
        lat = {}
        for rate in (0.01, 0.08):
            res = run_simulation(
                small_config(), injection_rate=rate, seed=3,
                warmup=300, measure=600,
            )
            lat[rate] = res.avg_latency
        assert lat[0.08] > lat[0.01]

    def test_deterministic_given_seed(self):
        a = run_simulation(small_config(), injection_rate=0.05, seed=11,
                           warmup=100, measure=300)
        b = run_simulation(small_config(), injection_rate=0.05, seed=11,
                           warmup=100, measure=300)
        assert a.avg_latency == b.avg_latency
        assert a.per_source_ejected == b.per_source_ejected

    def test_seeds_change_outcomes(self):
        a = run_simulation(small_config(), injection_rate=0.05, seed=1,
                           warmup=100, measure=300)
        b = run_simulation(small_config(), injection_rate=0.05, seed=2,
                           warmup=100, measure=300)
        assert a.avg_latency != b.avg_latency

    def test_validation(self):
        sim = Simulation(small_config())
        with pytest.raises(ValueError):
            sim.run(warmup=-1, measure=100)
        with pytest.raises(ValueError):
            sim.run(warmup=0, measure=0)


class TestSaturation:
    def test_saturation_throughput_bounded(self):
        res = saturation_throughput(small_config(), seed=3, warmup=300, measure=600)
        thr = res.throughput_flits_per_node
        # 4x4 mesh capacity under uniform random is well below 1 flit/node.
        assert 0.2 < thr < 1.0

    def test_is_saturated_flags_overload(self):
        res = saturation_throughput(small_config(), seed=3, warmup=200, measure=400)
        assert is_saturated(res)
        low = run_simulation(small_config(), injection_rate=0.01, seed=3,
                             warmup=200, measure=400)
        assert not is_saturated(low)

    def test_vix_outperforms_if_at_saturation(self):
        """The headline claim holds on the small mesh too."""
        thr = {}
        for alloc in ("input_first", "vix"):
            cfg = small_config(allocator=alloc,
                               vc_policy="vix_dimension" if alloc == "vix" else "max_credit")
            res = saturation_throughput(cfg, seed=3, warmup=400, measure=800)
            thr[alloc] = res.throughput_flits_per_node
        assert thr["vix"] > thr["input_first"] * 1.05


class TestPaperConfigIntegration:
    def test_full_64_node_mesh_runs(self):
        res = run_simulation(
            paper_config("if"), injection_rate=0.02, seed=3,
            warmup=100, measure=200,
        )
        assert res.drained
        assert res.packets_ejected > 50
