"""Worker-pool failure handling for partitioned runs.

The coordinator must fail *fast and loud* when a worker process dies
mid-run: a RuntimeError naming the dead worker (and its exit code, when
it has one) within seconds — not the pre-fix behaviour, where teardown
joined each worker with a 30-second timeout *before* closing its pipe,
so every surviving worker blocked in ``recv()`` burned the full timeout
and a crashed 4-worker run took two minutes to report anything.

Faults are injected with the same ``REPRO_FAULTS`` knob the parallel
sweep runner uses (``kind@worker_index``), evaluated once at worker
startup.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.links import PartitionConfig
from repro.sim.partition import PartitionedSimulation

#: Generous wall-clock bound for a crashed run to surface its error.
#: The pre-fix hang was >= 30s per surviving worker; anything close to
#: that means the teardown ordering regressed.
FAIL_FAST_SECONDS = 5.0


def _sim(workers: int, domain_engine: str = "gated") -> PartitionedSimulation:
    cfg = NetworkConfig(
        topology="mesh",
        num_terminals=64,
        router=RouterConfig(num_vcs=4, allocator="input_first"),
    )
    partition = PartitionConfig(
        dims=(2, 2), link_latency=2, workers=workers, domain_engine=domain_engine
    )
    return PartitionedSimulation(cfg, partition=partition, injection_rate=0.1, seed=1)


def _run(sim):
    return sim.run(warmup=100, measure=300, drain_limit=400)


def _assert_no_orphans():
    deadline = time.monotonic() + 2.0
    while mp.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert mp.active_children() == []


class TestWorkerCrashFailsFast:
    def test_worker_exit_raises_named_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "exit@1")
        sim = _sim(workers=2)
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match=r"worker 1.*exit code 86"):
            _run(sim)
        assert time.monotonic() - t0 < FAIL_FAST_SECONDS
        _assert_no_orphans()

    def test_worker_exception_raises_named_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@0")
        sim = _sim(workers=2)
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match=r"worker 0"):
            _run(sim)
        assert time.monotonic() - t0 < FAIL_FAST_SECONDS
        _assert_no_orphans()

    def test_crash_with_four_workers_still_fast(self, monkeypatch):
        """Teardown is one shared deadline, not a per-worker timeout."""
        monkeypatch.setenv("REPRO_FAULTS", "exit@2")
        sim = _sim(workers=4)
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match=r"worker 2"):
            _run(sim)
        assert time.monotonic() - t0 < FAIL_FAST_SECONDS
        _assert_no_orphans()

    def test_vectorized_domains_crash_handling(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_FAULTS", "exit@1")
        sim = _sim(workers=2, domain_engine="vectorized")
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match=r"worker 1.*exit code 86"):
            _run(sim)
        assert time.monotonic() - t0 < FAIL_FAST_SECONDS
        _assert_no_orphans()

    def test_error_names_owned_domains(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "exit@1")
        sim = _sim(workers=2)
        with pytest.raises(RuntimeError, match=r"domains \[2, 3\]"):
            _run(sim)
        _assert_no_orphans()


class TestCleanRunsUnaffected:
    def test_no_faults_env_runs_normally(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        result = _run(_sim(workers=2))
        assert result.packets_ejected > 0
        _assert_no_orphans()
