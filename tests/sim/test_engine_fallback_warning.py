"""The lenient REPRO_ENGINE=vectorized fallback must be audible.

ISSUE 9 satellite: when the environment prefers the vectorized engine but
the configuration cannot be vectorized, the run silently used the gated
engine — correct, but invisible.  The fallback now emits a one-line
``RuntimeWarning`` naming the scheme and the engine actually used, so a
sweep's logs show exactly which points ran where.
"""

from __future__ import annotations

import warnings

import pytest

pytest.importorskip("numpy")

from repro.network.config import NetworkConfig, RouterConfig
from repro.sim.engine import run_simulation

RUN = dict(injection_rate=0.1, seed=1, warmup=50, measure=100, drain_limit=200)


def _wavefront_config() -> NetworkConfig:
    # wavefront is not in the vectorized kernel's supported set.
    return NetworkConfig(
        topology="mesh",
        num_terminals=16,
        router=RouterConfig(num_vcs=4, allocator="wavefront"),
    )


class TestFallbackWarning:
    def test_warns_naming_scheme_and_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        with pytest.warns(RuntimeWarning, match=r"'wavefront'.*gated") as record:
            result = run_simulation(_wavefront_config(), **RUN)
        assert result.packets_ejected > 0
        messages = [str(w.message) for w in record]
        assert any("REPRO_ENGINE=vectorized" in m for m in messages)

    def test_no_warning_when_vectorizable(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        cfg = NetworkConfig(
            topology="mesh",
            num_terminals=16,
            router=RouterConfig(num_vcs=4, allocator="input_first"),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            run_simulation(cfg, **RUN)

    def test_no_warning_without_env_preference(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            run_simulation(_wavefront_config(), **RUN)

    def test_explicit_vectorized_still_fails_loudly(self):
        from repro.registry import UnknownSchemeError

        with pytest.raises(UnknownSchemeError):
            run_simulation(_wavefront_config(), engine="vectorized", **RUN)
