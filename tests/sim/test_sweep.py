"""Tests for load sweeps and the saturation-point finder."""

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.sim.sweep import find_saturation_rate, latency_sweep


def small_config(allocator="input_first"):
    return NetworkConfig(
        topology="mesh",
        num_terminals=16,
        router=RouterConfig(
            allocator=allocator,
            vc_policy="vix_dimension" if allocator == "vix" else "max_credit",
        ),
        packet_length=4,
    )


class TestLatencySweep:
    def test_curve_shape(self):
        points = latency_sweep(
            small_config(),
            rates=(0.01, 0.05, 0.09),
            seed=3,
            warmup=200,
            measure=500,
        )
        assert [p.injection_rate for p in points] == [0.01, 0.05, 0.09]
        # Latency is non-decreasing with load (within this coarse sweep).
        assert points[0].avg_latency <= points[-1].avg_latency
        assert all(p.accepted_packets_per_node > 0 for p in points)

    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            latency_sweep(small_config(), rates=())

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            latency_sweep(small_config(), rates=(-0.1,))


class TestSaturationFinder:
    def test_finds_a_knee_in_plausible_range(self):
        rate = find_saturation_rate(
            small_config(),
            high=0.4,
            tolerance=0.02,
            seed=3,
            warmup=200,
            measure=500,
        )
        # 4x4 mesh with 4-flit packets saturates around 0.08-0.2 pkt/node.
        assert 0.04 < rate < 0.3

    def test_vix_saturates_later_than_if(self):
        kwargs = dict(high=0.4, tolerance=0.02, seed=3, warmup=300, measure=700)
        base = find_saturation_rate(small_config("input_first"), **kwargs)
        vix = find_saturation_rate(small_config("vix"), **kwargs)
        assert vix >= base

    def test_validation(self):
        cfg = small_config()
        with pytest.raises(ValueError):
            find_saturation_rate(cfg, low=0.5, high=0.4)
        with pytest.raises(ValueError):
            find_saturation_rate(cfg, tolerance=0.0)
        with pytest.raises(ValueError):
            find_saturation_rate(cfg, acceptance=1.5)
