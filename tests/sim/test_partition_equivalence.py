"""Partitioned engine: monolithic equivalence and mode invariance.

The contract under test (ISSUE 9 tentpole):

* a **1x1 partition with zero-latency links** is the monolithic network
  executed through the domain machinery — its ``SimulationResult`` must
  be *fully identical* to the gated engine's (same counters, same
  latency percentiles, same RNG stream) and report-identical to the
  dense engine's, and its merged flow-state snapshot must be byte-equal
  to the monolith's;
* **worker processes are an execution choice, not a model choice**: a
  multi-domain run must produce the identical result at any worker
  count, including saturation runs with no drain phase;
* per-domain engine selection composes: gated vs dense domains agree,
  and (ISSUE 10 tentpole) **vectorized domains** — SoA-kernel stepping
  behind the same SimDomain contract — are byte-identical to the
  monolithic vectorized engine at 1x1 and report-identical to gated
  domains on every supported allocator, at any worker count; schemes
  the SoA kernel cannot express fail loudly naming the object-engine
  fallbacks.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.network.config import NetworkConfig, RouterConfig
from repro.network.links import PartitionConfig
from repro.sim.engine import Simulation, run_simulation
from repro.sim.partition import PartitionedSimulation

#: Counters measuring the engines themselves (scheduling bookkeeping).
ENGINE_COUNTERS = ("router_wakeups", "cycles_skipped", "vec_kernel_cycles")

WINDOWS = dict(warmup=100, measure=300, drain_limit=400)


def _config(allocator: str = "input_first", num_terminals: int = 64) -> NetworkConfig:
    return NetworkConfig(
        topology="mesh",
        num_terminals=num_terminals,
        router=RouterConfig(num_vcs=4, allocator=allocator),
    )


def _comparable(result, *, with_counters: bool = True) -> dict:
    d = dataclasses.asdict(result)
    if with_counters:
        for key in ENGINE_COUNTERS:
            d["counters"].pop(key, None)
    else:
        d.pop("counters")
    return d


def _partition(dims=(1, 1), **kwargs) -> PartitionConfig:
    return PartitionConfig(dims=dims, **kwargs)


class Test1x1Monolithic:
    """The golden-output gate: 1x1 + zero-latency == the monolith."""

    @pytest.mark.parametrize("allocator", ["input_first", "vix"])
    def test_identical_to_gated(self, allocator):
        cfg = _config(allocator)
        kwargs = dict(injection_rate=0.1, seed=1, **WINDOWS)
        part = run_simulation(cfg, partition=_partition((1, 1)), **kwargs)
        gated = run_simulation(cfg, engine="gated", **kwargs)
        assert dataclasses.asdict(part) == dataclasses.asdict(gated)

    def test_report_identical_to_dense(self):
        cfg = _config()
        kwargs = dict(injection_rate=0.1, seed=1, **WINDOWS)
        part = run_simulation(cfg, partition=_partition((1, 1)), **kwargs)
        dense = run_simulation(cfg, engine="dense", **kwargs)
        assert _comparable(part, with_counters=False) == _comparable(
            dense, with_counters=False
        )

    def test_flow_state_matches_monolith(self):
        cfg = _config()
        mono = Simulation(cfg, injection_rate=0.1, seed=1)
        part = PartitionedSimulation(
            cfg, partition=_partition((1, 1)), injection_rate=0.1, seed=1
        )
        mono.run(warmup=50, measure=150, drain_limit=0)
        part.run(warmup=50, measure=150, drain_limit=0)
        from repro.network.state import export_flow_state

        assert part.flow_state() == export_flow_state(mono.network)

    def test_1x1_counters_carry_no_partition_keys(self):
        cfg = _config()
        res = run_simulation(
            cfg, partition=_partition((1, 1)), injection_rate=0.1, seed=1, **WINDOWS
        )
        assert "partition_domains" not in res.counters
        assert "interchip_flits" not in res.counters


class TestMultiDomain:
    def test_2x2_reports_partition_counters(self):
        cfg = _config()
        res = run_simulation(
            cfg,
            partition=_partition((2, 2), link_latency=4),
            injection_rate=0.1,
            seed=1,
            **WINDOWS,
        )
        assert res.counters["partition_domains"] == 4
        assert res.counters["interchip_flits"] > 0
        assert res.counters["interchip_credits"] > 0
        for d in range(4):
            assert f"domain{d}_flits_ejected" in res.counters
        assert res.packets_ejected > 0

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_match_serial(self, workers):
        cfg = _config()
        kwargs = dict(injection_rate=0.1, seed=1, **WINDOWS)
        serial = run_simulation(
            cfg, partition=_partition((2, 2), link_latency=4), **kwargs
        )
        parallel = run_simulation(
            cfg,
            partition=_partition((2, 2), link_latency=4, workers=workers),
            **kwargs,
        )
        # cycles_skipped is the one documented serial/worker divergence
        # (it never feeds a reported metric); everything else is equal.
        assert _comparable(serial) == _comparable(parallel)

    def test_workers_match_serial_at_saturation(self):
        """No drain phase: the epoch-barrier path with outstanding flits."""
        cfg = _config()
        kwargs = dict(
            injection_rate=1.0, seed=1, warmup=50, measure=150, drain_limit=0
        )
        serial = run_simulation(cfg, partition=_partition((2, 2)), **kwargs)
        parallel = run_simulation(
            cfg, partition=_partition((2, 2), workers=2), **kwargs
        )
        assert _comparable(serial) == _comparable(parallel)

    def test_domain_engine_dense_matches_gated(self):
        cfg = _config()
        kwargs = dict(injection_rate=0.1, seed=1, **WINDOWS)
        gated = run_simulation(
            cfg, partition=_partition((2, 2), domain_engine="gated"), **kwargs
        )
        dense = run_simulation(
            cfg, partition=_partition((2, 2), domain_engine="dense"), **kwargs
        )
        assert _comparable(gated) == _comparable(dense)


class TestEngineSelection:
    def test_partition_forces_partitioned_engine(self):
        cfg = _config(num_terminals=16)
        with pytest.raises(ValueError, match="partitioned"):
            run_simulation(
                cfg,
                engine="dense",
                partition=_partition((1, 1)),
                injection_rate=0.1,
                warmup=10,
                measure=10,
            )

    def test_explicit_partitioned_engine_accepts_partition(self):
        cfg = _config(num_terminals=16)
        res = run_simulation(
            cfg,
            engine="partitioned",
            partition=_partition((2, 2)),
            injection_rate=0.1,
            seed=1,
            warmup=50,
            measure=100,
            drain_limit=200,
        )
        assert res.counters["partition_domains"] == 4

    def test_unknown_domain_engine_rejected(self):
        with pytest.raises(ValueError, match="gated.*dense.*vectorized|domain_engine"):
            _partition((2, 2), domain_engine="simd")

    def test_engine_env_partitioned(self, monkeypatch):
        """REPRO_ENGINE=partitioned resolves the grid from REPRO_PARTITION."""
        monkeypatch.setenv("REPRO_ENGINE", "partitioned")
        monkeypatch.setenv("REPRO_PARTITION", "2x2")
        cfg = _config()
        res = run_simulation(
            cfg, injection_rate=0.1, seed=1, warmup=50, measure=100, drain_limit=200
        )
        assert res.counters["partition_domains"] == 4


class TestVectorizedDomains:
    """ISSUE 10: SoA-kernel domains behind the SimDomain contract."""

    @pytest.fixture(autouse=True)
    def _numpy(self):
        pytest.importorskip("numpy")

    def test_1x1_identical_to_monolithic_vectorized(self):
        from repro.sim.vec.engine import VectorizedSimulation

        cfg = _config("vix")
        kwargs = dict(injection_rate=0.1, seed=1)
        mono = VectorizedSimulation(cfg, **kwargs)
        part = PartitionedSimulation(
            cfg,
            partition=_partition((1, 1), domain_engine="vectorized"),
            **kwargs,
        )
        r1 = mono.run(**WINDOWS)
        r2 = part.run(**WINDOWS)
        assert dataclasses.asdict(r2) == dataclasses.asdict(r1)
        assert part.flow_state() == mono.flow_state()

    @pytest.mark.parametrize(
        "allocator", ["input_first", "output_first", "vix", "ideal_vix"]
    )
    def test_2x2_matches_gated_domains(self, allocator):
        cfg = _config(allocator)
        kwargs = dict(injection_rate=0.1, seed=1, **WINDOWS)
        gated = run_simulation(
            cfg,
            partition=_partition((2, 2), link_latency=4, domain_engine="gated"),
            **kwargs,
        )
        vec = run_simulation(
            cfg,
            partition=_partition((2, 2), link_latency=4, domain_engine="vectorized"),
            **kwargs,
        )
        assert _comparable(gated) == _comparable(vec)

    def test_2x2_flow_state_matches_gated_domains(self):
        cfg = _config("vix")
        sims = {}
        for de in ("gated", "vectorized"):
            sim = PartitionedSimulation(
                cfg,
                partition=_partition((2, 2), link_latency=2, domain_engine=de),
                injection_rate=0.1,
                seed=1,
            )
            sim.run(warmup=50, measure=150, drain_limit=0)
            sims[de] = sim
        assert sims["vectorized"].flow_state() == sims["gated"].flow_state()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_match_serial(self, workers):
        cfg = _config()
        kwargs = dict(injection_rate=0.1, seed=1, **WINDOWS)
        serial = run_simulation(
            cfg,
            partition=_partition((2, 2), link_latency=4, domain_engine="vectorized"),
            **kwargs,
        )
        parallel = run_simulation(
            cfg,
            partition=_partition(
                (2, 2), link_latency=4, domain_engine="vectorized", workers=workers
            ),
            **kwargs,
        )
        assert _comparable(serial) == _comparable(parallel)

    def test_asymmetric_credit_latency_matches_gated(self):
        cfg = _config()
        kwargs = dict(injection_rate=0.1, seed=1, **WINDOWS)
        results = [
            run_simulation(
                cfg,
                partition=_partition(
                    (2, 2),
                    link_latency=3,
                    link_credit_latency=1,
                    domain_engine=de,
                ),
                **kwargs,
            )
            for de in ("gated", "vectorized")
        ]
        assert _comparable(results[0]) == _comparable(results[1])

    def test_unsupported_scheme_fails_loudly(self):
        """Non-vectorizable allocators must name the object fallbacks."""
        from repro.registry import UnknownSchemeError

        cfg = _config("packet_chaining")
        with pytest.raises(UnknownSchemeError, match="dense.*gated|gated.*dense"):
            PartitionedSimulation(
                cfg,
                partition=_partition((2, 2), domain_engine="vectorized"),
                injection_rate=0.1,
                seed=1,
            )
