# Convenience targets for the VIX reproduction.

PYTHON ?= python

.PHONY: install test bench bench-fast bench-full bench-baseline bench-obs bench-partition bench-partition-vec fault-smoke telemetry-smoke bench-trajectory partition-equivalence partition-invariants partition-vectorized examples all clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Parallel fan-out (one worker per core) with machine-readable timings.
bench-fast:
	REPRO_JOBS=auto $(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=BENCH_sweep.json -s

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Perf-trajectory point: dense vs activity-gated stepping on the 8x8 mesh.
# The result (BENCH_PR2.json) is committed; CI smoke-checks against it.
bench-baseline:
	$(PYTHON) scripts/bench_pr2.py --out BENCH_PR2.json

# Perf-trajectory point: observability overhead (disabled / metrics /
# trace-at-1%).  The result (BENCH_PR3.json) is committed; CI
# smoke-checks against it.
bench-obs:
	$(PYTHON) scripts/bench_pr3.py --out BENCH_PR3.json

# Fault-tolerance smoke: a crashed and a hung worker must not change one
# reported number, and the run journal must record the kills/retries.
fault-smoke:
	$(PYTHON) scripts/check_fault_smoke.py

# Telemetry smoke: monitor + HTTP server + chrome export on a reduced
# sweep; report byte-identical to a plain run, endpoints live mid-run.
telemetry-smoke:
	$(PYTHON) scripts/check_telemetry_smoke.py

# Merge every committed BENCH_*.json into one table and check each perf
# PR's headline ratio against its regression guard.
bench-trajectory:
	$(PYTHON) scripts/bench_report.py --check

# Golden-output gate for the chiplet-partitioned engine: f8/t1 reports
# with a 1x1 partition and zero-latency links must be byte-identical to
# the monolithic dense engine's (modulo the [perf_counters] footer).
partition-equivalence:
	$(PYTHON) scripts/check_partition.py --equivalence

# Boundary-correctness smoke: a 2x2-partitioned 8x8 mesh runs with flit
# conservation and credit accounting checked every few cycles (gated
# domains, then vectorized domains with asymmetric credit latency).
partition-invariants:
	$(PYTHON) scripts/check_partition.py --invariants

# Vectorized-domain gates: 1x1 vec partition == monolithic vectorized
# (f12, via the CLI), and 2x2 vectorized domains == gated domains on
# every SoA-formulated allocator, serial and workers.
partition-vectorized:
	$(PYTHON) scripts/check_partition.py --vectorized

# Perf-trajectory point: chiplet-partitioned engine (serial + workers)
# vs monolithic dense/gated on a 32x32 mesh.  The result
# (BENCH_PR9.json) is committed; CI guards its recorded ratios.
bench-partition:
	$(PYTHON) scripts/bench_engines.py --partition --measure 400 --warmup 200 --repeats 2

# Perf-trajectory point: vectorized (SoA) domains vs gated (object)
# domains on a 2x2-partitioned 16x16 cmesh, serial and workers.  The
# result (BENCH_PR10.json) is committed; CI guards its recorded ratios.
bench-partition-vec:
	$(PYTHON) scripts/bench_engines.py --partition-vec --measure 2000 --repeats 3

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; echo; done

all: test bench

# Removes scratch outputs only.  Committed BENCH_*.json trajectory
# baselines (e.g. BENCH_PR2.json) must survive a clean.
clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info src/*.egg-info
	rm -f BENCH_sweep.json
	find . -name __pycache__ -type d -exec rm -rf {} +
