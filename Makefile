# Convenience targets for the VIX reproduction.

PYTHON ?= python

.PHONY: install test bench bench-fast bench-full examples all clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Parallel fan-out (one worker per core) with machine-readable timings.
bench-fast:
	REPRO_JOBS=auto $(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=BENCH_sweep.json -s

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; echo; done

all: test bench

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info src/*.egg-info
	rm -f BENCH_sweep.json
	find . -name __pycache__ -type d -exec rm -rf {} +
