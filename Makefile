# Convenience targets for the VIX reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full examples all clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; echo; done

all: test bench

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
