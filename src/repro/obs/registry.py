"""Lightweight metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the sink every observability producer (allocator probes,
the flit tracer, phase timers) publishes into.  Design constraints, in
order of priority:

1. **Near-zero cost when disabled.**  A disabled registry hands out a
   shared null metric whose mutators are no-ops; simulator hot paths
   additionally guard every producer behind an ``is not None`` check so a
   run without observability executes the exact pre-observability code.
2. **Process-pool safe.**  A registry flattens to a plain dict
   (:meth:`MetricsRegistry.as_dict`) that survives pickling/JSON, and
   :meth:`MetricsRegistry.merge` folds such dicts back together, so
   metrics collected in worker processes can be aggregated in the parent.
3. **Exportable.**  :meth:`export_jsonl` appends one self-describing JSON
   line per call (valid JSONL across runs and processes);
   :meth:`export_csv` writes a two-column name/value table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        self.value += delta


class Gauge:
    """Last-value-wins instantaneous measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram: ``bounds`` are inclusive upper edges.

    A sample lands in the first bucket whose bound is >= the value; samples
    above the last bound land in the implicit overflow bucket.  Bucket
    layout is fixed at construction so two histograms with the same bounds
    merge by element-wise addition.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "total", "sum")

    def __init__(self, name: str, bounds: Iterable[float]) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float, count: int = 1) -> None:
        self.total += count
        self.sum += value * count
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += count
                return
        self.overflow += count

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the buckets (Prometheus rules).

        Linear interpolation inside the bucket the quantile rank lands in,
        with the first bucket's lower edge taken as 0 — exactly how
        ``histogram_quantile()`` reads the same buckets off the
        ``/metrics`` endpoint, so a JSONL/CSV consumer calling this and a
        Prometheus query compute the same percentile.  A rank landing in
        the overflow (+Inf) bucket clamps to the largest finite bound;
        an empty histogram returns ``nan``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return float("nan")
        rank = q * self.total
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            if cumulative >= rank and count > 0:
                below = cumulative - count
                return lower + (bound - lower) * ((rank - below) / count)
            lower = bound
        return self.bounds[-1]


class _NullMetric:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    name = "<null>"
    value = 0
    counts: list[int] = []
    overflow = 0
    total = 0
    sum = 0.0
    bounds: tuple[float, ...] = ()

    def inc(self, delta: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, count: int = 1) -> None:
        pass

    def mean(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return float("nan")


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named metric store with dict flattening, merge, and file export."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # --- metric construction ------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        if not self.enabled:
            return NULL_METRIC  # type: ignore[return-value]
        metric = self._counters.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        if not self.enabled:
            return NULL_METRIC  # type: ignore[return-value]
        metric = self._gauges.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, bounds: Iterable[float]) -> Histogram:
        """The histogram called ``name``; bounds must match on reuse."""
        if not self.enabled:
            return NULL_METRIC  # type: ignore[return-value]
        metric = self._histograms.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._histograms[name] = Histogram(name, bounds)
        elif metric.bounds != tuple(sorted(bounds)):
            raise ValueError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return metric

    def _check_fresh(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(f"metric name {name!r} already used by another kind")

    # --- bulk mutation -------------------------------------------------------

    def inc(self, name: str, delta: int = 1) -> None:
        """Increment counter ``name`` (creating it on first use)."""
        self.counter(name).inc(delta)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    # --- flattening / merge --------------------------------------------------

    def as_dict(self) -> dict:
        """Flatten every metric into plain JSON-able data (stable keys)."""
        out: dict = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            out[name] = {
                "kind": "histogram",
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "overflow": h.overflow,
                "total": h.total,
                "sum": h.sum,
            }
        return out

    def merge(self, other: "MetricsRegistry | Mapping") -> None:
        """Fold another registry (or its :meth:`as_dict` form) into this one.

        Counters and histogram buckets add; gauges keep the incoming value
        (last writer wins, matching their instantaneous semantics).
        """
        if isinstance(other, MetricsRegistry):
            data = other.as_dict()
            gauge_names = set(other._gauges)
        else:
            data = dict(other)
            gauge_names = set()
        for name, value in data.items():
            if isinstance(value, Mapping) and value.get("kind") == "histogram":
                h = self.histogram(name, value["bounds"])
                if h is NULL_METRIC:
                    continue
                counts = value["counts"]
                if len(counts) != len(h.counts):
                    raise ValueError(
                        f"histogram {name!r} merge with mismatched buckets"
                    )
                for i, c in enumerate(counts):
                    h.counts[i] += c
                h.overflow += value["overflow"]
                h.total += value["total"]
                h.sum += value["sum"]
            elif name in gauge_names:
                self.gauge(name).set(value)
            elif isinstance(value, float) and name in self._gauges:
                self.gauge(name).set(value)
            else:
                self.counter(name).inc(int(value))

    # --- export --------------------------------------------------------------

    def export_jsonl(self, path: str | Path, **context: object) -> Path:
        """Append one JSON line (``context`` fields + flattened metrics).

        One call = one line, so files written by concurrent worker
        processes stay line-valid JSONL (each append is a single short
        ``write``).
        """
        path = Path(path)
        line = json.dumps({**context, "metrics": self.as_dict()}, sort_keys=True)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as handle:
            handle.write(line + "\n")
        return path

    def export_csv(self, path: str | Path) -> Path:
        """Write a ``name,value`` table (histograms expand per bucket).

        Histogram rows are *cumulative* ``le`` counts ending with the
        explicit ``_le_+Inf`` (= total) row — the same shape the
        Prometheus endpoint exports, so percentiles computed from either
        agree (the non-cumulative overflow count is kept as
        ``_overflow`` for ring-style consumers).
        """
        path = Path(path)
        rows: list[tuple[str, object]] = []
        for name, value in self.as_dict().items():
            if isinstance(value, dict) and value.get("kind") == "histogram":
                cumulative = 0
                for bound, count in zip(value["bounds"], value["counts"]):
                    cumulative += count
                    rows.append((f"{name}_le_{bound:g}", cumulative))
                rows.append((f"{name}_le_+Inf", value["total"]))
                rows.append((f"{name}_overflow", value["overflow"]))
                rows.append((f"{name}_total", value["total"]))
                rows.append((f"{name}_sum", value["sum"]))
            else:
                rows.append((name, value))
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            handle.write("name,value\n")
            for name, value in rows:
                handle.write(f"{name},{value}\n")
        return path
