"""Allocator matching-efficiency probes — the paper's Section 2 story,
measured instead of inferred.

A :class:`AllocatorProbe` attaches to a switch allocator (one probe per
network, shared by every router, so counts are network-wide) and records,
for every contended allocation round:

* ``sa_requests`` — input VCs exposing a request to the allocator;
* ``sa_phase1_winners`` — candidates that survived input-side reduction
  (one per active crossbar input for separable schemes; one per
  requesting physical port for the port-matching schemes);
* ``sa_input_port_blocks`` — requests hidden behind the input-port /
  virtual-input constraint (``requests - phase1_winners``): a VC that
  could not even compete for an output because its crossbar input was
  taken by a sibling VC.  This is the constraint VIX relaxes (Fig. 4).
* ``sa_phase2_kills`` — phase-1 winners killed by output arbitration
  (``phase1_winners - grants``): the *sub-optimal matching problem*
  of uncoordinated separable allocation (Fig. 5).
* ``sa_grants`` — grants actually issued (achieved matching size);
* ``sa_max_matching`` — the maximum bipartite matching the same request
  set admits (Kuhn's algorithm over crossbar inputs x outputs), i.e. what
  an ideal allocator would have granted.

``matching_efficiency()`` = grants / max-matching is then directly
comparable across allocator flavours: the baseline IF allocator loses
efficiency to both kills and blocks, 1:2 VIX recovers most of it, and AP
achieves 1.0 by construction.

Probes are **opt-in and off the hot path**: an allocator's ``probe``
attribute is ``None`` by default and every recording site is guarded by a
single ``is not None`` check; the router additionally routes requests
through the full matrix path while a probe is attached (the forced-move
fast path would bypass the instrumented code — its grants are identical,
so results do not change, only visibility).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.matching import maximum_matching_size  # re-export  # noqa: F401

from .registry import MetricsRegistry

#: Counter names in snapshot/merge order.
FIELDS = (
    "sa_rounds",
    "sa_requests",
    "sa_phase1_winners",
    "sa_input_port_blocks",
    "sa_phase2_kills",
    "sa_grants",
    "sa_max_matching",
)


class AllocatorProbe:
    """Per-allocation-round matching telemetry, aggregated over a run."""

    __slots__ = (
        "name",
        "sa_rounds",
        "sa_requests",
        "sa_phase1_winners",
        "sa_input_port_blocks",
        "sa_phase2_kills",
        "sa_grants",
        "sa_max_matching",
    )

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.sa_rounds = 0
        self.sa_requests = 0
        self.sa_phase1_winners = 0
        self.sa_input_port_blocks = 0
        self.sa_phase2_kills = 0
        self.sa_grants = 0
        self.sa_max_matching = 0

    def record(
        self, requests: int, phase1_winners: int, grants: int, max_matching: int
    ) -> None:
        """Fold one allocation round into the aggregate counters."""
        self.sa_rounds += 1
        self.sa_requests += requests
        self.sa_phase1_winners += phase1_winners
        self.sa_input_port_blocks += requests - phase1_winners
        self.sa_phase2_kills += phase1_winners - grants
        self.sa_grants += grants
        self.sa_max_matching += max_matching

    # --- derived -------------------------------------------------------------

    def matching_efficiency(self) -> float:
        """Achieved / maximum matching size over every recorded round."""
        if self.sa_max_matching == 0:
            return 1.0
        return self.sa_grants / self.sa_max_matching

    def kill_rate(self) -> float:
        """Phase-1 winners killed in phase 2, as a fraction."""
        if self.sa_phase1_winners == 0:
            return 0.0
        return self.sa_phase2_kills / self.sa_phase1_winners

    # --- aggregation ---------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """Counter values as a plain dict (stable keys)."""
        return {field: getattr(self, field) for field in FIELDS}

    def merge(self, other: "AllocatorProbe | Mapping[str, int]") -> None:
        """Accumulate another probe (or its snapshot) into this one."""
        data = other.snapshot() if isinstance(other, AllocatorProbe) else other
        for field in FIELDS:
            setattr(self, field, getattr(self, field) + int(data.get(field, 0)))

    def publish(self, registry: MetricsRegistry) -> None:
        """Copy the aggregate counters into a metrics registry."""
        for field, value in self.snapshot().items():
            registry.counter(field).inc(value)
        registry.gauge("sa_matching_efficiency").set(self.matching_efficiency())
