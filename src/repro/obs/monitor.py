"""RunMonitor: the coordinator-side aggregator of streaming run telemetry.

The monitor sits between the producers and the sinks:

* **producers** — the :class:`~repro.parallel.runner.ParallelRunner`
  coordinator (cache hits, retries, cancellations, bisections, progress
  ticks) calls :meth:`RunMonitor.emit` directly; worker processes put
  ``job_start``/``job_finish`` payloads on a ``multiprocessing.Queue``
  (:meth:`worker_queue`) that a daemon drain thread folds into the same
  dispatch path;
* **sinks** — every dispatched event is appended to the
  :class:`~repro.obs.events.EventStream` (JSONL next to the run journal),
  pushed to live subscribers (the ``/events`` SSE endpoint), folded into
  the aggregate counters behind :meth:`snapshot` (``/status``) and
  :meth:`registry` (``/metrics``), and rendered by the optional live
  terminal progress line (``--monitor``) on stderr.

Everything is guarded by one dispatch lock, so events arriving from the
drain thread and the coordinator interleave into a single totally ordered
stream (the ``seq`` numbers the :class:`EventStream` assigns).

The monitor never touches simulation state and its producers are all
``if monitor is not None`` guarded, so a run without telemetry executes
the exact pre-telemetry code paths — the same structurally-off contract
as the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import os
import queue as queue_module
import sys
import threading
import time
from typing import TextIO

from .events import EventStream, RunEvent
from .registry import Histogram, MetricsRegistry

#: Bucket bounds (seconds) of the per-job wall-time histogram surfaced at
#: ``/metrics`` — sub-100ms cache-adjacent jobs up to multi-minute runs.
JOB_SECONDS_BOUNDS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0)

#: Minimum seconds between periodic ``progress`` events / renders.
_PROGRESS_INTERVAL = 0.5
_RENDER_INTERVAL = 0.2

#: Sentinel a closing monitor puts on its own worker queue so the drain
#: thread wakes immediately instead of waiting out its poll timeout.
_STOP = {"kind": "__stop__"}


class RunMonitor:
    """Aggregates run events into live status, metrics, and a JSONL stream.

    Parameters
    ----------
    stream:
        The :class:`EventStream` every event is appended to (an in-memory
        stream is created when omitted).
    live:
        Render a live progress line to ``out`` (default stderr) — the
        ``--monitor`` terminal view.
    label:
        Human-readable run label (experiment name) shown in the progress
        line and the ``/status`` document.
    run_key:
        Content key of the sweep (when known), echoed in ``/status``.
    """

    def __init__(
        self,
        *,
        stream: EventStream | None = None,
        live: bool = False,
        label: str = "",
        run_key: str | None = None,
        out: TextIO | None = None,
    ) -> None:
        self.stream = stream if stream is not None else EventStream()
        self.live = live
        self.label = label
        self.run_key = run_key
        self._out = out if out is not None else sys.stderr
        self._lock = threading.Lock()
        self._subscribers: list[queue_module.Queue] = []
        self._queue = None
        self._drain_thread: threading.Thread | None = None
        self._flush_waiters: list[threading.Event] = []
        self.closed = False
        self.started = time.time()
        self.finished_at: float | None = None
        # --- aggregate state (mutated only under the dispatch lock) ---
        self.jobs_total = 0
        self.completed = 0
        self.cache_hits = 0
        self.resumed = 0
        self.retries = 0
        self.failures = 0
        self.cancellations = 0
        self.errors = 0
        self.interrupted = 0
        self.bisections = 0
        self.engines: dict[str, int] = {}
        self.workers: set[int] = set()
        self._in_flight: dict[int, dict] = {}
        self._job_seconds = Histogram("repro_job_seconds", JOB_SECONDS_BOUNDS)
        self._last_progress = 0.0
        self._last_render = 0.0
        self._rendered = False

    # --- producer API -------------------------------------------------------

    def emit(self, kind: str, **data: object) -> None:
        """Dispatch one coordinator-side event (no-op after close)."""
        if self.closed:
            return
        self._dispatch(kind, None, data)

    def worker_queue(self):
        """The multiprocessing queue worker processes emit into.

        Created on first use, together with the daemon drain thread that
        folds worker payloads into the dispatch path.  Safe to hand to
        ``ProcessPoolExecutor`` initializers: the queue crosses the
        process-creation channel, not the pickled call path.
        """
        if self._queue is None:
            import multiprocessing

            self._queue = multiprocessing.Queue()
            self._drain_thread = threading.Thread(
                target=self._drain, name="telemetry-drain", daemon=True
            )
            self._drain_thread.start()
        return self._queue

    def tick(self) -> None:
        """Rate-limited periodic progress sample (coordinator poll loop)."""
        if self.closed:
            return
        now = time.time()
        if now - self._last_progress < _PROGRESS_INTERVAL:
            return
        self._last_progress = now
        self._dispatch(
            "progress",
            now,
            {
                "in_flight": len(self._in_flight),
                "completed": self.completed,
                "total": self.jobs_total,
            },
        )

    # --- dispatch -----------------------------------------------------------

    def flush(self, timeout: float = 2.0) -> None:
        """Wait until worker events queued before this call are dispatched.

        Puts a flush marker behind the backlog and waits for the drain
        thread to reach it, so a subsequent ``emit`` (e.g. ``run_finish``)
        is sequenced *after* every worker event already in flight.
        """
        if self._queue is None:
            return
        thread = self._drain_thread
        if thread is None or not thread.is_alive():
            return
        marker = threading.Event()
        with self._lock:
            self._flush_waiters.append(marker)
        try:
            self._queue.put_nowait({"kind": "__flush__"})
        except (OSError, ValueError):
            return
        marker.wait(timeout)

    def _drain(self) -> None:
        """Drain thread body: fold worker queue payloads into dispatch."""
        while True:
            try:
                payload = self._queue.get(timeout=0.2)
            except queue_module.Empty:
                if self.closed:
                    return
                continue
            except (EOFError, OSError, ValueError):
                return
            if not isinstance(payload, dict):
                continue
            kind = payload.pop("kind", None)
            if kind == "__stop__":
                return
            if kind == "__flush__":
                with self._lock:
                    waiter = (
                        self._flush_waiters.pop(0) if self._flush_waiters else None
                    )
                if waiter is not None:
                    waiter.set()
                continue
            if kind is None:
                continue
            t = payload.pop("t", None)
            self._dispatch(kind, t, payload)

    def _dispatch(self, kind: str, t: float | None, data: dict) -> None:
        """Append, aggregate, fan out, render — under the one event lock."""
        with self._lock:
            if self.closed:
                return
            event = self.stream.append(kind, t=t, **data)
            self._aggregate(event)
            for subscriber in self._subscribers:
                try:
                    subscriber.put_nowait(event)
                except queue_module.Full:
                    pass
            if self.live:
                self._render(event)

    def _aggregate(self, event: RunEvent) -> None:
        kind, data = event.kind, event.data
        if kind == "batch_start":
            self.jobs_total += int(data.get("jobs", 0))
        elif kind == "cache_hit":
            self.cache_hits += 1
            self.completed += 1
        elif kind == "job_resumed":
            self.resumed += 1
        elif kind == "job_start":
            pid = data.get("pid")
            if pid is not None:
                self.workers.add(int(pid))
            self._in_flight[data.get("index", -1)] = {
                "attempt": data.get("attempt", 0),
                "pid": pid,
                "t": event.t,
            }
        elif kind == "job_finish":
            self.completed += 1
            self._in_flight.pop(data.get("index", -1), None)
            seconds = data.get("seconds")
            if isinstance(seconds, (int, float)):
                self._job_seconds.observe(float(seconds))
            engine = data.get("engine")
            if engine:
                self.engines[engine] = self.engines.get(engine, 0) + 1
        elif kind == "job_cancel":
            self.cancellations += 1
            self._in_flight.pop(data.get("index", -1), None)
        elif kind == "job_error":
            self.errors += 1
            self._in_flight.pop(data.get("index", -1), None)
        elif kind == "job_retry":
            self.retries += 1
        elif kind == "job_failed":
            self.failures += 1
        elif kind == "job_interrupted":
            self.interrupted += 1
            self._in_flight.pop(data.get("index", -1), None)
        elif kind == "chunk_bisect":
            self.bisections += 1
        elif kind == "run_finish":
            self.finished_at = event.t

    # --- sink API -----------------------------------------------------------

    def subscribe(self, maxsize: int = 1024) -> queue_module.Queue:
        """A live event queue for one consumer (the SSE handler)."""
        subscriber: queue_module.Queue = queue_module.Queue(maxsize=maxsize)
        with self._lock:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: queue_module.Queue) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    def snapshot(self) -> dict:
        """The ``/status`` document: totals, in-flight jobs, recent events."""
        with self._lock:
            now = time.time()
            in_flight = [
                {
                    "index": index,
                    "attempt": info.get("attempt", 0),
                    "pid": info.get("pid"),
                    "seconds": round(now - info.get("t", now), 3),
                }
                for index, info in sorted(self._in_flight.items())
            ]
            done = self.completed + self.resumed
            return {
                "label": self.label,
                "run_key": self.run_key,
                "started": round(self.started, 6),
                "elapsed_seconds": round(
                    (self.finished_at or now) - self.started, 3
                ),
                "finished": self.finished_at is not None,
                "jobs_total": self.jobs_total,
                "completed": self.completed,
                "cache_hits": self.cache_hits,
                "resumed": self.resumed,
                "in_flight": in_flight,
                "in_flight_count": len(in_flight),
                "retries": self.retries,
                "failures": self.failures,
                "cancellations": self.cancellations,
                "errors": self.errors,
                "interrupted": self.interrupted,
                "chunk_bisections": self.bisections,
                "engines": dict(sorted(self.engines.items())),
                "workers": sorted(self.workers),
                "events_total": self.stream.appended,
                "events_dropped": self.stream.dropped,
                "recent_events": [
                    event.to_dict() for event in self.stream.tail(20)
                ],
            }

    def registry(self) -> MetricsRegistry:
        """A fresh ``MetricsRegistry`` view of the aggregate state.

        Feeds the ``/metrics`` Prometheus endpoint; names are prefixed
        ``repro_`` so they can merge into wider registries unambiguously.
        """
        with self._lock:
            reg = MetricsRegistry()
            reg.counter("repro_jobs_total").inc(self.jobs_total)
            reg.counter("repro_jobs_completed").inc(self.completed)
            reg.counter("repro_cache_hits").inc(self.cache_hits)
            reg.counter("repro_jobs_resumed").inc(self.resumed)
            reg.counter("repro_job_retries").inc(self.retries)
            reg.counter("repro_job_failures").inc(self.failures)
            reg.counter("repro_job_cancellations").inc(self.cancellations)
            reg.counter("repro_job_errors").inc(self.errors)
            reg.counter("repro_chunk_bisections").inc(self.bisections)
            reg.counter("repro_events_total").inc(self.stream.appended)
            reg.counter("repro_events_dropped").inc(self.stream.dropped)
            reg.gauge("repro_jobs_in_flight").set(float(len(self._in_flight)))
            reg.gauge("repro_run_elapsed_seconds").set(
                round((self.finished_at or time.time()) - self.started, 3)
            )
            reg.gauge("repro_run_finished").set(
                1.0 if self.finished_at is not None else 0.0
            )
            for engine, count in sorted(self.engines.items()):
                reg.counter(f"repro_engine_jobs_{engine}").inc(count)
            if self._job_seconds.total:
                h = reg.histogram("repro_job_seconds", JOB_SECONDS_BOUNDS)
                for i, count in enumerate(self._job_seconds.counts):
                    h.counts[i] += count
                h.overflow += self._job_seconds.overflow
                h.total += self._job_seconds.total
                h.sum += self._job_seconds.sum
            return reg

    # --- live terminal renderer ---------------------------------------------

    def _render(self, event: RunEvent, force: bool = False) -> None:
        now = time.time()
        if not force and now - self._last_render < _RENDER_INTERVAL:
            return
        self._last_render = now
        elapsed = int((self.finished_at or now) - self.started)
        label = f" {self.label}" if self.label else ""
        line = (
            f"[monitor]{label} {self.completed}/{self.jobs_total} jobs | "
            f"{len(self._in_flight)} in flight | hits {self.cache_hits}"
        )
        if self.resumed:
            line += f" | resumed {self.resumed}"
        if self.retries:
            line += f" | retries {self.retries}"
        if self.cancellations:
            line += f" | cancelled {self.cancellations}"
        if self.failures:
            line += f" | failed {self.failures}"
        line += f" | {elapsed // 60:02d}:{elapsed % 60:02d}"
        try:
            self._out.write("\r\x1b[2K" + line)
            self._out.flush()
            self._rendered = True
        except (OSError, ValueError):
            self.live = False

    # --- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop the drain thread, finish the render line, flush the stream.

        The worker-queue backlog is drained *before* the monitor marks
        itself closed: the stop sentinel queues FIFO behind any events
        still in flight, so late worker events are dispatched, not
        dropped.
        """
        if self.closed:
            return
        if self._queue is not None:
            try:
                self._queue.put_nowait(dict(_STOP))
            except (OSError, ValueError):
                pass
            if self._drain_thread is not None:
                self._drain_thread.join(timeout=2.0)
            try:
                self._queue.close()
                self._queue.cancel_join_thread()
            except (OSError, ValueError):
                pass
        with self._lock:
            if self.closed:
                return
            if self.live:
                self._render(RunEvent(0, time.time(), "close"), force=True)
            self.closed = True
            if self._rendered:
                try:
                    self._out.write("\n")
                    self._out.flush()
                except (OSError, ValueError):
                    pass
        # Wake blocked subscribers (SSE loops poll `closed` between gets).
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber.put_nowait(None)
            except queue_module.Full:
                pass
        self.stream.close()


def emit_worker_event(queue, kind: str, **data: object) -> None:
    """Best-effort event put from a worker process (never fails the job)."""
    if queue is None:
        return
    payload = {"kind": kind, "t": time.time(), "pid": os.getpid(), **data}
    try:
        queue.put_nowait(payload)
    except Exception:
        pass
