"""Stdlib-only HTTP telemetry server: ``/status``, ``/metrics``, ``/events``.

One :class:`TelemetryServer` wraps a :class:`~repro.obs.monitor.RunMonitor`
and serves its three sink views over plain ``http.server``:

* ``GET /status`` — the monitor's :meth:`~RunMonitor.snapshot` as JSON
  (totals, per-job in-flight list, recent events);
* ``GET /metrics`` — the monitor's :meth:`~RunMonitor.registry` rendered
  in Prometheus exposition text format;
* ``GET /events`` — Server-Sent Events: replays the buffered stream tail,
  then pushes each new event live as a ``data:`` line, with periodic
  comment keep-alives so idle proxies don't cut the connection;
* ``GET /`` — a small JSON index of the above.

The server is a ``ThreadingHTTPServer`` with daemon threads bound to
localhost by default, so it disappears with the sweep and never outlives
or blocks it.  ``port=0`` asks the OS for a free port — read ``url``
after :meth:`start` for the resolved address.
"""

from __future__ import annotations

import json
import queue as queue_module
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .exporters import prometheus_text
from .monitor import RunMonitor

#: Seconds between SSE keep-alive comments when no events arrive.
_SSE_KEEPALIVE = 1.0

#: Replayed tail size on a new ``/events`` connection.
_SSE_REPLAY = 100


class _Handler(BaseHTTPRequestHandler):
    """Routes one request against ``self.server.monitor``."""

    protocol_version = "HTTP/1.1"

    # Silence the default per-request stderr logging — the monitor owns
    # the terminal line and logging here would shred it.
    def log_message(self, format: str, *args: object) -> None:
        pass

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        monitor: RunMonitor = self.server.monitor
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/":
                self._send_json(
                    {
                        "endpoints": ["/status", "/metrics", "/events"],
                        "label": monitor.label,
                        "run_key": monitor.run_key,
                    }
                )
            elif path == "/status":
                self._send_json(monitor.snapshot())
            elif path == "/metrics":
                self._send_text(
                    prometheus_text(monitor.registry()),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/events":
                self._serve_events(monitor)
            else:
                self._send_json({"error": f"no such endpoint: {path}"}, status=404)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _serve_events(self, monitor: RunMonitor) -> None:
        """SSE: replay the buffered tail, then stream live events."""
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is an unbounded stream: no Content-Length, close delimits.
        self.send_header("Connection", "close")
        self.end_headers()

        def write_event(event) -> None:
            line = json.dumps(event.to_dict(), sort_keys=True)
            self.wfile.write(f"id: {event.seq}\ndata: {line}\n\n".encode())
            self.wfile.flush()

        subscriber = monitor.subscribe()
        try:
            last_seq = -1
            for event in monitor.stream.tail(_SSE_REPLAY):
                write_event(event)
                last_seq = event.seq
            while not self.server.stopping:
                try:
                    event = subscriber.get(timeout=_SSE_KEEPALIVE)
                except queue_module.Empty:
                    if monitor.closed:
                        break
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                if event is None:  # monitor closed: final wake-up
                    break
                if event.seq <= last_seq:  # already sent during replay
                    continue
                write_event(event)
        finally:
            monitor.unsubscribe(subscriber)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # The sweep must never wait on a slow telemetry client at shutdown.
    allow_reuse_address = True

    def __init__(self, address: tuple, monitor: RunMonitor) -> None:
        super().__init__(address, _Handler)
        self.monitor = monitor
        self.stopping = False


class TelemetryServer:
    """Lifecycle wrapper: bind, serve from a daemon thread, close cleanly.

    >>> server = TelemetryServer(monitor, port=0)
    >>> server.start()      # binds; server.url is now concrete
    >>> ...                 # sweep runs; clients poll /status, tail /events
    >>> server.close()
    """

    def __init__(
        self, monitor: RunMonitor, *, port: int = 0, host: str = "127.0.0.1"
    ) -> None:
        self.monitor = monitor
        self.host = host
        self.port = port
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "TelemetryServer":
        """Bind the socket and start serving from a daemon thread."""
        if self._server is not None:
            return self
        self._server = _Server((self.host, self.port), self.monitor)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="telemetry-http",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        server, self._server = self._server, None
        if server is None:
            return
        server.stopping = True
        server.shutdown()
        server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()
