"""Profiling hooks: per-phase wall-time spans and per-job cProfile capture.

Two granularities:

* :class:`PhaseTimer` — microsecond-resolution wall-time accumulators for
  the simulation engine's warmup/measure/drain phases.  Span totals are
  folded into the run's counter snapshot as ``span_<phase>_us`` integers,
  which the parallel layer's :class:`~repro.parallel.runner.ExecutionStats`
  picks up and the ``[perf_counters]`` experiment footer displays.
* :func:`profiled_call` — wraps a callable in ``cProfile`` and dumps the
  stats file into a directory; the parallel runner uses it to capture one
  profile per simulation job when ``REPRO_PROFILE_DIR`` is set
  (``python -m pstats <file>`` or snakeviz reads the dumps).
"""

from __future__ import annotations

import cProfile
import time
from pathlib import Path
from typing import Callable, TypeVar

T = TypeVar("T")

#: Prefix used when span totals are folded into counter snapshots.
SPAN_PREFIX = "span_"
SPAN_SUFFIX = "_us"


class PhaseTimer:
    """Named wall-time span accumulator (not thread-safe; one per run)."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall time into ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds

    def time(self, phase: str, fn: Callable[[], T]) -> T:
        """Run ``fn`` and charge its wall time to ``phase``."""
        start = time.perf_counter()
        try:
            return fn()
        finally:
            self.add(phase, time.perf_counter() - start)

    def counter_items(self) -> dict[str, int]:
        """Spans as ``span_<phase>_us`` integer counters (snapshot form)."""
        return {
            f"{SPAN_PREFIX}{phase}{SPAN_SUFFIX}": int(seconds * 1e6)
            for phase, seconds in self.seconds.items()
        }


def spans_from_counters(counters: dict) -> dict[str, float]:
    """Recover ``{phase: seconds}`` from a counter snapshot's span keys."""
    spans: dict[str, float] = {}
    for key, value in counters.items():
        if key.startswith(SPAN_PREFIX) and key.endswith(SPAN_SUFFIX):
            phase = key[len(SPAN_PREFIX) : -len(SPAN_SUFFIX)]
            spans[phase] = value / 1e6
    return spans


def profiled_call(fn: Callable[[], T], dump_dir: str | Path, tag: str) -> T:
    """Run ``fn`` under cProfile, dumping stats to ``dump_dir/<tag>.pstats``.

    Profiling failures (unwritable directory, profiler reentrancy) never
    fail the wrapped call: the work is the product, the profile is a
    diagnostic.
    """
    profiler = cProfile.Profile()
    try:
        profiler.enable()
    except Exception:
        # Another profiler is already active: run unprofiled.
        return fn()
    try:
        result = fn()
    finally:
        profiler.disable()
    try:
        dump_dir = Path(dump_dir)
        dump_dir.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(dump_dir / f"{tag}.pstats"))
    except Exception:
        pass
    return result
