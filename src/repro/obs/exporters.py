"""Telemetry exporters: Prometheus text format and Chrome trace events.

Two wire formats, both stdlib-only:

* :func:`prometheus_text` renders a :class:`MetricsRegistry` in the
  Prometheus exposition format (version 0.0.4, the ``/metrics`` content
  type).  Counters and gauges are one sample each; histograms expand to
  *cumulative* ``_bucket{le="..."}`` samples including the mandatory
  ``le="+Inf"`` bucket, plus ``_sum`` and ``_count`` — so a Prometheus
  ``histogram_quantile`` over the endpoint and a
  :meth:`~repro.obs.registry.Histogram.quantile` over the JSONL snapshot
  compute the same percentile from the same buckets.
* :func:`export_chrome_trace` lays out the run's event stream as a Chrome
  trace-event JSON file (the ``chrome://tracing`` / Perfetto format): one
  trace *process* per worker pid, one complete (``"X"``) slice per
  executed job, nested slices for the warmup/measure/drain phase spans
  when profiling was on, and an ``in_flight`` counter track from the
  periodic progress samples.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable

from .events import RunEvent, ordered
from .registry import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """Sanitize a metric name into the Prometheus grammar."""
    name = _NAME_RE.sub("_", name)
    if not name or not (name[0].isalpha() or name[0] in "_:"):
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus exposition text format (0.0.4).

    Samples are emitted in sorted-name order, each preceded by its
    ``# TYPE`` line, and the payload ends with the spec's trailing
    newline — `promtool check metrics` clean.
    """
    lines: list[str] = []
    for name in sorted(registry._counters):
        metric = registry._counters[name]
        pname = _metric_name(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_format_value(metric.value)}")
    for name in sorted(registry._gauges):
        metric = registry._gauges[name]
        pname = _metric_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_format_value(metric.value)}")
    for name in sorted(registry._histograms):
        h = registry._histograms[name]
        pname = _metric_name(name)
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, count in zip(h.bounds, h.counts):
            cumulative += count
            lines.append(f'{pname}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{pname}_bucket{{le="+Inf"}} {h.total}')
        lines.append(f"{pname}_sum {repr(float(h.sum))}")
        lines.append(f"{pname}_count {h.total}")
    return "\n".join(lines) + "\n"


# --- Chrome trace-event export ----------------------------------------------

#: Phase-span display order inside a job slice (simulation phases first).
_SPAN_ORDER = ("warmup", "measure", "drain", "kernel")


def chrome_trace_events(events: Iterable[RunEvent]) -> list[dict]:
    """Convert a run event stream into Chrome trace-event dicts.

    Timestamps are microseconds relative to the earliest event, so the
    trace opens at t=0 regardless of wall-clock epoch.  Workers become
    trace processes named ``worker-<pid>`` (the coordinator is pid 0,
    labeled ``coordinator``); every job attempt that both started and
    finished becomes one complete slice with its engine, attempt, and
    wall seconds in ``args``, phase spans (when profiled) as nested
    slices, and ``progress`` samples become an ``in_flight`` counter.
    """
    events = ordered(events)
    if not events:
        return []
    t0 = min(event.t for event in events)

    def us(t: float) -> int:
        return int(round((t - t0) * 1e6))

    trace: list[dict] = []
    pids: dict[int, str] = {0: "coordinator"}
    # (index, attempt) -> start event, to pair starts with finishes.
    starts: dict[tuple, RunEvent] = {}

    for event in events:
        data = event.data
        index = data.get("index")
        attempt = data.get("attempt", 0)
        if event.kind == "job_start":
            starts[(index, attempt)] = event
            pid = int(data.get("pid") or 0)
            pids.setdefault(pid, f"worker-{pid}")
        elif event.kind == "job_finish":
            start = starts.pop((index, attempt), None)
            pid = int(data.get("pid") or 0)
            pids.setdefault(pid, f"worker-{pid}")
            seconds = data.get("seconds")
            if start is not None:
                begin = start.t
                dur = event.t - begin
            elif isinstance(seconds, (int, float)):
                # Start event lost (ring drop): reconstruct from duration.
                begin = event.t - float(seconds)
                dur = float(seconds)
            else:
                continue
            args = {"attempt": attempt}
            if isinstance(seconds, (int, float)):
                args["seconds"] = seconds
            for key in ("engine", "vec_kernel_cycles", "key"):
                if key in data:
                    args[key] = data[key]
            trace.append(
                {
                    "name": f"job {index}",
                    "cat": "job",
                    "ph": "X",
                    "ts": us(begin),
                    "dur": max(1, int(round(dur * 1e6))),
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
            spans = data.get("spans")
            if isinstance(spans, dict):
                cursor = begin
                keys = [k for k in _SPAN_ORDER if k in spans]
                keys += sorted(k for k in spans if k not in _SPAN_ORDER)
                for phase in keys:
                    seconds_in_phase = spans[phase]
                    if not isinstance(seconds_in_phase, (int, float)):
                        continue
                    trace.append(
                        {
                            "name": phase,
                            "cat": "phase",
                            "ph": "X",
                            "ts": us(cursor),
                            "dur": max(1, int(round(seconds_in_phase * 1e6))),
                            "pid": pid,
                            "tid": 1,
                            "args": {"job": index},
                        }
                    )
                    cursor += seconds_in_phase
        elif event.kind == "progress":
            trace.append(
                {
                    "name": "in_flight",
                    "ph": "C",
                    "ts": us(event.t),
                    "pid": 0,
                    "tid": 0,
                    "args": {"in_flight": data.get("in_flight", 0)},
                }
            )
        elif event.kind in ("run_start", "run_finish", "job_cancel", "job_failed"):
            trace.append(
                {
                    "name": event.kind,
                    "cat": "run",
                    "ph": "i",
                    "s": "g",
                    "ts": us(event.t),
                    "pid": 0,
                    "tid": 0,
                    "args": {
                        k: v for k, v in data.items() if isinstance(v, (int, float, str))
                    },
                }
            )

    for pid, name in sorted(pids.items()):
        trace.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        trace.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": 0 if pid == 0 else pid},
            }
        )
    return trace


def export_chrome_trace(
    events: Iterable[RunEvent], path: str | Path, **metadata: object
) -> Path:
    """Write the event stream as a Perfetto-loadable Chrome trace file."""
    path = Path(path)
    document = {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ms",
        "otherData": {str(k): v for k, v in metadata.items()},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return path
