"""End-to-end observability: metrics registry, allocator probes, flit
tracing, and profiling hooks.

The package is organised producer-side vs sink-side:

* :mod:`repro.obs.registry` — :class:`MetricsRegistry` (counters, gauges,
  fixed-bucket histograms) with merge and JSONL/CSV export;
* :mod:`repro.obs.probes` — :class:`AllocatorProbe`, the per-cycle
  matching-efficiency telemetry wired into the switch allocators;
* :mod:`repro.obs.trace` — :class:`FlitTracer`, the sampled flit-level
  pipeline event recorder;
* :mod:`repro.obs.profiling` — :class:`PhaseTimer` spans and per-job
  cProfile capture;
* :mod:`repro.obs.config` — :class:`ObservabilityConfig`, resolved from
  the ``REPRO_TRACE`` / ``REPRO_METRICS_OUT`` / ``REPRO_PROFILE``
  environment (the CLI's ``--trace`` / ``--metrics-out`` / ``--profile``).

A second, execution-level telemetry plane streams what the *sweep* is
doing (jobs, workers, retries, progress) rather than what the simulated
network did:

* :mod:`repro.obs.events` — :class:`RunEvent` / :class:`EventStream`,
  the ordered JSONL-backed event bus;
* :mod:`repro.obs.monitor` — :class:`RunMonitor`, the coordinator-side
  aggregator draining worker events off a multiprocessing queue;
* :mod:`repro.obs.exporters` — Prometheus exposition text and Chrome
  trace-event (Perfetto) export;
* :mod:`repro.obs.server` — :class:`TelemetryServer`, the stdlib HTTP
  server behind ``--serve`` (``/status``, ``/metrics``, ``/events`` SSE);
* :class:`TelemetryConfig` (in :mod:`repro.obs.config`) — the
  ``REPRO_MONITOR`` / ``REPRO_SERVE`` / ``REPRO_TRACE_EXPORT`` knobs.

:class:`Observability` below is the per-simulation orchestrator: it
builds the enabled collectors, attaches them to a network (probe on every
router's allocator, tracer on routers/NIs/the network), and finalises the
run into a metrics snapshot plus optional JSONL files.  When the config
is disabled (the default) nothing is attached and the simulator runs its
exact pre-observability code paths.
"""

from __future__ import annotations

from .config import ObservabilityConfig, TelemetryConfig, env_observability_enabled
from .events import EVENT_KINDS, EventStream, RunEvent, event_stream_path
from .exporters import chrome_trace_events, export_chrome_trace, prometheus_text
from .monitor import RunMonitor, emit_worker_event
from .probes import AllocatorProbe, maximum_matching_size
from .profiling import PhaseTimer, profiled_call, spans_from_counters
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .server import TelemetryServer
from .trace import FlitTracer


class Observability:
    """Collectors for one simulation run, built from a config.

    ``attach(network)`` is activity-gating safe by construction: every
    hook fires from code that only runs when a component actually does
    work, so slept routers generate no events, and the gated and dense
    stepping modes produce identical telemetry.
    """

    def __init__(self, config: ObservabilityConfig) -> None:
        self.config = config
        self.registry = MetricsRegistry() if config.metrics else None
        self.probe = AllocatorProbe() if config.metrics else None
        self.tracer = (
            FlitTracer(sample=config.trace_sample, capacity=config.trace_buffer)
            if config.trace
            else None
        )
        self.timer = PhaseTimer() if config.profile else None

    def attach(self, network) -> None:
        """Hook the enabled collectors into ``network``'s components."""
        probe = self.probe
        tracer = self.tracer
        if probe is not None:
            self.probe.name = network.config.router.allocator
            for router in network.routers:
                if router is None:
                    continue  # partition-domain hole (unowned router)
                router.allocator.probe = probe
                # The forced-move fast path bypasses the instrumented
                # matrix path; its grants (and arbiter state) are
                # identical, so disabling it only changes visibility.
                router._alloc_fast = None
        if tracer is not None:
            network.tracer = tracer
            for router in network.routers:
                if router is not None:
                    router.tracer = tracer
            for ni in network.interfaces:
                if ni is not None:
                    ni.tracer = tracer

    def finalize(self, network, **context) -> dict | None:
        """Close out a run: flush files, return the metrics snapshot.

        ``context`` fields (allocator, rate, seed, ...) are stamped onto
        every exported line so aggregation across runs and worker
        processes needs no out-of-band bookkeeping.
        """
        registry = self.registry
        if self.tracer is not None:
            if registry is not None:
                for name, value in self.tracer.stats().items():
                    registry.counter(name).inc(value)
            if self.config.trace_path:
                self.tracer.write_jsonl(self.config.trace_path, **context)
        if registry is None:
            return None
        if self.probe is not None:
            self.probe.publish(registry)
        for name, value in network.counters.snapshot().items():
            registry.counter(name).inc(value)
        if self.config.metrics_path:
            registry.export_jsonl(self.config.metrics_path, **context)
        return registry.as_dict()


__all__ = [
    "AllocatorProbe",
    "Counter",
    "EVENT_KINDS",
    "EventStream",
    "FlitTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ObservabilityConfig",
    "PhaseTimer",
    "RunEvent",
    "RunMonitor",
    "TelemetryConfig",
    "TelemetryServer",
    "chrome_trace_events",
    "emit_worker_event",
    "env_observability_enabled",
    "event_stream_path",
    "export_chrome_trace",
    "maximum_matching_size",
    "profiled_call",
    "prometheus_text",
    "spans_from_counters",
]
