"""Structured run-telemetry events: the sweep's streaming event bus.

One :class:`RunEvent` describes one thing that happened during a sweep —
a job starting in a worker, a cache hit, a retry after a crash, a
periodic in-flight progress sample.  Events are the *execution layer's*
telemetry (jobs, workers, retries, wall clock), complementing the
*simulator-level* telemetry of :mod:`repro.obs.trace` (flits, pipeline
stages, cycles): the tracer answers "what did the network do", the event
stream answers "what is my sweep doing right now".

:class:`EventStream` is the append-only spine every sink hangs off:

* events are assigned a monotonically increasing ``seq`` at append time,
  so any consumer can re-establish total order;
* each event is appended to a JSONL file next to the
  :class:`~repro.parallel.journal.RunJournal` (one short ``write`` per
  line, so the file stays line-valid under crashes);
* a bounded in-memory ring keeps the recent tail for replay (``/events``
  SSE replay, the Chrome-trace exporter) with an explicit drop counter —
  a runaway event storm truncates loudly, never silently.

Event kinds written by the coordinator and workers:

==================  ======================================================
kind                meaning
==================  ======================================================
``run_start``       a sweep (one :func:`execute_spec`) began
``batch_start``     one runner batch began (``jobs`` = batch size)
``cache_hit``       a job was served from the result cache
``job_resumed``     ``--resume`` skipped a journaled-complete job
``job_start``       a worker picked the job up (worker-side, carries pid)
``job_finish``      the job completed (worker-side: seconds, engine,
                    phase spans, ``vec_kernel_cycles`` when profiled)
``job_cancel``      the job blew its time budget; its worker was killed
``job_error``       one attempt failed (``reason``: crash|error)
``job_retry``       the job was requeued after a failed attempt
``job_failed``      the job exhausted its retry budget
``job_interrupted`` collateral of a kill/crash elsewhere; requeued
``chunk_bisect``    a failed multi-job chunk was split to isolate a job
``progress``        periodic in-flight sample (in_flight/completed/total)
``run_finish``      the sweep ended (carries the final stats dict)
==================  ======================================================
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Every event kind the coordinator or a worker may emit (see module doc).
EVENT_KINDS = (
    "run_start",
    "batch_start",
    "cache_hit",
    "job_resumed",
    "job_start",
    "job_finish",
    "job_cancel",
    "job_error",
    "job_retry",
    "job_failed",
    "job_interrupted",
    "chunk_bisect",
    "progress",
    "run_finish",
)

#: Default in-memory ring capacity (events); the JSONL file is unbounded.
DEFAULT_BUFFER = 100_000


@dataclass(frozen=True)
class RunEvent:
    """One telemetry event: sequence number, wall-clock stamp, kind, data."""

    seq: int
    t: float
    kind: str
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Flat JSON-able form (the JSONL/SSE wire schema)."""
        return {"seq": self.seq, "t": round(self.t, 6), "kind": self.kind, **self.data}

    @classmethod
    def from_dict(cls, payload: dict) -> "RunEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        data = {
            k: v for k, v in payload.items() if k not in ("seq", "t", "kind")
        }
        return cls(
            seq=int(payload.get("seq", 0)),
            t=float(payload.get("t", 0.0)),
            kind=str(payload.get("kind", "?")),
            data=data,
        )


def event_stream_path(run_key: str) -> Path:
    """On-disk event stream location for one run (spec content key).

    Lives next to the run journal (``<cache root>/events/<run key>.jsonl``)
    so the journal and the event stream of one sweep are siblings.
    """
    from repro.parallel.cache import default_cache_dir

    return default_cache_dir() / "events" / f"{run_key}.jsonl"


class EventStream:
    """Ordered event sink: seq assignment, JSONL append, bounded replay ring.

    Not thread-safe by itself — :class:`~repro.obs.monitor.RunMonitor`
    serializes every append under its dispatch lock.  Filesystem errors
    degrade to "no file" (the journal's durability contract): the stream
    accelerates observation, it is never a dependency of the sweep.
    """

    def __init__(
        self, path: str | Path | None = None, *, capacity: int = DEFAULT_BUFFER
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.path = Path(path) if path is not None else None
        self.capacity = capacity
        self._events: deque[RunEvent] = deque(maxlen=capacity)
        self._handle = None
        self._next_seq = 0
        #: Events appended so far (ring-dropped ones included).
        self.appended = 0

    # --- append ------------------------------------------------------------

    def append(self, kind: str, t: float | None = None, **data: object) -> RunEvent:
        """Record one event: assign its seq, buffer it, write the JSONL line."""
        event = RunEvent(
            seq=self._next_seq,
            t=time.time() if t is None else t,
            kind=kind,
            data=data,
        )
        self._next_seq += 1
        self.appended += 1
        self._events.append(event)
        self._write(event)
        return event

    def _write(self, event: RunEvent) -> None:
        if self.path is None:
            return
        try:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a")
            self._handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            self._handle.flush()
        except OSError:
            # Same contract as the run journal: never fail the sweep over
            # a telemetry file.  Disable further writes for this stream.
            self._handle = None
            self.path = None

    def close(self) -> None:
        """Flush and release the JSONL handle (idempotent)."""
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    # --- introspection / replay --------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RunEvent]:
        return iter(tuple(self._events))

    @property
    def dropped(self) -> int:
        """Events no longer in the replay ring (oldest-first truncation)."""
        return self.appended - len(self._events)

    def events(self) -> list[RunEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def tail(self, n: int) -> list[RunEvent]:
        """The most recent ``n`` buffered events, oldest first."""
        if n <= 0:
            return []
        buffered = tuple(self._events)
        return list(buffered[-n:])

    # --- load --------------------------------------------------------------

    @staticmethod
    def load(path: str | Path) -> list[RunEvent]:
        """Every well-formed event of a JSONL stream file, in write order.

        A missing file is an empty stream; malformed lines (torn by a
        crash) are skipped, mirroring :meth:`RunJournal.load`.
        """
        try:
            raw = Path(path).read_text()
        except OSError:
            return []
        events = []
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict) and "kind" in payload:
                events.append(RunEvent.from_dict(payload))
        return events


def ordered(events: Iterable[RunEvent]) -> list[RunEvent]:
    """Events sorted by sequence number (total order re-established)."""
    return sorted(events, key=lambda event: event.seq)
