"""Flit-level event tracer: bounded ring buffer + deterministic sampling.

The tracer records one event per (flit, pipeline stage) transition:

========  ==========================================================
stage     meaning
========  ==========================================================
inject    the flit left its source NI onto the injection channel
arrive    the flit entered a router input buffer
va        the packet's head won VC allocation at a router
sa        the flit won switch allocation and left its buffer
eject     the flit was delivered to its destination NI
========  ==========================================================

Each event carries ``(cycle, pid, flit, router, stage, vc, vin)`` where
``flit`` is the flit's sequence number inside its packet and ``vin`` is
the crossbar virtual input the flit used (``-1`` where not applicable,
e.g. arrivals).  The JSONL schema mirrors those field names exactly.

Sampling is **per packet** and deterministic: a packet is either traced
through its whole lifetime or not at all, chosen by hashing its pid, so
the same simulation always produces the same trace and per-packet
latency breakdowns are never truncated mid-flight.

The buffer is a bounded ring (``deque(maxlen=...)``): a runaway trace
drops its *oldest* events rather than growing without bound, and the
number of dropped events is reported so truncation is never silent.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

#: Knuth multiplicative hash constant: spreads consecutive pids uniformly
#: over 32 bits so sampling "every Nth packet" artifacts cannot occur.
_HASH_MULT = 2654435761
_HASH_MASK = 0xFFFFFFFF

STAGES = ("inject", "arrive", "va", "sa", "eject")


class FlitTracer:
    """Sampling ring-buffer recorder for flit pipeline events."""

    __slots__ = ("sample", "_threshold", "_events", "recorded", "capacity", "cycle")

    def __init__(self, *, sample: float = 1.0, capacity: int = 100_000) -> None:
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample must be in (0, 1], got {sample}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sample = sample
        self.capacity = capacity
        #: pids whose 32-bit hash falls below this are traced.
        self._threshold = int(sample * (_HASH_MASK + 1))
        self._events: deque[tuple[int, int, int, int, str, int, int]] = deque(
            maxlen=capacity
        )
        #: Events recorded (dropped ones included).
        self.recorded = 0
        #: Current simulation cycle, refreshed by ``Network.step`` so call
        #: sites without a clock (routers, NIs) can stamp events.
        self.cycle = 0

    def wants(self, pid: int) -> bool:
        """True when packet ``pid`` is in the traced sample (deterministic)."""
        return (pid * _HASH_MULT & _HASH_MASK) < self._threshold

    def record(
        self,
        cycle: int,
        pid: int,
        flit: int,
        router: int,
        stage: str,
        vc: int,
        vin: int = -1,
    ) -> None:
        """Record one event if ``pid`` is sampled.

        Call sites on the simulator hot path should prefer
        ``if tracer.wants(pid)`` guards only when they must compute event
        fields (e.g. the virtual input); otherwise calling ``record``
        directly is fine — the sampling check is the first thing it does.
        """
        if (pid * _HASH_MULT & _HASH_MASK) >= self._threshold:
            return
        self.recorded += 1
        self._events.append((cycle, pid, flit, router, stage, vc, vin))

    # --- introspection / export ---------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound (oldest-first)."""
        return self.recorded - len(self._events)

    def events(self) -> list[dict]:
        """Buffered events as dicts in record order (oldest first)."""
        return [
            {
                "cycle": cycle,
                "pid": pid,
                "flit": flit,
                "router": router,
                "stage": stage,
                "vc": vc,
                "vin": vin,
            }
            for cycle, pid, flit, router, stage, vc, vin in self._events
        ]

    def packet_events(self, pid: int) -> list[dict]:
        """The buffered events of one packet, in order."""
        return [ev for ev in self.events() if ev["pid"] == pid]

    def write_jsonl(self, path: str | Path, **context: object) -> Path:
        """Append the buffered events to ``path`` as JSONL.

        Every line is one event; ``context`` fields (e.g. allocator, seed)
        are folded into each line so traces from many runs share one file
        and remain self-describing.  Appending keeps multi-run and
        multi-process traces valid — lines never interleave mid-record
        because each event is written as one short ``write`` of a full
        line.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as handle:
            for event in self.events():
                handle.write(json.dumps({**context, **event}) + "\n")
        return path

    def stats(self) -> dict[str, int]:
        """Recorder bookkeeping for the metrics snapshot.

        ``trace_dropped_events`` is the loud-truncation signal: nonzero
        means the ring wrapped and the trace file is a suffix of the run,
        not the whole run.  The same name flows into the simulation's
        counters (and from there the ``[perf_counters]`` footer), so a
        truncated trace is visible wherever the run is summarized.
        """
        return {
            "trace_events_recorded": self.recorded,
            "trace_events_buffered": len(self._events),
            "trace_dropped_events": self.dropped,
        }
