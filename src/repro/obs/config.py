"""Observability configuration: what to collect, at what cost, and where.

The configuration is a frozen dataclass so it can ride inside frozen
:class:`~repro.parallel.jobs.SimJob` specs and cross process boundaries.
The **environment** is the canonical transport to worker processes: the
CLI's ``--trace`` / ``--metrics-out`` / ``--profile`` flags set the
``REPRO_*`` variables below, every :class:`~repro.sim.engine.Simulation`
constructed without an explicit config resolves
:meth:`ObservabilityConfig.from_env`, and ``ProcessPoolExecutor`` children
inherit the parent's environment — so a flag given once observes every
simulation an experiment fans out, in every worker.

Everything defaults to *off*: the default config is falsy and simulations
run the exact pre-observability code paths (byte-identical results).

Environment variables
---------------------

``REPRO_TRACE``
    Path of the flit-trace JSONL file; setting it enables tracing.
``REPRO_TRACE_SAMPLE``
    Packet sampling rate in (0, 1] (default 1.0 = every packet).
``REPRO_TRACE_BUFFER``
    Ring-buffer capacity in events (default 100000).
``REPRO_METRICS_OUT``
    Path of the metrics JSONL file; setting it enables the metrics
    registry and the allocator matching-efficiency probes.
``REPRO_PROFILE``
    Any non-empty value enables per-phase wall-time spans in the
    simulation counters (surfaced through the ``[perf_counters]`` footer).
``REPRO_PROFILE_DIR``
    Directory for per-job ``cProfile`` dumps written by the parallel
    runner's worker entry point; setting it implies ``REPRO_PROFILE``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

_TRUTHY_OFF = ("", "0", "false")


@dataclass(frozen=True)
class ObservabilityConfig:
    """What the observability layer should collect for one simulation."""

    #: Enable the metrics registry + allocator probes.
    metrics: bool = False
    #: JSONL file that each run appends its metrics snapshot to (optional
    #: even when ``metrics`` is on: results also carry the snapshot).
    metrics_path: str | None = None
    #: Enable the flit/packet event tracer.
    trace: bool = False
    #: JSONL file the trace is written to after the run.
    trace_path: str | None = None
    #: Fraction of packets traced, chosen deterministically by pid.
    trace_sample: float = 1.0
    #: Ring-buffer capacity (events); oldest events drop beyond it.
    trace_buffer: int = 100_000
    #: Record per-phase (warmup/measure/drain) wall-time spans.
    profile: bool = False
    #: Directory for per-job cProfile dumps (parallel runner).
    profile_dir: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in (0, 1], got {self.trace_sample}"
            )
        if self.trace_buffer < 1:
            raise ValueError(
                f"trace_buffer must be >= 1, got {self.trace_buffer}"
            )

    @property
    def enabled(self) -> bool:
        """True when any collection is requested."""
        return self.metrics or self.trace or self.profile

    def __bool__(self) -> bool:
        return self.enabled

    @classmethod
    def from_env(cls) -> "ObservabilityConfig":
        """Resolve the environment-configured observability settings."""
        env = os.environ
        trace_path = env.get("REPRO_TRACE", "").strip() or None
        metrics_path = env.get("REPRO_METRICS_OUT", "").strip() or None
        profile_dir = env.get("REPRO_PROFILE_DIR", "").strip() or None
        profile = (
            env.get("REPRO_PROFILE", "").strip().lower() not in _TRUTHY_OFF
            or profile_dir is not None
        )
        sample = float(env.get("REPRO_TRACE_SAMPLE", "") or 1.0)
        buffer = int(env.get("REPRO_TRACE_BUFFER", "") or 100_000)
        return cls(
            metrics=metrics_path is not None,
            metrics_path=metrics_path,
            trace=trace_path is not None,
            trace_path=trace_path,
            trace_sample=sample,
            trace_buffer=buffer,
            profile=profile,
            profile_dir=profile_dir,
        )

    def to_env(self) -> dict[str, str]:
        """The environment-variable form of this config (for the CLI)."""
        env: dict[str, str] = {}
        if self.trace and self.trace_path:
            env["REPRO_TRACE"] = self.trace_path
        if self.trace_sample != 1.0:
            env["REPRO_TRACE_SAMPLE"] = repr(self.trace_sample)
        if self.trace_buffer != 100_000:
            env["REPRO_TRACE_BUFFER"] = str(self.trace_buffer)
        if self.metrics and self.metrics_path:
            env["REPRO_METRICS_OUT"] = self.metrics_path
        if self.profile:
            env["REPRO_PROFILE"] = "1"
        if self.profile_dir:
            env["REPRO_PROFILE_DIR"] = self.profile_dir
        return env


def env_observability_enabled() -> bool:
    """Cheap check used by the cache layer: is any env observability on?

    Observability-enabled runs must bypass the result cache (a cached
    result was produced without probes and carries no metrics), so the
    parallel layer consults this before constructing its default cache.
    """
    env = os.environ
    if env.get("REPRO_TRACE", "").strip():
        return True
    if env.get("REPRO_METRICS_OUT", "").strip():
        return True
    if env.get("REPRO_PROFILE", "").strip().lower() not in _TRUTHY_OFF:
        return True
    if env.get("REPRO_PROFILE_DIR", "").strip():
        return True
    return False
