"""Observability configuration: what to collect, at what cost, and where.

The configuration is a frozen dataclass so it can ride inside frozen
:class:`~repro.parallel.jobs.SimJob` specs and cross process boundaries.
The **environment** is the canonical transport to worker processes: the
CLI's ``--trace`` / ``--metrics-out`` / ``--profile`` flags set the
``REPRO_*`` variables below, every :class:`~repro.sim.engine.Simulation`
constructed without an explicit config resolves
:meth:`ObservabilityConfig.from_env`, and ``ProcessPoolExecutor`` children
inherit the parent's environment — so a flag given once observes every
simulation an experiment fans out, in every worker.

Everything defaults to *off*: the default config is falsy and simulations
run the exact pre-observability code paths (byte-identical results).

Environment variables
---------------------

``REPRO_TRACE``
    Path of the flit-trace JSONL file; setting it enables tracing.
``REPRO_TRACE_SAMPLE``
    Packet sampling rate in (0, 1] (default 1.0 = every packet).
``REPRO_TRACE_BUFFER``
    Ring-buffer capacity in events (default 100000).
``REPRO_METRICS_OUT``
    Path of the metrics JSONL file; setting it enables the metrics
    registry and the allocator matching-efficiency probes.
``REPRO_PROFILE``
    Any non-empty value enables per-phase wall-time spans in the
    simulation counters (surfaced through the ``[perf_counters]`` footer).
``REPRO_PROFILE_DIR``
    Directory for per-job ``cProfile`` dumps written by the parallel
    runner's worker entry point; setting it implies ``REPRO_PROFILE``.

Run *telemetry* (the streaming event bus of :mod:`repro.obs.events`) has
its own knobs, resolved into :class:`TelemetryConfig` by the experiment
layer.  Telemetry observes the **execution** layer (jobs, workers, wall
clock), not simulation results, so — unlike the variables above — it does
NOT bypass the result cache and cannot change a single result byte:

``REPRO_MONITOR``
    Any truthy value enables the run monitor with its live terminal
    progress line (the CLI's ``--monitor``).
``REPRO_SERVE``
    TCP port for the telemetry HTTP server (``/status``, ``/metrics``,
    ``/events``); ``0`` picks a free port (the CLI's ``--serve``).
``REPRO_TRACE_EXPORT``
    Trace-export format; currently only ``chrome`` (Chrome trace-event
    JSON, Perfetto-loadable) — the CLI's ``--trace-export``.
``REPRO_TRACE_EXPORT_OUT``
    Output path for the exported trace (default ``<spec name>_trace.json``).
``REPRO_EVENTS_OUT``
    Override path for the run's JSONL event stream (default
    ``<cache root>/events/<run key>.jsonl``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

_TRUTHY_OFF = ("", "0", "false")


@dataclass(frozen=True)
class ObservabilityConfig:
    """What the observability layer should collect for one simulation."""

    #: Enable the metrics registry + allocator probes.
    metrics: bool = False
    #: JSONL file that each run appends its metrics snapshot to (optional
    #: even when ``metrics`` is on: results also carry the snapshot).
    metrics_path: str | None = None
    #: Enable the flit/packet event tracer.
    trace: bool = False
    #: JSONL file the trace is written to after the run.
    trace_path: str | None = None
    #: Fraction of packets traced, chosen deterministically by pid.
    trace_sample: float = 1.0
    #: Ring-buffer capacity (events); oldest events drop beyond it.
    trace_buffer: int = 100_000
    #: Record per-phase (warmup/measure/drain) wall-time spans.
    profile: bool = False
    #: Directory for per-job cProfile dumps (parallel runner).
    profile_dir: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in (0, 1], got {self.trace_sample}"
            )
        if self.trace_buffer < 1:
            raise ValueError(
                f"trace_buffer must be >= 1, got {self.trace_buffer}"
            )

    @property
    def enabled(self) -> bool:
        """True when any collection is requested."""
        return self.metrics or self.trace or self.profile

    def __bool__(self) -> bool:
        return self.enabled

    @classmethod
    def from_env(cls) -> "ObservabilityConfig":
        """Resolve the environment-configured observability settings."""
        env = os.environ
        trace_path = env.get("REPRO_TRACE", "").strip() or None
        metrics_path = env.get("REPRO_METRICS_OUT", "").strip() or None
        profile_dir = env.get("REPRO_PROFILE_DIR", "").strip() or None
        profile = (
            env.get("REPRO_PROFILE", "").strip().lower() not in _TRUTHY_OFF
            or profile_dir is not None
        )
        sample = float(env.get("REPRO_TRACE_SAMPLE", "") or 1.0)
        buffer = int(env.get("REPRO_TRACE_BUFFER", "") or 100_000)
        return cls(
            metrics=metrics_path is not None,
            metrics_path=metrics_path,
            trace=trace_path is not None,
            trace_path=trace_path,
            trace_sample=sample,
            trace_buffer=buffer,
            profile=profile,
            profile_dir=profile_dir,
        )

    def to_env(self) -> dict[str, str]:
        """The environment-variable form of this config (for the CLI)."""
        env: dict[str, str] = {}
        if self.trace and self.trace_path:
            env["REPRO_TRACE"] = self.trace_path
        if self.trace_sample != 1.0:
            env["REPRO_TRACE_SAMPLE"] = repr(self.trace_sample)
        if self.trace_buffer != 100_000:
            env["REPRO_TRACE_BUFFER"] = str(self.trace_buffer)
        if self.metrics and self.metrics_path:
            env["REPRO_METRICS_OUT"] = self.metrics_path
        if self.profile:
            env["REPRO_PROFILE"] = "1"
        if self.profile_dir:
            env["REPRO_PROFILE_DIR"] = self.profile_dir
        return env


@dataclass(frozen=True)
class TelemetryConfig:
    """Run-telemetry settings: monitor, HTTP server, trace export.

    Deliberately separate from :class:`ObservabilityConfig`: telemetry
    watches the sweep's execution (jobs/workers/retries), never the
    simulation, so enabling it must not flip
    :func:`env_observability_enabled` — results stay cacheable and
    byte-identical with telemetry on or off.
    """

    #: Aggregate events in a RunMonitor with a live terminal progress line.
    monitor: bool = False
    #: HTTP server port (``/status``, ``/metrics``, ``/events``); 0 = any
    #: free port; ``None`` = no server.
    serve: int | None = None
    #: Trace-export format after the run (``"chrome"``) or ``None``.
    trace_export: str | None = None
    #: Output path for the exported trace (``None`` = derive from spec name).
    trace_export_out: str | None = None
    #: Override path for the JSONL event stream (``None`` = next to journal).
    events_out: str | None = None

    def __post_init__(self) -> None:
        if self.trace_export is not None and self.trace_export != "chrome":
            raise ValueError(
                f"unknown trace export format: {self.trace_export!r}"
                " (supported: chrome)"
            )

    @property
    def enabled(self) -> bool:
        """True when any telemetry sink is requested."""
        return (
            self.monitor
            or self.serve is not None
            or self.trace_export is not None
            or self.events_out is not None
        )

    def __bool__(self) -> bool:
        return self.enabled

    @classmethod
    def from_env(cls) -> "TelemetryConfig":
        """Resolve the environment-configured telemetry settings."""
        env = os.environ
        monitor = env.get("REPRO_MONITOR", "").strip().lower() not in _TRUTHY_OFF
        serve_raw = env.get("REPRO_SERVE", "").strip()
        serve = int(serve_raw) if serve_raw else None
        trace_export = env.get("REPRO_TRACE_EXPORT", "").strip() or None
        return cls(
            monitor=monitor,
            serve=serve,
            trace_export=trace_export,
            trace_export_out=env.get("REPRO_TRACE_EXPORT_OUT", "").strip() or None,
            events_out=env.get("REPRO_EVENTS_OUT", "").strip() or None,
        )

    def to_env(self) -> dict[str, str]:
        """The environment-variable form of this config (for the CLI)."""
        env: dict[str, str] = {}
        if self.monitor:
            env["REPRO_MONITOR"] = "1"
        if self.serve is not None:
            env["REPRO_SERVE"] = str(self.serve)
        if self.trace_export:
            env["REPRO_TRACE_EXPORT"] = self.trace_export
        if self.trace_export_out:
            env["REPRO_TRACE_EXPORT_OUT"] = self.trace_export_out
        if self.events_out:
            env["REPRO_EVENTS_OUT"] = self.events_out
        return env


def env_observability_enabled() -> bool:
    """Cheap check used by the cache layer: is any env observability on?

    Observability-enabled runs must bypass the result cache (a cached
    result was produced without probes and carries no metrics), so the
    parallel layer consults this before constructing its default cache.
    """
    env = os.environ
    if env.get("REPRO_TRACE", "").strip():
        return True
    if env.get("REPRO_METRICS_OUT", "").strip():
        return True
    if env.get("REPRO_PROFILE", "").strip().lower() not in _TRUTHY_OFF:
        return True
    if env.get("REPRO_PROFILE_DIR", "").strip():
        return True
    return False
