"""Experiment T1 — Table 1: router pipeline stage delays.

Regenerates the six rows of the paper's Table 1 (VA / SA / crossbar delay
for mesh, CMesh, and FBfly routers, with and without VIX) from the
calibrated timing models, and checks the paper's architectural conclusion:
the crossbar is never on the router's critical path, so VIX fits without
lowering the frequency.
"""

from __future__ import annotations

from repro.parallel import ExecutionStats
from repro.timing import RouterDelays

from .runner import execute_spec, format_table, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Table 1 — router pipeline stage delays"

#: (design label, radix, virtual inputs) for the six Table 1 rows.
CONFIGS: tuple[tuple[str, int, int], ...] = (
    ("Mesh", 5, 1),
    ("Mesh with VIX", 5, 2),
    ("CMesh", 8, 1),
    ("CMesh with VIX", 8, 2),
    ("FBfly", 10, 1),
    ("FBfly with VIX", 10, 2),
)

#: Published Table 1 values: design -> (VA ps, SA ps, Xbar ps).
PAPER_VALUES: dict[str, tuple[float, float, float]] = {
    "Mesh": (300.0, 280.0, 167.0),
    "Mesh with VIX": (300.0, 290.0, 205.0),
    "CMesh": (340.0, 315.0, 205.0),
    "CMesh with VIX": (340.0, 330.0, 289.0),
    "FBfly": (360.0, 340.0, 238.0),
    "FBfly with VIX": (360.0, 345.0, 359.0),
}


class Table1Rows(list):
    """Table 1 rows (a plain list) plus the execution counters behind them."""

    perf: ExecutionStats | None = None


def spec(num_vcs: int = 6, calibrated: bool = True) -> ExperimentSpec:
    """The declarative description of the six Table 1 model evaluations."""
    scenarios = tuple(
        ScenarioSpec(
            key=(name,),
            kind="analytic",
            fn="router_delays",
            options=(
                ("radix", radix),
                ("num_vcs", num_vcs),
                ("virtual_inputs", k),
                ("design", name),
                ("calibrated", calibrated),
            ),
        )
        for name, radix, k in CONFIGS
    )
    return ExperimentSpec(name="t1", title=TITLE, scenarios=scenarios)


def run(num_vcs: int = 6, calibrated: bool = True) -> list[RouterDelays]:
    """Compute the Table 1 rows."""
    experiment = spec(num_vcs, calibrated)
    outcome = execute_spec(experiment)
    rows = Table1Rows(
        outcome.values[scenario.key] for scenario in experiment.scenarios
    )
    rows.perf = outcome.stats
    return rows


def report(rows: list[RouterDelays] | None = None) -> str:
    """Table 1 as printed in the paper, plus the critical-path check."""
    rows = rows if rows is not None else run()
    table = format_table(
        ["Design", "Radix", "Xbar size", "VA Delay", "SA Delay", "Xbar Delay"],
        [
            (
                r.design,
                r.radix,
                r.crossbar_size,
                f"{r.va_ps:.0f} ps",
                f"{r.sa_ps:.0f} ps",
                f"{r.xbar_ps:.0f} ps",
            )
            for r in rows
        ],
    )
    notes = []
    for r in rows:
        status = "on critical path!" if r.xbar_on_critical_path else (
            f"{r.xbar_slack_fraction:.0%} of cycle time"
        )
        notes.append(f"  {r.design}: crossbar {status}")
    text = table + "\n\nCrossbar slack:\n" + "\n".join(notes)
    footer = perf_footer(getattr(rows, "perf", None))
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
