"""Extension — VIX radix-scaling limit (paper Section 2.4's caveat).

Section 2.4 observes that the crossbar slack shrinks with radix and that
"VIX architecture may not scale to very high radices unless innovative
high-radix switch architectures are utilized".  This experiment makes that
caveat quantitative with the calibrated timing models: for each radix it
compares the ``2P x P`` crossbar delay against the allocation-stage delays
and reports the first radix at which the VIX crossbar becomes the
router's critical path (the scaling limit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel import ExecutionStats

from .runner import execute_spec, format_table, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Extension — VIX radix-scaling limit from the timing models"

RADICES = tuple(range(4, 21))


@dataclass(frozen=True)
class RadixPoint:
    """Delay picture of one radix, with and without VIX."""

    radix: int
    va_ps: float
    sa_vix_ps: float
    xbar_base_ps: float
    xbar_vix_ps: float

    @property
    def allocation_ps(self) -> float:
        """Cycle time set by the allocation stages (max of VA, VIX-SA)."""
        return max(self.va_ps, self.sa_vix_ps)

    @property
    def vix_fits(self) -> bool:
        """True while the VIX crossbar stays off the critical path."""
        return self.xbar_vix_ps <= self.allocation_ps


@dataclass
class RadixScalingResult:
    points: list[RadixPoint]
    #: Execution counters for the model evaluations behind this result.
    perf: ExecutionStats | None = None

    def scaling_limit(self) -> int | None:
        """First radix whose VIX crossbar would set the cycle time."""
        for p in self.points:
            if not p.vix_fits:
                return p.radix
        return None


def spec(*, num_vcs: int = 6, radices: tuple[int, ...] = RADICES) -> ExperimentSpec:
    """The declarative description of the radix sweep (two models each)."""
    scenarios = []
    for radix in radices:
        for variant, k in (("base", 1), ("vix", 2)):
            scenarios.append(
                ScenarioSpec(
                    key=(variant, radix),
                    kind="analytic",
                    fn="router_delays",
                    options=(
                        ("radix", radix),
                        ("num_vcs", num_vcs),
                        ("virtual_inputs", k),
                        ("calibrated", False),
                    ),
                )
            )
    return ExperimentSpec(name="radix", title=TITLE, scenarios=tuple(scenarios))


def run(*, num_vcs: int = 6, radices: tuple[int, ...] = RADICES) -> RadixScalingResult:
    """Evaluate the analytic delay models across radices."""
    experiment = spec(num_vcs=num_vcs, radices=radices)
    outcome = execute_spec(experiment)
    points = []
    for radix in radices:
        base = outcome.values[("base", radix)]
        vix = outcome.values[("vix", radix)]
        points.append(
            RadixPoint(
                radix=radix,
                va_ps=base.va_ps,
                sa_vix_ps=vix.sa_ps,
                xbar_base_ps=base.xbar_ps,
                xbar_vix_ps=vix.xbar_ps,
            )
        )
    return RadixScalingResult(points=points, perf=outcome.stats)


def report(result: RadixScalingResult | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    rows = [
        (
            p.radix,
            f"{p.va_ps:.0f}",
            f"{p.sa_vix_ps:.0f}",
            f"{p.xbar_base_ps:.0f}",
            f"{p.xbar_vix_ps:.0f}",
            "yes" if p.vix_fits else "NO",
        )
        for p in result.points
    ]
    table = format_table(
        ["Radix", "VA ps", "VIX SA ps", "Xbar ps", "VIX Xbar ps", "VIX fits?"],
        rows,
    )
    limit = result.scaling_limit()
    tail = (
        f"\nVIX crossbar first limits cycle time at radix {limit} "
        "(the paper's high-radix caveat)."
        if limit is not None
        else "\nVIX fits at every radix evaluated."
    )
    text = (
        "Radix scaling of the 1:2 VIX crossbar (analytic 45 nm models)\n"
        + table
        + tail
    )
    footer = perf_footer(result.perf)
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
