"""Experiment drivers: one module per table/figure of the paper.

========= ===============================================================
Id        Module
========= ===============================================================
T1        :mod:`repro.experiments.table1_delays`
T3        :mod:`repro.experiments.table3_allocator_delays`
F7        :mod:`repro.experiments.fig7_single_router`
F8        :mod:`repro.experiments.fig8_mesh`
F9        :mod:`repro.experiments.fig9_fairness`
F10       :mod:`repro.experiments.fig10_packet_chaining`
F11       :mod:`repro.experiments.fig11_energy`
F12       :mod:`repro.experiments.fig12_virtual_inputs`
T4        :mod:`repro.experiments.table4_applications`
========= ===============================================================

Every module exposes ``spec(...)`` (the declarative
:class:`~repro.experiments.spec.ExperimentSpec` behind the experiment),
``run(...)`` (executes the spec and returns a structured result),
``report(result=None)`` (paper-style text rows) and ``main()``.
Set ``REPRO_FULL=1`` for paper-fidelity run lengths.

Drivers are looked up through :data:`repro.registry.experiments`; each
entry's payload is the driver module and its label the one-line
description the CLI prints.
"""

from __future__ import annotations

from types import ModuleType

from repro.registry import experiments as experiment_registry

from . import (
    ablations,
    fig7_single_router,
    fig_chiplet,
    radix_scaling,
    fig8_mesh,
    fig9_fairness,
    fig10_packet_chaining,
    fig11_energy,
    fig12_virtual_inputs,
    table1_delays,
    table3_allocator_delays,
    table4_applications,
    topology_comparison,
)
from .runner import (
    FAST,
    FULL,
    RunLengths,
    SpecRun,
    execute_spec,
    format_table,
    improvement,
    run_lengths,
)
from .spec import ExperimentSpec, ScenarioSpec

for _id, _module in (
    ("t1", table1_delays),
    ("t3", table3_allocator_delays),
    ("f7", fig7_single_router),
    ("f8", fig8_mesh),
    ("f9", fig9_fairness),
    ("f10", fig10_packet_chaining),
    ("f11", fig11_energy),
    ("f12", fig12_virtual_inputs),
    ("t4", table4_applications),
    ("abl", ablations),
    ("radix", radix_scaling),
    ("topo", topology_comparison),
    ("chiplet", fig_chiplet),
):
    experiment_registry.register(_id, _module, label=_module.TITLE)

#: Experiment id -> driver module (registry view, registration order).
EXPERIMENTS: dict[str, ModuleType] = {
    info.name: info.factory for info in experiment_registry.infos()
}


def get_experiment(exp_id: str) -> ModuleType:
    """Look up an experiment driver by id (case-insensitive).

    Unknown ids raise :class:`repro.registry.UnknownSchemeError`, which is
    both a ``KeyError`` and a ``ValueError`` and lists the valid choices.
    """
    return experiment_registry.get(exp_id).factory


__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "FAST",
    "FULL",
    "RunLengths",
    "ScenarioSpec",
    "SpecRun",
    "execute_spec",
    "format_table",
    "get_experiment",
    "improvement",
    "run_lengths",
]
