"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's own figures and isolate the contribution of
individual design decisions:

* **A1 — Section 2.3 VC assignment.**  VIX with the dimension-aware,
  load-balanced output-VC policy vs. the naive max-credit policy, at mesh
  saturation.  Quantifies how much of the VIX win comes from steering
  requests into different virtual inputs.
* **A2 — input-arbiter pointer policy.**  Plain separable rotation (the
  paper's baseline) vs. iSLIP-style rotate-on-grant, for both IF and VIX,
  on the saturated single router.
* **A3 — VC-to-virtual-input partition.**  Contiguous (the paper's Fig. 2
  wiring) vs. interleaved.
* **A4 — SPAROFLO comparison.**  The Section 5 argument made quantitative:
  presenting multiple requests per port *without* virtual inputs recovers
  only part of the VIX gain because post-arbitration conflicts drop grants.
* **A5 — virtual-input count.**  Single-router throughput for
  k = 1, 2, 3, 6 (the paper's Fig. 12 at router granularity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import (
    SeparableInputFirstAllocator,
    SeparableOutputFirstAllocator,
    SparofloAllocator,
    VIXAllocator,
)
from repro.core.requests import RequestMatrix
from repro.network.config import paper_config
from repro.parallel import ExecutionStats, ParallelRunner, SimJob

from .runner import format_table, improvement, perf_footer, run_lengths


def _single_router_throughput(alloc, radix: int, num_vcs: int, cycles: int, seed: int) -> float:
    """Saturated single-router throughput for a pre-built allocator."""
    rng = random.Random(seed)
    out = [[rng.randrange(radix) for _ in range(num_vcs)] for _ in range(radix)]
    total = 0
    matrix = RequestMatrix(radix, radix, num_vcs)
    for _ in range(cycles):
        matrix.clear()
        for p in range(radix):
            for v in range(num_vcs):
                matrix.add(p, v, out[p][v], tail=True)
        grants = alloc.allocate(matrix)
        total += len(grants)
        for g in grants:
            out[g.in_port][g.vc] = rng.randrange(radix)
    return total / cycles


@dataclass
class AblationResult:
    """All ablation measurements, keyed by (study, variant)."""

    values: dict[tuple[str, str], float] = field(default_factory=dict)
    perf: ExecutionStats | None = None

    def gain(self, study: str, variant: str, base: str) -> float:
        return improvement(self.values[(study, variant)], self.values[(study, base)])


def _ablation_point(spec: tuple) -> float:
    """Worker: build the allocator from its spec and measure it (picklable —
    allocator classes pickle by reference)."""
    cls, args, kwargs, radix, num_vcs, cycles, seed = spec
    alloc = cls(*args, **kwargs)
    return _single_router_throughput(alloc, radix, num_vcs, cycles, seed)


def run(
    *,
    radix: int = 5,
    num_vcs: int = 6,
    seed: int = 1,
    fast: bool | None = None,
    jobs: int | str | None = None,
) -> AblationResult:
    """Run every ablation study."""
    lengths = run_lengths(fast)
    cycles = lengths.single_router_cycles
    result = AblationResult()
    runner = ParallelRunner(jobs)

    # A1: VC-assignment policy at mesh saturation (network simulations).
    a1 = [
        ("vix_dimension", paper_config("vix").with_router(vc_policy="vix_dimension")),
        ("max_credit", paper_config("vix").with_router(vc_policy="max_credit")),
        ("if_baseline", paper_config("if")),
    ]
    a1_jobs = [
        SimJob(
            cfg,
            injection_rate=1.0,
            seed=seed,
            warmup=lengths.warmup,
            measure=lengths.measure,
            drain_limit=0,
        )
        for _, cfg in a1
    ]
    for (name, _), res in zip(a1, runner.run(a1_jobs)):
        result.values[("vc_policy", name)] = res.throughput_flits_per_node

    # A2..A6 are saturated single-router points; collect every (study,
    # variant) as an allocator spec, then fan them out in one batch.
    points: list[tuple[tuple[str, str], tuple]] = []

    def add(study: str, variant: str, cls, *args, **kwargs) -> None:
        points.append(((study, variant), (cls, args, kwargs)))

    # A2: pointer policy.
    for name, cls, k in (("if", SeparableInputFirstAllocator, 1), ("vix", VIXAllocator, 2)):
        for policy in ("plain", "on_grant"):
            add("pointer", f"{name}/{policy}", cls, radix, radix, num_vcs, k,
                pointer_policy=policy)

    # A3: partition (VIX k=2).
    for partition in ("contiguous", "interleaved"):
        add("partition", partition, VIXAllocator, radix, radix, num_vcs, 2,
            partition=partition)

    # A4: SPAROFLO vs IF vs VIX.
    add("sparoflo", "if", SeparableInputFirstAllocator, radix, radix, num_vcs)
    add("sparoflo", "sparoflo_static", SparofloAllocator, radix, radix, num_vcs,
        dynamic=False)
    add("sparoflo", "sparoflo_dynamic", SparofloAllocator, radix, radix, num_vcs,
        dynamic=True)
    add("sparoflo", "vix", VIXAllocator, radix, radix, num_vcs, 2)

    # A6: separable phase order, with and without virtual inputs.
    add("phase_order", "input_first", SeparableInputFirstAllocator, radix, radix, num_vcs)
    add("phase_order", "output_first", SeparableOutputFirstAllocator, radix, radix, num_vcs)
    add("phase_order", "input_first_vix", VIXAllocator, radix, radix, num_vcs, 2)
    add("phase_order", "output_first_vix", SeparableOutputFirstAllocator, radix, radix,
        num_vcs, virtual_inputs=2)

    # A5: virtual-input count sweep.
    for k in (1, 2, 3, 6):
        if k == 1:
            add("vinputs", "k=1", SeparableInputFirstAllocator, radix, radix, num_vcs)
        else:
            add("vinputs", f"k={k}", VIXAllocator, radix, radix, num_vcs, k)

    values = runner.map(
        _ablation_point,
        [
            (cls, args, kwargs, radix, num_vcs, cycles, seed)
            for _, (cls, args, kwargs) in points
        ],
    )
    for (key, _), value in zip(points, values):
        result.values[key] = value
    result.perf = runner.stats
    return result


def report(result: AblationResult | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    v = result.values
    lines = ["Ablation studies (design-choice isolation)", ""]

    lines.append("A1. Output-VC assignment policy, mesh saturation (flits/cyc/node):")
    lines.append(
        format_table(
            ["Variant", "Throughput", "vs IF baseline"],
            [
                (
                    name,
                    round(v[("vc_policy", name)], 3),
                    f"{result.gain('vc_policy', name, 'if_baseline'):+.1%}",
                )
                for name in ("if_baseline", "max_credit", "vix_dimension")
            ],
        )
    )
    lines.append("")

    lines.append("A2. Input-arbiter pointer policy, single router (flits/cycle):")
    rows = [
        (variant, round(v[("pointer", variant)], 2))
        for variant in ("if/plain", "if/on_grant", "vix/plain", "vix/on_grant")
    ]
    lines.append(format_table(["Variant", "Throughput"], rows))
    lines.append("")

    lines.append("A3. VC partition onto virtual inputs, single router:")
    lines.append(
        format_table(
            ["Partition", "Throughput"],
            [
                (p, round(v[("partition", p)], 2))
                for p in ("contiguous", "interleaved")
            ],
        )
    )
    lines.append("")

    lines.append("A4. SPAROFLO vs VIX (Section 5), single router:")
    lines.append(
        format_table(
            ["Scheme", "Throughput", "vs IF"],
            [
                (
                    name,
                    round(v[("sparoflo", name)], 2),
                    f"{result.gain('sparoflo', name, 'if'):+.1%}",
                )
                for name in ("if", "sparoflo_dynamic", "sparoflo_static", "vix")
            ],
        )
    )
    lines.append("")

    lines.append("A5. Virtual-input count, single router:")
    lines.append(
        format_table(
            ["k", "Throughput"],
            [(k, round(v[("vinputs", k)], 2)) for k in ("k=1", "k=2", "k=3", "k=6")],
        )
    )
    lines.append("")

    lines.append("A6. Separable phase order (virtual inputs help both):")
    lines.append(
        format_table(
            ["Variant", "Throughput"],
            [
                (name, round(v[("phase_order", name)], 2))
                for name in (
                    "input_first",
                    "output_first",
                    "input_first_vix",
                    "output_first_vix",
                )
            ],
        )
    )
    footer = perf_footer(result.perf)
    if footer:
        lines.extend(["", footer])
    return "\n".join(lines)


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
