"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's own figures and isolate the contribution of
individual design decisions:

* **A1 — Section 2.3 VC assignment.**  VIX with the dimension-aware,
  load-balanced output-VC policy vs. the naive max-credit policy, at mesh
  saturation.  Quantifies how much of the VIX win comes from steering
  requests into different virtual inputs.
* **A2 — input-arbiter pointer policy.**  Plain separable rotation (the
  paper's baseline) vs. iSLIP-style rotate-on-grant, for both IF and VIX,
  on the saturated single router.
* **A3 — VC-to-virtual-input partition.**  Contiguous (the paper's Fig. 2
  wiring) vs. interleaved.
* **A4 — SPAROFLO comparison.**  The Section 5 argument made quantitative:
  presenting multiple requests per port *without* virtual inputs recovers
  only part of the VIX gain because post-arbitration conflicts drop grants.
* **A5 — virtual-input count.**  Single-router throughput for
  k = 1, 2, 3, 6 (the paper's Fig. 12 at router granularity).

Every variant — network saturation probes and saturated single-router
points alike — is one :class:`~repro.experiments.spec.ScenarioSpec`;
scheme-specific constructor keywords (``pointer_policy``, ``partition``,
``dynamic``, an explicit ``virtual_inputs`` for the separable variants)
ride in the scenario's ``options`` and reach the allocator constructor
through the registry factory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel import ExecutionStats

from .runner import execute_spec, format_table, improvement, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Ablations — VC policy, pointer policy, partition, SPAROFLO, k-sweep"


@dataclass
class AblationResult:
    """All ablation measurements, keyed by (study, variant)."""

    values: dict[tuple[str, str], float] = field(default_factory=dict)
    perf: ExecutionStats | None = None

    def gain(self, study: str, variant: str, base: str) -> float:
        return improvement(self.values[(study, variant)], self.values[(study, base)])


def spec(
    *, radix: int = 5, num_vcs: int = 6, seed: int = 1, fast: bool | None = None
) -> ExperimentSpec:
    """The declarative description of every ablation study."""
    scenarios: list[ScenarioSpec] = []

    # A1: VC-assignment policy at mesh saturation (network simulations).
    for variant, allocator, vc_policy in (
        ("vix_dimension", "vix", "vix_dimension"),
        ("max_credit", "vix", "max_credit"),
        ("if_baseline", "if", ""),
    ):
        scenarios.append(
            ScenarioSpec(
                key=("vc_policy", variant),
                allocator=allocator,
                vc_policy=vc_policy,
                injection_rate=1.0,
                drain_limit=0,
            )
        )

    # A2..A6 are saturated single-router points.
    def single(study: str, variant: str, allocator: str, k: int = 1, **options) -> None:
        scenarios.append(
            ScenarioSpec(
                key=(study, variant),
                kind="single_router",
                allocator=allocator,
                radix=radix,
                num_vcs=num_vcs,
                virtual_inputs=k,
                packet_length=1,
                options=tuple(sorted(options.items())),
            )
        )

    # A2: pointer policy.
    for name, allocator, k in (("if", "input_first", 1), ("vix", "vix", 2)):
        for policy in ("plain", "on_grant"):
            single("pointer", f"{name}/{policy}", allocator, k, pointer_policy=policy)

    # A3: partition (VIX k=2).
    for partition in ("contiguous", "interleaved"):
        single("partition", partition, "vix", 2, partition=partition)

    # A4: SPAROFLO vs IF vs VIX.
    single("sparoflo", "if", "input_first")
    single("sparoflo", "sparoflo_static", "sparoflo", dynamic=False)
    single("sparoflo", "sparoflo_dynamic", "sparoflo", dynamic=True)
    single("sparoflo", "vix", "vix", 2)

    # A6: separable phase order, with and without virtual inputs.
    single("phase_order", "input_first", "input_first")
    single("phase_order", "output_first", "output_first")
    single("phase_order", "input_first_vix", "vix", 2)
    single("phase_order", "output_first_vix", "output_first", virtual_inputs=2)

    # A5: virtual-input count sweep.
    for k in (1, 2, 3, 6):
        if k == 1:
            single("vinputs", "k=1", "input_first")
        else:
            single("vinputs", f"k={k}", "vix", k)

    return ExperimentSpec(
        name="abl", title=TITLE, scenarios=tuple(scenarios), seed=seed, fast=fast
    )


def run(
    *,
    radix: int = 5,
    num_vcs: int = 6,
    seed: int = 1,
    fast: bool | None = None,
    jobs: int | str | None = None,
) -> AblationResult:
    """Run every ablation study."""
    experiment = spec(radix=radix, num_vcs=num_vcs, seed=seed, fast=fast)
    outcome = execute_spec(experiment, jobs=jobs)
    result = AblationResult()
    for scenario in experiment.scenarios:
        value = outcome.values[scenario.key]
        if scenario.kind == "network":
            value = value.throughput_flits_per_node
        result.values[scenario.key] = value
    result.perf = outcome.stats
    return result


def report(result: AblationResult | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    v = result.values
    lines = ["Ablation studies (design-choice isolation)", ""]

    lines.append("A1. Output-VC assignment policy, mesh saturation (flits/cyc/node):")
    lines.append(
        format_table(
            ["Variant", "Throughput", "vs IF baseline"],
            [
                (
                    name,
                    round(v[("vc_policy", name)], 3),
                    f"{result.gain('vc_policy', name, 'if_baseline'):+.1%}",
                )
                for name in ("if_baseline", "max_credit", "vix_dimension")
            ],
        )
    )
    lines.append("")

    lines.append("A2. Input-arbiter pointer policy, single router (flits/cycle):")
    rows = [
        (variant, round(v[("pointer", variant)], 2))
        for variant in ("if/plain", "if/on_grant", "vix/plain", "vix/on_grant")
    ]
    lines.append(format_table(["Variant", "Throughput"], rows))
    lines.append("")

    lines.append("A3. VC partition onto virtual inputs, single router:")
    lines.append(
        format_table(
            ["Partition", "Throughput"],
            [
                (p, round(v[("partition", p)], 2))
                for p in ("contiguous", "interleaved")
            ],
        )
    )
    lines.append("")

    lines.append("A4. SPAROFLO vs VIX (Section 5), single router:")
    lines.append(
        format_table(
            ["Scheme", "Throughput", "vs IF"],
            [
                (
                    name,
                    round(v[("sparoflo", name)], 2),
                    f"{result.gain('sparoflo', name, 'if'):+.1%}",
                )
                for name in ("if", "sparoflo_dynamic", "sparoflo_static", "vix")
            ],
        )
    )
    lines.append("")

    lines.append("A5. Virtual-input count, single router:")
    lines.append(
        format_table(
            ["k", "Throughput"],
            [(k, round(v[("vinputs", k)], 2)) for k in ("k=1", "k=2", "k=3", "k=6")],
        )
    )
    lines.append("")

    lines.append("A6. Separable phase order (virtual inputs help both):")
    lines.append(
        format_table(
            ["Variant", "Throughput"],
            [
                (name, round(v[("phase_order", name)], 2))
                for name in (
                    "input_first",
                    "output_first",
                    "input_first_vix",
                    "output_first_vix",
                )
            ],
        )
    )
    footer = perf_footer(result.perf)
    if footer:
        lines.extend(["", footer])
    return "\n".join(lines)


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
