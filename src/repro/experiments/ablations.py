"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's own figures and isolate the contribution of
individual design decisions:

* **A1 — Section 2.3 VC assignment.**  VIX with the dimension-aware,
  load-balanced output-VC policy vs. the naive max-credit policy, at mesh
  saturation.  Quantifies how much of the VIX win comes from steering
  requests into different virtual inputs.
* **A2 — input-arbiter pointer policy.**  Plain separable rotation (the
  paper's baseline) vs. iSLIP-style rotate-on-grant, for both IF and VIX,
  on the saturated single router.
* **A3 — VC-to-virtual-input partition.**  Contiguous (the paper's Fig. 2
  wiring) vs. interleaved.
* **A4 — SPAROFLO comparison.**  The Section 5 argument made quantitative:
  presenting multiple requests per port *without* virtual inputs recovers
  only part of the VIX gain because post-arbitration conflicts drop grants.
* **A5 — virtual-input count.**  Single-router throughput for
  k = 1, 2, 3, 6 (the paper's Fig. 12 at router granularity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import (
    SeparableInputFirstAllocator,
    SeparableOutputFirstAllocator,
    SparofloAllocator,
    VIXAllocator,
)
from repro.core.requests import RequestMatrix
from repro.network.config import paper_config
from repro.sim.engine import saturation_throughput

from .runner import format_table, improvement, run_lengths


def _single_router_throughput(alloc, radix: int, num_vcs: int, cycles: int, seed: int) -> float:
    """Saturated single-router throughput for a pre-built allocator."""
    rng = random.Random(seed)
    out = [[rng.randrange(radix) for _ in range(num_vcs)] for _ in range(radix)]
    total = 0
    matrix = RequestMatrix(radix, radix, num_vcs)
    for _ in range(cycles):
        matrix.clear()
        for p in range(radix):
            for v in range(num_vcs):
                matrix.add(p, v, out[p][v], tail=True)
        grants = alloc.allocate(matrix)
        total += len(grants)
        for g in grants:
            out[g.in_port][g.vc] = rng.randrange(radix)
    return total / cycles


@dataclass
class AblationResult:
    """All ablation measurements, keyed by (study, variant)."""

    values: dict[tuple[str, str], float] = field(default_factory=dict)

    def gain(self, study: str, variant: str, base: str) -> float:
        return improvement(self.values[(study, variant)], self.values[(study, base)])


def run(*, radix: int = 5, num_vcs: int = 6, seed: int = 1, fast: bool | None = None) -> AblationResult:
    """Run every ablation study."""
    lengths = run_lengths(fast)
    cycles = lengths.single_router_cycles
    result = AblationResult()

    # A1: VC-assignment policy at mesh saturation.
    for policy in ("vix_dimension", "max_credit"):
        cfg = paper_config("vix").with_router(vc_policy=policy)
        res = saturation_throughput(
            cfg, seed=seed, warmup=lengths.warmup, measure=lengths.measure
        )
        result.values[("vc_policy", policy)] = res.throughput_flits_per_node
    base_cfg = paper_config("if")
    base = saturation_throughput(
        base_cfg, seed=seed, warmup=lengths.warmup, measure=lengths.measure
    )
    result.values[("vc_policy", "if_baseline")] = base.throughput_flits_per_node

    # A2: pointer policy (single router).
    for name, cls, k in (("if", SeparableInputFirstAllocator, 1), ("vix", VIXAllocator, 2)):
        for policy in ("plain", "on_grant"):
            alloc = cls(radix, radix, num_vcs, k, pointer_policy=policy)
            result.values[("pointer", f"{name}/{policy}")] = _single_router_throughput(
                alloc, radix, num_vcs, cycles, seed
            )

    # A3: partition (single router, VIX k=2).
    for partition in ("contiguous", "interleaved"):
        alloc = VIXAllocator(radix, radix, num_vcs, 2, partition=partition)
        result.values[("partition", partition)] = _single_router_throughput(
            alloc, radix, num_vcs, cycles, seed
        )

    # A4: SPAROFLO vs IF vs VIX (single router).
    variants = {
        "if": SeparableInputFirstAllocator(radix, radix, num_vcs),
        "sparoflo_static": SparofloAllocator(radix, radix, num_vcs, dynamic=False),
        "sparoflo_dynamic": SparofloAllocator(radix, radix, num_vcs, dynamic=True),
        "vix": VIXAllocator(radix, radix, num_vcs, 2),
    }
    for name, alloc in variants.items():
        result.values[("sparoflo", name)] = _single_router_throughput(
            alloc, radix, num_vcs, cycles, seed
        )

    # A6: separable phase order (single router): input-first vs
    # output-first, with and without virtual inputs.
    order_variants = {
        "input_first": SeparableInputFirstAllocator(radix, radix, num_vcs),
        "output_first": SeparableOutputFirstAllocator(radix, radix, num_vcs),
        "input_first_vix": VIXAllocator(radix, radix, num_vcs, 2),
        "output_first_vix": SeparableOutputFirstAllocator(
            radix, radix, num_vcs, virtual_inputs=2
        ),
    }
    for name, alloc in order_variants.items():
        result.values[("phase_order", name)] = _single_router_throughput(
            alloc, radix, num_vcs, cycles, seed
        )

    # A5: virtual-input count sweep (single router).
    for k in (1, 2, 3, 6):
        alloc = (
            SeparableInputFirstAllocator(radix, radix, num_vcs)
            if k == 1
            else VIXAllocator(radix, radix, num_vcs, k)
        )
        result.values[("vinputs", f"k={k}")] = _single_router_throughput(
            alloc, radix, num_vcs, cycles, seed
        )

    return result


def report(result: AblationResult | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    v = result.values
    lines = ["Ablation studies (design-choice isolation)", ""]

    lines.append("A1. Output-VC assignment policy, mesh saturation (flits/cyc/node):")
    lines.append(
        format_table(
            ["Variant", "Throughput", "vs IF baseline"],
            [
                (
                    name,
                    round(v[("vc_policy", name)], 3),
                    f"{result.gain('vc_policy', name, 'if_baseline'):+.1%}",
                )
                for name in ("if_baseline", "max_credit", "vix_dimension")
            ],
        )
    )
    lines.append("")

    lines.append("A2. Input-arbiter pointer policy, single router (flits/cycle):")
    rows = [
        (variant, round(v[("pointer", variant)], 2))
        for variant in ("if/plain", "if/on_grant", "vix/plain", "vix/on_grant")
    ]
    lines.append(format_table(["Variant", "Throughput"], rows))
    lines.append("")

    lines.append("A3. VC partition onto virtual inputs, single router:")
    lines.append(
        format_table(
            ["Partition", "Throughput"],
            [
                (p, round(v[("partition", p)], 2))
                for p in ("contiguous", "interleaved")
            ],
        )
    )
    lines.append("")

    lines.append("A4. SPAROFLO vs VIX (Section 5), single router:")
    lines.append(
        format_table(
            ["Scheme", "Throughput", "vs IF"],
            [
                (
                    name,
                    round(v[("sparoflo", name)], 2),
                    f"{result.gain('sparoflo', name, 'if'):+.1%}",
                )
                for name in ("if", "sparoflo_dynamic", "sparoflo_static", "vix")
            ],
        )
    )
    lines.append("")

    lines.append("A5. Virtual-input count, single router:")
    lines.append(
        format_table(
            ["k", "Throughput"],
            [(k, round(v[("vinputs", k)], 2)) for k in ("k=1", "k=2", "k=3", "k=6")],
        )
    )
    lines.append("")

    lines.append("A6. Separable phase order (virtual inputs help both):")
    lines.append(
        format_table(
            ["Variant", "Throughput"],
            [
                (name, round(v[("phase_order", name)], 2))
                for name in (
                    "input_first",
                    "output_first",
                    "input_first_vix",
                    "output_first_vix",
                )
            ],
        )
    )
    return "\n".join(lines)


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
