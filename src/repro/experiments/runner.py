"""Shared experiment infrastructure: run-length presets and table printing.

Every experiment driver supports two fidelity levels:

* **fast** (default) — reduced cycle counts so the whole suite regenerates
  in minutes on a laptop; trends and rankings are stable at this level;
* **full** — paper-fidelity run lengths, selected by setting the
  environment variable ``REPRO_FULL=1`` (or passing ``fast=False``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro.parallel import ExecutionStats


@dataclass(frozen=True)
class RunLengths:
    """Warmup/measurement windows for network simulations."""

    warmup: int
    measure: int
    single_router_cycles: int
    manycore_warmup: int
    manycore_measure: int


FAST = RunLengths(
    warmup=500,
    measure=1500,
    single_router_cycles=2000,
    manycore_warmup=1000,
    manycore_measure=3000,
)
FULL = RunLengths(
    warmup=2000,
    measure=8000,
    single_router_cycles=20000,
    manycore_warmup=3000,
    manycore_measure=12000,
)


def full_fidelity_requested() -> bool:
    """True when the environment asks for paper-fidelity run lengths."""
    return os.environ.get("REPRO_FULL", "").strip() not in ("", "0", "false")


def run_lengths(fast: bool | None = None) -> RunLengths:
    """Resolve the fidelity level (explicit argument beats environment)."""
    if fast is None:
        fast = not full_fidelity_requested()
    return FAST if fast else FULL


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (paper-style row printer)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        cells.append(
            [f"{c:.3f}" if isinstance(c, float) else str(c) for c in row]
        )
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def perf_footer(stats: ExecutionStats | None) -> str:
    """Execution-counter footer appended under experiment tables.

    Empty when ``stats`` is ``None`` or nothing was executed (e.g. a table
    assembled entirely from pre-computed values), so legacy callers that
    never pass stats print unchanged output.
    """
    if stats is None:
        return ""
    counters = stats.as_dict()
    if not any(counters.values()):
        return ""
    return f"[perf_counters] {stats.summary()}"


def improvement(new: float, base: float) -> float:
    """Relative improvement of ``new`` over ``base`` (0.16 = +16%)."""
    if base == 0:
        raise ValueError("baseline value is zero")
    return new / base - 1.0
