"""Shared experiment infrastructure: fidelity presets, the spec executor,
and table printing.

Every experiment driver supports two fidelity levels:

* **fast** (default) — reduced cycle counts so the whole suite regenerates
  in minutes on a laptop; trends and rankings are stable at this level;
* **full** — paper-fidelity run lengths, selected by setting the
  environment variable ``REPRO_FULL=1`` (or passing ``fast=False``).

:func:`execute_spec` is the single execution path behind every driver: it
takes a declarative :class:`~repro.experiments.spec.ExperimentSpec`,
realizes each scenario according to its kind (cached network fan-out,
parallel single-router/manycore workers, inline analytic models), and
returns the results keyed by scenario slot plus merged execution counters.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.experiments.spec import ExperimentSpec, ScenarioSpec
from repro.obs import ObservabilityConfig, TelemetryConfig
from repro.parallel import (
    ExecutionStats,
    ParallelRunner,
    RunJournal,
    journal_path,
    run_sim_jobs,
)


@dataclass(frozen=True)
class RunLengths:
    """Warmup/measurement windows for network simulations."""

    warmup: int
    measure: int
    single_router_cycles: int
    manycore_warmup: int
    manycore_measure: int


FAST = RunLengths(
    warmup=500,
    measure=1500,
    single_router_cycles=2000,
    manycore_warmup=1000,
    manycore_measure=3000,
)
FULL = RunLengths(
    warmup=2000,
    measure=8000,
    single_router_cycles=20000,
    manycore_warmup=3000,
    manycore_measure=12000,
)


def full_fidelity_requested() -> bool:
    """True when the environment asks for paper-fidelity run lengths."""
    return os.environ.get("REPRO_FULL", "").strip() not in ("", "0", "false")


def resume_requested() -> bool:
    """True when the environment asks to resume an interrupted sweep.

    Set by the ``--resume`` CLI flag (``REPRO_RESUME=1``): jobs recorded
    complete in the spec's run journal are served from the cache instead
    of re-executed, and everything else runs as usual.
    """
    return os.environ.get("REPRO_RESUME", "").strip() not in ("", "0", "false")


def run_lengths(fast: bool | None = None) -> RunLengths:
    """Resolve the fidelity level (explicit argument beats environment)."""
    if fast is None:
        fast = not full_fidelity_requested()
    return FAST if fast else FULL


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (paper-style row printer)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        cells.append(
            [f"{c:.3f}" if isinstance(c, float) else str(c) for c in row]
        )
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def perf_footer(stats: ExecutionStats | None) -> str:
    """Execution-counter footer appended under experiment tables.

    Empty when ``stats`` is ``None`` or nothing was executed (e.g. a table
    assembled entirely from pre-computed values), so legacy callers that
    never pass stats print unchanged output.
    """
    if stats is None:
        return ""
    counters = stats.as_dict()
    if not any(counters.values()):
        return ""
    return f"[perf_counters] {stats.summary()}"


def improvement(new: float, base: float) -> float:
    """Relative improvement of ``new`` over ``base`` (0.16 = +16%)."""
    if base == 0:
        raise ValueError("baseline value is zero")
    return new / base - 1.0


# --- the shared spec execution path ----------------------------------------


def _single_router_point(item: tuple) -> float:
    """Worker: one saturated single-router run (must be picklable)."""
    from repro.sim.single_router import SingleRouterExperiment

    allocator, radix, num_vcs, virtual_inputs, packet_length, seed, cycles, options = item
    exp = SingleRouterExperiment(
        allocator,
        radix=radix,
        num_vcs=num_vcs,
        virtual_inputs=virtual_inputs,
        packet_length=packet_length,
        seed=seed,
        allocator_options=dict(options),
    )
    return exp.run(cycles).throughput


def _manycore_point(item: tuple) -> tuple[float, float]:
    """Worker: one (mix, config) manycore run (must be picklable)."""
    from repro.manycore import ManycoreSystem, get_mix

    config, mix_name, seed, warmup, measure = item
    system = ManycoreSystem(config, get_mix(mix_name), seed=seed)
    res = system.run(warmup=warmup, measure=measure)
    return res.aggregate_ipc, res.avg_network_latency


def _analytic_value(scenario: ScenarioSpec) -> Any:
    """Evaluate one analytic-model scenario inline."""
    from repro.timing import allocator_delay, router_delays

    options = dict(scenario.options)
    if scenario.fn == "router_delays":
        return router_delays(**options)
    if scenario.fn == "allocator_delay":
        return allocator_delay(**options)
    raise ValueError(f"unknown analytic fn {scenario.fn!r}")


@dataclass
class SpecRun:
    """The outcome of executing one :class:`ExperimentSpec`.

    ``values`` maps each scenario's ``key`` to its kind-specific result:
    a :class:`~repro.sim.engine.SimulationResult` for network scenarios,
    throughput (flits/cycle) for single-router scenarios, an
    ``(aggregate IPC, avg network latency)`` pair for manycore scenarios,
    and the model's return value for analytic scenarios.
    """

    spec: ExperimentSpec
    values: dict = field(default_factory=dict)
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    def __getitem__(self, key: Any) -> Any:
        return self.values[key]


def execute_spec(
    spec: ExperimentSpec,
    *,
    jobs: int | str | None = None,
    resume: bool | None = None,
) -> SpecRun:
    """Run every scenario of ``spec`` and return the keyed results.

    Scenarios execute grouped by kind — network simulations first (one
    cached :func:`~repro.parallel.run_sim_jobs` fan-out), then
    single-router and manycore workers (one parallel batch each), then the
    analytic models inline — with all execution counters merged into one
    :class:`~repro.parallel.ExecutionStats`.  Within each group, results
    preserve the spec's scenario order, so table formatters can iterate
    the spec itself.

    Network scenarios checkpoint per-job progress to a
    :class:`~repro.parallel.RunJournal` keyed by the spec's content key.
    With ``resume`` true (default: ``$REPRO_RESUME``, i.e. the
    ``--resume`` flag), jobs journaled complete by an interrupted earlier
    run are served from the result cache instead of re-executed;
    otherwise the journal restarts fresh.

    Run telemetry (:class:`~repro.obs.TelemetryConfig`, the ``--monitor``
    / ``--serve`` / ``--trace-export`` flags) attaches a
    :class:`~repro.obs.RunMonitor` to every runner this spec fans out:
    events stream to a JSONL file next to the journal, optionally to a
    live terminal line, an HTTP server, and a Chrome trace export after
    the run.  All of it observes execution only — with telemetry off (the
    default) every code path and every result byte is unchanged.
    """
    if resume is None:
        resume = resume_requested()
    lengths = run_lengths(spec.fast)
    run = SpecRun(spec=spec)

    telemetry = TelemetryConfig.from_env()
    monitor = server = None
    if telemetry.enabled:
        from repro.obs import (
            EventStream,
            RunMonitor,
            TelemetryServer,
            event_stream_path,
        )

        run_key = spec.content_key()
        stream = EventStream(
            telemetry.events_out or event_stream_path(run_key)
        )
        monitor = RunMonitor(
            stream=stream,
            live=telemetry.monitor,
            label=spec.name,
            run_key=run_key,
        )
        monitor.emit(
            "run_start", experiment=spec.name, scenarios=len(spec.scenarios)
        )
        if telemetry.serve is not None:
            server = TelemetryServer(monitor, port=telemetry.serve).start()
            print(f"[telemetry] serving {server.url}", file=sys.stderr)

    try:
        network = [s for s in spec.scenarios if s.kind == "network"]
        if network:
            sim_jobs = [
                s.sim_job(lengths.warmup, lengths.measure, spec.seed)
                for s in network
            ]
            path = journal_path(spec.content_key())
            resumed_keys = (
                RunJournal.completed_keys(path) if resume else frozenset()
            )
            journal = RunJournal(path, fresh=not resume)
            for scenario, res in zip(
                network,
                run_sim_jobs(
                    sim_jobs,
                    jobs=jobs,
                    stats=run.stats,
                    journal=journal,
                    resumed_keys=resumed_keys,
                    monitor=monitor,
                ),
            ):
                run.values[scenario.key] = res

        single = [s for s in spec.scenarios if s.kind == "single_router"]
        if single:
            runner = ParallelRunner(jobs, monitor=monitor)
            items = [
                (
                    s.allocator,
                    s.radix,
                    s.num_vcs,
                    s.virtual_inputs,
                    s.packet_length,
                    spec.seed,
                    s.cycles
                    if s.cycles is not None
                    else lengths.single_router_cycles,
                    s.options,
                )
                for s in single
            ]
            for scenario, value in zip(
                single, runner.map(_single_router_point, items)
            ):
                run.values[scenario.key] = value
            run.stats.merge(runner.stats)

        manycore = [s for s in spec.scenarios if s.kind == "manycore"]
        if manycore:
            runner = ParallelRunner(jobs, monitor=monitor)
            items = [
                (
                    s.network_config(),
                    s.mix,
                    spec.seed,
                    lengths.manycore_warmup,
                    lengths.manycore_measure,
                )
                for s in manycore
            ]
            for scenario, value in zip(
                manycore, runner.map(_manycore_point, items)
            ):
                run.values[scenario.key] = value
            run.stats.merge(runner.stats)

        analytic = [s for s in spec.scenarios if s.kind == "analytic"]
        if analytic:
            start = time.perf_counter()
            for scenario in analytic:
                run.values[scenario.key] = _analytic_value(scenario)
            run.stats.merge(
                ExecutionStats(
                    jobs_run=len(analytic),
                    wall_seconds=time.perf_counter() - start,
                )
            )
    finally:
        if monitor is not None:
            # Sequence run_finish after every worker event still in flight.
            monitor.flush()
            monitor.emit(
                "run_finish", experiment=spec.name, stats=run.stats.as_dict()
            )
            if server is not None:
                server.close()
            monitor.close()
            if telemetry.trace_export == "chrome":
                from repro.obs import export_chrome_trace

                out = telemetry.trace_export_out or f"{spec.name}_trace.json"
                export_chrome_trace(
                    monitor.stream.events(), out, experiment=spec.name
                )
                print(
                    f"[telemetry] chrome trace written to {out}", file=sys.stderr
                )

    obs = ObservabilityConfig.from_env()
    if obs.metrics and obs.metrics_path:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        run.stats.publish(registry)
        registry.export_jsonl(
            obs.metrics_path, experiment=spec.name, kind="execution_stats"
        )

    return run
