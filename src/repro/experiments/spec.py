"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a frozen, canonically-serializable description
of everything an experiment driver runs: a named tuple of
:class:`ScenarioSpec` points (topology, router configuration, traffic,
allocator, run kind), a seed, and a fidelity level.  It is the single
source from which the shared executor (:func:`repro.experiments.runner.execute_spec`)
derives :class:`~repro.parallel.SimJob` lists (and hence cache keys),
parallel fan-out, and keyed result tables — drivers reduce to a spec
builder plus a formatter.

Scenario *kinds* cover the four run shapes the paper's artifacts need:

* ``"network"`` — a full network simulation (becomes a cached ``SimJob``);
* ``"single_router"`` — the saturated Figure-7 testbench;
* ``"manycore"`` — a 64-core application mix (Table 4);
* ``"analytic"`` — a timing-model evaluation (Tables 1/3, radix scaling).

All scheme names resolve through :mod:`repro.registry` at validation time,
so a typo fails fast with the registry's canonical error listing valid
choices, before any simulation starts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.network.config import NetworkConfig, RouterConfig
from repro.parallel import SimJob
from repro.registry import allocators, engines, patterns, topologies, vc_policies

#: The run shapes a scenario can take.
SCENARIO_KINDS = ("network", "single_router", "manycore", "analytic")

#: Analytic model entry points a spec may name (resolved by the executor).
ANALYTIC_FNS = ("router_delays", "allocator_delay")


def _freeze(value: Any) -> Any:
    """Recursively convert lists/dicts to tuples of pairs (hashable form)."""
    if isinstance(value, Mapping):
        return tuple((str(k), _freeze(v)) for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for JSON round-trips (lists -> tuples)."""
    if isinstance(value, list):
        return tuple(_thaw(v) for v in value)
    return value


def _options_dict(options: tuple[tuple[str, Any], ...]) -> dict[str, Any]:
    return {name: value for name, value in options}


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified experiment point.

    Fields not meaningful for a scenario's ``kind`` keep their defaults and
    are ignored by the executor (e.g. ``radix`` for network scenarios).
    ``key`` is the caller-chosen slot identifier the executor files the
    scenario's result under; it never influences what is simulated.
    """

    #: Result-table slot (any tuple of scalars); set by the spec builder.
    key: tuple = ()
    #: Run shape; one of :data:`SCENARIO_KINDS`.
    kind: str = "network"
    #: Switch-allocation scheme (registry name or alias).
    allocator: str = "input_first"
    #: Topology (registry name or alias) — network/manycore kinds.
    topology: str = "mesh"
    num_terminals: int = 64
    num_vcs: int = 6
    buffer_depth: int = 5
    #: Configuration-level crossbar width request (VIX family only).
    virtual_inputs: int = 2
    #: Output-VC policy; "" selects the paper default for the allocator
    #: (dimension-aware for enlarged-crossbar schemes, max-credit otherwise).
    vc_policy: str = ""
    packet_length: int = 4
    #: Traffic pattern (registry name or alias) — network kind.
    pattern: str = "uniform"
    #: Extra pattern-constructor keywords (canonicalized to sorted pairs).
    pattern_options: tuple[tuple[str, Any], ...] = ()
    injection_rate: float = 1.0
    #: Post-measurement drain budget: ``None`` = default drain, 0 = none
    #: (saturation probes), N = at most N cycles.
    drain_limit: int | None = None
    burst_length: float = 1.0
    #: Router radix — single_router kind.
    radix: int = 5
    #: Cycle-count override — single_router kind (``None`` = fidelity preset).
    cycles: int | None = None
    #: Workload mix name — manycore kind.
    mix: str = ""
    #: Analytic model entry point — analytic kind.
    fn: str = ""
    #: Kind-specific options: allocator-constructor keywords for
    #: single_router scenarios, model keywords for analytic scenarios.
    options: tuple[tuple[str, Any], ...] = ()
    #: Simulation engine backend (registry name or alias) — network kind.
    #: "" defers to the runtime default (``REPRO_ENGINE`` or gated).
    engine: str = ""
    #: Chiplet partition scheme (partitioner registry name) — network
    #: kind.  "" = monolithic run; naming a scheme routes the scenario
    #: to the ``partitioned`` engine with the fields below.
    partition: str = ""
    #: Partition grid ``(px, py)`` (used only when ``partition`` is set).
    partition_dims: tuple[int, int] = (2, 2)
    #: Inter-chip link scheme (link registry name).
    link: str = "credit"
    link_latency: int = 0
    link_width: int = 0
    #: Credit-return latency override for cut links (``None`` mirrors
    #: ``link_latency``, matching on-chip symmetry).
    link_credit_latency: int | None = None
    #: Engine stepping each domain ("gated"/"dense"/"vectorized";
    #: "" = gated).
    domain_engine: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "key", _freeze(self.key))
        object.__setattr__(self, "pattern_options", _freeze(self.pattern_options))
        object.__setattr__(self, "options", _freeze(self.options))
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r}; expected one of "
                f"{SCENARIO_KINDS}"
            )
        if self.kind == "analytic":
            if self.fn not in ANALYTIC_FNS:
                raise ValueError(
                    f"unknown analytic fn {self.fn!r}; expected one of "
                    f"{ANALYTIC_FNS}"
                )
            return
        # Scheme names fail fast here, with the registry's error message.
        object.__setattr__(self, "allocator", allocators.canonical(self.allocator))
        if self.vc_policy:
            object.__setattr__(self, "vc_policy", vc_policies.canonical(self.vc_policy))
        if self.kind in ("network", "manycore"):
            object.__setattr__(self, "topology", topologies.canonical(self.topology))
        if self.kind == "network":
            object.__setattr__(self, "pattern", patterns.canonical(self.pattern))
        if self.engine:
            object.__setattr__(self, "engine", engines.canonical(self.engine))
        object.__setattr__(
            self, "partition_dims", tuple(int(d) for d in self.partition_dims)
        )
        if self.partition:
            from repro.registry import links, partitioners

            object.__setattr__(self, "partition", partitioners.canonical(self.partition))
            object.__setattr__(self, "link", links.canonical(self.link))

    # --- realization -------------------------------------------------------

    def resolved_vc_policy(self) -> str:
        """The output-VC policy, with "" resolved to the paper default."""
        if self.vc_policy:
            return self.vc_policy
        info = allocators.get(self.allocator)
        return "vix_dimension" if info.enlarges_crossbar else "max_credit"

    def network_config(self) -> NetworkConfig:
        """The :class:`NetworkConfig` this scenario describes."""
        return NetworkConfig(
            topology=self.topology,
            num_terminals=self.num_terminals,
            router=RouterConfig(
                num_vcs=self.num_vcs,
                buffer_depth=self.buffer_depth,
                allocator=self.allocator,
                virtual_inputs=self.virtual_inputs,
                vc_policy=self.resolved_vc_policy(),
            ),
            packet_length=self.packet_length,
        )

    def traffic_pattern(self) -> Any:
        """The pattern argument for a :class:`SimJob`.

        Plain names stay strings (resolved inside the simulation engine);
        parameterized patterns are instantiated through the registry so
        their constructor state lands in the job's cache identity.
        """
        if not self.pattern_options:
            return self.pattern
        return patterns.create(
            self.pattern, self.num_terminals, **_options_dict(self.pattern_options)
        )

    def partition_config(self):
        """The :class:`~repro.network.links.PartitionConfig`, or ``None``."""
        if not self.partition:
            return None
        from repro.network.links import PartitionConfig

        return PartitionConfig(
            scheme=self.partition,
            dims=self.partition_dims,
            link=self.link,
            link_latency=self.link_latency,
            link_width=self.link_width,
            link_credit_latency=self.link_credit_latency,
            domain_engine=self.domain_engine or "gated",
        )

    def sim_job(self, warmup: int, measure: int, seed: int) -> SimJob:
        """The cached, picklable job for a ``"network"`` scenario."""
        if self.kind != "network":
            raise ValueError(f"sim_job() on a {self.kind!r} scenario")
        return SimJob(
            self.network_config(),
            pattern=self.traffic_pattern(),
            injection_rate=self.injection_rate,
            seed=seed,
            warmup=warmup,
            measure=measure,
            drain_limit=self.drain_limit,
            burst_length=self.burst_length,
            engine=self.engine or None,
            partition=self.partition_config(),
        )

    # --- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain JSON-able data (inverse of :meth:`from_dict`)."""
        data = dataclasses.asdict(self)

        def jsonable(value: Any) -> Any:
            if isinstance(value, tuple):
                return [jsonable(v) for v in value]
            return value

        return {name: jsonable(value) for name, value in data.items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a scenario written by :meth:`to_dict`."""
        fields = {f.name for f in dataclasses.fields(cls)}
        kwargs = {name: _thaw(value) for name, value in data.items() if name in fields}
        return cls(**kwargs)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, seeded bag of scenarios at one fidelity level."""

    #: Experiment id (matches the registry / CLI id, e.g. ``"f8"``).
    name: str
    title: str = ""
    scenarios: tuple[ScenarioSpec, ...] = ()
    seed: int = 1
    #: Fidelity: True = fast preset, False = paper-fidelity, None = honour
    #: the ``REPRO_FULL`` environment switch at execution time.
    fast: bool | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        seen: set = set()
        for scenario in self.scenarios:
            if scenario.key in seen:
                raise ValueError(
                    f"duplicate scenario key {scenario.key!r} in spec {self.name!r}"
                )
            seen.add(scenario.key)

    def to_dict(self) -> dict:
        """Plain JSON-able data (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "title": self.title,
            "scenarios": [s.to_dict() for s in self.scenarios],
            "seed": self.seed,
            "fast": self.fast,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec written by :meth:`to_dict`."""
        return cls(
            name=data["name"],
            title=data.get("title", ""),
            scenarios=tuple(
                ScenarioSpec.from_dict(s) for s in data.get("scenarios", ())
            ),
            seed=data.get("seed", 1),
            fast=data.get("fast"),
        )

    def canonical_json(self) -> str:
        """Deterministic serialized form (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_key(self) -> str:
        """Stable content hash of the spec + package version.

        The same recipe as :meth:`repro.parallel.SimJob.key`, so a spec's
        identity is stable across processes and invalidated by simulator
        behaviour changes.
        """
        from repro import __version__

        payload = json.dumps(
            {"spec": self.to_dict(), "version": __version__},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()
