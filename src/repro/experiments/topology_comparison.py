"""Extension — topology comparison: measured throughput vs wiring bounds.

For each topology (mesh, torus, cmesh, fbfly, 64 terminals each) this
measures uniform-random saturation throughput for the IF baseline and 1:2
VIX, and sets both against the exact analytic channel-load bound from
:mod:`repro.analysis`.  The interesting quantity is *allocation
efficiency* — measured throughput as a fraction of the wiring bound:

* VIX recovers a large part of the gap the separable baseline leaves on
  every topology (and the *largest* part on the torus, +33%);
* the torus's wiring bound is 2x the mesh's (wraparound halves the worst
  channel load) but its efficiency is much lower: the dateline VC classes
  that keep it deadlock-free restrict each hop to half the VC pool, so
  VC availability — not wiring — limits it.  That is exactly the kind of
  VC-supply pressure VIX's extra crossbar inputs relieve;
* no configuration ever exceeds its bound (a simulator-correctness check
  that runs on every invocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import saturation_bound
from repro.parallel import ExecutionStats
from repro.registry import allocators as allocator_registry
from repro.topology import make_topology
from repro.traffic.patterns import UniformRandom

from .runner import execute_spec, format_table, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Extension — topologies vs analytic wiring bounds"

TOPOLOGIES = ("mesh", "torus", "cmesh", "fbfly")
SCHEMES = allocator_registry.select(("input_first", "vix"))
LABELS = allocator_registry.labels(SCHEMES)


@dataclass
class TopologyComparisonResult:
    """Measured throughput and analytic bound per topology."""

    #: (topology, scheme) -> flits/cycle/node at saturation.
    throughput: dict[tuple[str, str], float] = field(default_factory=dict)
    #: topology -> analytic wiring bound (flits/cycle/node).
    bounds: dict[str, float] = field(default_factory=dict)
    perf: ExecutionStats | None = None

    def efficiency(self, topology: str, scheme: str) -> float:
        """Measured throughput as a fraction of the wiring bound."""
        return self.throughput[(topology, scheme)] / self.bounds[topology]

    def vix_gain(self, topology: str) -> float:
        return (
            self.throughput[(topology, "vix")]
            / self.throughput[(topology, "input_first")]
            - 1.0
        )


def spec(
    *,
    topologies: tuple[str, ...] = TOPOLOGIES,
    seed: int = 1,
    fast: bool | None = None,
) -> ExperimentSpec:
    """The declarative description of the (topology, scheme) grid."""
    scenarios = tuple(
        ScenarioSpec(
            key=(topo_name, scheme),
            allocator=scheme,
            topology=topo_name,
            injection_rate=1.0,
            drain_limit=0,
        )
        for topo_name in topologies
        for scheme in SCHEMES
    )
    return ExperimentSpec(
        name="topo", title=TITLE, scenarios=scenarios, seed=seed, fast=fast
    )


def run(
    *,
    topologies: tuple[str, ...] = TOPOLOGIES,
    seed: int = 1,
    fast: bool | None = None,
    jobs: int | str | None = None,
) -> TopologyComparisonResult:
    """Measure every (topology, scheme) pair and compute the bounds."""
    result = TopologyComparisonResult()
    for topo_name in topologies:
        topo = make_topology(topo_name, 64)
        result.bounds[topo_name] = saturation_bound(topo, UniformRandom(64))
    experiment = spec(topologies=topologies, seed=seed, fast=fast)
    outcome = execute_spec(experiment, jobs=jobs)
    for scenario in experiment.scenarios:
        result.throughput[scenario.key] = outcome.values[
            scenario.key
        ].throughput_flits_per_node
    result.perf = outcome.stats
    return result


def report(result: TopologyComparisonResult | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    rows = []
    for topo in TOPOLOGIES:
        if topo not in result.bounds:
            continue
        row: list[object] = [topo, round(result.bounds[topo], 3)]
        for scheme in SCHEMES:
            row.append(round(result.throughput[(topo, scheme)], 3))
            row.append(f"{result.efficiency(topo, scheme):.0%}")
        row.append(f"{result.vix_gain(topo):+.1%}")
        rows.append(row)
    table = format_table(
        ["Topology", "Bound", "IF", "IF eff", "VIX", "VIX eff", "VIX gain"],
        rows,
    )
    text = (
        "Topology comparison: uniform-random saturation vs wiring bound "
        "(flits/cycle/node)\n" + table
    )
    footer = perf_footer(result.perf)
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
