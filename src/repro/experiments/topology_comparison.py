"""Extension — topology comparison: measured throughput vs wiring bounds.

For each topology (mesh, torus, cmesh, fbfly, 64 terminals each) this
measures uniform-random saturation throughput for the IF baseline and 1:2
VIX, and sets both against the exact analytic channel-load bound from
:mod:`repro.analysis`.  The interesting quantity is *allocation
efficiency* — measured throughput as a fraction of the wiring bound:

* VIX recovers a large part of the gap the separable baseline leaves on
  every topology (and the *largest* part on the torus, +33%);
* the torus's wiring bound is 2x the mesh's (wraparound halves the worst
  channel load) but its efficiency is much lower: the dateline VC classes
  that keep it deadlock-free restrict each hop to half the VC pool, so
  VC availability — not wiring — limits it.  That is exactly the kind of
  VC-supply pressure VIX's extra crossbar inputs relieve;
* no configuration ever exceeds its bound (a simulator-correctness check
  that runs on every invocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import saturation_bound
from repro.network.config import paper_config
from repro.sim.engine import saturation_throughput
from repro.topology import make_topology
from repro.traffic.patterns import UniformRandom

from .runner import format_table, run_lengths

TOPOLOGIES = ("mesh", "torus", "cmesh", "fbfly")
SCHEMES = ("input_first", "vix")
LABELS = {"input_first": "IF", "vix": "VIX"}


@dataclass
class TopologyComparisonResult:
    """Measured throughput and analytic bound per topology."""

    #: (topology, scheme) -> flits/cycle/node at saturation.
    throughput: dict[tuple[str, str], float] = field(default_factory=dict)
    #: topology -> analytic wiring bound (flits/cycle/node).
    bounds: dict[str, float] = field(default_factory=dict)

    def efficiency(self, topology: str, scheme: str) -> float:
        """Measured throughput as a fraction of the wiring bound."""
        return self.throughput[(topology, scheme)] / self.bounds[topology]

    def vix_gain(self, topology: str) -> float:
        return (
            self.throughput[(topology, "vix")]
            / self.throughput[(topology, "input_first")]
            - 1.0
        )


def run(
    *,
    topologies: tuple[str, ...] = TOPOLOGIES,
    seed: int = 1,
    fast: bool | None = None,
) -> TopologyComparisonResult:
    """Measure every (topology, scheme) pair and compute the bounds."""
    lengths = run_lengths(fast)
    result = TopologyComparisonResult()
    for topo_name in topologies:
        topo = make_topology(topo_name, 64)
        result.bounds[topo_name] = saturation_bound(topo, UniformRandom(64))
        for scheme in SCHEMES:
            cfg = paper_config(scheme, topology=topo_name)
            res = saturation_throughput(
                cfg, seed=seed, warmup=lengths.warmup, measure=lengths.measure
            )
            result.throughput[(topo_name, scheme)] = res.throughput_flits_per_node
    return result


def report(result: TopologyComparisonResult | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    rows = []
    for topo in TOPOLOGIES:
        if topo not in result.bounds:
            continue
        row: list[object] = [topo, round(result.bounds[topo], 3)]
        for scheme in SCHEMES:
            row.append(round(result.throughput[(topo, scheme)], 3))
            row.append(f"{result.efficiency(topo, scheme):.0%}")
        row.append(f"{result.vix_gain(topo):+.1%}")
        rows.append(row)
    table = format_table(
        ["Topology", "Bound", "IF", "IF eff", "VIX", "VIX eff", "VIX gain"],
        rows,
    )
    return (
        "Topology comparison: uniform-random saturation vs wiring bound "
        "(flits/cycle/node)\n" + table
    )


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
