"""Experiment F8 — Figure 8: 8x8 mesh latency and throughput.

Sweeps injection rate for the four allocation schemes of Section 4.1
(IF, WF, AP, VIX) under uniform-random 4-flit-packet traffic and measures
saturation throughput with fully backlogged sources.  Paper findings:

* all schemes coincide at low load (few output conflicts);
* at high load VIX improves throughput ~16% and latency ~36% over IF;
* AP gains almost nothing at the network level (+0.3% over IF) despite its
  optimal per-router matching — greedy local optimality hurts globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.config import paper_config
from repro.parallel import ExecutionStats, SimJob, run_sim_jobs
from repro.sim.engine import SimulationResult

from .runner import improvement, perf_footer, run_lengths

ALLOCATORS = ("input_first", "wavefront", "augmenting_path", "vix")
LABELS = {
    "input_first": "IF",
    "wavefront": "WF",
    "augmenting_path": "AP",
    "vix": "VIX",
}

#: Injection rates (packets/cycle/node) for the latency curve.
DEFAULT_RATES = (0.01, 0.03, 0.05, 0.07, 0.08, 0.09, 0.10, 0.11)
FAST_RATES = (0.02, 0.06, 0.09, 0.105)


@dataclass
class Fig8Result:
    """Latency curves and saturation throughput per allocator."""

    rates: tuple[float, ...]
    #: allocator -> list of per-rate simulation results.
    curves: dict[str, list[SimulationResult]] = field(default_factory=dict)
    #: allocator -> saturation result (rate = 1.0).
    saturation: dict[str, SimulationResult] = field(default_factory=dict)
    #: Execution counters for the runs behind this result.
    perf: ExecutionStats | None = None

    def saturation_flits_per_node(self, allocator: str) -> float:
        return self.saturation[allocator].throughput_flits_per_node

    def throughput_gain(self, allocator: str, base: str = "input_first") -> float:
        """Relative saturation-throughput gain of ``allocator`` over ``base``."""
        return improvement(
            self.saturation_flits_per_node(allocator),
            self.saturation_flits_per_node(base),
        )

    def high_load_latency(self, allocator: str) -> float:
        """Average latency at the highest rate where the scheme still drains."""
        drained = [r for r in self.curves[allocator] if r.drained]
        if not drained:
            return float("nan")
        return drained[-1].avg_latency


def run(
    *,
    rates: tuple[float, ...] | None = None,
    allocators: tuple[str, ...] = ALLOCATORS,
    topology: str = "mesh",
    seed: int = 1,
    fast: bool | None = None,
    include_curves: bool = True,
    jobs: int | str | None = None,
) -> Fig8Result:
    """Run the Figure 8 sweep.

    Every (allocator, rate) point is independent, so the whole figure fans
    out through :mod:`repro.parallel` as one flat job list.
    """
    lengths = run_lengths(fast)
    if rates is None:
        rates = FAST_RATES if lengths.measure <= 2000 else DEFAULT_RATES
    result = Fig8Result(rates=tuple(rates))
    sim_jobs: list[SimJob] = []
    slots: list[tuple[str, bool]] = []  # (allocator, is_saturation)
    for alloc in allocators:
        cfg = paper_config(alloc, topology=topology)
        if include_curves:
            result.curves[alloc] = []
            for rate in rates:
                sim_jobs.append(
                    SimJob(
                        cfg,
                        injection_rate=rate,
                        seed=seed,
                        warmup=lengths.warmup,
                        measure=lengths.measure,
                    )
                )
                slots.append((alloc, False))
        # Saturation throughput: fully backlogged sources, no drain phase.
        sim_jobs.append(
            SimJob(
                cfg,
                injection_rate=1.0,
                seed=seed,
                warmup=lengths.warmup,
                measure=lengths.measure,
                drain_limit=0,
            )
        )
        slots.append((alloc, True))
    stats = ExecutionStats()
    for (alloc, is_saturation), res in zip(
        slots, run_sim_jobs(sim_jobs, jobs=jobs, stats=stats)
    ):
        if is_saturation:
            result.saturation[alloc] = res
        else:
            result.curves[alloc].append(res)
    result.perf = stats
    return result


def report(result: Fig8Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    import math

    from repro.report import line_chart

    result = result if result is not None else run()
    lines = ["Figure 8(a): average packet latency (cycles) vs injection rate"]
    header = ["rate (pkt/cyc/node)"] + [LABELS[a] for a in result.curves]
    lines.append("  ".join(f"{h:>10s}" for h in header))
    for i, rate in enumerate(result.rates):
        row = [f"{rate:>10.3f}"]
        for alloc in result.curves:
            r = result.curves[alloc][i]
            cell = f"{r.avg_latency:.1f}" + ("" if r.drained else "*")
            row.append(f"{cell:>10s}")
        lines.append("  ".join(row))
    lines.append("  (* = saturated: latency over delivered packets only)")
    lines.append("")
    if result.curves:
        series = {
            LABELS[a]: [
                (r.injection_rate, r.avg_latency)
                for r in pts
                if math.isfinite(r.avg_latency)
            ]
            for a, pts in result.curves.items()
        }
        finite = [y for pts in series.values() for _, y in pts]
        if finite:
            lines.append(
                line_chart(
                    series,
                    x_label="packets/cycle/node",
                    y_label="latency (cycles)",
                    y_max=4 * min(finite),
                )
            )
            lines.append("")
    if result.curves:
        lines.append("Latency percentiles p50/p95/p99 at the highest drained rate:")
        for alloc in result.curves:
            drained = [r for r in result.curves[alloc] if r.drained]
            if not drained:
                continue
            r = drained[-1]
            lines.append(
                f"  {LABELS[alloc]:>4s}: {r.latency_p50:.0f}/{r.latency_p95:.0f}/"
                f"{r.latency_p99:.0f} cycles @ {r.injection_rate:.3f} pkt/cyc/node"
            )
        lines.append("")
    lines.append("Figure 8(b): saturation throughput (flits/cycle/node)")
    for alloc in result.saturation:
        thr = result.saturation_flits_per_node(alloc)
        gain = result.throughput_gain(alloc) if alloc != "input_first" else 0.0
        lines.append(f"  {LABELS[alloc]:>4s}: {thr:.3f}  ({gain:+.1%} vs IF)")
    footer = perf_footer(result.perf)
    if footer:
        lines.extend(["", footer])
    return "\n".join(lines)


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
