"""Experiment F8 — Figure 8: 8x8 mesh latency and throughput.

Sweeps injection rate for the four allocation schemes of Section 4.1
(IF, WF, AP, VIX) under uniform-random 4-flit-packet traffic and measures
saturation throughput with fully backlogged sources.  Paper findings:

* all schemes coincide at low load (few output conflicts);
* at high load VIX improves throughput ~16% and latency ~36% over IF;
* AP gains almost nothing at the network level (+0.3% over IF) despite its
  optimal per-router matching — greedy local optimality hurts globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel import ExecutionStats
from repro.registry import NETWORK_COMPARISON, allocators as allocator_registry
from repro.sim.engine import SimulationResult

from .runner import execute_spec, improvement, perf_footer, run_lengths
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Figure 8 — mesh latency and throughput"

#: The paper's canonical network-level comparison set, in registry order.
ALLOCATORS = allocator_registry.select(flag=NETWORK_COMPARISON)
LABELS = allocator_registry.labels(ALLOCATORS)

#: Injection rates (packets/cycle/node) for the latency curve.
DEFAULT_RATES = (0.01, 0.03, 0.05, 0.07, 0.08, 0.09, 0.10, 0.11)
FAST_RATES = (0.02, 0.06, 0.09, 0.105)


@dataclass
class Fig8Result:
    """Latency curves and saturation throughput per allocator."""

    rates: tuple[float, ...]
    #: allocator -> list of per-rate simulation results.
    curves: dict[str, list[SimulationResult]] = field(default_factory=dict)
    #: allocator -> saturation result (rate = 1.0).
    saturation: dict[str, SimulationResult] = field(default_factory=dict)
    #: Execution counters for the runs behind this result.
    perf: ExecutionStats | None = None

    def saturation_flits_per_node(self, allocator: str) -> float:
        return self.saturation[allocator].throughput_flits_per_node

    def throughput_gain(self, allocator: str, base: str = "input_first") -> float:
        """Relative saturation-throughput gain of ``allocator`` over ``base``."""
        return improvement(
            self.saturation_flits_per_node(allocator),
            self.saturation_flits_per_node(base),
        )

    def high_load_latency(self, allocator: str) -> float:
        """Average latency at the highest rate where the scheme still drains."""
        drained = [r for r in self.curves[allocator] if r.drained]
        if not drained:
            return float("nan")
        return drained[-1].avg_latency


def _resolve_rates(
    rates: tuple[float, ...] | None, fast: bool | None
) -> tuple[float, ...]:
    if rates is not None:
        return tuple(rates)
    return FAST_RATES if run_lengths(fast).measure <= 2000 else DEFAULT_RATES


def spec(
    *,
    rates: tuple[float, ...] | None = None,
    allocators: tuple[str, ...] = ALLOCATORS,
    topology: str = "mesh",
    seed: int = 1,
    fast: bool | None = None,
    include_curves: bool = True,
) -> ExperimentSpec:
    """The declarative description of the Figure 8 sweep."""
    rates = _resolve_rates(rates, fast)
    scenarios: list[ScenarioSpec] = []
    for alloc in allocators:
        name = allocator_registry.canonical(alloc)
        if include_curves:
            for rate in rates:
                scenarios.append(
                    ScenarioSpec(
                        key=("curve", name, rate),
                        allocator=name,
                        topology=topology,
                        injection_rate=rate,
                    )
                )
        # Saturation throughput: fully backlogged sources, no drain phase.
        scenarios.append(
            ScenarioSpec(
                key=("saturation", name),
                allocator=name,
                topology=topology,
                injection_rate=1.0,
                drain_limit=0,
            )
        )
    return ExperimentSpec(
        name="f8", title=TITLE, scenarios=tuple(scenarios), seed=seed, fast=fast
    )


def run(
    *,
    rates: tuple[float, ...] | None = None,
    allocators: tuple[str, ...] = ALLOCATORS,
    topology: str = "mesh",
    seed: int = 1,
    fast: bool | None = None,
    include_curves: bool = True,
    jobs: int | str | None = None,
) -> Fig8Result:
    """Run the Figure 8 sweep.

    Every (allocator, rate) point is an independent scenario, so the whole
    figure fans out through :func:`~repro.experiments.runner.execute_spec`
    as one flat job list.
    """
    experiment = spec(
        rates=rates,
        allocators=allocators,
        topology=topology,
        seed=seed,
        fast=fast,
        include_curves=include_curves,
    )
    outcome = execute_spec(experiment, jobs=jobs)
    result = Fig8Result(rates=_resolve_rates(rates, fast))
    if include_curves:
        for alloc in allocators:
            result.curves[allocator_registry.canonical(alloc)] = []
    for scenario in experiment.scenarios:
        res = outcome.values[scenario.key]
        tag, alloc = scenario.key[0], scenario.key[1]
        if tag == "saturation":
            result.saturation[alloc] = res
        else:
            result.curves[alloc].append(res)
    result.perf = outcome.stats
    return result


def report(result: Fig8Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    import math

    from repro.report import line_chart

    result = result if result is not None else run()
    lines = ["Figure 8(a): average packet latency (cycles) vs injection rate"]
    header = ["rate (pkt/cyc/node)"] + [LABELS[a] for a in result.curves]
    lines.append("  ".join(f"{h:>10s}" for h in header))
    for i, rate in enumerate(result.rates):
        row = [f"{rate:>10.3f}"]
        for alloc in result.curves:
            r = result.curves[alloc][i]
            cell = f"{r.avg_latency:.1f}" + ("" if r.drained else "*")
            row.append(f"{cell:>10s}")
        lines.append("  ".join(row))
    lines.append("  (* = saturated: latency over delivered packets only)")
    lines.append("")
    if result.curves:
        series = {
            LABELS[a]: [
                (r.injection_rate, r.avg_latency)
                for r in pts
                if math.isfinite(r.avg_latency)
            ]
            for a, pts in result.curves.items()
        }
        finite = [y for pts in series.values() for _, y in pts]
        if finite:
            lines.append(
                line_chart(
                    series,
                    x_label="packets/cycle/node",
                    y_label="latency (cycles)",
                    y_max=4 * min(finite),
                )
            )
            lines.append("")
    if result.curves:
        lines.append("Latency percentiles p50/p95/p99 at the highest drained rate:")
        for alloc in result.curves:
            drained = [r for r in result.curves[alloc] if r.drained]
            if not drained:
                continue
            r = drained[-1]
            lines.append(
                f"  {LABELS[alloc]:>4s}: {r.latency_p50:.0f}/{r.latency_p95:.0f}/"
                f"{r.latency_p99:.0f} cycles @ {r.injection_rate:.3f} pkt/cyc/node"
            )
        lines.append("")
    lines.append("Figure 8(b): saturation throughput (flits/cycle/node)")
    for alloc in result.saturation:
        thr = result.saturation_flits_per_node(alloc)
        gain = result.throughput_gain(alloc) if alloc != "input_first" else 0.0
        lines.append(f"  {LABELS[alloc]:>4s}: {thr:.3f}  ({gain:+.1%} vs IF)")
    footer = perf_footer(result.perf)
    if footer:
        lines.extend(["", footer])
    return "\n".join(lines)


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
