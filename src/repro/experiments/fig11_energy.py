"""Experiment F11 — Figure 11: network energy per bit.

Runs the mesh at 0.1 packets/cycle/node (the paper's operating point),
collects activity factors, and folds them into the component energy
models.  Expected result: VIX raises the crossbar component (bigger
``2P x P`` crossbar) for a total energy/bit increase of ~4%; every other
component is essentially unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy import ActivityCounters, EnergyBreakdown, EnergyModel
from repro.parallel import ExecutionStats

from .runner import execute_spec, format_table, improvement, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Figure 11 — network energy per bit"

SCHEMES = ("input_first", "vix")
#: Local display names (the figure contrasts "Baseline (IF)" with VIX).
LABELS = {"input_first": "Baseline (IF)", "vix": "VIX"}
COMPONENTS = ("buffer", "crossbar", "link", "clock", "leakage")

#: The paper's reported total energy/bit overhead for VIX on the mesh.
PAPER_TOTAL_OVERHEAD = 0.04


@dataclass
class Fig11Result:
    """Energy breakdowns (pJ/bit components) per scheme."""

    breakdowns: dict[str, EnergyBreakdown]
    perf: ExecutionStats | None = None

    def per_bit(self, scheme: str) -> float:
        return self.breakdowns[scheme].per_bit

    def vix_total_overhead(self) -> float:
        """Total energy/bit increase of VIX over the IF baseline."""
        return improvement(self.per_bit("vix"), self.per_bit("input_first"))


def spec(
    *, injection_rate: float = 0.1, seed: int = 1, fast: bool | None = None
) -> ExperimentSpec:
    """The declarative description of the Figure 11 activity runs."""
    scenarios = tuple(
        ScenarioSpec(
            key=(scheme,),
            allocator=scheme,
            injection_rate=injection_rate,
            drain_limit=0,
        )
        for scheme in SCHEMES
    )
    return ExperimentSpec(
        name="f11", title=TITLE, scenarios=scenarios, seed=seed, fast=fast
    )


def run(
    *,
    injection_rate: float = 0.1,
    seed: int = 1,
    fast: bool | None = None,
    jobs: int | str | None = None,
) -> Fig11Result:
    """Simulate both configurations and evaluate the energy models."""
    experiment = spec(injection_rate=injection_rate, seed=seed, fast=fast)
    outcome = execute_spec(experiment, jobs=jobs)
    breakdowns: dict[str, EnergyBreakdown] = {}
    for scenario in experiment.scenarios:
        sim = outcome.values[scenario.key]
        cfg = scenario.network_config()
        counters = ActivityCounters(**sim.counters)
        model = EnergyModel(
            radix=5,
            num_vcs=cfg.router.num_vcs,
            buffer_depth=cfg.router.buffer_depth,
            virtual_inputs=cfg.router.effective_virtual_inputs,
            num_routers=64,
            flit_width_bits=cfg.flit_width_bits,
        )
        breakdowns[scenario.key[0]] = model.evaluate(counters)
    return Fig11Result(breakdowns=breakdowns, perf=outcome.stats)


def report(result: Fig11Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    rows = []
    for scheme in SCHEMES:
        bd = result.breakdowns[scheme]
        comp = bd.per_bit_components()
        rows.append(
            [LABELS[scheme]]
            + [round(comp[c], 4) for c in COMPONENTS]
            + [round(bd.per_bit, 4)]
        )
    table = format_table(
        ["Configuration"] + [c.capitalize() for c in COMPONENTS] + ["Total"],
        rows,
    )
    text = (
        "Figure 11: network energy per bit (pJ/bit), mesh @ 0.1 pkt/cyc/node\n"
        + table
        + f"\nVIX total overhead: {result.vix_total_overhead():+.1%} "
        f"(paper: +{PAPER_TOTAL_OVERHEAD:.0%})"
    )
    footer = perf_footer(result.perf)
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
