"""Experiment F7 — Figure 7: single-router switch-allocation efficiency.

A single saturated router per (radix, allocator) pair; the metric is
crossbar throughput in flits/cycle.  Paper findings reproduced here:

* trends are the same across radices 5, 8, 10;
* AP gains >30% and VIX >25% over separable IF at every radix;
* both AP and VIX come close to ideal allocation (6 virtual inputs/port).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel import ExecutionStats
from repro.registry import NETWORK_COMPARISON, allocators as allocator_registry

from .runner import execute_spec, format_table, improvement, perf_footer, run_lengths
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Figure 7 — single-router allocation efficiency"

RADICES = (5, 8, 10)
#: The canonical comparison set plus the ideal limit, in registry order.
ALLOCATORS = allocator_registry.select(
    allocator_registry.select(flag=NETWORK_COMPARISON) + ("ideal_vix",)
)
LABELS = allocator_registry.labels(ALLOCATORS)


@dataclass
class Fig7Result:
    """Throughput per (radix, allocator)."""

    num_vcs: int
    packet_length: int
    cycles: int
    throughput: dict[tuple[int, str], float]
    perf: ExecutionStats | None = None

    def gain_over_if(self, radix: int, allocator: str) -> float:
        """Relative throughput gain of ``allocator`` over IF at ``radix``."""
        return improvement(
            self.throughput[(radix, allocator)],
            self.throughput[(radix, "input_first")],
        )


def spec(
    *,
    num_vcs: int = 6,
    packet_length: int = 1,
    cycles: int | None = None,
    seed: int = 1,
    fast: bool | None = None,
) -> ExperimentSpec:
    """The declarative description of the Figure 7 sweep."""
    scenarios = tuple(
        ScenarioSpec(
            key=(radix, alloc),
            kind="single_router",
            allocator=alloc,
            radix=radix,
            num_vcs=num_vcs,
            virtual_inputs=2,
            packet_length=packet_length,
            cycles=cycles,
        )
        for radix in RADICES
        for alloc in ALLOCATORS
    )
    return ExperimentSpec(
        name="f7", title=TITLE, scenarios=scenarios, seed=seed, fast=fast
    )


def run(
    *,
    num_vcs: int = 6,
    packet_length: int = 1,
    cycles: int | None = None,
    seed: int = 1,
    fast: bool | None = None,
    jobs: int | str | None = None,
) -> Fig7Result:
    """Run the single-router sweep of Figure 7."""
    if cycles is None:
        cycles = run_lengths(fast).single_router_cycles
    experiment = spec(
        num_vcs=num_vcs,
        packet_length=packet_length,
        cycles=cycles,
        seed=seed,
        fast=fast,
    )
    outcome = execute_spec(experiment, jobs=jobs)
    return Fig7Result(num_vcs, packet_length, cycles, dict(outcome.values), outcome.stats)


def report(result: Fig7Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    rows = []
    for radix in RADICES:
        row: list[object] = [f"Radix-{radix}"]
        for alloc in ALLOCATORS:
            row.append(round(result.throughput[(radix, alloc)], 2))
        row.append(f"{result.gain_over_if(radix, 'vix'):+.0%}")
        row.append(f"{result.gain_over_if(radix, 'augmenting_path'):+.0%}")
        rows.append(row)
    headers = ["Router"] + [LABELS[a] for a in ALLOCATORS] + ["VIX vs IF", "AP vs IF"]
    text = (
        "Single-router throughput (flits/cycle), saturated inputs, "
        f"{result.num_vcs} VCs, {result.packet_length}-flit packets:\n"
        + format_table(headers, rows)
    )
    footer = perf_footer(result.perf)
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
