"""Experiment T4 — Table 4: application-level performance.

Runs every multiprogrammed mix (Mix1..Mix8) on the 64-core manycore system
twice — once with the baseline IF allocator, once with VIX — and reports
the system speedup (aggregate-IPC ratio).  The paper measures 1.03..1.07
(average ~1.05), increasing with the mix's average MPKI; optionally the AP
allocator is included (paper: VIX up to +3.2% over AP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.manycore import get_mix
from repro.manycore.workloads import MIXES, PAPER_MIX_MPKI, PAPER_MIX_SPEEDUP
from repro.parallel import ExecutionStats

from .runner import execute_spec, format_table, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Table 4 — application-level speedups"


@dataclass
class Table4Result:
    """Per-mix IPC and speedups."""

    ipc: dict[tuple[str, str], float] = field(default_factory=dict)
    avg_mpki: dict[str, float] = field(default_factory=dict)
    net_latency: dict[tuple[str, str], float] = field(default_factory=dict)
    perf: ExecutionStats | None = None

    def speedup(self, mix: str, scheme: str = "vix", base: str = "input_first") -> float:
        return self.ipc[(mix, scheme)] / self.ipc[(mix, base)]

    def average_speedup(self, scheme: str = "vix") -> float:
        mixes = sorted({k[0] for k in self.ipc})
        return sum(self.speedup(m, scheme) for m in mixes) / len(mixes)


def spec(
    *,
    mixes: tuple[str, ...] | None = None,
    schemes: tuple[str, ...] = ("input_first", "vix"),
    seed: int = 1,
    fast: bool | None = None,
) -> ExperimentSpec:
    """The declarative description of the mix x scheme grid."""
    if mixes is None:
        mixes = tuple(sorted(MIXES))
    scenarios = tuple(
        ScenarioSpec(
            key=(mix_name, scheme),
            kind="manycore",
            allocator=scheme,
            mix=mix_name,
        )
        for mix_name in mixes
        for scheme in schemes
    )
    return ExperimentSpec(
        name="t4", title=TITLE, scenarios=scenarios, seed=seed, fast=fast
    )


def run(
    *,
    mixes: tuple[str, ...] | None = None,
    schemes: tuple[str, ...] = ("input_first", "vix"),
    seed: int = 1,
    fast: bool | None = None,
    jobs: int | str | None = None,
) -> Table4Result:
    """Run every mix under every scheme."""
    experiment = spec(mixes=mixes, schemes=schemes, seed=seed, fast=fast)
    outcome = execute_spec(experiment, jobs=jobs)
    result = Table4Result()
    for scenario in experiment.scenarios:
        mix_name = scenario.mix
        if mix_name not in result.avg_mpki:
            result.avg_mpki[mix_name] = get_mix(mix_name).average_mpki()
        ipc, latency = outcome.values[scenario.key]
        result.ipc[scenario.key] = ipc
        result.net_latency[scenario.key] = latency
    result.perf = outcome.stats
    return result


def report(result: Table4Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    mixes = sorted({k[0] for k in result.ipc})
    schemes = sorted({k[1] for k in result.ipc})
    rows = []
    for mix in mixes:
        row: list[object] = [
            mix,
            round(result.avg_mpki[mix], 1),
            PAPER_MIX_MPKI.get(mix, float("nan")),
            round(result.speedup(mix), 3),
            PAPER_MIX_SPEEDUP.get(mix, float("nan")),
        ]
        if "augmenting_path" in schemes:
            row.append(round(result.speedup(mix, "vix", "augmenting_path"), 3))
        rows.append(row)
    headers = ["Mix", "avg MPKI", "paper MPKI", "VIX speedup", "paper speedup"]
    if "augmenting_path" in schemes:
        headers.append("VIX vs AP")
    text = (
        "Table 4: application-level speedup of VIX over baseline (IF)\n"
        + format_table(headers, rows)
        + f"\naverage speedup: {result.average_speedup():.3f} (paper: ~1.05)"
    )
    footer = perf_footer(result.perf)
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
