"""Experiment T4 — Table 4: application-level performance.

Runs every multiprogrammed mix (Mix1..Mix8) on the 64-core manycore system
twice — once with the baseline IF allocator, once with VIX — and reports
the system speedup (aggregate-IPC ratio).  The paper measures 1.03..1.07
(average ~1.05), increasing with the mix's average MPKI; optionally the AP
allocator is included (paper: VIX up to +3.2% over AP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.manycore import ManycoreSystem, get_mix
from repro.manycore.workloads import MIXES, PAPER_MIX_MPKI, PAPER_MIX_SPEEDUP
from repro.network.config import paper_config
from repro.parallel import ExecutionStats, ParallelRunner

from .runner import format_table, perf_footer, run_lengths


@dataclass
class Table4Result:
    """Per-mix IPC and speedups."""

    ipc: dict[tuple[str, str], float] = field(default_factory=dict)
    avg_mpki: dict[str, float] = field(default_factory=dict)
    net_latency: dict[tuple[str, str], float] = field(default_factory=dict)
    perf: ExecutionStats | None = None

    def speedup(self, mix: str, scheme: str = "vix", base: str = "input_first") -> float:
        return self.ipc[(mix, scheme)] / self.ipc[(mix, base)]

    def average_speedup(self, scheme: str = "vix") -> float:
        mixes = sorted({k[0] for k in self.ipc})
        return sum(self.speedup(m, scheme) for m in mixes) / len(mixes)


def _simulate_mix(spec: tuple) -> tuple[float, float]:
    """Worker: one (mix, scheme) manycore run (must be picklable)."""
    mix_name, scheme, seed, warmup, measure = spec
    system = ManycoreSystem(paper_config(scheme), get_mix(mix_name), seed=seed)
    res = system.run(warmup=warmup, measure=measure)
    return res.aggregate_ipc, res.avg_network_latency


def run(
    *,
    mixes: tuple[str, ...] | None = None,
    schemes: tuple[str, ...] = ("input_first", "vix"),
    seed: int = 1,
    fast: bool | None = None,
    jobs: int | str | None = None,
) -> Table4Result:
    """Run every mix under every scheme."""
    lengths = run_lengths(fast)
    if mixes is None:
        mixes = tuple(sorted(MIXES))
    result = Table4Result()
    for mix_name in mixes:
        result.avg_mpki[mix_name] = get_mix(mix_name).average_mpki()
    keys = [(mix_name, scheme) for mix_name in mixes for scheme in schemes]
    runner = ParallelRunner(jobs)
    values = runner.map(
        _simulate_mix,
        [
            (mix_name, scheme, seed, lengths.manycore_warmup, lengths.manycore_measure)
            for mix_name, scheme in keys
        ],
    )
    for key, (ipc, latency) in zip(keys, values):
        result.ipc[key] = ipc
        result.net_latency[key] = latency
    result.perf = runner.stats
    return result


def report(result: Table4Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    mixes = sorted({k[0] for k in result.ipc})
    schemes = sorted({k[1] for k in result.ipc})
    rows = []
    for mix in mixes:
        row: list[object] = [
            mix,
            round(result.avg_mpki[mix], 1),
            PAPER_MIX_MPKI.get(mix, float("nan")),
            round(result.speedup(mix), 3),
            PAPER_MIX_SPEEDUP.get(mix, float("nan")),
        ]
        if "augmenting_path" in schemes:
            row.append(round(result.speedup(mix, "vix", "augmenting_path"), 3))
        rows.append(row)
    headers = ["Mix", "avg MPKI", "paper MPKI", "VIX speedup", "paper speedup"]
    if "augmenting_path" in schemes:
        headers.append("VIX vs AP")
    text = (
        "Table 4: application-level speedup of VIX over baseline (IF)\n"
        + format_table(headers, rows)
        + f"\naverage speedup: {result.average_speedup():.3f} (paper: ~1.05)"
    )
    footer = perf_footer(result.perf)
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
