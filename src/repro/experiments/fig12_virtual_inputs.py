"""Experiment F12 — Figure 12: impact of the number of virtual inputs.

For each topology (mesh, FBfly, CMesh) and VC count (4, 6) this measures
saturation throughput for:

* the baseline separable router (no virtual inputs),
* 1:2 VIX (two virtual inputs per port — the practical configuration),
* ideal VIX (one virtual input per VC).

Paper findings reproduced: 1:2 VIX gains ~21% (4 VCs) / ~16% (6 VCs) on
average; it is nearly ideal for mesh and CMesh; and a 4-VC router with VIX
beats a 6-VC router without it by >10%, enabling the paper's 33% buffer
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel import ExecutionStats

from .runner import execute_spec, format_table, improvement, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Figure 12 — virtual-input count sweep"

TOPOLOGIES = ("mesh", "fbfly", "cmesh")
VC_COUNTS = (4, 6)
CONFIG_LABELS = ("no VIX", "1:2 VIX", "ideal VIX")

#: Figure 12 configuration label -> allocator scheme.
CONFIG_ALLOCATORS = {
    "no VIX": "input_first",
    "1:2 VIX": "vix",
    "ideal VIX": "ideal_vix",
}


@dataclass
class Fig12Result:
    """Saturation throughput (flits/cycle/node) indexed by
    (topology, num_vcs, config label)."""

    throughput: dict[tuple[str, int, str], float]
    perf: ExecutionStats | None = None

    def gain(self, topology: str, num_vcs: int, config: str = "1:2 VIX") -> float:
        """Gain of a VIX configuration over the no-VIX baseline."""
        return improvement(
            self.throughput[(topology, num_vcs, config)],
            self.throughput[(topology, num_vcs, "no VIX")],
        )

    def average_gain(self, num_vcs: int, config: str = "1:2 VIX") -> float:
        """Mean gain across topologies (the paper's 21% / 16% numbers)."""
        gains = [self.gain(t, num_vcs, config) for t in TOPOLOGIES]
        return sum(gains) / len(gains)

    def buffer_reduction_gain(self, topology: str = "mesh") -> float:
        """4-VC VIX over 6-VC no-VIX: the 33% buffer-reduction headline."""
        return improvement(
            self.throughput[(topology, 4, "1:2 VIX")],
            self.throughput[(topology, 6, "no VIX")],
        )


def spec(
    *,
    topologies: tuple[str, ...] = TOPOLOGIES,
    vc_counts: tuple[int, ...] = VC_COUNTS,
    seed: int = 1,
    fast: bool | None = None,
) -> ExperimentSpec:
    """The declarative description of the topology x VCs x config grid."""
    scenarios = tuple(
        ScenarioSpec(
            key=(topo, vcs, label),
            allocator=CONFIG_ALLOCATORS[label],
            topology=topo,
            num_vcs=vcs,
            virtual_inputs=2,
            injection_rate=1.0,
            drain_limit=0,
        )
        for topo in topologies
        for vcs in vc_counts
        for label in CONFIG_LABELS
    )
    return ExperimentSpec(
        name="f12", title=TITLE, scenarios=scenarios, seed=seed, fast=fast
    )


def run(
    *,
    topologies: tuple[str, ...] = TOPOLOGIES,
    vc_counts: tuple[int, ...] = VC_COUNTS,
    seed: int = 1,
    fast: bool | None = None,
    jobs: int | str | None = None,
) -> Fig12Result:
    """Sweep topology x VC count x virtual-input configuration.

    The 18-point grid (3 topologies x 2 VC counts x 3 configurations) is
    the repo's biggest embarrassingly parallel workload; all points fan out
    in one batch.
    """
    experiment = spec(
        topologies=topologies, vc_counts=vc_counts, seed=seed, fast=fast
    )
    outcome = execute_spec(experiment, jobs=jobs)
    throughput = {
        scenario.key: outcome.values[scenario.key].throughput_flits_per_node
        for scenario in experiment.scenarios
    }
    return Fig12Result(throughput=throughput, perf=outcome.stats)


def report(result: Fig12Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    topologies = sorted({k[0] for k in result.throughput})
    vc_counts = sorted({k[1] for k in result.throughput})
    rows = []
    for topo in TOPOLOGIES:
        if topo not in topologies:
            continue
        for vcs in vc_counts:
            row: list[object] = [topo, vcs]
            for label in CONFIG_LABELS:
                row.append(round(result.throughput[(topo, vcs, label)], 3))
            row.append(f"{result.gain(topo, vcs):+.1%}")
            rows.append(row)
    table = format_table(
        ["Topology", "VCs"] + list(CONFIG_LABELS) + ["1:2 VIX vs no VIX"], rows
    )
    lines = [
        "Figure 12: saturation throughput (flits/cycle/node) vs virtual inputs",
        table,
    ]
    for vcs in vc_counts:
        try:
            lines.append(
                f"average 1:2 VIX gain @ {vcs} VCs: {result.average_gain(vcs):+.1%}"
            )
        except KeyError:
            pass
    if ("mesh", 4, "1:2 VIX") in result.throughput and (
        "mesh",
        6,
        "no VIX",
    ) in result.throughput:
        lines.append(
            "buffer reduction (mesh 4-VC VIX vs 6-VC no VIX): "
            f"{result.buffer_reduction_gain():+.1%}"
        )
    footer = perf_footer(result.perf)
    if footer:
        lines.extend(["", footer])
    return "\n".join(lines)


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
