"""Experiment F12 — Figure 12: impact of the number of virtual inputs.

For each topology (mesh, FBfly, CMesh) and VC count (4, 6) this measures
saturation throughput for:

* the baseline separable router (no virtual inputs),
* 1:2 VIX (two virtual inputs per port — the practical configuration),
* ideal VIX (one virtual input per VC).

Paper findings reproduced: 1:2 VIX gains ~21% (4 VCs) / ~16% (6 VCs) on
average; it is nearly ideal for mesh and CMesh; and a 4-VC router with VIX
beats a 6-VC router without it by >10%, enabling the paper's 33% buffer
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.config import paper_config
from repro.parallel import ExecutionStats, SimJob, run_sim_jobs

from .runner import format_table, improvement, perf_footer, run_lengths

TOPOLOGIES = ("mesh", "fbfly", "cmesh")
VC_COUNTS = (4, 6)
CONFIG_LABELS = ("no VIX", "1:2 VIX", "ideal VIX")


@dataclass
class Fig12Result:
    """Saturation throughput (flits/cycle/node) indexed by
    (topology, num_vcs, config label)."""

    throughput: dict[tuple[str, int, str], float]
    perf: ExecutionStats | None = None

    def gain(self, topology: str, num_vcs: int, config: str = "1:2 VIX") -> float:
        """Gain of a VIX configuration over the no-VIX baseline."""
        return improvement(
            self.throughput[(topology, num_vcs, config)],
            self.throughput[(topology, num_vcs, "no VIX")],
        )

    def average_gain(self, num_vcs: int, config: str = "1:2 VIX") -> float:
        """Mean gain across topologies (the paper's 21% / 16% numbers)."""
        gains = [self.gain(t, num_vcs, config) for t in TOPOLOGIES]
        return sum(gains) / len(gains)

    def buffer_reduction_gain(self, topology: str = "mesh") -> float:
        """4-VC VIX over 6-VC no-VIX: the 33% buffer-reduction headline."""
        return improvement(
            self.throughput[(topology, 4, "1:2 VIX")],
            self.throughput[(topology, 6, "no VIX")],
        )


def _config_args(label: str, num_vcs: int) -> dict:
    if label == "no VIX":
        return {"allocator": "input_first"}
    if label == "1:2 VIX":
        return {"allocator": "vix", "virtual_inputs": 2}
    if label == "ideal VIX":
        return {"allocator": "ideal_vix"}
    raise ValueError(f"unknown configuration {label!r}")


def run(
    *,
    topologies: tuple[str, ...] = TOPOLOGIES,
    vc_counts: tuple[int, ...] = VC_COUNTS,
    seed: int = 1,
    fast: bool | None = None,
    jobs: int | str | None = None,
) -> Fig12Result:
    """Sweep topology x VC count x virtual-input configuration.

    The 18-point grid (3 topologies x 2 VC counts x 3 configurations) is
    the repo's biggest embarrassingly parallel workload; all points fan out
    in one batch.
    """
    lengths = run_lengths(fast)
    keys = [
        (topo, vcs, label)
        for topo in topologies
        for vcs in vc_counts
        for label in CONFIG_LABELS
    ]
    sim_jobs = [
        SimJob(
            paper_config(topology=topo, num_vcs=vcs, **_config_args(label, vcs)),
            injection_rate=1.0,
            seed=seed,
            warmup=lengths.warmup,
            measure=lengths.measure,
            drain_limit=0,
        )
        for topo, vcs, label in keys
    ]
    stats = ExecutionStats()
    results = run_sim_jobs(sim_jobs, jobs=jobs, stats=stats)
    throughput = {
        key: res.throughput_flits_per_node for key, res in zip(keys, results)
    }
    return Fig12Result(throughput=throughput, perf=stats)


def report(result: Fig12Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    topologies = sorted({k[0] for k in result.throughput})
    vc_counts = sorted({k[1] for k in result.throughput})
    rows = []
    for topo in TOPOLOGIES:
        if topo not in topologies:
            continue
        for vcs in vc_counts:
            row: list[object] = [topo, vcs]
            for label in CONFIG_LABELS:
                row.append(round(result.throughput[(topo, vcs, label)], 3))
            row.append(f"{result.gain(topo, vcs):+.1%}")
            rows.append(row)
    table = format_table(
        ["Topology", "VCs"] + list(CONFIG_LABELS) + ["1:2 VIX vs no VIX"], rows
    )
    lines = [
        "Figure 12: saturation throughput (flits/cycle/node) vs virtual inputs",
        table,
    ]
    for vcs in vc_counts:
        try:
            lines.append(
                f"average 1:2 VIX gain @ {vcs} VCs: {result.average_gain(vcs):+.1%}"
            )
        except KeyError:
            pass
    if ("mesh", 4, "1:2 VIX") in result.throughput and (
        "mesh",
        6,
        "no VIX",
    ) in result.throughput:
        lines.append(
            "buffer reduction (mesh 4-VC VIX vs 6-VC no VIX): "
            f"{result.buffer_reduction_gain():+.1%}"
        )
    footer = perf_footer(result.perf)
    if footer:
        lines.extend(["", footer])
    return "\n".join(lines)


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
