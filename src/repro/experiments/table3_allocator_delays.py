"""Experiment T3 — Table 3: delay of different switch-allocation schemes.

Separable (280 ps at radix 5), wavefront (390 ps, +39%), and augmenting
path (infeasible within a router cycle).
"""

from __future__ import annotations

import math
import time

from repro.parallel import ExecutionStats
from repro.timing import allocator_delay

from .runner import format_table, perf_footer

SCHEMES = ("input_first", "wavefront", "augmenting_path")

#: Published Table 3 values in ps (None = "Infeasible").
PAPER_VALUES: dict[str, float | None] = {
    "input_first": 280.0,
    "wavefront": 390.0,
    "augmenting_path": None,
}


class Table3Delays(dict):
    """Scheme -> delay mapping plus the execution counters behind it."""

    perf: ExecutionStats | None = None


def run(radix: int = 5, num_vcs: int = 6) -> dict[str, float]:
    """Delay (ps) per scheme; ``inf`` marks infeasible schemes."""
    start = time.perf_counter()
    values = Table3Delays(
        (s, allocator_delay(s, radix, num_vcs)) for s in SCHEMES
    )
    values.perf = ExecutionStats(
        jobs_run=len(values), wall_seconds=time.perf_counter() - start
    )
    return values


def report(values: dict[str, float] | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    values = values if values is not None else run()
    labels = {
        "input_first": "Separable",
        "wavefront": "Wavefront",
        "augmenting_path": "Augmented Path",
    }

    def fmt(d: float) -> str:
        return "Infeasible" if math.isinf(d) else f"{d:.0f} ps"

    text = format_table(
        ["Scheme", "Delay"],
        [(labels[s], fmt(values[s])) for s in SCHEMES],
    )
    footer = perf_footer(getattr(values, "perf", None))
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
