"""Experiment T3 — Table 3: delay of different switch-allocation schemes.

Separable (280 ps at radix 5), wavefront (390 ps, +39%), and augmenting
path (infeasible within a router cycle).
"""

from __future__ import annotations

import math

from repro.parallel import ExecutionStats

from .runner import execute_spec, format_table, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Table 3 — switch-allocator delays"

SCHEMES = ("input_first", "wavefront", "augmenting_path")

#: Published Table 3 values in ps (None = "Infeasible").
PAPER_VALUES: dict[str, float | None] = {
    "input_first": 280.0,
    "wavefront": 390.0,
    "augmenting_path": None,
}


class Table3Delays(dict):
    """Scheme -> delay mapping plus the execution counters behind it."""

    perf: ExecutionStats | None = None


def spec(radix: int = 5, num_vcs: int = 6) -> ExperimentSpec:
    """The declarative description of the Table 3 model evaluations."""
    scenarios = tuple(
        ScenarioSpec(
            key=(scheme,),
            kind="analytic",
            fn="allocator_delay",
            options=(("scheme", scheme), ("radix", radix), ("num_vcs", num_vcs)),
        )
        for scheme in SCHEMES
    )
    return ExperimentSpec(name="t3", title=TITLE, scenarios=scenarios)


def run(radix: int = 5, num_vcs: int = 6) -> dict[str, float]:
    """Delay (ps) per scheme; ``inf`` marks infeasible schemes."""
    experiment = spec(radix, num_vcs)
    outcome = execute_spec(experiment)
    values = Table3Delays(
        (scenario.key[0], outcome.values[scenario.key])
        for scenario in experiment.scenarios
    )
    values.perf = outcome.stats
    return values


def report(values: dict[str, float] | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    values = values if values is not None else run()
    labels = {
        "input_first": "Separable",
        "wavefront": "Wavefront",
        "augmenting_path": "Augmented Path",
    }

    def fmt(d: float) -> str:
        return "Infeasible" if math.isinf(d) else f"{d:.0f} ps"

    text = format_table(
        ["Scheme", "Delay"],
        [(labels[s], fmt(values[s])) for s in SCHEMES],
    )
    footer = perf_footer(getattr(values, "perf", None))
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
