"""Experiment F10 — Figure 10: comparison with Packet Chaining.

Replicates Section 4.4: an 8x8 mesh under uniform-random **single-flit**
packets at maximum injection rate, comparing IF, WF, AP, Packet Chaining
(SameInput/anyVC), and VIX.  Paper numbers: PC +9% over IF, VIX +16% —
exposing more non-conflicting requests (VIX) beats eliminating requests
through connection reuse (PC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.config import paper_config
from repro.sim.engine import saturation_throughput

from .runner import format_table, improvement, run_lengths

ALLOCATORS = ("input_first", "wavefront", "augmenting_path", "packet_chaining", "vix")
LABELS = {
    "input_first": "IF",
    "wavefront": "WF",
    "augmenting_path": "AP",
    "packet_chaining": "PC",
    "vix": "VIX",
}

#: Paper's reported gains over IF at max injection (single-flit packets).
PAPER_GAINS = {"packet_chaining": 0.09, "vix": 0.16}


@dataclass
class Fig10Result:
    """Saturation throughput (flits/cycle/node) per allocator."""

    throughput: dict[str, float]

    def gain_over_if(self, allocator: str) -> float:
        return improvement(self.throughput[allocator], self.throughput["input_first"])


def run(*, seed: int = 1, fast: bool | None = None) -> Fig10Result:
    """Measure single-flit saturation throughput for every scheme."""
    lengths = run_lengths(fast)
    throughput: dict[str, float] = {}
    for alloc in ALLOCATORS:
        cfg = paper_config(alloc, packet_length=1)
        res = saturation_throughput(
            cfg,
            seed=seed,
            warmup=lengths.warmup,
            measure=lengths.measure,
        )
        throughput[alloc] = res.throughput_flits_per_node
    return Fig10Result(throughput=throughput)


def report(result: Fig10Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    from repro.report import bar_chart

    result = result if result is not None else run()
    rows = []
    for alloc in ALLOCATORS:
        gain = result.gain_over_if(alloc) if alloc != "input_first" else 0.0
        rows.append((LABELS[alloc], round(result.throughput[alloc], 3), f"{gain:+.1%}"))
    bars = bar_chart(
        {LABELS[a]: result.throughput[a] for a in ALLOCATORS}, unit=" f/c/n"
    )
    return (
        "Figure 10: 8x8 mesh, single-flit packets, max injection\n"
        + format_table(["Allocator", "Flits/cyc/node", "vs IF"], rows)
        + "\n"
        + bars
    )


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
