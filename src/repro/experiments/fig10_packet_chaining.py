"""Experiment F10 — Figure 10: comparison with Packet Chaining.

Replicates Section 4.4: an 8x8 mesh under uniform-random **single-flit**
packets at maximum injection rate, comparing IF, WF, AP, Packet Chaining
(SameInput/anyVC), and VIX.  Paper numbers: PC +9% over IF, VIX +16% —
exposing more non-conflicting requests (VIX) beats eliminating requests
through connection reuse (PC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel import ExecutionStats
from repro.registry import NETWORK_COMPARISON, allocators as allocator_registry

from .runner import execute_spec, format_table, improvement, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Figure 10 — packet chaining comparison"

#: The canonical comparison set plus Packet Chaining, in registry order.
ALLOCATORS = allocator_registry.select(
    allocator_registry.select(flag=NETWORK_COMPARISON) + ("packet_chaining",)
)
LABELS = allocator_registry.labels(ALLOCATORS)

#: Paper's reported gains over IF at max injection (single-flit packets).
PAPER_GAINS = {"packet_chaining": 0.09, "vix": 0.16}


@dataclass
class Fig10Result:
    """Saturation throughput (flits/cycle/node) per allocator."""

    throughput: dict[str, float]
    perf: ExecutionStats | None = None

    def gain_over_if(self, allocator: str) -> float:
        return improvement(self.throughput[allocator], self.throughput["input_first"])


def spec(*, seed: int = 1, fast: bool | None = None) -> ExperimentSpec:
    """The declarative description of the Figure 10 saturation probes."""
    scenarios = tuple(
        ScenarioSpec(
            key=(alloc,),
            allocator=alloc,
            packet_length=1,
            injection_rate=1.0,
            drain_limit=0,
        )
        for alloc in ALLOCATORS
    )
    return ExperimentSpec(
        name="f10", title=TITLE, scenarios=scenarios, seed=seed, fast=fast
    )


def run(
    *, seed: int = 1, fast: bool | None = None, jobs: int | str | None = None
) -> Fig10Result:
    """Measure single-flit saturation throughput for every scheme."""
    outcome = execute_spec(spec(seed=seed, fast=fast), jobs=jobs)
    throughput = {
        alloc: outcome.values[(alloc,)].throughput_flits_per_node
        for alloc in ALLOCATORS
    }
    return Fig10Result(throughput=throughput, perf=outcome.stats)


def report(result: Fig10Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    from repro.report import bar_chart

    result = result if result is not None else run()
    rows = []
    for alloc in ALLOCATORS:
        gain = result.gain_over_if(alloc) if alloc != "input_first" else 0.0
        rows.append((LABELS[alloc], round(result.throughput[alloc], 3), f"{gain:+.1%}"))
    bars = bar_chart(
        {LABELS[a]: result.throughput[a] for a in ALLOCATORS}, unit=" f/c/n"
    )
    text = (
        "Figure 10: 8x8 mesh, single-flit packets, max injection\n"
        + format_table(["Allocator", "Flits/cyc/node", "vs IF"], rows)
        + "\n"
        + bars
    )
    footer = perf_footer(result.perf)
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
