"""Experiment CHIPLET — chiplet-partitioned 16x16 and 32x32 CMesh fabrics.

Beyond-paper extension: the DAC 2014 evaluation stops at monolithic 8x8
fabrics, but the switch-allocation question VIX answers gets sharper at
chiplet scale, where a large concentrated mesh is physically cut into an
n x m grid of silicon domains joined by inter-chip links.  This experiment
partitions 16x16 (2x2 chiplets) and 32x32 (4x4 chiplets) CMesh fabrics
with the ``grid`` partitioner and measures saturation throughput for IF
and VIX across a sweep of inter-chip link latencies.

Questions it answers:

* does VIX's throughput edge over IF survive at 32x32 scale, where the
  average hop count (and hence the number of switch-allocation conflicts
  per packet) is far higher than in the paper's 8x8 fabric?
* how quickly does added inter-chip latency erode fabric throughput —
  i.e. how much of the allocator's gain is protected by (or lost to) the
  boundary links' credit round-trip?

Every point runs on the ``partitioned`` engine (domains stepped with the
gated engine, credit-modelled boundary links), so the sweep also serves
as a large-scale soak of the domain decomposition: flit conservation and
credit accounting hold by construction or the run does not complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel import ExecutionStats
from repro.registry import allocators as allocator_registry
from repro.sim.engine import SimulationResult

from .runner import execute_spec, improvement, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Chiplet — partitioned 16x16/32x32 CMesh across inter-chip latencies"

#: The head-to-head pair the issue calls for: baseline vs the paper's scheme.
ALLOCATORS = ("input_first", "vix")
LABELS = allocator_registry.labels(ALLOCATORS)

#: Router-grid edge sizes; terminals = size^2 * 4 (CMesh concentration 4).
SIZES = (16, 32)
#: Chiplet grid per fabric size: 2x2 8x8-router chiplets at 16, 4x4 at 32.
PARTITION_DIMS = {16: (2, 2), 32: (4, 4)}
#: Inter-chip link latencies (cycles) swept per fabric size.
LATENCIES = (0, 4, 8)


@dataclass
class ChipletResult:
    """Saturation throughput per (size, allocator, link latency)."""

    sizes: tuple[int, ...]
    latencies: tuple[int, ...]
    #: (size, allocator, latency) -> saturation result.
    saturation: dict[tuple[int, str, int], SimulationResult] = field(
        default_factory=dict
    )
    #: Execution counters for the runs behind this result.
    perf: ExecutionStats | None = None

    def throughput(self, size: int, allocator: str, latency: int) -> float:
        return self.saturation[(size, allocator, latency)].throughput_flits_per_node

    def throughput_gain(
        self, size: int, latency: int, allocator: str = "vix", base: str = "input_first"
    ) -> float:
        """Relative saturation-throughput gain of ``allocator`` over ``base``."""
        return improvement(
            self.throughput(size, allocator, latency),
            self.throughput(size, base, latency),
        )


def spec(
    *,
    sizes: tuple[int, ...] = SIZES,
    latencies: tuple[int, ...] = LATENCIES,
    allocators: tuple[str, ...] = ALLOCATORS,
    seed: int = 1,
    fast: bool | None = None,
) -> ExperimentSpec:
    """The declarative description of the chiplet sweep."""
    scenarios: list[ScenarioSpec] = []
    for size in sizes:
        dims = PARTITION_DIMS.get(size, (2, 2))
        for alloc in allocators:
            name = allocator_registry.canonical(alloc)
            for latency in latencies:
                scenarios.append(
                    ScenarioSpec(
                        key=("sat", size, name, latency),
                        allocator=name,
                        topology="cmesh",
                        num_terminals=size * size * 4,
                        injection_rate=1.0,
                        drain_limit=0,
                        partition="grid",
                        partition_dims=dims,
                        link="credit",
                        link_latency=latency,
                    )
                )
    return ExperimentSpec(
        name="chiplet", title=TITLE, scenarios=tuple(scenarios), seed=seed, fast=fast
    )


def run(
    *,
    sizes: tuple[int, ...] = SIZES,
    latencies: tuple[int, ...] = LATENCIES,
    allocators: tuple[str, ...] = ALLOCATORS,
    seed: int = 1,
    fast: bool | None = None,
    jobs: int | str | None = None,
) -> ChipletResult:
    """Run the chiplet sweep (every point an independent partitioned job)."""
    experiment = spec(
        sizes=sizes, latencies=latencies, allocators=allocators, seed=seed, fast=fast
    )
    outcome = execute_spec(experiment, jobs=jobs)
    result = ChipletResult(sizes=tuple(sizes), latencies=tuple(latencies))
    for scenario in experiment.scenarios:
        _, size, alloc, latency = scenario.key
        result.saturation[(size, alloc, latency)] = outcome.values[scenario.key]
    result.perf = outcome.stats
    return result


def report(result: ChipletResult | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    allocs = sorted(
        {k[1] for k in result.saturation},
        key=lambda a: (ALLOCATORS.index(a) if a in ALLOCATORS else len(ALLOCATORS), a),
    )
    lines = [
        "Chiplet fabrics: saturation throughput (flits/cycle/node) vs"
        " inter-chip link latency"
    ]
    for size in result.sizes:
        dims = PARTITION_DIMS.get(size, (2, 2))
        lines.append("")
        lines.append(
            f"  {size}x{size} CMesh, {dims[0]}x{dims[1]} chiplets"
            f" ({size * size * 4} terminals):"
        )
        header = ["link latency"] + [LABELS.get(a, a) for a in allocs]
        if len(allocs) >= 2:
            header.append("gain")
        lines.append("    " + "  ".join(f"{h:>12s}" for h in header))
        for latency in result.latencies:
            row = [f"{latency:>12d}"]
            for alloc in allocs:
                row.append(f"{result.throughput(size, alloc, latency):>12.3f}")
            if len(allocs) >= 2:
                gain = result.throughput_gain(
                    size, latency, allocator=allocs[-1], base=allocs[0]
                )
                row.append(f"{gain:>+12.1%}")
            lines.append("    " + "  ".join(row))
    sample = next(iter(result.saturation.values()), None)
    if sample is not None and "partition_domains" in sample.counters:
        lines.append("")
        lines.append(
            "  (each point ran on the partitioned engine: "
            f"{sample.counters['partition_domains']}+ domains, inter-chip "
            "flit/credit counters in each run's [perf_counters] footer)"
        )
    footer = perf_footer(result.perf)
    if footer:
        lines.extend(["", footer])
    return "\n".join(lines)


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
