"""JSON export for experiment results.

Experiment drivers return dataclasses whose fields may contain nested
dataclasses, tuple-keyed dicts (e.g. ``(radix, allocator) -> value``) and
non-finite floats.  :func:`to_jsonable` normalises all of that into plain
JSON-compatible structures so results can be archived, diffed, or plotted
by external tooling, and :func:`save_result` writes the standard envelope
(experiment id, fidelity, payload).
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any


def to_jsonable(obj: Any) -> Any:
    """Recursively convert an experiment result into JSON-safe data.

    * dataclasses -> dicts (by field);
    * dicts -> dicts with stringified keys (tuples joined with ``/``);
    * tuples/sets -> lists;
    * non-finite floats -> the strings ``"inf"`` / ``"-inf"`` / ``"nan"``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {_key(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, float):
        if math.isnan(obj):
            return "nan"
        if math.isinf(obj):
            return "inf" if obj > 0 else "-inf"
        return obj
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    # Fall back to repr for anything exotic rather than failing the export.
    return repr(obj)


def _key(key: Any) -> str:
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def save_result(path: str | Path, experiment_id: str, result: Any, *, fast: bool) -> Path:
    """Write one experiment's result as a JSON document; returns the path."""
    path = Path(path)
    document = {
        "experiment": experiment_id,
        "fidelity": "fast" if fast else "full",
        "result": to_jsonable(result),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_result(path: str | Path) -> dict[str, Any]:
    """Read a document written by :func:`save_result`."""
    return json.loads(Path(path).read_text())
