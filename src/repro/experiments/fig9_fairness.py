"""Experiment F9 — Figure 9: network-level fairness on the mesh.

Every node injects at the same (saturated) rate; ideally every node also
*delivers* at the same rate, so max/min per-source delivered throughput
should approach 1.  The paper measures ~6.4 for the AP allocator (greedy
maximum matching starves long-haul flows) and ~1.99 for VIX.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel import ExecutionStats
from repro.registry import NETWORK_COMPARISON, allocators as allocator_registry

from .runner import execute_spec, format_table, perf_footer
from .spec import ExperimentSpec, ScenarioSpec

TITLE = "Figure 9 — fairness at saturation"

ALLOCATORS = allocator_registry.select(flag=NETWORK_COMPARISON)
LABELS = allocator_registry.labels(ALLOCATORS)

#: Figure 9 published values (max/min node throughput at saturation).
PAPER_VALUES = {"augmenting_path": 6.4, "vix": 1.99}


@dataclass
class Fig9Result:
    """Fairness ratio per allocator (lower is fairer; 1.0 is ideal)."""

    fairness: dict[str, float]
    throughput: dict[str, float]
    perf: ExecutionStats | None = None


def spec(*, seed: int = 1, fast: bool | None = None) -> ExperimentSpec:
    """The declarative description of the Figure 9 saturation probes."""
    scenarios = tuple(
        ScenarioSpec(
            key=(alloc,), allocator=alloc, injection_rate=1.0, drain_limit=0
        )
        for alloc in ALLOCATORS
    )
    return ExperimentSpec(
        name="f9", title=TITLE, scenarios=scenarios, seed=seed, fast=fast
    )


def run(
    *, seed: int = 1, fast: bool | None = None, jobs: int | str | None = None
) -> Fig9Result:
    """Measure max/min per-source delivered throughput at saturation."""
    outcome = execute_spec(spec(seed=seed, fast=fast), jobs=jobs)
    fairness: dict[str, float] = {}
    throughput: dict[str, float] = {}
    for alloc in ALLOCATORS:
        res = outcome.values[(alloc,)]
        fairness[alloc] = res.fairness
        throughput[alloc] = res.throughput_flits_per_node
    return Fig9Result(fairness=fairness, throughput=throughput, perf=outcome.stats)


def report(result: Fig9Result | None = None) -> str:
    """Render the experiment's rows as paper-style text."""
    result = result if result is not None else run()
    rows = [
        (
            LABELS[a],
            round(result.fairness[a], 2),
            round(result.throughput[a], 3),
        )
        for a in ALLOCATORS
    ]
    text = "Figure 9: fairness at saturation, 8x8 mesh (max/min node throughput)\n" + format_table(
        ["Allocator", "Max/Min", "Throughput (flits/cyc/node)"], rows
    )
    footer = perf_footer(result.perf)
    if footer:
        text += "\n\n" + footer
    return text


def main() -> None:
    """CLI entry point: run at default fidelity and print the report."""
    print(report())


if __name__ == "__main__":
    main()
