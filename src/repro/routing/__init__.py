"""Routing algorithms (dimension-order routing with lookahead)."""

from .dor import (
    MeshDirection,
    fbfly_hops,
    fbfly_next_dimension,
    mesh_hops,
    mesh_next_direction,
)

__all__ = [
    "MeshDirection",
    "fbfly_hops",
    "fbfly_next_dimension",
    "mesh_hops",
    "mesh_next_direction",
]
