"""Deterministic dimension-order (X-then-Y) routing helpers.

All three topologies in the paper route with DOR (Section 3), which is
deadlock-free on meshes and on the single-hop-per-dimension flattened
butterfly.  The helpers here work on router grid coordinates; topology
classes translate the returned abstract direction into their own port
numbering.
"""

from __future__ import annotations

from enum import IntEnum


class MeshDirection(IntEnum):
    """Abstract mesh hop directions (before port numbering)."""

    EAST = 0
    WEST = 1
    NORTH = 2
    SOUTH = 3
    LOCAL = 4


def mesh_next_direction(
    cur_x: int, cur_y: int, dst_x: int, dst_y: int
) -> MeshDirection:
    """Next DOR hop on a mesh grid: fully resolve X before touching Y.

    The Y axis grows southward (row 0 is the north edge), matching the
    usual NoC floorplan convention.
    """
    if dst_x > cur_x:
        return MeshDirection.EAST
    if dst_x < cur_x:
        return MeshDirection.WEST
    if dst_y > cur_y:
        return MeshDirection.SOUTH
    if dst_y < cur_y:
        return MeshDirection.NORTH
    return MeshDirection.LOCAL


def mesh_hops(cur_x: int, cur_y: int, dst_x: int, dst_y: int) -> int:
    """Router-to-router hop count under DOR on a mesh (Manhattan distance)."""
    return abs(dst_x - cur_x) + abs(dst_y - cur_y)


def fbfly_next_dimension(
    cur_x: int, cur_y: int, dst_x: int, dst_y: int
) -> tuple[int, int] | None:
    """Next DOR hop on a flattened butterfly.

    Returns ``(dimension, target)`` — dimension 0 hops directly to column
    ``target``, dimension 1 to row ``target`` — or ``None`` at the
    destination router.  Each dimension is crossed in a single express hop.
    """
    if dst_x != cur_x:
        return (0, dst_x)
    if dst_y != cur_y:
        return (1, dst_y)
    return None


def fbfly_hops(cur_x: int, cur_y: int, dst_x: int, dst_y: int) -> int:
    """Router hops on a flattened butterfly (at most one per dimension)."""
    return (1 if dst_x != cur_x else 0) + (1 if dst_y != cur_y else 0)
