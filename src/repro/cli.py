"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    vix-repro list              # show available experiments and schemes
    vix-repro t1                # Table 1 (stage delays)
    vix-repro f8 --full         # Figure 8 at paper-fidelity run lengths
    vix-repro f8 --jobs auto    # fan simulations out over all CPU cores
    vix-repro f8 --resume       # continue an interrupted sweep
    vix-repro all               # everything (slow)

Experiment ids and their descriptions come from the experiment registry
(:data:`repro.registry.experiments`); allocator/topology/pattern names come
from their registries, so ``list`` always reflects what is actually
pluggable and an unknown name fails with the registry's error listing the
valid choices.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import EXPERIMENTS, get_experiment
from repro.registry import experiments as experiment_registry


def _descriptions() -> dict[str, str]:
    """Experiment id -> one-line description, from the registry."""
    return experiment_registry.labels()


def _list_experiments() -> str:
    labels = _descriptions()
    lines = ["available experiments:"]
    for key in sorted(EXPERIMENTS):
        lines.append(f"  {key:<4s} {labels.get(key, '')}")
    lines.append("  all  run every experiment in order")
    return "\n".join(lines)


def _list_schemes() -> str:
    """Every registered scheme, by kind, with aliases."""
    from repro.registry import (
        allocators,
        links,
        partitioners,
        patterns,
        topologies,
        vc_policies,
    )

    lines = ["registered schemes:"]
    for registry in (allocators, vc_policies, topologies, patterns, partitioners, links):
        entries = []
        for info in registry.infos():
            entry = info.name
            if info.aliases:
                entry += f" ({', '.join(info.aliases)})"
            entries.append(entry)
        lines.append(f"  {registry.kind}: {', '.join(entries)}")
    return "\n".join(lines)


def _list_engines() -> str:
    """The engine registry: name, aliases, and capability flags."""
    from repro.registry import engines

    lines = ["simulation engines (--engine NAME):"]
    for info in engines.infos():
        aliases = f" ({', '.join(info.aliases)})" if info.aliases else ""
        flags = f" [{', '.join(sorted(info.flags))}]" if info.flags else ""
        lines.append(f"  {info.name + aliases:<28s}{flags}")
        lines.append(f"      {info.label} — {info.provenance}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="vix-repro",
        description="Regenerate the VIX (DAC 2014) evaluation tables and figures.",
        epilog=_list_experiments(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("experiment", help="experiment id, 'list', or 'all'")
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-fidelity run lengths (equivalent to REPRO_FULL=1)",
    )
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument(
        "--jobs",
        metavar="N",
        help="worker processes for simulation fan-out: a count or 'auto' "
        "(one per CPU core); default 1 / $REPRO_JOBS",
    )
    parser.add_argument(
        "--engine",
        metavar="NAME",
        help="simulation engine backend for every fanned-out run: dense, "
        "gated (default), or vectorized — see 'list' for aliases and "
        "capabilities (equivalent to REPRO_ENGINE; non-vectorizable "
        "schemes fall back to gated)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (equivalent to REPRO_NO_CACHE=1)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep: skip jobs recorded complete in "
        "the run journal and served by the cache (equivalent to "
        "REPRO_RESUME=1)",
    )
    parser.add_argument(
        "--timeout",
        metavar="SECONDS",
        type=float,
        default=None,
        help="per-job time budget; a hung job's worker is killed and the "
        "job retried (equivalent to REPRO_TIMEOUT)",
    )
    parser.add_argument(
        "--max-retries",
        metavar="N",
        type=int,
        default=None,
        help="retries per job after a crash/timeout/exception before "
        "falling back (default 2; equivalent to REPRO_MAX_RETRIES)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        help="also write each result as DIR/<experiment>.json",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        nargs="?",
        const="trace.jsonl",
        help="record a flit-level pipeline event trace to PATH "
        "(JSONL; default trace.jsonl)",
    )
    parser.add_argument(
        "--trace-sample",
        metavar="RATE",
        type=float,
        default=None,
        help="fraction of packets traced, in (0, 1] (default 1.0); "
        "sampling is deterministic per packet id",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="append per-run metrics snapshots (allocator matching "
        "telemetry, activity counters) to PATH as JSONL",
    )
    parser.add_argument(
        "--profile",
        metavar="DIR",
        nargs="?",
        const="",
        default=None,
        help="record per-phase wall-time spans in the [perf_counters] "
        "footer; with DIR, also dump one cProfile .pstats file per "
        "simulation job into DIR",
    )
    parser.add_argument(
        "--monitor",
        action="store_true",
        help="stream run telemetry with a live progress line on stderr; "
        "events are appended as JSONL next to the run journal "
        "(equivalent to REPRO_MONITOR=1)",
    )
    parser.add_argument(
        "--serve",
        metavar="PORT",
        type=int,
        default=None,
        help="serve live run telemetry over HTTP on 127.0.0.1:PORT "
        "(/status JSON, /metrics Prometheus text, /events SSE); "
        "0 picks a free port (equivalent to REPRO_SERVE)",
    )
    parser.add_argument(
        "--trace-export",
        metavar="FORMAT[:PATH]",
        default=None,
        help="export the run's job timeline after each experiment; "
        "currently 'chrome' (Chrome trace-event JSON, loadable in "
        "Perfetto / chrome://tracing), optionally with an output "
        "path like chrome:f8_trace.json (equivalent to "
        "REPRO_TRACE_EXPORT / REPRO_TRACE_EXPORT_OUT)",
    )
    args = parser.parse_args(argv)

    if args.trace_sample is not None and not 0.0 < args.trace_sample <= 1.0:
        parser.error(f"--trace-sample must be in (0, 1], got {args.trace_sample}")
    # Environment, not argument plumbing: every Simulation (local or in a
    # worker process) resolves ObservabilityConfig.from_env(), so setting
    # the variables here observes every simulation an experiment fans out.
    if args.trace is not None:
        os.environ["REPRO_TRACE"] = args.trace
    if args.trace_sample is not None:
        os.environ["REPRO_TRACE_SAMPLE"] = repr(args.trace_sample)
    if args.metrics_out:
        os.environ["REPRO_METRICS_OUT"] = args.metrics_out
    if args.profile is not None:
        os.environ["REPRO_PROFILE"] = "1"
        if args.profile:
            os.environ["REPRO_PROFILE_DIR"] = args.profile

    # Run telemetry rides the environment too (worker processes and the
    # spec executor resolve TelemetryConfig.from_env()).  Unlike the
    # observability flags above it never bypasses the result cache:
    # telemetry watches the sweep's execution, not simulation results.
    if args.monitor:
        os.environ["REPRO_MONITOR"] = "1"
    if args.serve is not None:
        if args.serve < 0 or args.serve > 65535:
            parser.error(f"--serve expects a TCP port (0-65535), got {args.serve}")
        os.environ["REPRO_SERVE"] = str(args.serve)
    if args.trace_export is not None:
        fmt, _, out = args.trace_export.partition(":")
        if fmt != "chrome":
            parser.error(
                f"--trace-export supports 'chrome', got {args.trace_export!r}"
            )
        os.environ["REPRO_TRACE_EXPORT"] = fmt
        if out:
            os.environ["REPRO_TRACE_EXPORT_OUT"] = out

    if args.resume:
        os.environ["REPRO_RESUME"] = "1"
    if args.timeout is not None:
        if args.timeout <= 0:
            parser.error(f"--timeout must be > 0, got {args.timeout}")
        os.environ["REPRO_TIMEOUT"] = repr(args.timeout)
    if args.max_retries is not None:
        if args.max_retries < 0:
            parser.error(f"--max-retries must be >= 0, got {args.max_retries}")
        os.environ["REPRO_MAX_RETRIES"] = str(args.max_retries)

    if args.engine is not None:
        from repro.registry import UnknownSchemeError, engines

        try:
            canonical = engines.canonical(args.engine)
        except UnknownSchemeError as exc:
            parser.error(str(exc))
        # Environment, not argument plumbing, for the same reason as the
        # observability flags: worker processes resolve REPRO_ENGINE too.
        os.environ["REPRO_ENGINE"] = canonical

    if args.jobs is not None:
        from repro.parallel import resolve_jobs

        try:
            resolve_jobs(args.jobs)
        except ValueError:
            parser.error(
                f"--jobs expects an integer or 'auto', got {args.jobs!r}"
            )

    key = args.experiment.strip().lower()
    if key == "list":
        print(_list_experiments())
        print()
        print(_list_schemes())
        print()
        print(_list_engines())
        return 0
    targets = sorted(EXPERIMENTS) if key == "all" else [key]
    fast = not args.full
    if args.no_cache:
        # Environment, not argument passing: the cache check lives deep in
        # the parallel layer and every experiment should see the opt-out.
        os.environ["REPRO_NO_CACHE"] = "1"
    descriptions = _descriptions()
    for target in targets:
        try:
            module = get_experiment(target)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(f"=== {target.upper()}: {descriptions.get(target, '')} ===")
        run = module.run
        kwargs = {}
        if "fast" in run.__code__.co_varnames:
            kwargs["fast"] = fast
        if "seed" in run.__code__.co_varnames:
            kwargs["seed"] = args.seed
        if args.jobs is not None and "jobs" in run.__code__.co_varnames:
            kwargs["jobs"] = args.jobs
        result = run(**kwargs)
        print(module.report(result))
        if args.json:
            from repro.experiments.export import save_result

            path = save_result(
                f"{args.json}/{target}.json", target, result, fast=fast
            )
            print(f"[result written to {path}]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
