"""Synthetic traffic patterns.

The paper's statistical evaluation uses uniform random traffic; the classic
adversarial permutations (Dally & Towles, ch. 3.2) are provided as well —
Section 2.3 argues the VIX VC-assignment policy helps specifically under
adversarial patterns, and the extension benches use them.

A pattern maps a source terminal to a destination terminal.  Stochastic
patterns (uniform, hotspot) draw from the supplied RNG; permutations are
deterministic functions of the source.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.registry import patterns as pattern_registry


class TrafficPattern(ABC):
    """Destination generator for one network size."""

    name: str = "base"

    def __init__(self, num_terminals: int) -> None:
        if num_terminals < 2:
            raise ValueError(f"need >= 2 terminals, got {num_terminals}")
        self.num_terminals = num_terminals

    @abstractmethod
    def destination(self, src: int, rng: random.Random) -> int:
        """Destination terminal for a packet injected at ``src``."""

    def distribution(self, src: int) -> dict[int, float] | None:
        """Exact destination distribution for ``src`` (probabilities
        summing to 1), or ``None`` when unknown.  Used by the analytic
        channel-load bounds in :mod:`repro.analysis`."""
        return None

    def _check_src(self, src: int) -> None:
        if not 0 <= src < self.num_terminals:
            raise ValueError(f"source {src} out of range 0..{self.num_terminals - 1}")


class UniformRandom(TrafficPattern):
    """Each packet targets a terminal drawn uniformly (self excluded)."""

    name = "uniform"

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        dst = rng.randrange(self.num_terminals - 1)
        return dst if dst < src else dst + 1

    def distribution(self, src: int) -> dict[int, float]:
        self._check_src(src)
        p = 1.0 / (self.num_terminals - 1)
        return {d: p for d in range(self.num_terminals) if d != src}


class _Permutation(TrafficPattern):
    """Base for deterministic (permutation) patterns."""

    def distribution(self, src: int) -> dict[int, float]:
        return {self.destination(src, random.Random(0)): 1.0}


class _BitPermutation(_Permutation):
    """Base for permutations defined on the terminal-id bit string."""

    def __init__(self, num_terminals: int) -> None:
        super().__init__(num_terminals)
        if num_terminals & (num_terminals - 1):
            raise ValueError(
                f"{self.name} needs a power-of-two terminal count, got {num_terminals}"
            )
        self.bits = num_terminals.bit_length() - 1


class BitComplement(_BitPermutation):
    """dst = ~src (every bit complemented)."""

    name = "bit_complement"

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        return src ^ (self.num_terminals - 1)


class BitReverse(_BitPermutation):
    """dst = reverse of src's bit string."""

    name = "bit_reverse"

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        out = 0
        for i in range(self.bits):
            if src & (1 << i):
                out |= 1 << (self.bits - 1 - i)
        return out


class Shuffle(_BitPermutation):
    """dst = src rotated left by one bit (perfect shuffle)."""

    name = "shuffle"

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        top = (src >> (self.bits - 1)) & 1
        return ((src << 1) | top) & (self.num_terminals - 1)


class Transpose(_Permutation):
    """(x, y) -> (y, x) on a square grid of terminals."""

    name = "transpose"

    def __init__(self, num_terminals: int) -> None:
        super().__init__(num_terminals)
        side = int(round(num_terminals**0.5))
        if side * side != num_terminals:
            raise ValueError(
                f"transpose needs a square terminal count, got {num_terminals}"
            )
        self.side = side

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        x, y = src % self.side, src // self.side
        return x * self.side + y


class Tornado(_Permutation):
    """(x, y) -> ((x + ceil(side/2) - 1) mod side, y): worst-case for rings,
    stresses the X dimension on meshes."""

    name = "tornado"

    def __init__(self, num_terminals: int) -> None:
        super().__init__(num_terminals)
        side = int(round(num_terminals**0.5))
        if side * side != num_terminals:
            raise ValueError(
                f"tornado needs a square terminal count, got {num_terminals}"
            )
        self.side = side

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        x, y = src % self.side, src // self.side
        nx = (x + (self.side + 1) // 2 - 1) % self.side
        if nx == x:  # degenerate tiny grid: step one right instead
            nx = (x + 1) % self.side
        return y * self.side + nx


class Neighbor(_Permutation):
    """(x, y) -> (x+1 mod side, y): best-case nearest-neighbor traffic."""

    name = "neighbor"

    def __init__(self, num_terminals: int) -> None:
        super().__init__(num_terminals)
        side = int(round(num_terminals**0.5))
        if side * side != num_terminals:
            raise ValueError(
                f"neighbor needs a square terminal count, got {num_terminals}"
            )
        self.side = side

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        x, y = src % self.side, src // self.side
        return y * self.side + (x + 1) % self.side


class Hotspot(TrafficPattern):
    """Uniform random, except a fraction of packets target hotspot nodes."""

    name = "hotspot"

    def __init__(
        self,
        num_terminals: int,
        hotspots: tuple[int, ...] = (0,),
        fraction: float = 0.2,
    ) -> None:
        super().__init__(num_terminals)
        if not hotspots:
            raise ValueError("need at least one hotspot terminal")
        for h in hotspots:
            if not 0 <= h < num_terminals:
                raise ValueError(f"hotspot {h} out of range")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.hotspots = tuple(hotspots)
        self.fraction = fraction
        self._uniform = UniformRandom(num_terminals)

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        if rng.random() < self.fraction:
            choices = [h for h in self.hotspots if h != src] or list(self.hotspots)
            return rng.choice(choices)
        return self._uniform.destination(src, rng)

    def distribution(self, src: int) -> dict[int, float]:
        self._check_src(src)
        dist = {
            d: (1.0 - self.fraction) * p
            for d, p in self._uniform.distribution(src).items()
        }
        choices = [h for h in self.hotspots if h != src] or list(self.hotspots)
        share = self.fraction / len(choices)
        for h in choices:
            dist[h] = dist.get(h, 0.0) + share
        return dist


pattern_registry.register(
    "uniform",
    UniformRandom,
    aliases=("uniform_random", "ur"),
    label="uniform random",
    provenance="paper Section 3 (statistical evaluation)",
)
pattern_registry.register(
    "bit_complement",
    BitComplement,
    label="bit complement",
    provenance="Dally & Towles ch. 3.2",
)
pattern_registry.register(
    "bit_reverse",
    BitReverse,
    label="bit reverse",
    provenance="Dally & Towles ch. 3.2",
)
pattern_registry.register(
    "shuffle",
    Shuffle,
    label="perfect shuffle",
    provenance="Dally & Towles ch. 3.2",
)
pattern_registry.register(
    "transpose",
    Transpose,
    label="transpose",
    provenance="Dally & Towles ch. 3.2",
)
pattern_registry.register(
    "tornado",
    Tornado,
    label="tornado",
    provenance="Dally & Towles ch. 3.2",
)
pattern_registry.register(
    "neighbor",
    Neighbor,
    label="nearest neighbor",
    provenance="Dally & Towles ch. 3.2",
)
pattern_registry.register(
    "hotspot",
    Hotspot,
    label="hotspot",
    provenance="extension benches (adversarial load)",
)

PATTERN_NAMES = pattern_registry.names()


def make_pattern(name: str, num_terminals: int, **kwargs: object) -> TrafficPattern:
    """Build a traffic pattern by name (registry dispatch)."""
    return pattern_registry.create(name, num_terminals, **kwargs)
