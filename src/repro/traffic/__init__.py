"""Traffic generation: synthetic patterns and open-loop injection."""

from .injector import TrafficInjector
from .patterns import (
    PATTERN_NAMES,
    BitComplement,
    BitReverse,
    Hotspot,
    Neighbor,
    Shuffle,
    Tornado,
    TrafficPattern,
    Transpose,
    UniformRandom,
    make_pattern,
)

__all__ = [
    "BitComplement",
    "BitReverse",
    "Hotspot",
    "Neighbor",
    "PATTERN_NAMES",
    "Shuffle",
    "Tornado",
    "TrafficInjector",
    "TrafficPattern",
    "Transpose",
    "UniformRandom",
    "make_pattern",
]
