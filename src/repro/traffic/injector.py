"""Open-loop packet injection.

Every terminal runs an independent injection process:

* **Bernoulli** (default): each cycle a packet is generated with
  probability ``rate`` (packets/cycle/node).  ``rate >= 1`` models
  saturated sources (a packet every cycle, queue permitting), which is how
  the paper's "maximum injection rate" experiments are run.
* **Bursty** (``burst_length > 1``): a two-state Markov-modulated process
  alternating ON bursts (inject every cycle) and OFF gaps, with the same
  long-run average ``rate``.  Bursty arrivals are the standard stress for
  allocation schemes that rely on temporal locality (packet chaining) or
  suffer transient conflicts (plain separable allocators).
"""

from __future__ import annotations

import random

from repro.network.flit import Packet
from repro.network.network import Network
from repro.traffic.patterns import TrafficPattern


class TrafficInjector:
    """Bernoulli injector driving every terminal of a network."""

    def __init__(
        self,
        network: Network,
        pattern: TrafficPattern,
        rate: float,
        packet_length: int | None = None,
        seed: int = 1,
        burst_length: float = 1.0,
    ) -> None:
        if rate < 0:
            raise ValueError(f"injection rate must be >= 0, got {rate}")
        if burst_length < 1.0:
            raise ValueError(f"burst_length must be >= 1, got {burst_length}")
        if pattern.num_terminals != network.config.num_terminals:
            raise ValueError(
                f"pattern sized for {pattern.num_terminals} terminals, "
                f"network has {network.config.num_terminals}"
            )
        self.network = network
        self.pattern = pattern
        self.rate = rate
        self.packet_length = (
            packet_length if packet_length is not None else network.config.packet_length
        )
        if self.packet_length < 1:
            raise ValueError(f"packet_length must be >= 1, got {self.packet_length}")
        self.rng = random.Random(seed)
        self._next_pid = 0
        self.packets_created = 0
        self.packets_refused = 0
        #: Observer hook set by the simulation engine.
        self.stats = None
        # Two-state MMP: ON emits every cycle and exits with p_off;
        # OFF emits nothing and exits with p_on.  Mean ON spell is
        # burst_length; p_on is set so the duty cycle equals `rate`.
        self.burst_length = burst_length
        self._bursty = burst_length > 1.0 and 0.0 < rate < 1.0
        if self._bursty:
            self._p_off = 1.0 / burst_length
            mean_off = burst_length * (1.0 - rate) / rate
            self._p_on = 1.0 / mean_off
            n = network.config.num_terminals
            self._on = [self.rng.random() < rate for _ in range(n)]

    def tick(self, cycle: int) -> int:
        """Generate this cycle's packets; returns how many were accepted."""
        accepted = 0
        rate = self.rate
        rng = self.rng
        saturated = rate >= 1.0
        bursty = self._bursty
        for src in range(self.network.config.num_terminals):
            if bursty:
                if self._on[src]:
                    emit = True
                    if rng.random() < self._p_off:
                        self._on[src] = False
                else:
                    emit = False
                    if rng.random() < self._p_on:
                        self._on[src] = True
                if not emit:
                    continue
            elif not saturated and rng.random() >= rate:
                continue
            if saturated and self.network.interfaces[src].queue_length >= 4:
                # Saturated sources keep a short standing backlog instead of
                # growing an unbounded queue; this does not change the
                # accepted-throughput measurement.
                continue
            dst = self.pattern.destination(src, rng)
            packet = Packet(self._next_pid, src, dst, self.packet_length, cycle)
            self._next_pid += 1
            if self.network.inject(packet):
                accepted += 1
                self.packets_created += 1
                if self.stats is not None:
                    self.stats.on_packet_created(packet)
            else:
                self.packets_refused += 1
        return accepted
