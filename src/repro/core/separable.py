"""Separable input-first switch allocation (the paper's baseline, and the
machinery VIX builds on).

An input-first separable allocator works in two phases:

* **Phase 1 (input arbitration).**  Each crossbar input runs a ``v:1``
  arbiter over the VCs connected to it and picks one candidate request.
* **Phase 2 (output arbitration).**  Each output port runs an arbiter over
  the phase-1 winners that request it and picks one.

The two phases do not coordinate: two inputs may both put forward VCs that
want the same output even though other pairings existed (the paper's
*sub-optimal matching problem*), and only one VC per crossbar input can win
(the *input port constraint*).  With ``virtual_inputs = 1`` (the baseline
"IF" scheme) each physical port owns exactly one crossbar input, so both
problems are in full effect.  :class:`~repro.core.vix.VIXAllocator`
instantiates the same machinery with ``virtual_inputs = k > 1``.

Two ablation knobs (beyond the paper's configurations) are exposed:

* ``pointer_policy`` — ``"plain"`` rotates the input arbiters on every
  phase-1 selection (the conventional separable allocator and the paper's
  baseline); ``"on_grant"`` rotates them only when the selection survives
  phase 2 (iSLIP-style desynchronising update).
* ``partition`` — how VCs map onto virtual inputs: ``"contiguous"``
  (VCs 0..v/k-1 on input 0, the paper's Fig. 2 wiring) or
  ``"interleaved"`` (VC ``i`` on input ``i mod k``).
"""

from __future__ import annotations

from .allocator import SwitchAllocator
from .arbiter import RoundRobinArbiter
from .matching import maximum_matching_size
from .requests import NO_REQUEST, Grant, RequestMatrix

POINTER_POLICIES = ("plain", "on_grant")
PARTITIONS = ("contiguous", "interleaved")


class SeparableInputFirstAllocator(SwitchAllocator):
    """Input-first separable allocator with ``k`` crossbar inputs per port.

    Parameters
    ----------
    virtual_inputs:
        Number of crossbar inputs per physical input port (``k``).  The
        ``num_vcs`` VCs of a port are partitioned into ``k`` sub-groups of
        ``num_vcs // k`` VCs; each sub-group owns one crossbar input and one
        ``(v/k):1`` input arbiter.  Output arbiters grow to
        ``k * num_inputs : 1``.  ``k = 1`` is the conventional router.
    pointer_policy, partition:
        Ablation knobs; see the module docstring.
    """

    name = "IF"

    def __init__(
        self,
        num_inputs: int,
        num_outputs: int,
        num_vcs: int,
        virtual_inputs: int = 1,
        *,
        pointer_policy: str = "plain",
        partition: str = "contiguous",
    ) -> None:
        super().__init__(num_inputs, num_outputs, num_vcs)
        if virtual_inputs < 1:
            raise ValueError(f"virtual_inputs must be >= 1, got {virtual_inputs}")
        if virtual_inputs > num_vcs:
            raise ValueError(
                f"virtual_inputs ({virtual_inputs}) cannot exceed num_vcs ({num_vcs})"
            )
        if num_vcs % virtual_inputs != 0:
            raise ValueError(
                f"num_vcs ({num_vcs}) must divide evenly into "
                f"virtual_inputs ({virtual_inputs}) sub-groups"
            )
        if pointer_policy not in POINTER_POLICIES:
            raise ValueError(
                f"pointer_policy must be one of {POINTER_POLICIES}, "
                f"got {pointer_policy!r}"
            )
        if partition not in PARTITIONS:
            raise ValueError(
                f"partition must be one of {PARTITIONS}, got {partition!r}"
            )
        self._k = virtual_inputs
        self._group_size = num_vcs // virtual_inputs
        self.pointer_policy = pointer_policy
        self.partition = partition
        # One input arbiter per crossbar input (per port, per sub-group).
        self._input_arbiters = [
            [RoundRobinArbiter(self._group_size) for _ in range(virtual_inputs)]
            for _ in range(num_inputs)
        ]
        # One output arbiter per output port, over k*P crossbar inputs.
        self._output_arbiters = [
            RoundRobinArbiter(num_inputs * virtual_inputs) for _ in range(num_outputs)
        ]

    @property
    def virtual_inputs(self) -> int:
        return self._k

    @property
    def group_size(self) -> int:
        """VCs per crossbar input (``v / k``)."""
        return self._group_size

    @property
    def max_grants_per_input_port(self) -> int:
        return self._k

    def vc_group(self, vc: int) -> int:
        """Sub-group (virtual-input index within the port) of VC ``vc``."""
        if self.partition == "contiguous":
            return vc // self._group_size
        return vc % self._k

    def _vc_of(self, group: int, local: int) -> int:
        """Inverse of the partition map: (group, local slot) -> VC id."""
        if self.partition == "contiguous":
            return group * self._group_size + local
        return local * self._k + group

    def _local_of(self, vc: int) -> int:
        """Slot of ``vc`` within its sub-group's input arbiter."""
        if self.partition == "contiguous":
            return vc % self._group_size
        return vc // self._k

    def allocate_fast(self, reqs: list[Grant]) -> list[Grant] | None:
        """Forced-move allocation straight from ``(in_port, vc, out_port)``
        requests, bypassing the :class:`RequestMatrix` entirely.

        When every request sits in its own (port, sub-group) and wants its
        own output, both separable phases are forced for every request:
        each input arbiter sees exactly one candidate and each output
        arbiter exactly one winner.  Grants and pointer rotations are then
        exactly what :meth:`allocate` would produce (under either pointer
        policy — a forced selection always survives phase 2, so "plain" and
        "on_grant" rotate the same arbiters).  Returns ``None`` on any
        virtual-input or output collision; the caller falls back to the
        matrix path.  This is the dominant shape at low load.
        """
        k = self._k
        gs = self._group_size
        contiguous = self.partition == "contiguous"
        busy: set[int] = set()
        busy_outputs: set[int] = set()
        for p, vc, out in reqs:
            g = vc // gs if contiguous else vc % k
            pg = p * k + g
            if pg in busy or out in busy_outputs:
                return None
            busy.add(pg)
            busy_outputs.add(out)
        input_arbiters = self._input_arbiters
        output_arbiters = self._output_arbiters
        n_out = self.num_inputs * k
        for p, vc, out in reqs:
            # Inlined RoundRobinArbiter.update for both phases (the range
            # checks are vacuous here: indices come from our own geometry).
            if contiguous:
                g = vc // gs
                input_arbiters[p][g]._pointer = (vc % gs + 1) % gs
            else:
                g = vc % k
                input_arbiters[p][g]._pointer = (vc // k + 1) % gs
            output_arbiters[out]._pointer = (p * k + g + 1) % n_out
        # Every request is granted unchanged, so the request list (built as
        # Grant tuples by the caller) *is* the grant list.
        return reqs

    def allocate(self, matrix: RequestMatrix) -> list[Grant]:
        plain = self.pointer_policy == "plain"
        contiguous = self.partition == "contiguous"
        gs = self._group_size
        k = self._k
        requests = matrix.requests

        # Single-request fast path: with one live request both phases are
        # forced moves, so skip all the candidate bookkeeping and perform
        # just the two pointer rotations a full run would have made.
        # (Conflict-free *multi*-request sets take :meth:`allocate_fast`
        # before a matrix is even built; by the time a matrix reaches us,
        # router-originated request sets are contended.)
        dirty = matrix.dirty
        if len(dirty) == 1:
            p, vc = dirty[0]
            out = requests[p][vc]
            if out != NO_REQUEST:
                g = self.vc_group(vc)
                if plain:
                    self._input_arbiters[p][g].update(self._local_of(vc))
                self._output_arbiters[out].update(p * self._k + g)
                if not plain:
                    self._input_arbiters[p][g].update(self._local_of(vc))
                if self.probe is not None:
                    # A lone request is a forced perfect round.
                    self.probe.record(1, 1, 1, 1)
                return [Grant(p, vc, out)]

        # Phase 1 candidates per crossbar input, derived from the dirty
        # list: only cells recorded there can hold a request (see
        # RequestMatrix), so this replaces a ``radix x v`` row scan with a
        # walk over the live cells.  The guard against duplicate dirty
        # entries keeps semantics identical for callers that ``add`` the
        # same cell twice.
        groups: dict[tuple[int, int], list[int]] = {}
        for p, vc in dirty:
            if requests[p][vc] == NO_REQUEST:
                continue
            key = (p, vc // gs if contiguous else vc % k)
            vcs = groups.get(key)
            if vcs is None:
                groups[key] = [vc]
            elif vc not in vcs:
                vcs.append(vc)

        # Phase 1: each crossbar input picks one requesting VC.
        # winners[(port, group)] = (vc, out_port)
        # Keys sorted ascending so winner ordering matches a full row scan.
        winners: dict[tuple[int, int], tuple[int, int]] = {}
        for key in sorted(groups):
            p, g = key
            vcs = groups[key]
            arb = self._input_arbiters[p][g]
            if len(vcs) == 1:
                # A lone candidate wins regardless of the pointer; only
                # the pointer rotation (plain policy) must still happen.
                vc = vcs[0]
                if plain:
                    arb.update(self._local_of(vc))
            else:
                local = [self._local_of(w) for w in vcs]
                if plain:
                    # Conventional separable arbitration: the pointer
                    # rotates on the phase-1 choice whether or not phase 2
                    # grants it — exactly the uncoordinated behaviour the
                    # paper targets.
                    choice = arb.grant(local)
                else:
                    choice = arb.arbitrate(local)
                assert choice is not None
                vc = self._vc_of(g, choice)
            winners[key] = (vc, requests[p][vc])

        # Phase 2: each output picks one crossbar input among the winners.
        grants: list[Grant] = []
        per_output: dict[int, list[tuple[int, int, int]]] = {}
        for (p, g), (vc, out) in winners.items():
            per_output.setdefault(out, []).append((p, g, vc))
        for out, cands in per_output.items():
            arb = self._output_arbiters[out]
            if len(cands) == 1:
                # Uncontended output: the pointer cannot change the winner.
                p, g, vc = cands[0]
                arb.update(p * self._k + g)
            else:
                index_of = {p * self._k + g: (p, g, vc) for (p, g, vc) in cands}
                win = arb.arbitrate(index_of.keys())
                assert win is not None
                arb.update(win)
                p, g, vc = index_of[win]
            grants.append(Grant(p, vc, out))
            if not plain:
                # iSLIP-style update: only granted inputs rotate, which
                # desynchronises the input arbiters over time.
                self._input_arbiters[p][g].update(self._local_of(vc))
        probe = self.probe
        if probe is not None and groups:
            # One crossbar input (virtual input) per group puts exactly one
            # winner forward, so requests hidden behind the input-port /
            # virtual-input constraint are the groups' non-winning VCs, and
            # the ideal reference is the maximum matching between crossbar
            # inputs and the outputs their VCs request.
            adj = [
                {requests[p][vc] for vc in vcs} for (p, _g), vcs in groups.items()
            ]
            probe.record(
                sum(len(vcs) for vcs in groups.values()),
                len(winners),
                len(grants),
                maximum_matching_size(adj, self.num_outputs),
            )
        return grants

    def export_pointers(self) -> dict:
        """Snapshot of every arbiter pointer (plain lists, JSON-able).

        ``input[p][g]`` is the phase-1 pointer of port ``p``'s sub-group
        ``g`` (over ``group_size`` local slots); ``output[out]`` is the
        phase-2 pointer (over ``k * num_inputs`` crossbar inputs).  This is
        the grant-relevant state the vectorized engine mirrors into its
        pointer tensors, and the round-trip contract both paths share.
        """
        return {
            "input": [
                [arb.pointer for arb in port_arbs]
                for port_arbs in self._input_arbiters
            ],
            "output": [arb.pointer for arb in self._output_arbiters],
        }

    def import_pointers(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_pointers`."""
        for port_arbs, pointers in zip(self._input_arbiters, state["input"]):
            for arb, pointer in zip(port_arbs, pointers):
                arb._pointer = pointer % arb.num_requesters
        for arb, pointer in zip(self._output_arbiters, state["output"]):
            arb._pointer = pointer % arb.num_requesters

    def reset(self) -> None:
        for port_arbs in self._input_arbiters:
            for arb in port_arbs:
                arb.reset()
        for arb in self._output_arbiters:
            arb.reset()
