"""SPAROFLO-style switch allocation (Kumar et al., ICCD 2007).

The paper's Section 5 contrasts VIX with SPAROFLO: SPAROFLO also presents
*more than one request per input port* to the output arbiters, but keeps
the conventional ``P x P`` crossbar.  Because there are no virtual inputs,
only one request per port can ultimately be granted, so conflicts — two
output arbiters picking the same input port — must be *detected after
output arbitration* using priorities assigned during input arbitration,
and every losing output goes idle that cycle.  Those dropped grants are
exactly the efficiency gap to VIX that the paper describes.

The implementation models the scheme's essence:

1. **Input selection.**  Each port's round-robin arbiter picks up to ``r``
   requests targeting *distinct* outputs, in priority order (first pick =
   highest priority).  ``r`` adapts to load as in the original design:
   multiple requests per port at low/medium load, a single one near
   saturation (where extra requests mostly create conflicts).
2. **Output arbitration.**  Each output's arbiter picks one candidate
   port.
3. **Conflict resolution.**  If several outputs picked the same input
   port, only the candidate carrying the port's highest selection priority
   survives; the other outputs idle.
"""

from __future__ import annotations

from .allocator import SwitchAllocator
from .arbiter import RoundRobinArbiter
from .requests import NO_REQUEST, Grant, RequestMatrix


class SparofloAllocator(SwitchAllocator):
    """Multiple requests per port over a conventional crossbar."""

    name = "SPAROFLO"

    def __init__(
        self,
        num_inputs: int,
        num_outputs: int,
        num_vcs: int,
        *,
        max_requests_per_port: int = 2,
        dynamic: bool = True,
    ) -> None:
        super().__init__(num_inputs, num_outputs, num_vcs)
        if max_requests_per_port < 1:
            raise ValueError(
                f"max_requests_per_port must be >= 1, got {max_requests_per_port}"
            )
        self.max_requests_per_port = max_requests_per_port
        self.dynamic = dynamic
        self._input_arbiters = [RoundRobinArbiter(num_vcs) for _ in range(num_inputs)]
        self._output_arbiters = [RoundRobinArbiter(num_inputs) for _ in range(num_outputs)]

    def _requests_per_port(self, matrix: RequestMatrix) -> int:
        """Load-adaptive request count (the scheme's 'dynamic' knob)."""
        if not self.dynamic:
            return self.max_requests_per_port
        total = matrix.total_requests()
        capacity = self.num_inputs * self.num_vcs
        # Near saturation extra requests mostly collide; fall back to one.
        if total > 0.75 * capacity:
            return 1
        return self.max_requests_per_port

    def allocate(self, matrix: RequestMatrix) -> list[Grant]:
        r = self._requests_per_port(matrix)

        # Phase 1: per port, select up to r requests to distinct outputs,
        # recording the selection order as the conflict priority.
        # candidates[out] = list of (in_port, vc, priority)
        candidates: dict[int, list[tuple[int, int, int]]] = {}
        for p in range(self.num_inputs):
            row = matrix.requests[p]
            available = [v for v in range(self.num_vcs) if row[v] != NO_REQUEST]
            chosen_outputs: set[int] = set()
            arb = self._input_arbiters[p]
            priority = 0
            while available and priority < r:
                vc = arb.grant(available)
                assert vc is not None
                out = row[vc]
                chosen_outputs.add(out)
                candidates.setdefault(out, []).append((p, vc, priority))
                priority += 1
                # Later picks must target outputs this port has not already
                # requested (one candidate per (port, output) pair).
                available = [
                    v for v in available
                    if v != vc and row[v] not in chosen_outputs
                ]

        # Phase 2: output arbitration among candidate ports.
        picked: list[tuple[int, int, int, int]] = []  # (out, in, vc, prio)
        for out, cands in candidates.items():
            arb = self._output_arbiters[out]
            by_port = {p: (vc, prio) for p, vc, prio in cands}
            winner = arb.arbitrate(by_port.keys())
            assert winner is not None
            arb.update(winner)
            vc, prio = by_port[winner]
            picked.append((out, winner, vc, prio))

        # Phase 3: conflict detection — one grant per input port survives,
        # chosen by input-selection priority (ties by output index).
        best: dict[int, tuple[int, int, int]] = {}  # in_port -> (prio, out, vc)
        for out, p, vc, prio in picked:
            incumbent = best.get(p)
            if incumbent is None or (prio, out) < (incumbent[0], incumbent[1]):
                best[p] = (prio, out, vc)
        return [Grant(p, vc, out) for p, (_prio, out, vc) in best.items()]

    def reset(self) -> None:
        for arb in self._input_arbiters:
            arb.reset()
        for arb in self._output_arbiters:
            arb.reset()
