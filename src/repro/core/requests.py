"""Request/grant model shared by all switch allocators.

A *request matrix* describes, for one router and one cycle, which input VCs
want which output ports.  Allocators consume a request matrix and produce a
list of :class:`Grant` records subject to scheme-specific invariants (see
:func:`validate_grants`).
"""

from __future__ import annotations

from typing import NamedTuple


NO_REQUEST = -1


class Grant(NamedTuple):
    """One switch-allocation grant: input VC ``(in_port, vc)`` -> ``out_port``.

    A named tuple rather than a dataclass: grants are created in the
    simulator's innermost loop, and tuple construction/unpacking is the
    cheapest structured record CPython offers.
    """

    in_port: int
    vc: int
    out_port: int


class RequestMatrix:
    """Per-cycle switch-allocation requests for a router.

    ``requests[p][v]`` is the output port requested by VC ``v`` of input port
    ``p``, or :data:`NO_REQUEST`.  ``tails[p][v]`` is True when the
    requesting flit is a tail (or single-flit) — packet-chaining needs this.
    """

    __slots__ = (
        "num_inputs",
        "num_outputs",
        "num_vcs",
        "requests",
        "tails",
        "dirty",
    )

    def __init__(self, num_inputs: int, num_outputs: int, num_vcs: int) -> None:
        if num_inputs < 1 or num_outputs < 1 or num_vcs < 1:
            raise ValueError("RequestMatrix dimensions must be >= 1")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.num_vcs = num_vcs
        self.requests: list[list[int]] = [
            [NO_REQUEST] * num_vcs for _ in range(num_inputs)
        ]
        self.tails: list[list[bool]] = [[False] * num_vcs for _ in range(num_inputs)]
        #: Cells written since the last :meth:`clear`, as ``(in_port, vc)``
        #: pairs.  Writers that bypass :meth:`add` (the router's hot loop)
        #: must append here, or their cells survive the next clear.
        self.dirty: list[tuple[int, int]] = []

    def clear(self) -> None:
        """Remove every request (reused across cycles to avoid reallocation).

        Only the cells dirtied since the previous clear are touched, so an
        idle or lightly loaded router pays for its actual requests, not for
        the full ``radix x num_vcs`` matrix.
        """
        dirty = self.dirty
        if not dirty:
            return
        requests = self.requests
        tails = self.tails
        for in_port, vc in dirty:
            requests[in_port][vc] = NO_REQUEST
            tails[in_port][vc] = False
        dirty.clear()

    def add(self, in_port: int, vc: int, out_port: int, *, tail: bool = False) -> None:
        """Register that VC ``vc`` of ``in_port`` requests ``out_port``."""
        if not 0 <= in_port < self.num_inputs:
            raise ValueError(f"in_port {in_port} out of range")
        if not 0 <= vc < self.num_vcs:
            raise ValueError(f"vc {vc} out of range")
        if not 0 <= out_port < self.num_outputs:
            raise ValueError(f"out_port {out_port} out of range")
        self.requests[in_port][vc] = out_port
        self.tails[in_port][vc] = tail
        self.dirty.append((in_port, vc))

    def request_of(self, in_port: int, vc: int) -> int:
        """Requested output of ``(in_port, vc)``, or :data:`NO_REQUEST`."""
        return self.requests[in_port][vc]

    def is_tail(self, in_port: int, vc: int) -> bool:
        """True when the head-of-line flit of ``(in_port, vc)`` is a tail."""
        return self.tails[in_port][vc]

    def vcs_requesting(self, in_port: int, out_port: int) -> list[int]:
        """VC indices at ``in_port`` that request ``out_port``."""
        row = self.requests[in_port]
        return [v for v in range(self.num_vcs) if row[v] == out_port]

    def port_request_sets(self) -> list[set[int]]:
        """For each input port, the set of distinct requested output ports."""
        return [
            {out for out in row if out != NO_REQUEST} for row in self.requests
        ]

    def total_requests(self) -> int:
        """Number of requesting VCs across the whole router."""
        return sum(
            1 for row in self.requests for out in row if out != NO_REQUEST
        )

    def has_requests(self) -> bool:
        """True when at least one VC requests an output."""
        return any(out != NO_REQUEST for row in self.requests for out in row)


def validate_grants(
    matrix: RequestMatrix,
    grants: list[Grant],
    *,
    max_per_input_port: int | None = 1,
    virtual_inputs: int = 1,
    group_of=None,
) -> None:
    """Check allocator invariants; raise ``AssertionError`` on violation.

    Invariants:

    * every grant corresponds to an actual request;
    * at most one grant per output port;
    * at most one grant per *virtual input* — with ``virtual_inputs=k`` the
      VCs of a port are split into ``k`` contiguous sub-groups and each
      sub-group may send at most one flit per cycle;
    * when ``max_per_input_port`` is not ``None``, at most that many grants
      per input physical port (baseline schemes use 1; VIX uses ``k``;
      pass ``None`` for the ideal allocator).

    ``group_of`` overrides the default contiguous VC-to-virtual-input map
    (pass the allocator's ``vc_group`` for interleaved partitions).
    """
    seen_outputs: set[int] = set()
    seen_vinputs: set[tuple[int, int]] = set()
    per_port: dict[int, int] = {}
    group_size = max(1, matrix.num_vcs // max(1, virtual_inputs))
    if group_of is None:
        group_of = lambda vc: vc // group_size  # noqa: E731 - local default
    for g in grants:
        if matrix.request_of(g.in_port, g.vc) != g.out_port:
            raise AssertionError(f"grant {g} does not match any request")
        if g.out_port in seen_outputs:
            raise AssertionError(f"output port {g.out_port} granted twice")
        seen_outputs.add(g.out_port)
        vin = (g.in_port, group_of(g.vc))
        if vin in seen_vinputs:
            raise AssertionError(f"virtual input {vin} granted twice")
        seen_vinputs.add(vin)
        per_port[g.in_port] = per_port.get(g.in_port, 0) + 1
        if max_per_input_port is not None and per_port[g.in_port] > max_per_input_port:
            raise AssertionError(
                f"input port {g.in_port} granted {per_port[g.in_port]} times "
                f"(limit {max_per_input_port})"
            )
