"""Output-first separable switch allocation (design-space counterpart).

Becker & Dally's allocator study (the paper's reference [4]) treats
separable allocators as a family: *input-first* (the paper's baseline)
arbitrates per input port before per output port; *output-first* reverses
the phases:

* **Phase 1 (output arbitration).**  Each output port arbitrates among
  **all** VCs requesting it (across every input port) and picks one.
* **Phase 2 (input arbitration).**  Each crossbar input arbitrates among
  the outputs that picked one of its VCs, accepting one grant.

The same uncoordinated-decision problem appears mirrored: several outputs
may pick VCs of the same input port and all but one are wasted.  Exposed
here for ablation studies; VIX's virtual inputs help this variant exactly
as they help input-first (phase-2 conflicts only arise within a crossbar
input, so ``k`` virtual inputs accept up to ``k`` grants per port).
"""

from __future__ import annotations

from .allocator import SwitchAllocator
from .arbiter import RoundRobinArbiter
from .requests import Grant, RequestMatrix


class SeparableOutputFirstAllocator(SwitchAllocator):
    """Output-first separable allocator with ``k`` crossbar inputs per port."""

    name = "OF"

    def __init__(
        self,
        num_inputs: int,
        num_outputs: int,
        num_vcs: int,
        virtual_inputs: int = 1,
    ) -> None:
        super().__init__(num_inputs, num_outputs, num_vcs)
        if virtual_inputs < 1:
            raise ValueError(f"virtual_inputs must be >= 1, got {virtual_inputs}")
        if virtual_inputs > num_vcs:
            raise ValueError(
                f"virtual_inputs ({virtual_inputs}) cannot exceed num_vcs ({num_vcs})"
            )
        if num_vcs % virtual_inputs != 0:
            raise ValueError(
                f"num_vcs ({num_vcs}) must divide evenly into "
                f"virtual_inputs ({virtual_inputs}) sub-groups"
            )
        self._k = virtual_inputs
        self._group_size = num_vcs // virtual_inputs
        # Output arbiters see every (port, vc) requester.
        self._output_arbiters = [
            RoundRobinArbiter(num_inputs * num_vcs) for _ in range(num_outputs)
        ]
        # Input arbiters (phase 2) accept one output per crossbar input.
        self._input_arbiters = [
            [RoundRobinArbiter(num_outputs) for _ in range(virtual_inputs)]
            for _ in range(num_inputs)
        ]

    @property
    def virtual_inputs(self) -> int:
        return self._k

    @property
    def max_grants_per_input_port(self) -> int:
        return self._k

    def vc_group(self, vc: int) -> int:
        """Sub-group (crossbar input within the port) of VC ``vc``."""
        return vc // self._group_size

    def allocate(self, matrix: RequestMatrix) -> list[Grant]:
        v = self.num_vcs

        # Phase 1: every output picks one requesting VC network-wide.
        # picks[(port, group)] = list of (out, vc)
        picks: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for out in range(self.num_outputs):
            requesters = [
                p * v + w
                for p in range(self.num_inputs)
                for w in range(v)
                if matrix.requests[p][w] == out
            ]
            if not requesters:
                continue
            arb = self._output_arbiters[out]
            win = arb.grant(requesters)
            assert win is not None
            p, w = divmod(win, v)
            picks.setdefault((p, self.vc_group(w)), []).append((out, w))

        # Phase 2: each crossbar input accepts one of the outputs that
        # picked it; the rest of those outputs idle this cycle.
        grants: list[Grant] = []
        for (p, g), offers in picks.items():
            arb = self._input_arbiters[p][g]
            by_out = {out: w for out, w in offers}
            win = arb.arbitrate(by_out.keys())
            assert win is not None
            arb.update(win)
            grants.append(Grant(p, by_out[win], win))
        return grants

    def export_pointers(self) -> dict:
        """Snapshot of every arbiter pointer (plain lists, JSON-able).

        ``output[out]`` is the phase-1 pointer (over ``num_inputs * num_vcs``
        requesters); ``input[p][g]`` is the phase-2 pointer of port ``p``'s
        crossbar input ``g`` (over ``num_outputs`` offering outputs).  Same
        contract as the input-first variant: this is exactly the state the
        vectorized engine mirrors.
        """
        return {
            "output": [arb.pointer for arb in self._output_arbiters],
            "input": [
                [arb.pointer for arb in port_arbs]
                for port_arbs in self._input_arbiters
            ],
        }

    def import_pointers(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_pointers`."""
        for arb, pointer in zip(self._output_arbiters, state["output"]):
            arb._pointer = pointer % arb.num_requesters
        for port_arbs, pointers in zip(self._input_arbiters, state["input"]):
            for arb, pointer in zip(port_arbs, pointers):
                arb._pointer = pointer % arb.num_requesters

    def reset(self) -> None:
        for arb in self._output_arbiters:
            arb.reset()
        for port_arbs in self._input_arbiters:
            for arb in port_arbs:
                arb.reset()
