"""Switch-allocator base class.

A switch allocator decides, once per cycle, which input VCs may traverse the
crossbar.  All allocators in this package consume a
:class:`~repro.core.requests.RequestMatrix` and return a list of
:class:`~repro.core.requests.Grant` records.  The invariants each scheme
must respect are described in DESIGN.md and checked by
:func:`repro.core.requests.validate_grants`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .requests import Grant, RequestMatrix


class SwitchAllocator(ABC):
    """Base class for all switch allocators.

    Parameters
    ----------
    num_inputs, num_outputs:
        Router port counts (``P`` each for the radix-P routers studied).
    num_vcs:
        Virtual channels per input port (``v``).
    """

    #: Short scheme name used in experiment tables ("IF", "WF", ...).
    name: str = "base"

    #: Optional :class:`repro.obs.probes.AllocatorProbe`.  ``None`` (the
    #: default) keeps the allocation hot path untouched; when attached, the
    #: instrumented schemes (IF/VIX, WF, AP) record per-round matching
    #: telemetry and the router routes every request through the full
    #: matrix path so the probe sees contended and uncontended rounds
    #: alike (grants are unchanged — the fast paths are grant-equivalent).
    probe = None

    def __init__(self, num_inputs: int, num_outputs: int, num_vcs: int) -> None:
        if min(num_inputs, num_outputs, num_vcs) < 1:
            raise ValueError("allocator dimensions must be >= 1")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.num_vcs = num_vcs

    #: How many grants a single input physical port may receive per cycle.
    #: 1 for conventional crossbars, ``k`` for VIX with k virtual inputs.
    @property
    def max_grants_per_input_port(self) -> int:
        return 1

    #: Number of crossbar inputs per input port (``k``); used by the grant
    #: validator and by the energy/timing models to size the crossbar.
    @property
    def virtual_inputs(self) -> int:
        return 1

    @abstractmethod
    def allocate(self, matrix: RequestMatrix) -> list[Grant]:
        """Compute this cycle's grants for ``matrix``."""

    #: Optional forced-move entry point, set by schemes that can recognise a
    #: conflict-free request set without building a :class:`RequestMatrix`.
    #: Signature: ``allocate_fast(reqs: list[tuple[in_port, vc, out_port]])
    #: -> list[Grant] | None`` — a non-``None`` return must be exactly what
    #: :meth:`allocate` would have produced (grants *and* internal priority
    #: state); ``None`` means "contended, use the matrix path".  ``None``
    #: here (the attribute, not the return) means the scheme has no fast
    #: entry point at all.
    allocate_fast = None

    def reset(self) -> None:
        """Restore power-on arbitration state (default: stateless)."""
