"""Wavefront (WF) switch allocation (Tamir & Chi symmetric crossbar arbiter).

The wavefront allocator operates on the *port-level* request matrix
``R[i][o]`` ("input port i has at least one VC requesting output o").  A
priority diagonal sweeps the matrix; cells on the same anti-diagonal share
no row or column, so every conflict-free (input, output) pair along a wave
is granted simultaneously.  Later waves grant whatever rows/columns remain
free.  The starting diagonal rotates every cycle for fairness.

WF finds a *maximal* (not maximum) matching: it never leaves a grantable
pair ungranted, but its greedy wave order can still miss the maximum
matching.  The paper's Table 3 measures WF at 39% higher delay than a
separable allocator; Section 4.1 evaluates both at equal cycle time to
isolate allocation quality.

Like every conventional (non-VIX) scheme, WF grants at most one flit per
input physical port per cycle.  After port-level matching a per-port
round-robin arbiter picks which requesting VC uses the grant.
"""

from __future__ import annotations

from .allocator import SwitchAllocator
from .arbiter import RoundRobinArbiter
from .matching import maximum_matching_size
from .requests import Grant, RequestMatrix


class WavefrontAllocator(SwitchAllocator):
    """Wavefront allocator with a rotating priority diagonal."""

    name = "WF"

    def __init__(self, num_inputs: int, num_outputs: int, num_vcs: int) -> None:
        super().__init__(num_inputs, num_outputs, num_vcs)
        # The wavefront sweep works on a square matrix; pad to the larger
        # dimension (requests simply never appear in padded cells).
        self._n = max(num_inputs, num_outputs)
        self._diag = 0
        self._vc_arbiters = [RoundRobinArbiter(num_vcs) for _ in range(num_inputs)]

    @property
    def priority_diagonal(self) -> int:
        """Anti-diagonal that holds top priority this cycle."""
        return self._diag

    def allocate_fast(self, reqs: list[tuple[int, int, int]]) -> list[Grant] | None:
        """Forced-move allocation for a conflict-free request set.

        WF matches at the *port* level, so the forced condition is one
        request per input port and distinct outputs — every pair is then
        conflict-free and some wave grants it regardless of the priority
        diagonal.  The diagonal still rotates by one (it advances every
        cycle unconditionally) and each port's VC arbiter rotates past its
        lone winner, exactly as :meth:`allocate` would.  Returns ``None``
        on any port or output collision.
        """
        busy_ports: set[int] = set()
        busy_outputs: set[int] = set()
        for p, _vc, out in reqs:
            if p in busy_ports or out in busy_outputs:
                return None
            busy_ports.add(p)
            busy_outputs.add(out)
        self._diag = (self._diag + 1) % self._n
        vc_arbiters = self._vc_arbiters
        v = self.num_vcs
        for p, vc, _out in reqs:
            vc_arbiters[p]._pointer = (vc + 1) % v
        return reqs

    def allocate(self, matrix: RequestMatrix) -> list[Grant]:
        n = self._n
        port_requests = matrix.port_request_sets()
        row_free = [True] * self.num_inputs
        col_free = [True] * self.num_outputs
        port_grants: list[tuple[int, int]] = []

        granted = 0
        want = sum(1 for s in port_requests if s)
        for wave in range(n):
            if granted >= want:
                break
            d = (self._diag + wave) % n
            # Cells (i, o) with (i + o) mod n == d share no row/column.
            for i in range(self.num_inputs):
                if not row_free[i]:
                    continue
                o = (d - i) % n
                if o >= self.num_outputs or not col_free[o]:
                    continue
                if o in port_requests[i]:
                    port_grants.append((i, o))
                    row_free[i] = False
                    col_free[o] = False
                    granted += 1
        self._diag = (self._diag + 1) % n

        grants: list[Grant] = []
        for i, o in port_grants:
            vcs = matrix.vcs_requesting(i, o)
            vc = self._vc_arbiters[i].grant(vcs)
            assert vc is not None
            grants.append(Grant(i, vc, o))
        probe = self.probe
        if probe is not None and want:
            # WF matches whole ports: every requesting port is a phase-1
            # "winner" (its request set reaches the wave sweep directly),
            # so kills are ports the sweep left unmatched and blocks are
            # the VCs folded behind their port's single crossbar input.
            probe.record(
                matrix.total_requests(),
                want,
                len(grants),
                maximum_matching_size(port_requests, self.num_outputs),
            )
        return grants

    def reset(self) -> None:
        self._diag = 0
        for arb in self._vc_arbiters:
            arb.reset()
