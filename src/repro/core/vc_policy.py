"""Output virtual-channel assignment policies (paper Section 2.3).

Before VC allocation, every packet is assigned an output VC — i.e. an input
VC at the downstream router.  The baseline heuristic picks the free VC with
the most free flit buffers.  Under VIX the downstream VCs are partitioned
into sub-groups, each wired to a different virtual input of the downstream
crossbar, so *which* VC a packet gets decides *which* crossbar input its
requests will come from.

The paper's Section 2.3 policy exploits this: using lookahead routing, the
output direction the packet will take **at the downstream router** is known
one hop in advance; packets heading in different dimensions are steered to
different sub-groups so their downstream requests arrive on different
virtual inputs (fewer output-port conflicts), and assignments are load
balanced across sub-groups so every virtual input keeps seeing requests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.registry import vc_policies as vc_policy_registry

#: Direction classes produced by ``Topology.port_direction_class``.
DIR_X = 0
DIR_Y = 1


class VCSelectionPolicy(ABC):
    """Chooses one output VC among the currently-free candidates."""

    name: str = "base"

    @abstractmethod
    def select(
        self,
        candidates: Sequence[int],
        credits: Sequence[int],
        *,
        num_vcs: int,
        virtual_inputs: int,
        downstream_direction: int | None,
    ) -> int:
        """Pick a VC id from ``candidates`` (non-empty, ids in ``[0, num_vcs)``).

        ``credits[vc]`` is the free-buffer count of each VC.
        ``downstream_direction`` is the direction class (:data:`DIR_X`,
        :data:`DIR_Y`) of the output port the packet will request at the
        downstream router, or ``None`` when the packet ejects there.
        """


class MaxCreditPolicy(VCSelectionPolicy):
    """Baseline: the free output VC with the most free flit buffers."""

    name = "max_credit"

    def select(
        self,
        candidates: Sequence[int],
        credits: Sequence[int],
        *,
        num_vcs: int,
        virtual_inputs: int,
        downstream_direction: int | None,
    ) -> int:
        if not candidates:
            raise ValueError("no candidate VCs")
        # Ties break to the lowest VC id (deterministic).  Manual scan
        # instead of max(key=...): this runs once per multi-candidate VC
        # allocation and the lambda dominated its cost.
        best = candidates[0]
        best_credits = credits[best]
        for vc in candidates:
            c = credits[vc]
            if c > best_credits or (c == best_credits and vc < best):
                best = vc
                best_credits = c
        return best


class VixDimensionPolicy(VCSelectionPolicy):
    """Section 2.3: dimension-aware, load-balanced sub-group assignment.

    Preference order:

    1. the sub-group keyed by the packet's downstream output direction
       (X-dimension traffic -> group 0, Y-dimension -> group 1, wrapping by
       ``direction % k`` for ``k > 2``);
    2. if the preferred group has no free VC (or the packet ejects
       downstream), the group with the most free candidate VCs — this is the
       load balancing that keeps every virtual input supplied with requests;
    3. within the chosen group, the VC with the most free buffers.
    """

    name = "vix_dimension"

    def select(
        self,
        candidates: Sequence[int],
        credits: Sequence[int],
        *,
        num_vcs: int,
        virtual_inputs: int,
        downstream_direction: int | None,
    ) -> int:
        if not candidates:
            raise ValueError("no candidate VCs")
        k = max(1, virtual_inputs)
        group_size = max(1, num_vcs // k)
        by_group: dict[int, list[int]] = {}
        for vc in candidates:
            by_group.setdefault(vc // group_size, []).append(vc)

        chosen_group: int | None = None
        if downstream_direction is not None:
            preferred = downstream_direction % k
            if preferred in by_group:
                chosen_group = preferred
        if chosen_group is None:
            # Load balance: group with most free VCs, then highest total
            # credits, ties to the lowest group id.
            chosen_group = max(
                by_group,
                key=lambda g: (
                    len(by_group[g]),
                    sum(credits[vc] for vc in by_group[g]),
                    -g,
                ),
            )
        group_candidates = by_group[chosen_group]
        return max(group_candidates, key=lambda vc: (credits[vc], -vc))


vc_policy_registry.register(
    "max_credit",
    MaxCreditPolicy,
    label="max-credit",
    provenance="baseline heuristic (most free flit buffers)",
)
vc_policy_registry.register(
    "vix_dimension",
    VixDimensionPolicy,
    aliases=("dimension",),
    label="VIX dimension-aware",
    provenance="paper Section 2.3",
)


def make_vc_policy(name: str) -> VCSelectionPolicy:
    """Factory for VC selection policies by name (registry dispatch)."""
    return vc_policy_registry.create(name)
