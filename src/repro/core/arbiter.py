"""Arbiters: the building blocks of separable switch allocators.

An arbiter selects one winner among a set of requesters.  Hardware arbiters
carry state between cycles (a round-robin pointer or a priority matrix), so
these classes are stateful objects created once per arbitration point and
ticked every cycle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable


def rr_winner(pointer: int, requests: Iterable[int], n: int) -> int | None:
    """Round-robin selection as a pure function of ``(pointer, requests)``.

    The requester with the smallest offset ``(idx - pointer) mod n`` wins.
    This is the single scalar definition of the rotating-priority grant:
    :class:`RoundRobinArbiter` dispatches through it, and the vectorized
    engine's batched form (an argmin over the same rolled offsets, see
    :mod:`repro.sim.vec.kernels`) is pinned to it by tests — so the object
    and array allocation paths cannot drift apart.
    """
    win = None
    best = n
    for idx in requests:
        offset = (idx - pointer) % n
        if offset < best:
            best = offset
            win = idx
    return win


def rr_rotate(winner: int, n: int) -> int:
    """Pointer state after granting ``winner``: one past the winner."""
    return (winner + 1) % n


class Arbiter(ABC):
    """Base class for ``n:1`` arbiters.

    Parameters
    ----------
    num_requesters:
        Number of request lines (``n`` in an ``n:1`` arbiter).
    """

    def __init__(self, num_requesters: int) -> None:
        if num_requesters < 1:
            raise ValueError(f"arbiter needs >=1 requesters, got {num_requesters}")
        self.num_requesters = num_requesters

    @abstractmethod
    def arbitrate(self, requests: Iterable[int]) -> int | None:
        """Pick a winner among the requesting indices.

        ``requests`` is an iterable of requester indices (each in
        ``[0, num_requesters)``).  Returns the winning index, or ``None``
        when no line requests.  Calling ``arbitrate`` does **not** rotate
        priority; call :meth:`update` after the grant is accepted.
        """

    @abstractmethod
    def update(self, winner: int) -> None:
        """Advance the priority state after ``winner`` was granted."""

    def grant(self, requests: Iterable[int]) -> int | None:
        """Arbitrate and immediately update state (plain arbiter usage)."""
        winner = self.arbitrate(requests)
        if winner is not None:
            self.update(winner)
        return winner

    def reset(self) -> None:
        """Restore the power-on priority state."""


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter.

    The requester at the priority pointer wins; after a grant the pointer
    moves one past the winner, which gives each requester a fair share under
    sustained contention.  This is the arbiter assumed by the paper's
    separable input-first baseline and by VIX.
    """

    def __init__(self, num_requesters: int) -> None:
        super().__init__(num_requesters)
        self._pointer = 0

    @property
    def pointer(self) -> int:
        """Index that currently holds the highest priority."""
        return self._pointer

    def arbitrate(self, requests: Iterable[int]) -> int | None:
        return rr_winner(self._pointer, set(requests), self.num_requesters)

    def update(self, winner: int) -> None:
        if not 0 <= winner < self.num_requesters:
            raise ValueError(f"winner {winner} out of range 0..{self.num_requesters - 1}")
        self._pointer = rr_rotate(winner, self.num_requesters)

    def reset(self) -> None:
        self._pointer = 0


class FixedPriorityArbiter(Arbiter):
    """Static-priority arbiter: lowest index always wins.

    Used to model greedy, deterministic allocation (the augmenting-path
    allocator resolves ties this way, which is the source of the unfairness
    the paper measures in Figure 9).
    """

    def arbitrate(self, requests: Iterable[int]) -> int | None:
        req = [r for r in requests if 0 <= r < self.num_requesters]
        if not req:
            return None
        return min(req)

    def update(self, winner: int) -> None:  # fixed priority has no state
        if not 0 <= winner < self.num_requesters:
            raise ValueError(f"winner {winner} out of range 0..{self.num_requesters - 1}")


class MatrixArbiter(Arbiter):
    """Least-recently-granted arbiter using a priority matrix.

    ``_prio[i][j]`` is True when requester ``i`` beats requester ``j``.  On a
    grant the winner's row is cleared and its column set, making it the
    lowest priority.  Matrix arbiters give strong (LRG) fairness and are a
    common choice for output arbiters in NoC routers.
    """

    def __init__(self, num_requesters: int) -> None:
        super().__init__(num_requesters)
        n = num_requesters
        self._prio = [[i < j for j in range(n)] for i in range(n)]

    def arbitrate(self, requests: Iterable[int]) -> int | None:
        req = sorted(set(requests))
        if not req:
            return None
        if len(req) == 1:
            return req[0]
        for i in req:
            if all(self._prio[i][j] for j in req if j != i):
                return i
        # The matrix invariant (total order) guarantees a winner exists.
        raise AssertionError("priority matrix lost its total order")

    def update(self, winner: int) -> None:
        if not 0 <= winner < self.num_requesters:
            raise ValueError(f"winner {winner} out of range 0..{self.num_requesters - 1}")
        for j in range(self.num_requesters):
            if j != winner:
                self._prio[winner][j] = False
                self._prio[j][winner] = True

    def reset(self) -> None:
        n = self.num_requesters
        self._prio = [[i < j for j in range(n)] for i in range(n)]


def make_arbiter(kind: str, num_requesters: int) -> Arbiter:
    """Factory for arbiters by name (``round_robin``, ``fixed``, ``matrix``)."""
    kinds = {
        "round_robin": RoundRobinArbiter,
        "fixed": FixedPriorityArbiter,
        "matrix": MatrixArbiter,
    }
    try:
        cls = kinds[kind]
    except KeyError:
        raise ValueError(f"unknown arbiter kind {kind!r}; expected one of {sorted(kinds)}") from None
    return cls(num_requesters)
