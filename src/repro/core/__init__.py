"""Switch-allocation core: arbiters, allocators, and VC assignment policies.

This package implements the paper's contribution (:class:`VIXAllocator`)
and every switch-allocation scheme the paper evaluates against:

* ``"if"`` / ``"input_first"`` — separable input-first baseline (IF);
* ``"wavefront"`` — Tamir & Chi wavefront allocator (WF);
* ``"augmenting_path"`` — maximum port matching via augmenting paths (AP);
* ``"packet_chaining"`` — Michelogiannakis et al. SameInput/anyVC (PC);
* ``"vix"`` — VIX with 2 virtual inputs per port (the paper's 1:2 VIX);
* ``"ideal_vix"`` — VIX with one virtual input per VC (optimal allocation).
"""

from __future__ import annotations

from .allocator import SwitchAllocator
from .arbiter import (
    Arbiter,
    FixedPriorityArbiter,
    MatrixArbiter,
    RoundRobinArbiter,
    make_arbiter,
)
from .augmenting import AugmentingPathAllocator
from .matching import hopcroft_karp, kuhn_matching, matching_size
from .output_first import SeparableOutputFirstAllocator
from .packet_chaining import PacketChainingAllocator
from .requests import NO_REQUEST, Grant, RequestMatrix, validate_grants
from .separable import SeparableInputFirstAllocator
from .sparoflo import SparofloAllocator
from .vc_policy import (
    DIR_X,
    DIR_Y,
    MaxCreditPolicy,
    VCSelectionPolicy,
    VixDimensionPolicy,
    make_vc_policy,
)
from .vix import IdealVIXAllocator, VIXAllocator
from .wavefront import WavefrontAllocator

#: Canonical allocator names accepted by :func:`make_allocator`.
ALLOCATOR_NAMES = (
    "input_first",
    "output_first",
    "wavefront",
    "augmenting_path",
    "packet_chaining",
    "sparoflo",
    "vix",
    "ideal_vix",
)

_ALIASES = {
    "if": "input_first",
    "of": "output_first",
    "separable": "input_first",
    "wf": "wavefront",
    "ap": "augmenting_path",
    "pc": "packet_chaining",
    "spf": "sparoflo",
    "ivix": "ideal_vix",
    "ideal": "ideal_vix",
}


def canonical_allocator_name(name: str) -> str:
    """Resolve an allocator name or alias to its canonical form."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in ALLOCATOR_NAMES:
        raise ValueError(
            f"unknown allocator {name!r}; expected one of "
            f"{ALLOCATOR_NAMES} (or aliases {sorted(_ALIASES)})"
        )
    return key


def make_allocator(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_vcs: int,
    *,
    virtual_inputs: int = 2,
) -> SwitchAllocator:
    """Build a switch allocator by name.

    ``virtual_inputs`` only applies to ``"vix"`` (the paper always uses 2;
    Section 4.6 sweeps it); other schemes use a conventional ``P x P``
    crossbar.
    """
    key = canonical_allocator_name(name)
    if key == "input_first":
        return SeparableInputFirstAllocator(num_inputs, num_outputs, num_vcs)
    if key == "output_first":
        return SeparableOutputFirstAllocator(num_inputs, num_outputs, num_vcs)
    if key == "wavefront":
        return WavefrontAllocator(num_inputs, num_outputs, num_vcs)
    if key == "augmenting_path":
        return AugmentingPathAllocator(num_inputs, num_outputs, num_vcs)
    if key == "packet_chaining":
        return PacketChainingAllocator(num_inputs, num_outputs, num_vcs)
    if key == "sparoflo":
        return SparofloAllocator(num_inputs, num_outputs, num_vcs)
    if key == "vix":
        return VIXAllocator(num_inputs, num_outputs, num_vcs, virtual_inputs)
    return IdealVIXAllocator(num_inputs, num_outputs, num_vcs)


__all__ = [
    "ALLOCATOR_NAMES",
    "Arbiter",
    "AugmentingPathAllocator",
    "DIR_X",
    "DIR_Y",
    "FixedPriorityArbiter",
    "Grant",
    "IdealVIXAllocator",
    "MatrixArbiter",
    "MaxCreditPolicy",
    "NO_REQUEST",
    "PacketChainingAllocator",
    "RequestMatrix",
    "RoundRobinArbiter",
    "SeparableInputFirstAllocator",
    "SeparableOutputFirstAllocator",
    "SparofloAllocator",
    "SwitchAllocator",
    "VCSelectionPolicy",
    "VIXAllocator",
    "VixDimensionPolicy",
    "WavefrontAllocator",
    "canonical_allocator_name",
    "hopcroft_karp",
    "kuhn_matching",
    "make_allocator",
    "make_arbiter",
    "make_vc_policy",
    "matching_size",
    "validate_grants",
]
