"""Switch-allocation core: arbiters, allocators, and VC assignment policies.

This package implements the paper's contribution (:class:`VIXAllocator`)
and every switch-allocation scheme the paper evaluates against:

* ``"if"`` / ``"input_first"`` — separable input-first baseline (IF);
* ``"wavefront"`` — Tamir & Chi wavefront allocator (WF);
* ``"augmenting_path"`` — maximum port matching via augmenting paths (AP);
* ``"packet_chaining"`` — Michelogiannakis et al. SameInput/anyVC (PC);
* ``"vix"`` — VIX with 2 virtual inputs per port (the paper's 1:2 VIX);
* ``"ideal_vix"`` — VIX with one virtual input per VC (optimal allocation).
"""

from __future__ import annotations

from repro.registry import (
    ENLARGES_CROSSBAR,
    NETWORK_COMPARISON,
    VIRTUAL_INPUT_PER_VC,
    allocators as allocator_registry,
)

from .allocator import SwitchAllocator
from .arbiter import (
    Arbiter,
    FixedPriorityArbiter,
    MatrixArbiter,
    RoundRobinArbiter,
    make_arbiter,
    rr_rotate,
    rr_winner,
)
from .augmenting import AugmentingPathAllocator
from .matching import hopcroft_karp, kuhn_matching, matching_size
from .output_first import SeparableOutputFirstAllocator
from .packet_chaining import PacketChainingAllocator
from .requests import NO_REQUEST, Grant, RequestMatrix, validate_grants
from .separable import SeparableInputFirstAllocator
from .sparoflo import SparofloAllocator
from .vc_policy import (
    DIR_X,
    DIR_Y,
    MaxCreditPolicy,
    VCSelectionPolicy,
    VixDimensionPolicy,
    make_vc_policy,
)
from .vix import IdealVIXAllocator, VIXAllocator
from .wavefront import WavefrontAllocator

# --- registry entries --------------------------------------------------------
#
# Every allocator factory shares one signature:
#
#     factory(num_inputs, num_outputs, num_vcs, virtual_inputs, **options)
#
# ``virtual_inputs`` is the *configuration-level* crossbar width request; only
# the VIX family honours it (the paper always uses 2, Section 4.6 sweeps it).
# Conventional schemes drop it — a ``P x P`` crossbar regardless — so a
# RouterConfig's default ``virtual_inputs=2`` never leaks into them.  Scheme-
# specific constructor options (pointer_policy, partition, dynamic, and an
# *explicit* virtual_inputs for the separable variants the ablations study)
# pass through ``**options`` verbatim.


def _conventional(cls):
    # ``virtual_inputs`` is positional-only: the configuration-level request
    # is dropped, while an *explicit* ``virtual_inputs=`` keyword (the
    # ablations' separable-with-virtual-inputs variants) still reaches the
    # class constructor through ``**options``.
    def build(num_inputs, num_outputs, num_vcs, virtual_inputs=1, /, **options):
        return cls(num_inputs, num_outputs, num_vcs, **options)

    build.__name__ = f"make_{cls.__name__}"
    return build


def _vix_family(cls):
    def build(num_inputs, num_outputs, num_vcs, virtual_inputs=2, /, **options):
        return cls(num_inputs, num_outputs, num_vcs, virtual_inputs, **options)

    build.__name__ = f"make_{cls.__name__}"
    return build


def _ideal_vix(num_inputs, num_outputs, num_vcs, virtual_inputs=0, /, **options):
    return IdealVIXAllocator(num_inputs, num_outputs, num_vcs, **options)


allocator_registry.register(
    "input_first",
    _conventional(SeparableInputFirstAllocator),
    aliases=("if", "separable"),
    label="IF",
    provenance="baseline; paper Section 2.1",
    flags=(NETWORK_COMPARISON,),
)
allocator_registry.register(
    "output_first",
    _conventional(SeparableOutputFirstAllocator),
    aliases=("of",),
    label="OF",
    provenance="separable output-first variant; ablation A6",
)
allocator_registry.register(
    "wavefront",
    _conventional(WavefrontAllocator),
    aliases=("wf",),
    label="WF",
    provenance="Tamir & Chi; paper Table 3 / Figures 7-10",
    flags=(NETWORK_COMPARISON,),
)
allocator_registry.register(
    "augmenting_path",
    _conventional(AugmentingPathAllocator),
    aliases=("ap",),
    label="AP",
    provenance="maximum port matching; paper Figures 7-9",
    flags=(NETWORK_COMPARISON,),
)
allocator_registry.register(
    "packet_chaining",
    _conventional(PacketChainingAllocator),
    aliases=("pc",),
    label="PC",
    provenance="Michelogiannakis et al.; paper Figure 10",
)
allocator_registry.register(
    "sparoflo",
    _conventional(SparofloAllocator),
    aliases=("spf",),
    label="SPF",
    provenance="multi-request separable; paper Section 5 / ablation A4",
)
allocator_registry.register(
    "vix",
    _vix_family(VIXAllocator),
    label="VIX",
    provenance="the paper's contribution (1:2 VIX, Section 2)",
    flags=(ENLARGES_CROSSBAR, NETWORK_COMPARISON),
)
allocator_registry.register(
    "ideal_vix",
    _ideal_vix,
    aliases=("ivix", "ideal"),
    label="Ideal",
    provenance="one virtual input per VC; paper Figures 7 and 12",
    flags=(ENLARGES_CROSSBAR, VIRTUAL_INPUT_PER_VC),
)

#: Canonical allocator names accepted by :func:`make_allocator`.
ALLOCATOR_NAMES = allocator_registry.names()


def canonical_allocator_name(name: str) -> str:
    """Resolve an allocator name or alias to its canonical form."""
    return allocator_registry.canonical(name)


def make_allocator(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_vcs: int,
    *,
    virtual_inputs: int = 2,
    **options: object,
) -> SwitchAllocator:
    """Build a switch allocator by name (registry dispatch).

    ``virtual_inputs`` only applies to ``"vix"`` (the paper always uses 2;
    Section 4.6 sweeps it); other schemes use a conventional ``P x P``
    crossbar.  ``options`` forwards scheme-specific constructor keywords
    (e.g. ``pointer_policy``, ``partition``, ``dynamic``).
    """
    return allocator_registry.create(
        name, num_inputs, num_outputs, num_vcs, virtual_inputs, **options
    )


__all__ = [
    "ALLOCATOR_NAMES",
    "Arbiter",
    "AugmentingPathAllocator",
    "DIR_X",
    "DIR_Y",
    "FixedPriorityArbiter",
    "Grant",
    "IdealVIXAllocator",
    "MatrixArbiter",
    "MaxCreditPolicy",
    "NO_REQUEST",
    "PacketChainingAllocator",
    "RequestMatrix",
    "RoundRobinArbiter",
    "SeparableInputFirstAllocator",
    "SeparableOutputFirstAllocator",
    "SparofloAllocator",
    "SwitchAllocator",
    "VCSelectionPolicy",
    "VIXAllocator",
    "VixDimensionPolicy",
    "WavefrontAllocator",
    "canonical_allocator_name",
    "hopcroft_karp",
    "kuhn_matching",
    "make_allocator",
    "make_arbiter",
    "make_vc_policy",
    "matching_size",
    "rr_rotate",
    "rr_winner",
    "validate_grants",
]
