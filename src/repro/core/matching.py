"""Maximum bipartite matching algorithms.

Two independent implementations are provided so they can cross-check each
other in tests:

* :func:`kuhn_matching` — Ford–Fulkerson style augmenting-path search
  (what the paper's "AP" allocator runs, citing Ford & Fulkerson 1956).
  Deliberately deterministic: vertices are scanned in fixed ascending order,
  which is the greedy, locally-optimal behaviour whose network-level
  unfairness the paper measures in Figure 9.
* :func:`hopcroft_karp` — the :math:`O(E \\sqrt V)` algorithm, used as an
  oracle in tests and available for large matchings.

Both take the left-vertex adjacency ``adj[i] = iterable of right vertices``
and return ``match_left`` with ``match_left[i]`` the matched right vertex or
``-1``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence


def kuhn_matching(
    num_left: int, num_right: int, adj: Sequence[Sequence[int]]
) -> list[int]:
    """Maximum matching via repeated augmenting-path DFS (Kuhn's algorithm).

    Deterministic: left vertices are processed ``0..num_left-1`` and each
    adjacency list is scanned in the order given.
    """
    if len(adj) != num_left:
        raise ValueError(f"adjacency has {len(adj)} rows, expected {num_left}")
    match_left = [-1] * num_left
    match_right = [-1] * num_right

    def try_augment(u: int, visited: list[bool]) -> bool:
        for v in adj[u]:
            if not 0 <= v < num_right:
                raise ValueError(f"right vertex {v} out of range 0..{num_right - 1}")
            if visited[v]:
                continue
            visited[v] = True
            if match_right[v] == -1 or try_augment(match_right[v], visited):
                match_left[u] = v
                match_right[v] = u
                return True
        return False

    for u in range(num_left):
        if adj[u]:
            try_augment(u, [False] * num_right)
    return match_left


def hopcroft_karp(
    num_left: int, num_right: int, adj: Sequence[Sequence[int]]
) -> list[int]:
    """Maximum matching via Hopcroft–Karp (BFS layering + DFS augmenting)."""
    if len(adj) != num_left:
        raise ValueError(f"adjacency has {len(adj)} rows, expected {num_left}")
    INF = float("inf")
    match_left = [-1] * num_left
    match_right = [-1] * num_right
    dist = [INF] * num_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(num_left):
            if match_left[u] == -1:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = match_right[v]
                if w == -1:
                    found = True
                elif dist[w] is INF or dist[w] == INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adj[u]:
            w = match_right[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INF
        return False

    while bfs():
        for u in range(num_left):
            if match_left[u] == -1 and adj[u]:
                dfs(u)
    return match_left


def matching_size(match_left: Sequence[int]) -> int:
    """Number of matched pairs in a ``match_left`` array."""
    return sum(1 for v in match_left if v != -1)


def maximum_matching_size(adj: Sequence, num_right: int) -> int:
    """Size of the maximum matching for (possibly duplicated) ``adj`` rows.

    Convenience for the observability probes: rows may be any iterables of
    right vertices (sets, dict views), duplicates are tolerated, and only
    the matching *size* is returned.
    """
    rows = [sorted(set(row)) for row in adj]
    return matching_size(kuhn_matching(len(rows), num_right, rows))
