"""Augmenting-path (AP) switch allocation.

The AP scheme computes a *maximum* bipartite matching between input ports
and output ports each cycle (Ford–Fulkerson augmenting paths, the paper's
reference [8]).  It achieves optimal port-level matching, but — like every
conventional crossbar scheme — still grants at most one flit per input
physical port, so it cannot fix the input-port constraint (Section 1 of the
paper makes exactly this point).

The paper also observes (Section 4.3) that AP "follows a greedy approach,
making optimal decisions locally while making sub-optimal decisions at the
network level, leading to high levels of unfairness".  We reproduce that
behaviour faithfully: the matching is computed in fixed, deterministic port
order with no rotating priority, so when several maximum matchings exist the
same ports win cycle after cycle.  VC selection within a granted port pair
is round-robin (which VC wins does not affect port-level fairness).

AP is "infeasible" at router cycle times (Table 3); Section 4.1 nonetheless
evaluates it at equal cycle time to bound achievable matching quality.
"""

from __future__ import annotations

from .allocator import SwitchAllocator
from .arbiter import RoundRobinArbiter
from .matching import kuhn_matching
from .requests import Grant, RequestMatrix


class AugmentingPathAllocator(SwitchAllocator):
    """Maximum-matching (augmenting path) allocator over ports."""

    name = "AP"

    def __init__(self, num_inputs: int, num_outputs: int, num_vcs: int) -> None:
        super().__init__(num_inputs, num_outputs, num_vcs)
        self._vc_arbiters = [RoundRobinArbiter(num_vcs) for _ in range(num_inputs)]

    def allocate_fast(self, reqs: list[tuple[int, int, int]]) -> list[Grant] | None:
        """Forced-move allocation for a conflict-free request set.

        With one request per input port and distinct outputs, the
        port-level graph is itself a matching, so the maximum matching
        grants every pair and only the per-port VC arbiters rotate (the
        matching itself is stateless).  Returns ``None`` on any port or
        output collision.
        """
        busy_ports: set[int] = set()
        busy_outputs: set[int] = set()
        for p, _vc, out in reqs:
            if p in busy_ports or out in busy_outputs:
                return None
            busy_ports.add(p)
            busy_outputs.add(out)
        vc_arbiters = self._vc_arbiters
        v = self.num_vcs
        for p, vc, _out in reqs:
            vc_arbiters[p]._pointer = (vc + 1) % v
        return reqs

    def allocate(self, matrix: RequestMatrix) -> list[Grant]:
        port_requests = matrix.port_request_sets()
        adj = [sorted(reqs) for reqs in port_requests]
        match_left = kuhn_matching(self.num_inputs, self.num_outputs, adj)

        grants: list[Grant] = []
        for i, o in enumerate(match_left):
            if o == -1:
                continue
            vcs = matrix.vcs_requesting(i, o)
            vc = self._vc_arbiters[i].grant(vcs)
            assert vc is not None
            grants.append(Grant(i, vc, o))
        probe = self.probe
        if probe is not None:
            requesting_ports = sum(1 for reqs in port_requests if reqs)
            if requesting_ports:
                # AP *is* the maximum matching, so kills = ports the
                # optimum could not cover and achieved == maximal — the
                # probe's efficiency reads 1.0 by construction.
                probe.record(
                    matrix.total_requests(),
                    requesting_ports,
                    len(grants),
                    len(grants),
                )
        return grants

    def reset(self) -> None:
        for arb in self._vc_arbiters:
            arb.reset()
