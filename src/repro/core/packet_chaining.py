"""Packet Chaining (PC) switch allocation — Michelogiannakis et al.,
MICRO-44 (the paper's Section 4.4 comparison point).

Packet chaining improves a separable allocator by *inheriting* allocation
decisions across cycles:

* while a packet is in flight through the switch, its (input, output)
  connection is held — body/tail flits bypass allocation;
* when a packet's tail flit departs, the connection is *chained* to another
  packet at the **same input** port that requests the **same output** port,
  in **any VC** (the "SameInput, anyVC" scheme the paper simulates);
* inputs and outputs tied up by held/chained connections do not participate
  in the separable allocation of the remaining requests — fewer requests in
  the matrix means fewer uncoordinated phase-1/phase-2 decisions.

The paper's reading (Section 4.4): PC works *by elimination* of requests,
VIX works by *exposing more non-conflicting requests*; both attack the same
separable-allocator weakness from opposite directions.  PC is most effective
for single-flit packets, which is why Figure 10 uses them.
"""

from __future__ import annotations

from .arbiter import RoundRobinArbiter
from .requests import NO_REQUEST, Grant, RequestMatrix
from .separable import SeparableInputFirstAllocator


class _Connection:
    """A held or chainable switch connection for one output port."""

    __slots__ = ("in_port", "vc", "chainable")

    def __init__(self, in_port: int, vc: int, chainable: bool) -> None:
        self.in_port = in_port
        self.vc = vc
        # chainable=False: mid-packet hold (the owning VC keeps the switch);
        # chainable=True: the previous packet ended last cycle and any VC of
        # in_port requesting this output may inherit the connection.
        self.chainable = chainable


class PacketChainingAllocator(SeparableInputFirstAllocator):
    """Separable IF allocation augmented with packet chaining."""

    name = "PC"

    #: Opt out of the separable forced-move fast path: even a conflict-free
    #: request set must run :meth:`allocate` here, because held/chainable
    #: connections reserve ports and every grant mutates connection state.
    allocate_fast = None

    def __init__(self, num_inputs: int, num_outputs: int, num_vcs: int) -> None:
        super().__init__(num_inputs, num_outputs, num_vcs, virtual_inputs=1)
        self._connections: dict[int, _Connection] = {}
        self._chain_arbiters = [RoundRobinArbiter(num_vcs) for _ in range(num_inputs)]

    @property
    def active_connections(self) -> int:
        """Connections currently held or offered for chaining."""
        return len(self._connections)

    def allocate(self, matrix: RequestMatrix) -> list[Grant]:
        grants: list[Grant] = []
        busy_inputs: set[int] = set()
        busy_outputs: set[int] = set()

        # Step 1: service held and chainable connections.
        for out in sorted(self._connections):
            conn = self._connections[out]
            p = conn.in_port
            if not conn.chainable:
                # Mid-packet hold: only the owning VC may use the switch.
                # The connection (and its input/output) stays reserved even
                # on a bubble cycle (no flit / no credit).
                busy_inputs.add(p)
                busy_outputs.add(out)
                if matrix.request_of(p, conn.vc) == out:
                    grants.append(Grant(p, conn.vc, out))
            else:
                # Chain to any VC of the same input wanting the same output.
                if p in busy_inputs:
                    del self._connections[out]
                    continue
                vcs = matrix.vcs_requesting(p, out)
                if vcs:
                    vc = self._chain_arbiters[p].grant(vcs)
                    assert vc is not None
                    grants.append(Grant(p, vc, out))
                    conn.vc = vc
                    busy_inputs.add(p)
                    busy_outputs.add(out)
                else:
                    # Nothing to chain: release the connection.
                    del self._connections[out]

        # Step 2: separable IF allocation over the remaining requests.
        if len(busy_outputs) < self.num_outputs:
            residual = RequestMatrix(self.num_inputs, self.num_outputs, self.num_vcs)
            for p in range(self.num_inputs):
                if p in busy_inputs:
                    continue
                row = matrix.requests[p]
                trow = matrix.tails[p]
                for v in range(self.num_vcs):
                    out = row[v]
                    if out != NO_REQUEST and out not in busy_outputs:
                        residual.add(p, v, out, tail=trow[v])
            grants.extend(super().allocate(residual))

        # Step 3: update connection state from this cycle's grants.
        for g in grants:
            if matrix.is_tail(g.in_port, g.vc):
                # Packet finished: offer the connection for chaining.
                self._connections[g.out_port] = _Connection(g.in_port, g.vc, True)
            else:
                # Packet continues: hold the connection for its next flit.
                self._connections[g.out_port] = _Connection(g.in_port, g.vc, False)
        return grants

    def reset(self) -> None:
        super().reset()
        self._connections.clear()
        for arb in self._chain_arbiters:
            arb.reset()
