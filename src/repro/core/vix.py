"""VIX: Virtual Input Crossbar allocation — the paper's contribution.

VIX connects ``k > 1`` *virtual inputs* per input physical port to the
crossbar (a ``kP x P`` crossbar).  The ``v`` VCs of each port are partitioned
into ``k`` sub-groups; each sub-group owns one crossbar input.  Compared with
the conventional separable input-first allocator this

* lets up to ``k`` VCs of one port transmit flits to *different* outputs in
  the same cycle (removing the input-port constraint, Fig. 4 of the paper),
  and
* exposes up to ``k`` requests per port to the output arbiters, reducing the
  chance that uncoordinated phase-1 choices collide on an output (Fig. 5).

The allocation machinery itself is the separable input-first allocator of
:mod:`repro.core.separable` instantiated with ``virtual_inputs = k``:
``kP`` input arbiters of size ``(v/k):1`` feed ``P`` output arbiters of size
``kP:1`` — exactly Fig. 3(b) of the paper.  ``k = v`` degenerates to one VC
per crossbar input, which makes every request visible to output arbitration
and therefore achieves *optimal* switch allocation (the paper's "ideal VIX").
"""

from __future__ import annotations

from .separable import SeparableInputFirstAllocator


class VIXAllocator(SeparableInputFirstAllocator):
    """Separable input-first allocation over a virtual-input crossbar.

    Parameters
    ----------
    virtual_inputs:
        ``k``, the number of crossbar inputs per physical port.  The paper's
        practical configuration is ``k = 2`` ("1:2 VIX"); ``k = num_vcs`` is
        ideal VIX.
    """

    name = "VIX"

    def __init__(
        self,
        num_inputs: int,
        num_outputs: int,
        num_vcs: int,
        virtual_inputs: int = 2,
        *,
        pointer_policy: str = "plain",
        partition: str = "contiguous",
    ) -> None:
        if virtual_inputs < 2:
            raise ValueError(
                "VIX needs virtual_inputs >= 2; use SeparableInputFirstAllocator "
                "for the conventional (k=1) router"
            )
        super().__init__(
            num_inputs,
            num_outputs,
            num_vcs,
            virtual_inputs,
            pointer_policy=pointer_policy,
            partition=partition,
        )
        if virtual_inputs == num_vcs:
            self.name = "iVIX"

    @property
    def crossbar_inputs(self) -> int:
        """Total crossbar inputs (``k * P``) — used by timing/energy models."""
        return self.virtual_inputs * self.num_inputs


class IdealVIXAllocator(VIXAllocator):
    """Ideal VIX: one virtual input per VC (``k = v``).

    Every input VC is independently visible to output arbitration, so every
    output port with at least one requester is granted — provably optimal
    switch allocation (the "Ideal" series of Figs. 7 and 12).
    """

    name = "iVIX"

    def __init__(self, num_inputs: int, num_outputs: int, num_vcs: int) -> None:
        super().__init__(num_inputs, num_outputs, num_vcs, virtual_inputs=num_vcs)
