"""Single-router switch-allocation efficiency harness (paper Section 4.2).

This isolates the allocators from topology effects: one radix-P router,
every input VC permanently backlogged with packets whose output ports are
drawn uniformly at random, no credit or buffer limits downstream.  The
measured metric is crossbar throughput in flits/cycle — at best ``P`` for a
radix-P router — exactly the paper's Figure 7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import RequestMatrix, validate_grants
from repro.registry import allocators as _allocators


@dataclass
class SingleRouterResult:
    """Outcome of one single-router saturation run."""

    allocator: str
    radix: int
    num_vcs: int
    virtual_inputs: int
    packet_length: int
    cycles: int
    flits_transferred: int

    @property
    def throughput(self) -> float:
        """Average flits/cycle through the crossbar."""
        return self.flits_transferred / self.cycles if self.cycles else 0.0

    @property
    def efficiency(self) -> float:
        """Throughput as a fraction of the radix (ideal upper bound)."""
        return self.throughput / self.radix


class SingleRouterExperiment:
    """Saturated single-router testbench."""

    def __init__(
        self,
        allocator: str,
        radix: int = 5,
        num_vcs: int = 6,
        *,
        virtual_inputs: int = 2,
        packet_length: int = 1,
        seed: int = 1,
        validate: bool = False,
        allocator_options: dict | None = None,
    ) -> None:
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        if packet_length < 1:
            raise ValueError(f"packet_length must be >= 1, got {packet_length}")
        self.allocator_name = allocator
        self.radix = radix
        self.num_vcs = num_vcs
        self.packet_length = packet_length
        self.validate = validate
        # Registry dispatch; ``allocator_options`` forwards scheme-specific
        # constructor keywords (pointer_policy, partition, dynamic, ...) for
        # the ablation variants.
        self.allocator = _allocators.create(
            allocator, radix, radix, num_vcs, virtual_inputs,
            **(allocator_options or {}),
        )
        self.rng = random.Random(seed)
        # Backlogged VC state: (remaining flits, requested output).
        self._remaining = [[0] * num_vcs for _ in range(radix)]
        self._out = [[0] * num_vcs for _ in range(radix)]
        for p in range(radix):
            for v in range(num_vcs):
                self._new_packet(p, v)
        self._matrix = RequestMatrix(radix, radix, num_vcs)

    def _new_packet(self, port: int, vc: int) -> None:
        self._remaining[port][vc] = self.packet_length
        self._out[port][vc] = self.rng.randrange(self.radix)

    def step(self) -> int:
        """Run one allocation cycle; returns flits transferred."""
        matrix = self._matrix
        matrix.clear()
        for p in range(self.radix):
            rem = self._remaining[p]
            out = self._out[p]
            for v in range(self.num_vcs):
                matrix.add(p, v, out[v], tail=rem[v] == 1)
        grants = self.allocator.allocate(matrix)
        if self.validate:
            limit = self.allocator.max_grants_per_input_port
            validate_grants(
                matrix,
                grants,
                max_per_input_port=limit,
                virtual_inputs=self.allocator.virtual_inputs,
            )
        for g in grants:
            self._remaining[g.in_port][g.vc] -= 1
            if self._remaining[g.in_port][g.vc] == 0:
                self._new_packet(g.in_port, g.vc)
        return len(grants)

    def run(self, cycles: int = 2000) -> SingleRouterResult:
        """Run the saturated router for ``cycles`` and summarize."""
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        flits = 0
        for _ in range(cycles):
            flits += self.step()
        return SingleRouterResult(
            allocator=self.allocator_name,
            radix=self.radix,
            num_vcs=self.num_vcs,
            virtual_inputs=self.allocator.virtual_inputs,
            packet_length=self.packet_length,
            cycles=cycles,
            flits_transferred=flits,
        )
