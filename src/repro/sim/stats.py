"""Measurement-window statistics.

The collector observes packet creation and ejection events from the network
and records, for a configurable measurement window:

* packet latency (source-queue entry to tail ejection) for packets *created*
  inside the window — the standard steady-state sampling methodology;
* accepted throughput: flits and packets ejected inside the window;
* per-source-node delivered packets, from which the paper's Figure 9
  fairness metric (max/min node throughput) is computed.
"""

from __future__ import annotations

import math

from repro.network.flit import Packet


class StatsCollector:
    """Observer attached to a :class:`~repro.network.network.Network`."""

    #: Whether a packet's measured-ness is keyed by its ``created_cycle``
    #: (worker-mode :class:`~repro.sim.partition.workers.WindowStats`)
    #: rather than this collector's pid set.  The vectorized stepper's
    #: inlined ejection path branches on this instead of calling
    #: ``on_packet_ejected`` per packet.
    window_by_creation = False

    def __init__(self, num_terminals: int) -> None:
        self.num_terminals = num_terminals
        self.window_start = -1
        self.window_end = -1
        self.latencies: list[int] = []
        self.flits_ejected = 0
        self.packets_ejected = 0
        self.packets_created = 0
        self.per_source_ejected = [0] * num_terminals
        self.per_source_created = [0] * num_terminals
        self._outstanding: set[int] = set()

    # --- window control ----------------------------------------------------

    def open_window(self, start: int, end: int) -> None:
        """Begin measuring packets created (and traffic ejected) in [start, end)."""
        if end <= start:
            raise ValueError(f"empty measurement window [{start}, {end})")
        self.window_start = start
        self.window_end = end

    def _in_window(self, cycle: int) -> bool:
        return self.window_start <= cycle < self.window_end

    @property
    def outstanding(self) -> int:
        """Measured packets still in flight (drain criterion)."""
        return len(self._outstanding)

    # --- event hooks ------------------------------------------------------

    def on_packet_created(self, packet: Packet) -> None:
        if self._in_window(packet.created_cycle):
            self.packets_created += 1
            self.per_source_created[packet.src] += 1
            self._outstanding.add(packet.pid)

    def on_flit_ejected(self, terminal: int, cycle: int) -> None:
        if self._in_window(cycle):
            self.flits_ejected += 1

    def on_packet_ejected(self, packet: Packet, cycle: int) -> None:
        if self._in_window(cycle):
            self.packets_ejected += 1
            self.per_source_ejected[packet.src] += 1
        if packet.pid in self._outstanding:
            self._outstanding.discard(packet.pid)
            self.latencies.append(cycle - packet.created_cycle)

    # --- derived metrics ------------------------------------------------------

    @property
    def window_cycles(self) -> int:
        return max(0, self.window_end - self.window_start)

    def avg_latency(self) -> float:
        """Mean packet latency over measured (created-in-window) packets."""
        if not self.latencies:
            return math.nan
        return sum(self.latencies) / len(self.latencies)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] over measured packets.

        An out-of-range ``q`` is a caller bug and raises ``ValueError``
        even with no measured packets — validation must precede the
        empty-data ``nan``, or bad percentiles silently poison plots.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.latencies:
            return math.nan
        data = sorted(self.latencies)
        idx = min(len(data) - 1, int(round(q / 100 * (len(data) - 1))))
        return float(data[idx])

    def throughput_flits_per_cycle(self) -> float:
        """Accepted throughput in flits/cycle (network total)."""
        if self.window_cycles == 0:
            return math.nan
        return self.flits_ejected / self.window_cycles

    def throughput_packets_per_node(self) -> float:
        """Accepted throughput in packets/cycle/node."""
        if self.window_cycles == 0:
            return math.nan
        return self.packets_ejected / self.window_cycles / self.num_terminals

    def fairness_max_min_ratio(self) -> float:
        """Figure 9 metric: max over min per-source delivered packets.

        Two degenerate cases are distinguished:

        * ``nan`` when **no** source delivered anything — there is no
          traffic to be unfair about (e.g. a zero-rate or warmup-only
          window), so the metric is undefined;
        * ``inf`` when **some but not all** sources delivered nothing —
          the degenerate unfairness case (starved sources while others
          made progress).
        """
        if not any(self.per_source_ejected):
            return math.nan
        lo = min(self.per_source_ejected)
        hi = max(self.per_source_ejected)
        if lo == 0:
            return math.inf
        return hi / lo
