"""Simulation controller: warmup, measurement, drain.

:class:`Simulation` wires a network, a traffic injector, and a statistics
collector together and runs the standard three-phase methodology:

1. **warmup** — traffic flows, nothing is recorded;
2. **measure** — packets created in this window are tracked end to end, and
   ejected traffic counts toward throughput;
3. **drain** — injection continues (keeping the network under load) until
   every measured packet is delivered or a drain budget expires.  Past
   saturation some measured packets never finish inside any budget; the
   result marks this and latency is reported over the delivered subset.

Every phase advances through :meth:`Simulation._advance`, which
fast-forwards quiescent stretches: when the network has no active router or
NI and the injector reports no upcoming injection, the clock jumps straight
to the next scheduled event (or the end of the phase) instead of spinning
empty cycles.  With per-cycle Bernoulli injection at ``rate > 0`` the
injector is active every cycle, so no cycle is ever skipped and the run is
byte-identical to the plain loop; with ``rate == 0`` or
``fast_injection=True`` the idle gaps are skipped and tallied in the
``cycles_skipped`` counter.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.network.config import NetworkConfig
from repro.network.network import Network
from repro.obs import Observability, ObservabilityConfig
from repro.sim.stats import StatsCollector
from repro.traffic.injector import TrafficInjector
from repro.traffic.patterns import TrafficPattern, make_pattern


@dataclass
class SimulationResult:
    """Summary of one simulation run."""

    allocator: str
    topology: str
    injection_rate: float
    packet_length: int
    avg_latency: float
    throughput_flits: float
    throughput_packets_per_node: float
    fairness: float
    packets_created: int
    packets_ejected: int
    drained: bool
    cycles: int
    per_source_ejected: list[int] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    #: Latency percentiles over measured packets (nan when none delivered).
    latency_p50: float = math.nan
    latency_p95: float = math.nan
    latency_p99: float = math.nan
    #: Metrics snapshot (flattened registry dict) when observability was
    #: enabled for the run; ``None`` otherwise.
    metrics: dict | None = None

    @property
    def throughput_flits_per_node(self) -> float:
        """Accepted throughput in flits/cycle/node."""
        n = len(self.per_source_ejected) or 1
        return self.throughput_flits / n


class Simulation:
    """One network + injector + stats run."""

    def __init__(
        self,
        config: NetworkConfig,
        *,
        pattern: TrafficPattern | str = "uniform",
        injection_rate: float = 0.1,
        packet_length: int | None = None,
        seed: int = 1,
        burst_length: float = 1.0,
        fast_injection: bool = False,
        activity_gating: bool = True,
        obs: ObservabilityConfig | None = None,
    ) -> None:
        self.config = config
        self.network = Network(config)
        self.network.gating = activity_gating
        # Observability resolves from the environment unless given
        # explicitly; the disabled default attaches nothing at all.
        self.obs_config = obs if obs is not None else ObservabilityConfig.from_env()
        self._obs: Observability | None = None
        if self.obs_config.enabled:
            self._obs = Observability(self.obs_config)
            self._obs.attach(self.network)
        self._seed = seed
        if isinstance(pattern, str):
            pattern = make_pattern(pattern, config.num_terminals)
        self.pattern = pattern
        self.injector = TrafficInjector(
            self.network,
            pattern,
            injection_rate,
            packet_length=packet_length,
            seed=seed,
            burst_length=burst_length,
            fast_injection=fast_injection,
        )
        self.stats = StatsCollector(config.num_terminals)
        self.network.stats = self.stats
        self.injector.stats = self.stats

    def _step(self) -> None:
        self.injector.tick(self.network.cycle)
        self.network.step()

    def flow_state(self) -> dict:
        """Flow-control snapshot (see :mod:`repro.network.state`).

        Same schema as ``VectorizedSimulation.flow_state()``; byte-equal
        dicts after identical runs are the engines' no-drift contract.
        """
        from repro.network.state import export_flow_state

        return export_flow_state(self.network)

    def _maybe_skip(self, budget: int) -> int:
        """Fast-forward up to ``budget`` quiescent cycles; returns how many.

        Safe exactly when nothing can happen before the jump target: the
        network has no active router or NI (so no allocation, injection
        channel, or ejection work), and the injector's next possible
        injection and the event wheel's next delivery both lie at or beyond
        it.  Skipped cycles still count toward ``counters.cycles``.
        """
        network = self.network
        if not network.gating or network.has_active_work():
            return 0
        now = network.cycle
        wake = self.injector.next_active_cycle(now)
        if wake is not None and wake <= now:
            return 0
        nxt = network.next_event_time()
        if nxt is not None and (wake is None or nxt < wake):
            wake = nxt
        # Nothing scheduled at all: the remaining budget is all idle.
        target = now + budget if wake is None else min(wake, now + budget)
        network.skip_to(target)
        return target - now

    def _advance(self, cycles: int) -> None:
        """Advance exactly ``cycles`` cycles, fast-forwarding idle spans."""
        network = self.network
        end = network.cycle + cycles
        while network.cycle < end:
            if self._maybe_skip(end - network.cycle):
                continue
            self.injector.tick(network.cycle)
            network.step()

    def run(
        self,
        warmup: int = 1000,
        measure: int = 3000,
        drain_limit: int | None = None,
    ) -> SimulationResult:
        """Run the three-phase simulation and return its summary."""
        if warmup < 0 or measure <= 0:
            raise ValueError("warmup must be >= 0 and measure > 0")
        if drain_limit is None:
            drain_limit = max(2000, 2 * measure)
        timer = self._obs.timer if self._obs is not None else None
        t0 = time.perf_counter() if timer is not None else 0.0
        self._advance(warmup)
        if timer is not None:
            t1 = time.perf_counter()
            timer.add("warmup", t1 - t0)
            t0 = t1
        start = self.network.cycle
        self.stats.open_window(start, start + measure)
        self._advance(measure)
        if timer is not None:
            t1 = time.perf_counter()
            timer.add("measure", t1 - t0)
            t0 = t1
        drained_cycles = 0
        while self.stats.outstanding and drained_cycles < drain_limit:
            skipped = self._maybe_skip(drain_limit - drained_cycles)
            if skipped:
                drained_cycles += skipped
                continue
            self._step()
            drained_cycles += 1
        if timer is not None:
            timer.add("drain", time.perf_counter() - t0)
        stats = self.stats
        counters = self.network.counters.snapshot()
        if timer is not None:
            # Spans only appear when profiling is on, so the default
            # counters dict stays byte-identical to pre-observability runs.
            counters.update(timer.counter_items())
        tracer = self._obs.tracer if self._obs is not None else None
        if tracer is not None and tracer.dropped:
            # Loud truncation: a wrapped trace ring surfaces in the
            # counters (and from there the [perf_counters] footer).  Only
            # with tracing on, so the default counters stay unchanged.
            counters["trace_dropped_events"] = tracer.dropped
        metrics = None
        if self._obs is not None:
            metrics = self._obs.finalize(
                self.network,
                allocator=self.config.router.allocator,
                virtual_inputs=self.config.router.effective_virtual_inputs,
                topology=self.config.topology,
                injection_rate=self.injector.rate,
                seed=self._seed,
            )
        return SimulationResult(
            allocator=self.config.router.allocator,
            topology=self.config.topology,
            injection_rate=self.injector.rate,
            packet_length=self.injector.packet_length,
            avg_latency=stats.avg_latency(),
            throughput_flits=stats.throughput_flits_per_cycle(),
            throughput_packets_per_node=stats.throughput_packets_per_node(),
            fairness=stats.fairness_max_min_ratio(),
            packets_created=stats.packets_created,
            packets_ejected=stats.packets_ejected,
            drained=stats.outstanding == 0,
            cycles=self.network.cycle,
            per_source_ejected=list(stats.per_source_ejected),
            counters=counters,
            latency_p50=stats.latency_percentile(50),
            latency_p95=stats.latency_percentile(95),
            latency_p99=stats.latency_percentile(99),
            metrics=metrics,
        )


def run_simulation(
    config: NetworkConfig,
    *,
    pattern: TrafficPattern | str = "uniform",
    injection_rate: float = 0.1,
    packet_length: int | None = None,
    seed: int = 1,
    warmup: int = 1000,
    measure: int = 3000,
    drain_limit: int | None = None,
    burst_length: float = 1.0,
    fast_injection: bool = False,
    activity_gating: bool = True,
    obs: ObservabilityConfig | None = None,
    engine: str | None = None,
    partition=None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulation`.

    ``fast_injection`` swaps per-cycle Bernoulli draws for geometric-gap
    sampling (statistically equivalent, bit-different RNG stream);
    ``activity_gating=False`` restores the dense every-component scan —
    useful only as the equivalence/benchmark baseline.  ``obs`` defaults
    to the environment-resolved observability config (off by default).

    ``engine`` picks the execution backend by registry name (``dense``,
    ``gated``, ``vectorized``; see :mod:`repro.sim.engines`).  An explicit
    name is strict — an unsupported scheme on the vectorized engine
    raises.  ``None`` consults the ``REPRO_ENGINE`` environment default
    *leniently*: a non-vectorizable configuration falls back to the gated
    object engine instead of failing, so a sweep mixing VIX with
    wavefront jobs can still run under ``REPRO_ENGINE=vectorized``.
    When neither names an engine, ``activity_gating`` selects between the
    two object engines exactly as before.

    ``partition`` (a :class:`~repro.network.links.PartitionConfig`)
    selects the ``partitioned`` engine with that domain decomposition; it
    conflicts with any other explicit ``engine``.  Naming
    ``engine="partitioned"`` (or ``REPRO_ENGINE=partitioned``) without a
    config resolves one from the ``REPRO_PARTITION*`` environment.
    """
    sim_kwargs = dict(
        pattern=pattern,
        injection_rate=injection_rate,
        packet_length=packet_length,
        seed=seed,
        burst_length=burst_length,
        fast_injection=fast_injection,
        obs=obs,
    )
    from repro.registry import engines as engine_registry
    from repro.sim.engines import default_engine, make_engine

    chosen = engine
    if partition is not None:
        if engine is not None and engine_registry.canonical(engine) != "partitioned":
            raise ValueError(
                f"partition config conflicts with explicit engine {engine!r}; "
                f"drop one (a partitioned run must use the 'partitioned' engine)"
            )
        chosen = "partitioned"
    if chosen is None:
        chosen = default_engine()
        if chosen is not None:
            from repro.sim.vec.support import vectorization_unsupported_reason

            if engine_registry.canonical(chosen) == "vectorized":
                reason = vectorization_unsupported_reason(config)
                if reason is not None:
                    # Lenient environment default: fall back to the gated
                    # object engine, but say so — a silently substituted
                    # engine is indistinguishable from a vectorized run.
                    import warnings

                    warnings.warn(
                        f"REPRO_ENGINE=vectorized does not support this "
                        f"configuration (allocator "
                        f"{config.router.allocator!r}: {reason}); running "
                        f"on the 'gated' engine instead",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    chosen = "gated"
    if chosen is not None:
        if engine_registry.canonical(chosen) == "partitioned":
            sim_kwargs["partition"] = partition
        sim = make_engine(chosen, config, **sim_kwargs)
    else:
        sim = Simulation(config, activity_gating=activity_gating, **sim_kwargs)
    return sim.run(warmup=warmup, measure=measure, drain_limit=drain_limit)


def saturation_throughput(
    config: NetworkConfig,
    *,
    pattern: TrafficPattern | str = "uniform",
    packet_length: int | None = None,
    seed: int = 1,
    warmup: int = 1000,
    measure: int = 3000,
) -> SimulationResult:
    """Accepted throughput with every source saturated (rate = 1)."""
    return run_simulation(
        config,
        pattern=pattern,
        injection_rate=1.0,
        packet_length=packet_length,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain_limit=0,
    )


def is_saturated(result: SimulationResult) -> bool:
    """Heuristic saturation test: latency diverged or measured packets lost."""
    return (not result.drained) or math.isnan(result.avg_latency)
