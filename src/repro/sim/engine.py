"""Simulation controller: warmup, measurement, drain.

:class:`Simulation` wires a network, a traffic injector, and a statistics
collector together and runs the standard three-phase methodology:

1. **warmup** — traffic flows, nothing is recorded;
2. **measure** — packets created in this window are tracked end to end, and
   ejected traffic counts toward throughput;
3. **drain** — injection continues (keeping the network under load) until
   every measured packet is delivered or a drain budget expires.  Past
   saturation some measured packets never finish inside any budget; the
   result marks this and latency is reported over the delivered subset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.network.config import NetworkConfig
from repro.network.network import Network
from repro.sim.stats import StatsCollector
from repro.traffic.injector import TrafficInjector
from repro.traffic.patterns import TrafficPattern, make_pattern


@dataclass
class SimulationResult:
    """Summary of one simulation run."""

    allocator: str
    topology: str
    injection_rate: float
    packet_length: int
    avg_latency: float
    throughput_flits: float
    throughput_packets_per_node: float
    fairness: float
    packets_created: int
    packets_ejected: int
    drained: bool
    cycles: int
    per_source_ejected: list[int] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def throughput_flits_per_node(self) -> float:
        """Accepted throughput in flits/cycle/node."""
        n = len(self.per_source_ejected) or 1
        return self.throughput_flits / n


class Simulation:
    """One network + injector + stats run."""

    def __init__(
        self,
        config: NetworkConfig,
        *,
        pattern: TrafficPattern | str = "uniform",
        injection_rate: float = 0.1,
        packet_length: int | None = None,
        seed: int = 1,
        burst_length: float = 1.0,
    ) -> None:
        self.config = config
        self.network = Network(config)
        if isinstance(pattern, str):
            pattern = make_pattern(pattern, config.num_terminals)
        self.pattern = pattern
        self.injector = TrafficInjector(
            self.network,
            pattern,
            injection_rate,
            packet_length=packet_length,
            seed=seed,
            burst_length=burst_length,
        )
        self.stats = StatsCollector(config.num_terminals)
        self.network.stats = self.stats
        self.injector.stats = self.stats

    def _step(self) -> None:
        self.injector.tick(self.network.cycle)
        self.network.step()

    def run(
        self,
        warmup: int = 1000,
        measure: int = 3000,
        drain_limit: int | None = None,
    ) -> SimulationResult:
        """Run the three-phase simulation and return its summary."""
        if warmup < 0 or measure <= 0:
            raise ValueError("warmup must be >= 0 and measure > 0")
        if drain_limit is None:
            drain_limit = max(2000, 2 * measure)
        for _ in range(warmup):
            self._step()
        start = self.network.cycle
        self.stats.open_window(start, start + measure)
        for _ in range(measure):
            self._step()
        drained_cycles = 0
        while self.stats.outstanding and drained_cycles < drain_limit:
            self._step()
            drained_cycles += 1
        stats = self.stats
        return SimulationResult(
            allocator=self.config.router.allocator,
            topology=self.config.topology,
            injection_rate=self.injector.rate,
            packet_length=self.injector.packet_length,
            avg_latency=stats.avg_latency(),
            throughput_flits=stats.throughput_flits_per_cycle(),
            throughput_packets_per_node=stats.throughput_packets_per_node(),
            fairness=stats.fairness_max_min_ratio(),
            packets_created=stats.packets_created,
            packets_ejected=stats.packets_ejected,
            drained=stats.outstanding == 0,
            cycles=self.network.cycle,
            per_source_ejected=list(stats.per_source_ejected),
            counters=self.network.counters.snapshot(),
        )


def run_simulation(
    config: NetworkConfig,
    *,
    pattern: TrafficPattern | str = "uniform",
    injection_rate: float = 0.1,
    packet_length: int | None = None,
    seed: int = 1,
    warmup: int = 1000,
    measure: int = 3000,
    drain_limit: int | None = None,
    burst_length: float = 1.0,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulation`."""
    sim = Simulation(
        config,
        pattern=pattern,
        injection_rate=injection_rate,
        packet_length=packet_length,
        seed=seed,
        burst_length=burst_length,
    )
    return sim.run(warmup=warmup, measure=measure, drain_limit=drain_limit)


def saturation_throughput(
    config: NetworkConfig,
    *,
    pattern: TrafficPattern | str = "uniform",
    packet_length: int | None = None,
    seed: int = 1,
    warmup: int = 1000,
    measure: int = 3000,
) -> SimulationResult:
    """Accepted throughput with every source saturated (rate = 1)."""
    return run_simulation(
        config,
        pattern=pattern,
        injection_rate=1.0,
        packet_length=packet_length,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain_limit=0,
    )


def is_saturated(result: SimulationResult) -> bool:
    """Heuristic saturation test: latency diverged or measured packets lost."""
    return (not result.drained) or math.isnan(result.avg_latency)
