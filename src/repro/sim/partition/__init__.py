"""Chiplet-partitioned simulation: domains, inter-chip links, quiescence.

The ``partitioned`` engine (registered in :mod:`repro.sim.engines`) cuts
the configured topology into a grid of
:class:`~repro.network.domain.DomainNetwork` chiplet domains joined by
:class:`~repro.network.links.InterChipLink` channels, then steps the
domains in lockstep — serial round-robin in-process, or in parallel
worker processes synchronized at conservative epoch barriers
(:mod:`repro.sim.partition.workers`).  Results are independent of the
execution mode, and a ``1x1`` partition with zero-latency links is
byte-identical to the monolithic engines (CI-enforced).

:mod:`repro.sim.partition.invariants` holds the flit-conservation and
credit-accounting checks that fence multi-domain correctness.
"""

from .engine import PartitionedSimulation
from .invariants import (
    PartitionInvariantError,
    check_credit_accounting,
    check_flit_conservation,
    check_invariants,
)

__all__ = [
    "PartitionInvariantError",
    "PartitionedSimulation",
    "check_credit_accounting",
    "check_flit_conservation",
    "check_invariants",
]
