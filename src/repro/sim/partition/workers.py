"""Parallel domain stepping: forked workers, epoch barriers, ferrying.

The coordinator forks one process per worker (fork start method — the
fully built :class:`~repro.sim.partition.engine.PartitionedSimulation`
is inherited, nothing is re-constructed) and assigns each a block of
domains.  Execution alternates:

1. every worker advances its domains ``step <= E`` lockstep cycles,
   where ``E`` is the conservative epoch (min over links of
   ``min(pipeline + latency, credit_delay + credit_latency)``); boundary
   messages for remote domains buffer in link outboxes;
2. at the barrier the coordinator ferries each outbox message to the
   worker owning its target side (flits to the destination domain,
   credits to the source domain), which schedules it into the local
   event wheel.

Safety is the standard conservative-PDES argument: a message generated
at cycle ``t`` in ``[T, T+step)`` is scheduled for ``t + delay >= T +
E >= T + step``, i.e. strictly in the receiving worker's future at
ingest time.  Links between two domains of the *same* worker keep both
sides local and deliver directly, exactly like serial mode.

Statistics: each worker runs a :class:`WindowStats` collector.  It
differs from the shared serial collector only in bookkeeping — a packet
may be created in one worker and ejected in another, so measured-ness
is keyed by ``created_cycle`` (carried by the packet across the link)
instead of a pid set, and the drain criterion becomes the coordinator's
reduction ``sum(created) - sum(delivered)``.  The reported numbers are
identical to serial mode: latency sums are exact integer arithmetic,
per-source arrays add elementwise, and same-slot event order (the only
thing barrier ferrying can reorder) is commutative for every reported
metric.
"""

from __future__ import annotations

import multiprocessing as mp

from repro.network.links import MSG_FLIT
from repro.sim.stats import StatsCollector


class WindowStats(StatsCollector):
    """Per-worker collector: window membership via ``created_cycle``.

    ``_outstanding`` stays empty (drain is a coordinator-side reduction
    over per-worker counts); a packet's latency is recorded by whichever
    worker ejects it, using the creation window test the shared serial
    collector implements with its pid set.
    """

    def on_packet_created(self, packet) -> None:
        if self._in_window(packet.created_cycle):
            self.packets_created += 1
            self.per_source_created[packet.src] += 1

    def on_packet_ejected(self, packet, cycle: int) -> None:
        if self._in_window(cycle):
            self.packets_ejected += 1
            self.per_source_ejected[packet.src] += 1
        if self._in_window(packet.created_cycle):
            self.latencies.append(cycle - packet.created_cycle)


def _worker_main(sim, domain_ids, conn) -> None:
    """Child process: step owned domains, speak the barrier protocol."""
    owned = set(domain_ids)
    rd = sim.plan.router_domain
    stats = WindowStats(sim.config.num_terminals)
    domains = [sim.domains[d] for d in domain_ids]
    injectors = [sim.injectors[d] for d in domain_ids]
    for dom in domains:
        dom.stats = stats
        dom.tracer = None
    for inj in injectors:
        inj.stats = stats
    # Sever the remote side of every boundary link: sends for an unowned
    # side buffer in the outbox instead of touching a peer's wheel.
    touched = []
    for link in sim.links:
        src_owned = rd[link.spec.src_router] in owned
        dst_owned = rd[link.spec.dst_router] in owned
        if not src_owned:
            link.src_net = None
        if not dst_owned:
            link.dst_net = None
        if src_owned or dst_owned:
            touched.append(link)
    while True:
        msg = conn.recv()
        op = msg[0]
        if op == "advance":
            for _ in range(msg[1]):
                for inj, dom in zip(injectors, domains):
                    inj.tick(dom.cycle)
                    dom.step()
            out = {}
            for link in touched:
                if link.outbox:
                    out[link.link_id] = link.drain_outbox()
            conn.send(out)
        elif op == "ingest":
            for link_id, messages in msg[1].items():
                sim.links[link_id].ingest(messages)
        elif op == "open_window":
            stats.open_window(msg[1], msg[2])
        elif op == "counts":
            conn.send((stats.packets_created, len(stats.latencies)))
        elif op == "finalize":
            conn.send(
                {
                    "stats": {
                        "latencies": stats.latencies,
                        "flits_ejected": stats.flits_ejected,
                        "packets_ejected": stats.packets_ejected,
                        "packets_created": stats.packets_created,
                        "per_source_ejected": stats.per_source_ejected,
                        "per_source_created": stats.per_source_created,
                    },
                    "counters": {
                        d: sim.domains[d].counters.snapshot() for d in domain_ids
                    },
                    "link_flits": {
                        link.link_id: link.flits_carried
                        for link in touched
                        if link.src_net is not None
                    },
                    "link_credits": {
                        link.link_id: link.credits_returned
                        for link in touched
                        if link.dst_net is not None
                    },
                }
            )
        elif op == "stop":
            conn.close()
            return


def run_partitioned_workers(sim, warmup: int, measure: int, drain_limit: int):
    """Coordinate a worker-process run; returns a SimulationResult."""
    num_domains = sim.plan.num_domains
    num_workers = sim._workers
    # Block assignment: domain d -> worker d * W // N keeps blocks
    # contiguous and sizes within one of each other.
    owner_of = [d * num_workers // num_domains for d in range(num_domains)]
    groups = [[] for _ in range(num_workers)]
    for d, w in enumerate(owner_of):
        groups[w].append(d)
    rd = sim.plan.router_domain
    ctx = mp.get_context("fork")
    conns, procs = [], []
    for group in groups:
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main, args=(sim, group, child), daemon=True
        )
        proc.start()
        child.close()
        conns.append(parent)
        procs.append(proc)
    cycle = sim.cycle
    epoch = sim._epoch
    try:

        def advance(cycles: int) -> None:
            nonlocal cycle
            remaining = cycles
            while remaining > 0:
                step = min(epoch, remaining)
                for conn in conns:
                    conn.send(("advance", step))
                outs = [conn.recv() for conn in conns]
                routed = [dict() for _ in conns]
                for out in outs:
                    for link_id, messages in out.items():
                        spec = sim.links[link_id].spec
                        flit_worker = owner_of[rd[spec.dst_router]]
                        credit_worker = owner_of[rd[spec.src_router]]
                        for message in messages:
                            target = (
                                flit_worker
                                if message[0] == MSG_FLIT
                                else credit_worker
                            )
                            routed[target].setdefault(link_id, []).append(message)
                for w, conn in enumerate(conns):
                    if routed[w]:
                        conn.send(("ingest", routed[w]))
                remaining -= step
                cycle += step

        def outstanding() -> int:
            for conn in conns:
                conn.send(("counts",))
            created = delivered = 0
            for conn in conns:
                c, d = conn.recv()
                created += c
                delivered += d
            return created - delivered

        advance(warmup)
        start = cycle
        for conn in conns:
            conn.send(("open_window", start, start + measure))
        advance(measure)
        drained_cycles = 0
        while drained_cycles < drain_limit and outstanding() > 0:
            chunk = min(epoch, drain_limit - drained_cycles)
            advance(chunk)
            drained_cycles += chunk
        for conn in conns:
            conn.send(("finalize",))
        payloads = [conn.recv() for conn in conns]
        for conn in conns:
            conn.send(("stop",))
    finally:
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
        for conn in conns:
            conn.close()

    merged = StatsCollector(sim.config.num_terminals)
    merged.open_window(start, start + measure)
    for payload in payloads:
        s = payload["stats"]
        merged.latencies.extend(s["latencies"])
        merged.flits_ejected += s["flits_ejected"]
        merged.packets_ejected += s["packets_ejected"]
        merged.packets_created += s["packets_created"]
        for i, v in enumerate(s["per_source_ejected"]):
            merged.per_source_ejected[i] += v
        for i, v in enumerate(s["per_source_created"]):
            merged.per_source_created[i] += v
    drained = merged.packets_created - len(merged.latencies) == 0
    by_domain: dict[int, dict] = {}
    interchip_flits = interchip_credits = 0
    for payload in payloads:
        by_domain.update(payload["counters"])
        interchip_flits += sum(payload["link_flits"].values())
        interchip_credits += sum(payload["link_credits"].values())
    snapshots = [by_domain[d] for d in range(num_domains)]
    counters = sim.aggregate_counters(
        snapshots,
        interchip_flits=interchip_flits,
        interchip_credits=interchip_credits,
    )
    metrics = sim._finalize_obs(counters)
    return sim.build_result(
        merged, counters, cycles=cycle, drained=drained, metrics=metrics
    )


__all__ = ["WindowStats", "run_partitioned_workers"]
