"""Parallel domain stepping: forked workers, epoch barriers, ferrying.

The coordinator forks one process per worker (fork start method — the
fully built :class:`~repro.sim.partition.engine.PartitionedSimulation`
is inherited, nothing is re-constructed) and assigns each a block of
domains.  Execution alternates:

1. every worker advances its domains ``step <= E`` lockstep cycles,
   where ``E`` is the conservative epoch (min over links of
   ``min(pipeline + latency, credit_delay + credit_latency)``); boundary
   messages for remote domains buffer in link outboxes;
2. at the barrier the coordinator ferries each outbox message to the
   worker owning its target side (flits to the destination domain,
   credits to the source domain), which schedules it into the local
   event wheel.

Safety is the standard conservative-PDES argument: a message generated
at cycle ``t`` in ``[T, T+step)`` is scheduled for ``t + delay >= T +
E >= T + step``, i.e. strictly in the receiving worker's future at
ingest time.  Links between two domains of the *same* worker keep both
sides local and deliver directly, exactly like serial mode.

Statistics: each worker runs a :class:`WindowStats` collector.  It
differs from the shared serial collector only in bookkeeping — a packet
may be created in one worker and ejected in another, so measured-ness
is keyed by ``created_cycle`` (carried by the packet across the link)
instead of a pid set, and the drain criterion becomes the coordinator's
reduction ``sum(created) - sum(delivered)``.  The reported numbers are
identical to serial mode: latency sums are exact integer arithmetic,
per-source arrays add elementwise, and same-slot event order (the only
thing barrier ferrying can reorder) is commutative for every reported
metric.
"""

from __future__ import annotations

import multiprocessing as mp
import time

from repro.network.links import MSG_FLIT
from repro.parallel.faults import inject_fault
from repro.sim.stats import StatsCollector


class WindowStats(StatsCollector):
    """Per-worker collector: window membership via ``created_cycle``.

    ``_outstanding`` stays empty (drain is a coordinator-side reduction
    over per-worker counts); a packet's latency is recorded by whichever
    worker ejects it, using the creation window test the shared serial
    collector implements with its pid set.
    """

    window_by_creation = True

    def on_packet_created(self, packet) -> None:
        if self._in_window(packet.created_cycle):
            self.packets_created += 1
            self.per_source_created[packet.src] += 1

    def on_packet_ejected(self, packet, cycle: int) -> None:
        if self._in_window(cycle):
            self.packets_ejected += 1
            self.per_source_ejected[packet.src] += 1
        if self._in_window(packet.created_cycle):
            self.latencies.append(cycle - packet.created_cycle)


def _worker_main(sim, domain_ids, conn, worker_index: int) -> None:
    """Child process: step owned domains, speak the barrier protocol."""
    inject_fault(worker_index, 0)
    owned = set(domain_ids)
    rd = sim.plan.router_domain
    stats = WindowStats(sim.config.num_terminals)
    domains = [sim.domains[d] for d in domain_ids]
    injectors = [sim.injectors[d] for d in domain_ids]
    for dom in domains:
        dom.stats = stats
        dom.tracer = None
    for inj in injectors:
        inj.stats = stats
    # Sever the remote side of every boundary link: sends for an unowned
    # side buffer in the outbox instead of touching a peer's wheel.
    touched = []
    for link in sim.links:
        src_owned = rd[link.spec.src_router] in owned
        dst_owned = rd[link.spec.dst_router] in owned
        if not src_owned:
            link.src_net = None
        if not dst_owned:
            link.dst_net = None
        if src_owned or dst_owned:
            touched.append(link)
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            # Coordinator died (or tore down after its own failure): the
            # pipe's far end is gone, so exit instead of blocking forever.
            return
        op = msg[0]
        if op == "advance":
            for _ in range(msg[1]):
                for inj, dom in zip(injectors, domains):
                    inj.tick(dom.cycle)
                    dom.step()
            out = {}
            for link in touched:
                if link.outbox:
                    out[link.link_id] = link.drain_outbox()
            conn.send(out)
        elif op == "ingest":
            for link_id, messages in msg[1].items():
                sim.links[link_id].ingest(messages)
        elif op == "open_window":
            stats.open_window(msg[1], msg[2])
        elif op == "counts":
            conn.send((stats.packets_created, len(stats.latencies)))
        elif op == "finalize":
            conn.send(
                {
                    "stats": {
                        "latencies": stats.latencies,
                        "flits_ejected": stats.flits_ejected,
                        "packets_ejected": stats.packets_ejected,
                        "packets_created": stats.packets_created,
                        "per_source_ejected": stats.per_source_ejected,
                        "per_source_created": stats.per_source_created,
                    },
                    "counters": {
                        d: sim.domains[d].counter_snapshot() for d in domain_ids
                    },
                    "link_flits": {
                        link.link_id: link.flits_carried
                        for link in touched
                        if link.src_net is not None
                    },
                    "link_credits": {
                        link.link_id: link.credits_returned
                        for link in touched
                        if link.dst_net is not None
                    },
                }
            )
        elif op == "stop":
            conn.close()
            return


def run_partitioned_workers(sim, warmup: int, measure: int, drain_limit: int):
    """Coordinate a worker-process run; returns a SimulationResult."""
    num_domains = sim.plan.num_domains
    num_workers = sim._workers
    # Block assignment: domain d -> worker d * W // N keeps blocks
    # contiguous and sizes within one of each other.
    owner_of = [d * num_workers // num_domains for d in range(num_domains)]
    groups = [[] for _ in range(num_workers)]
    for d, w in enumerate(owner_of):
        groups[w].append(d)
    rd = sim.plan.router_domain
    ctx = mp.get_context("fork")
    conns, procs = [], []
    for worker_index, group in enumerate(groups):
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main, args=(sim, group, child, worker_index), daemon=True
        )
        proc.start()
        child.close()
        conns.append(parent)
        procs.append(proc)

    def _dead_worker_error(w: int, cause: BaseException) -> RuntimeError:
        proc = procs[w]
        proc.join(timeout=1.0)
        code = proc.exitcode
        detail = f"exit code {code}" if code is not None else "still running"
        return RuntimeError(
            f"partition worker {w} (domains {groups[w]}) died mid-run "
            f"({detail}); aborting the partitioned run"
        )

    def _send(w: int, msg) -> None:
        try:
            conns[w].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise _dead_worker_error(w, exc) from exc

    def _recv(w: int):
        try:
            return conns[w].recv()
        except (EOFError, OSError) as exc:
            # EOFError for a clean close, ConnectionResetError (an
            # OSError) when the worker died with data in flight.
            raise _dead_worker_error(w, exc) from exc

    cycle = sim.cycle
    epoch = sim._epoch
    try:

        def advance(cycles: int) -> None:
            nonlocal cycle
            remaining = cycles
            while remaining > 0:
                step = min(epoch, remaining)
                for w in range(num_workers):
                    _send(w, ("advance", step))
                outs = [_recv(w) for w in range(num_workers)]
                routed = [dict() for _ in conns]
                for out in outs:
                    for link_id, messages in out.items():
                        spec = sim.links[link_id].spec
                        flit_worker = owner_of[rd[spec.dst_router]]
                        credit_worker = owner_of[rd[spec.src_router]]
                        for message in messages:
                            target = (
                                flit_worker
                                if message[0] == MSG_FLIT
                                else credit_worker
                            )
                            routed[target].setdefault(link_id, []).append(message)
                for w in range(num_workers):
                    if routed[w]:
                        _send(w, ("ingest", routed[w]))
                remaining -= step
                cycle += step

        def outstanding() -> int:
            for w in range(num_workers):
                _send(w, ("counts",))
            created = delivered = 0
            for w in range(num_workers):
                c, d = _recv(w)
                created += c
                delivered += d
            return created - delivered

        advance(warmup)
        start = cycle
        for w in range(num_workers):
            _send(w, ("open_window", start, start + measure))
        advance(measure)
        drained_cycles = 0
        while drained_cycles < drain_limit and outstanding() > 0:
            chunk = min(epoch, drain_limit - drained_cycles)
            advance(chunk)
            drained_cycles += chunk
        for w in range(num_workers):
            _send(w, ("finalize",))
        payloads = [_recv(w) for w in range(num_workers)]
    finally:
        # Teardown order matters: signal every worker to exit *before*
        # the first join.  Joining first deadlocked on failure — a worker
        # blocked in recv() never exits, so each join burned its full
        # timeout (30s per worker) before anything closed its pipe.
        for conn in conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass  # already dead or closed — that's fine, it can't hang
        for conn in conns:
            conn.close()
        # Closed pipes wake any worker blocked in recv() (EOFError -> its
        # main returns), so the whole pool drains within one shared
        # deadline instead of 30s per straggler.
        deadline = time.monotonic() + 4.0
        for proc in procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            if proc.is_alive():
                proc.join(timeout=1.0)

    merged = StatsCollector(sim.config.num_terminals)
    merged.open_window(start, start + measure)
    for payload in payloads:
        s = payload["stats"]
        merged.latencies.extend(s["latencies"])
        merged.flits_ejected += s["flits_ejected"]
        merged.packets_ejected += s["packets_ejected"]
        merged.packets_created += s["packets_created"]
        for i, v in enumerate(s["per_source_ejected"]):
            merged.per_source_ejected[i] += v
        for i, v in enumerate(s["per_source_created"]):
            merged.per_source_created[i] += v
    drained = merged.packets_created - len(merged.latencies) == 0
    by_domain: dict[int, dict] = {}
    interchip_flits = interchip_credits = 0
    for payload in payloads:
        by_domain.update(payload["counters"])
        interchip_flits += sum(payload["link_flits"].values())
        interchip_credits += sum(payload["link_credits"].values())
    snapshots = [by_domain[d] for d in range(num_domains)]
    counters = sim.aggregate_counters(
        snapshots,
        interchip_flits=interchip_flits,
        interchip_credits=interchip_credits,
    )
    metrics = sim._finalize_obs(counters)
    return sim.build_result(
        merged, counters, cycles=cycle, drained=drained, metrics=metrics
    )


__all__ = ["WindowStats", "run_partitioned_workers"]
