"""Cross-domain correctness invariants for partitioned runs.

Two families of checks fence the boundary machinery (serial mode, where
every domain is inspectable in-process):

* **flit conservation** — every flit the injectors ever created is
  either ejected, somewhere inside a domain (NI queue, injection
  channel, router buffer, event wheel), or sitting in a link outbox.  A
  flit lost or duplicated at a boundary breaks the global sum
  immediately.
* **credit accounting** — for every wired non-ejection (port, VC) pair,
  upstream credits + downstream buffer occupancy + in-flight arrivals +
  in-flight returning credits + link-outbox messages equals
  ``buffer_depth`` exactly.  This is the boundary credit contract: an
  inter-chip link must keep the loop *closed* (longer, but lossless),
  so partitioning can never overrun a buffer or leak credits.

Both are O(state) scans intended for tests and the CI smoke, not the
hot loop; :func:`check_invariants` runs both and raises
:class:`PartitionInvariantError` with a precise locus on violation.
"""

from __future__ import annotations

from repro.network.links import MSG_CREDIT, MSG_FLIT


class PartitionInvariantError(AssertionError):
    """A conservation or credit-accounting invariant was violated."""


def check_flit_conservation(sim) -> None:
    """Every created flit is ejected, in some domain, or on a link."""
    created = sim.total_created_flits()
    ejected = sum(dom.counters.flits_ejected for dom in sim.domains)
    in_network = sum(dom.outstanding_flits() for dom in sim.domains)
    on_links = sum(link.pending() for link in sim.links)
    total = ejected + in_network + on_links
    if total != created:
        raise PartitionInvariantError(
            f"flit conservation violated at cycle {sim.cycle}: created "
            f"{created} != ejected {ejected} + in-network {in_network} + "
            f"on-links {on_links} (= {total})"
        )


def _outbox_counts(link):
    """Pending outbox messages by (kind, vc)."""
    flits: dict[int, int] = {}
    creds: dict[int, int] = {}
    for msg in link.outbox:
        if msg[0] == MSG_FLIT:
            flits[msg[2]] = flits.get(msg[2], 0) + 1
        elif msg[0] == MSG_CREDIT:
            creds[msg[2]] = creds.get(msg[2], 0) + 1
    return flits, creds


def check_credit_accounting(sim) -> None:
    """Closed credit loops on every wired (port, VC), boundaries included.

    All state is read through the engine-neutral accessors — credits via
    ``credit_of``/``ni_credit_of``, buffer occupancy via
    ``occupancy_of``, pending events via ``pending_event_index`` (which
    keys credit sinks *structurally*: ``(router, port, vc)`` for router
    output ports, ``("ni", terminal, vc)`` for injection channels) — so
    the same scan fences object and vectorized domains alike.
    """
    depth = sim.config.router.buffer_depth
    num_vcs = sim.config.router.num_vcs
    rd = sim.plan.router_domain
    indexed = [dom.pending_event_index() for dom in sim.domains]

    def check_pair(
        label: str,
        src_dom: int,
        sink_key: tuple,
        dst_dom: int,
        dst_router: int,
        dst_port: int,
        link=None,
    ) -> None:
        src_net = sim.domains[src_dom]
        dst_net = sim.domains[dst_dom]
        dst_arrivals, _ = indexed[dst_dom]
        _, src_credits = indexed[src_dom]
        out_flits, out_creds = _outbox_counts(link) if link is not None else ({}, {})
        for vc in range(num_vcs):
            if sink_key[0] == "ni":
                upstream_credits = src_net.ni_credit_of(sink_key[1], vc)
            else:
                upstream_credits = src_net.credit_of(sink_key[0], sink_key[1], vc)
            occupancy = dst_net.occupancy_of(dst_router, dst_port, vc)
            in_flight = dst_arrivals.get((dst_router, dst_port, vc), 0)
            returning = src_credits.get((*sink_key, vc), 0)
            boundary = out_flits.get(vc, 0) + out_creds.get(vc, 0)
            total = upstream_credits + occupancy + in_flight + returning + boundary
            if total != depth:
                raise PartitionInvariantError(
                    f"credit accounting violated at cycle {sim.cycle} on "
                    f"{label} vc {vc}: credits {upstream_credits} + buffered "
                    f"{occupancy} + arriving {in_flight} + returning "
                    f"{returning} + on-link {boundary} = {total}, expected "
                    f"buffer depth {depth}"
                )

    # Interior router-to-router links and NI injection channels.
    for d, dom in enumerate(sim.domains):
        for router in dom.iter_routers():
            for out in router.outputs:
                if out is None or out.is_ejection or out.link is not None:
                    continue
                check_pair(
                    f"link r{router.rid}.p{out.index}->r{out.dest_router}",
                    d,
                    (router.rid, out.index),
                    d,
                    out.dest_router,
                    out.dest_port,
                )
        for ni in dom.iter_interfaces():
            check_pair(
                f"injection t{ni.terminal}->r{ni.router_id}",
                d,
                ("ni", ni.terminal),
                d,
                ni.router_id,
                ni.local_port,
            )
    # Cut links: the credit loop spans two domains and the link itself.
    for link in sim.links:
        spec = link.spec
        src_dom, dst_dom = rd[spec.src_router], rd[spec.dst_router]
        check_pair(
            f"cut link r{spec.src_router}.p{spec.src_port}->r{spec.dst_router}",
            src_dom,
            (spec.src_router, spec.src_port),
            dst_dom,
            spec.dst_router,
            spec.dst_port,
            link=link,
        )


def check_invariants(sim) -> None:
    """Run every partition invariant against a (serial) simulation."""
    check_flit_conservation(sim)
    check_credit_accounting(sim)


__all__ = [
    "PartitionInvariantError",
    "check_credit_accounting",
    "check_flit_conservation",
    "check_invariants",
]
