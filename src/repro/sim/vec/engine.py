"""The vectorized simulation engine.

:class:`VectorizedSimulation` is a drop-in replacement for
:class:`~repro.sim.engine.Simulation` that batches the per-router work of a
cycle into numpy array ops.  Byte-identical results fall out of reusing the
object engine's components wherever cycle-accurate state is subtle and
cheap, and vectorizing only what is hot:

* the **real** :class:`~repro.network.network.Network` is built (topology
  wiring, NIs) and its NIs, the real :class:`~repro.traffic.TrafficInjector`
  (same Mersenne-Twister stream, same draw order) and the real
  :class:`~repro.sim.stats.StatsCollector` run unchanged in Python;
* router stepping — flit delivery, VC allocation, switch allocation, grant
  application — runs on the :class:`~repro.sim.vec.state.SoAState` tensors
  through :mod:`repro.sim.vec.kernels`;
* events ride a fixed-size ring of array chunks instead of the network's
  dict-of-lists wheel (all latencies are bounded by
  ``max(pipeline_stages, credit_delay, 1)``).

Two situations delegate the whole run to the activity-gated object engine
(still byte-identical, so this is purely a performance decision):

* metrics/trace observability — the probes hook object allocators;
* expected injected flits/cycle below ``REPRO_VEC_MIN_FLITS`` (default 6)
  — at low load the gated engine's visit-only-active-components loop beats
  any whole-network array op.

Configurations outside the kernel's scheme coverage raise through
:func:`~repro.sim.vec.support.require_vectorizable` at construction;
lenient fallback (e.g. for the ``REPRO_ENGINE`` default) is the caller's
job (see :func:`repro.sim.engine.run_simulation`).
"""

from __future__ import annotations

import os
import time

from repro.network.config import NetworkConfig
from repro.network.network import Network
from repro.obs import Observability, ObservabilityConfig
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.stats import StatsCollector
from repro.traffic.injector import TrafficInjector
from repro.traffic.patterns import TrafficPattern, make_pattern

from .state import SoAState
from .stepping import VecStepper
from .support import require_vectorizable

#: Environment knob: minimum expected injected flits/cycle for the SoA
#: kernel to be worth it; below this the run delegates to the gated engine.
MIN_FLITS_ENV = "REPRO_VEC_MIN_FLITS"
_DEFAULT_MIN_FLITS = 6.0


def _min_flits_threshold() -> float:
    raw = os.environ.get(MIN_FLITS_ENV, "").strip()
    if not raw:
        return _DEFAULT_MIN_FLITS
    try:
        return float(raw)
    except ValueError:
        return _DEFAULT_MIN_FLITS


class VectorizedSimulation:
    """One network + injector + stats run on the SoA kernel."""

    def __init__(
        self,
        config: NetworkConfig,
        *,
        pattern: TrafficPattern | str = "uniform",
        injection_rate: float = 0.1,
        packet_length: int | None = None,
        seed: int = 1,
        burst_length: float = 1.0,
        fast_injection: bool = False,
        obs: ObservabilityConfig | None = None,
    ) -> None:
        require_vectorizable(config)
        self.config = config
        obs_config = obs if obs is not None else ObservabilityConfig.from_env()
        plen = packet_length if packet_length is not None else config.packet_length
        expected_flits = (
            min(max(injection_rate, 0.0), 1.0) * config.num_terminals * plen
        )
        self._delegate: Simulation | None = None
        # Matching-efficiency probes and flit tracers hook the object
        # allocators/routers, and low-activity runs are faster on the gated
        # visit-only-active loop than on whole-network array ops; both cases
        # delegate wholesale (results stay byte-identical either way).
        if (
            obs_config.metrics
            or obs_config.trace
            or expected_flits < _min_flits_threshold()
        ):
            self._delegate = Simulation(
                config,
                pattern=pattern,
                injection_rate=injection_rate,
                packet_length=packet_length,
                seed=seed,
                burst_length=burst_length,
                fast_injection=fast_injection,
                activity_gating=True,
                obs=obs,
            )
            self.network = self._delegate.network
            self.stats = self._delegate.stats
            self.injector = self._delegate.injector
            return

        self.network = Network(config)
        self.obs_config = obs_config
        self._obs: Observability | None = None
        if obs_config.enabled:  # profile-only here (metrics/trace delegated)
            self._obs = Observability(obs_config)
            self._obs.attach(self.network)
        self._seed = seed
        if isinstance(pattern, str):
            pattern = make_pattern(pattern, config.num_terminals)
        self.pattern = pattern
        self.injector = TrafficInjector(
            self.network,
            pattern,
            injection_rate,
            packet_length=packet_length,
            seed=seed,
            burst_length=burst_length,
            fast_injection=fast_injection,
        )
        self.stats = StatsCollector(config.num_terminals)
        self.network.stats = self.stats
        self.injector.stats = self.stats

        s = SoAState(self.network)
        self.s = s
        # The per-cycle phases (event ring, delivery, NI phase, kernels)
        # live in the stepper, shared with the partitioned VecDomain.
        self._stepper = VecStepper(self.network, s)
        self._kernel_seconds = 0.0

    def _step(self) -> None:
        network = self.network
        now = network.cycle
        self.injector.tick(now)
        t0 = time.perf_counter() if self._obs is not None else 0.0
        stepper = self._stepper
        stepper.deliver(now)
        stepper.ni_phase(now)
        stepper.allocate(now)
        stepper.kernel_cycles += 1
        if self._obs is not None:
            self._kernel_seconds += time.perf_counter() - t0
        network.counters.cycles += 1
        network.cycle = now + 1

    def flow_state(self) -> dict:
        """Flow-control snapshot (see :mod:`repro.network.state`).

        Same schema as ``Simulation.flow_state()``; byte-equal dicts after
        identical runs are the engines' no-drift contract.
        """
        if self._delegate is not None:
            return self._delegate.flow_state()
        return self.s.export_flow_state(self.network.cycle)

    # --- run control (mirrors Simulation.run exactly) -----------------------

    def _maybe_skip(self, budget: int) -> int:
        network = self.network
        if self._stepper.busy_vcs or network._active_nis:
            return 0
        now = network.cycle
        wake = self.injector.next_active_cycle(now)
        if wake is not None and wake <= now:
            return 0
        nxt = self._stepper.next_event_time(now)
        if nxt is not None and (wake is None or nxt < wake):
            wake = nxt
        target = now + budget if wake is None else min(wake, now + budget)
        network.skip_to(target)
        return target - now

    def _advance(self, cycles: int) -> None:
        network = self.network
        end = network.cycle + cycles
        while network.cycle < end:
            if self._maybe_skip(end - network.cycle):
                continue
            self._step()

    def run(
        self,
        warmup: int = 1000,
        measure: int = 3000,
        drain_limit: int | None = None,
    ) -> SimulationResult:
        """Run the three-phase methodology; see ``Simulation.run``."""
        if self._delegate is not None:
            return self._delegate.run(
                warmup=warmup, measure=measure, drain_limit=drain_limit
            )
        if warmup < 0 or measure <= 0:
            raise ValueError("warmup must be >= 0 and measure > 0")
        if drain_limit is None:
            drain_limit = max(2000, 2 * measure)
        timer = self._obs.timer if self._obs is not None else None
        t0 = time.perf_counter() if timer is not None else 0.0
        self._advance(warmup)
        if timer is not None:
            t1 = time.perf_counter()
            timer.add("warmup", t1 - t0)
            t0 = t1
        start = self.network.cycle
        self.stats.open_window(start, start + measure)
        self._advance(measure)
        if timer is not None:
            t1 = time.perf_counter()
            timer.add("measure", t1 - t0)
            t0 = t1
        drained_cycles = 0
        while self.stats.outstanding and drained_cycles < drain_limit:
            skipped = self._maybe_skip(drain_limit - drained_cycles)
            if skipped:
                drained_cycles += skipped
                continue
            self._step()
            drained_cycles += 1
        if timer is not None:
            timer.add("drain", time.perf_counter() - t0)
            timer.add("kernel", self._kernel_seconds)
        # Flush the SoA link counters into the network (report surface).
        link_counts = self.network._link_counts
        for r, row in enumerate(self.s.links.tolist()):
            counts = link_counts[r]
            for p, c in enumerate(row):
                counts[p] += c
        stats = self.stats
        counters = self.network.counters.snapshot()
        counters["vec_kernel_cycles"] = self._stepper.kernel_cycles
        if timer is not None:
            counters.update(timer.counter_items())
        metrics = None
        if self._obs is not None:
            metrics = self._obs.finalize(
                self.network,
                allocator=self.config.router.allocator,
                virtual_inputs=self.config.router.effective_virtual_inputs,
                topology=self.config.topology,
                injection_rate=self.injector.rate,
                seed=self._seed,
            )
        return SimulationResult(
            allocator=self.config.router.allocator,
            topology=self.config.topology,
            injection_rate=self.injector.rate,
            packet_length=self.injector.packet_length,
            avg_latency=stats.avg_latency(),
            throughput_flits=stats.throughput_flits_per_cycle(),
            throughput_packets_per_node=stats.throughput_packets_per_node(),
            fairness=stats.fairness_max_min_ratio(),
            packets_created=stats.packets_created,
            packets_ejected=stats.packets_ejected,
            drained=stats.outstanding == 0,
            cycles=self.network.cycle,
            per_source_ejected=list(stats.per_source_ejected),
            counters=counters,
            latency_p50=stats.latency_percentile(50),
            latency_p95=stats.latency_percentile(95),
            latency_p99=stats.latency_percentile(99),
            metrics=metrics,
        )
