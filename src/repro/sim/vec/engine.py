"""The vectorized simulation engine.

:class:`VectorizedSimulation` is a drop-in replacement for
:class:`~repro.sim.engine.Simulation` that batches the per-router work of a
cycle into numpy array ops.  Byte-identical results fall out of reusing the
object engine's components wherever cycle-accurate state is subtle and
cheap, and vectorizing only what is hot:

* the **real** :class:`~repro.network.network.Network` is built (topology
  wiring, NIs) and its NIs, the real :class:`~repro.traffic.TrafficInjector`
  (same Mersenne-Twister stream, same draw order) and the real
  :class:`~repro.sim.stats.StatsCollector` run unchanged in Python;
* router stepping — flit delivery, VC allocation, switch allocation, grant
  application — runs on the :class:`~repro.sim.vec.state.SoAState` tensors
  through :mod:`repro.sim.vec.kernels`;
* events ride a fixed-size ring of array chunks instead of the network's
  dict-of-lists wheel (all latencies are bounded by
  ``max(pipeline_stages, credit_delay, 1)``).

Two situations delegate the whole run to the activity-gated object engine
(still byte-identical, so this is purely a performance decision):

* metrics/trace observability — the probes hook object allocators;
* expected injected flits/cycle below ``REPRO_VEC_MIN_FLITS`` (default 6)
  — at low load the gated engine's visit-only-active-components loop beats
  any whole-network array op.

Configurations outside the kernel's scheme coverage raise through
:func:`~repro.sim.vec.support.require_vectorizable` at construction;
lenient fallback (e.g. for the ``REPRO_ENGINE`` default) is the caller's
job (see :func:`repro.sim.engine.run_simulation`).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.network.config import NetworkConfig
from repro.network.network import Network
from repro.obs import Observability, ObservabilityConfig
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.stats import StatsCollector
from repro.traffic.injector import TrafficInjector
from repro.traffic.patterns import TrafficPattern, make_pattern

from .kernels import (
    sa_input_first,
    sa_output_first,
    select_max_credit,
    select_vix_dimension,
    va_kernel,
)
from .state import ACTIVE, IDLE, VA_WAIT, SoAState
from .support import require_vectorizable

#: Environment knob: minimum expected injected flits/cycle for the SoA
#: kernel to be worth it; below this the run delegates to the gated engine.
MIN_FLITS_ENV = "REPRO_VEC_MIN_FLITS"
_DEFAULT_MIN_FLITS = 6.0


def _min_flits_threshold() -> float:
    raw = os.environ.get(MIN_FLITS_ENV, "").strip()
    if not raw:
        return _DEFAULT_MIN_FLITS
    try:
        return float(raw)
    except ValueError:
        return _DEFAULT_MIN_FLITS


class VectorizedSimulation:
    """One network + injector + stats run on the SoA kernel."""

    def __init__(
        self,
        config: NetworkConfig,
        *,
        pattern: TrafficPattern | str = "uniform",
        injection_rate: float = 0.1,
        packet_length: int | None = None,
        seed: int = 1,
        burst_length: float = 1.0,
        fast_injection: bool = False,
        obs: ObservabilityConfig | None = None,
    ) -> None:
        require_vectorizable(config)
        self.config = config
        obs_config = obs if obs is not None else ObservabilityConfig.from_env()
        plen = packet_length if packet_length is not None else config.packet_length
        expected_flits = (
            min(max(injection_rate, 0.0), 1.0) * config.num_terminals * plen
        )
        self._delegate: Simulation | None = None
        # Matching-efficiency probes and flit tracers hook the object
        # allocators/routers, and low-activity runs are faster on the gated
        # visit-only-active loop than on whole-network array ops; both cases
        # delegate wholesale (results stay byte-identical either way).
        if (
            obs_config.metrics
            or obs_config.trace
            or expected_flits < _min_flits_threshold()
        ):
            self._delegate = Simulation(
                config,
                pattern=pattern,
                injection_rate=injection_rate,
                packet_length=packet_length,
                seed=seed,
                burst_length=burst_length,
                fast_injection=fast_injection,
                activity_gating=True,
                obs=obs,
            )
            self.network = self._delegate.network
            self.stats = self._delegate.stats
            self.injector = self._delegate.injector
            return

        self.network = Network(config)
        self.obs_config = obs_config
        self._obs: Observability | None = None
        if obs_config.enabled:  # profile-only here (metrics/trace delegated)
            self._obs = Observability(obs_config)
            self._obs.attach(self.network)
        self._seed = seed
        if isinstance(pattern, str):
            pattern = make_pattern(pattern, config.num_terminals)
        self.pattern = pattern
        self.injector = TrafficInjector(
            self.network,
            pattern,
            injection_rate,
            packet_length=packet_length,
            seed=seed,
            burst_length=burst_length,
            fast_injection=fast_injection,
        )
        self.stats = StatsCollector(config.num_terminals)
        self.network.stats = self.stats
        self.injector.stats = self.stats

        s = SoAState(self.network)
        self.s = s
        self._sa = sa_output_first if s.output_first else sa_input_first
        rc = config.router
        self._pipe = rc.pipeline_stages
        self._cdel = rc.credit_delay
        # Event ring: one slot per future cycle up to the longest latency.
        self._ring_size = max(self._pipe, self._cdel, 1) + 1
        self._slots = [
            {"arr": [], "cred": [], "nicred": [], "ej": []}
            for _ in range(self._ring_size)
        ]
        self._slot_n = [0] * self._ring_size
        # Non-IDLE input VCs (the router-side has-work test for idle skip).
        self._busy_vcs = 0
        # Cycles executed through the array kernel (reported in counters).
        self._kernel_cycles = 0
        self._kernel_seconds = 0.0

    # --- event ring ---------------------------------------------------------

    def _slot(self, when: int) -> dict:
        return self._slots[when % self._ring_size]

    def _next_event_time(self, now: int) -> int | None:
        """Earliest future cycle with a scheduled event, or ``None``."""
        for delta in range(1, self._ring_size):
            if self._slot_n[(now + delta) % self._ring_size]:
                return now + delta
        return None

    # --- per-cycle phases ---------------------------------------------------

    def _deliver(self, now: int) -> None:
        idx = now % self._ring_size
        if not self._slot_n[idx]:
            return
        slot = self._slots[idx]
        s = self.s
        counters = self.network.counters

        # Credit events carry the flat index of the upstream output VC; at
        # most one credit per (output port, vc) per cycle, so fancy += is
        # exact.  Releases can share a port, hence add.at for the free count.
        for cfi, rel in slot["cred"]:
            s.ocred1[cfi] += 1
            if rel.any():
                rfi = cfi[rel]
                s.oalloc1[rfi] = False
                np.add.at(s.nfree, rfi // s.V, 1)
        # NI credits use the same flat (terminal, vc) convention; like router
        # credits they are unique per (output vc, cycle), so fancy += is exact.
        for cfi, rel in slot["nicred"]:
            s.ni_cred1[cfi] += 1
            if rel.any():
                s.ni_alloc1[cfi[rel]] = False

        chunks = slot["arr"]
        if chunks:
            if len(chunks) == 1:
                fi, pk, sq = chunks[0]
            else:
                fi, pk, sq = (np.concatenate(parts) for parts in zip(*chunks))
            # At most one arrival per (router, input port) per cycle, so the
            # flat VC indices are distinct and fancy updates are exact.
            occ0 = s.occ1[fi]
            s.occ1[fi] = occ0 + 1
            fresh = occ0 == 0  # queue was empty: this flit is head-of-line
            s.hseq1[fi[fresh]] = sq[fresh]
            heads = sq == 0
            if heads.any():
                hfi = fi[heads]
                hpk = pk[heads]
                hd = s.pk_dst[hpk]
                out = s.route1[(hfi // s.PV) * s.T + hd]
                s.pkt1[hfi] = hpk
                s.dst1[hfi] = hd
                s.outp1[hfi] = out
                eject = out < s.C
                s.st1[hfi] = np.where(eject, ACTIVE, VA_WAIT)
                s.outv1[hfi[eject]] = 0
                self._busy_vcs += int(heads.sum())
            counters.buffer_writes += fi.size

        stats = self.stats
        packets = s.packets
        # on_flit_ejected is a pure windowed count, so it batches per chunk;
        # tails still replay per packet (latency + outstanding bookkeeping).
        in_window = stats.window_start <= now < stats.window_end
        for terms, pks, tails in slot["ej"]:
            n = len(terms)
            counters.flits_ejected += n
            self.network._in_flight_flits -= n
            if in_window:
                stats.flits_ejected += n
            tpk = pks[tails].tolist()
            if not tpk:
                continue
            counters.packets_ejected += len(tpk)
            if in_window:
                stats.packets_ejected += len(tpk)
            # Inlined stats.on_packet_ejected (per-packet method dispatch is
            # measurable at saturation); the window test hoists per chunk.
            per_src = stats.per_source_ejected
            outstanding = stats._outstanding
            latencies = stats.latencies
            for pki in tpk:
                packet = packets[pki]
                packet.ejected_cycle = now
                if in_window:
                    per_src[packet.src] += 1
                pid = packet.pid
                if pid in outstanding:
                    outstanding.discard(pid)
                    latencies.append(now - packet.created_cycle)

        slot["arr"].clear()
        slot["cred"].clear()
        slot["nicred"].clear()
        slot["ej"].clear()
        self._slot_n[idx] = 0

    def _ni_phase(self, now: int) -> None:
        """Vectorized ``NetworkInterface.next_flit`` across all active NIs.

        NIs are mutually independent within a cycle, so allocation and
        streaming batch over the active set (iteration order is
        irrelevant).  The object NIs keep owning the source queues — the
        injector's ``queue_length >= 4`` saturation check reads
        ``len(queue) + (1 if _current_flits else 0)``, so a sentinel is
        pushed into ``_current_flits`` while a packet streams from the SoA
        side and cleared when its tail leaves.
        """
        network = self.network
        active_nis = network._active_nis
        if not active_nis:
            return
        interfaces = network.interfaces
        s = self.s
        V = s.V
        terms = np.fromiter(active_nis, np.int64, len(active_nis))

        # Allocation: an active NI with no packet in flight always has a
        # queued packet (completion deactivates empty-queue NIs).  Matching
        # the object NI, a packet is only dequeued when some output VC is
        # unallocated *and* has credits.
        needy = terms[s.ni_rem[terms] == 0]
        if needy.size:
            cols = (needy * V)[:, None] + s._arV
            cand = ~s.ni_alloc1[cols] & (s.ni_cred1[cols] > 0)
            has = cand.any(-1)
            if not has.all():
                needy = needy[has]
                cand = cand[has]
                cols = cols[has]
            if needy.size:
                pkidx = np.empty(needy.size, dtype=np.int64)
                rems = np.empty(needy.size, dtype=np.int64)
                for i, t in enumerate(needy.tolist()):
                    ni = interfaces[t]
                    packet = ni.queue.popleft()
                    pkidx[i] = s.intern(packet)
                    rems[i] = packet.num_flits
                    ni._current_flits.append(None)  # queue_length sentinel
                if (cand.sum(-1) == 1).all():
                    choice = cand.argmax(-1)
                elif s.policy_vix:
                    direction = s.ni_dir1[needy * s.T + s.pk_dst[pkidx]]
                    choice = select_vix_dimension(
                        s, cand, s.ni_cred1[cols], direction
                    )
                else:
                    choice = select_max_credit(cand, s.ni_cred1[cols])
                s.ni_alloc1[needy * V + choice] = True
                s.ni_vc[needy] = choice
                s.ni_seq[needy] = 0
                s.ni_rem[needy] = rems
                s.ni_pk[needy] = pkidx

        # Streaming: one flit per NI per cycle when the allocated VC has a
        # credit (ejection-side credits are returned by _apply_grants).
        vcs = s.ni_vc[terms]
        m = (s.ni_rem[terms] > 0) & (s.ni_cred1[terms * V + vcs] > 0)
        st = terms[m]
        if st.size == 0:
            return
        svc = vcs[m]
        s.ni_cred1[st * V + svc] -= 1
        sq = s.ni_seq[st]
        s.ni_seq[st] = sq + 1
        nrem = s.ni_rem[st] - 1
        s.ni_rem[st] = nrem
        self._slot(now + 1)["arr"].append((s.ni_fi1[st] + svc, s.ni_pk[st], sq))
        self._slot_n[(now + 1) % self._ring_size] += st.size
        network._in_flight_flits += st.size
        for t in st[nrem == 0].tolist():
            ni = interfaces[t]
            ni._current_flits.clear()
            if not ni.queue:
                active_nis.discard(t)

    def _apply_grants(self, now: int, grants) -> None:
        gfi, gout = grants
        n = gfi.size
        s = self.s
        pk = s.pkt1[gfi]
        sq = s.hseq1[gfi]
        s.occ1[gfi] -= 1
        s.hseq1[gfi] = sq + 1
        tail = sq == s.pk_last[pk]
        eject = gout < s.C
        rp = (gfi // s.PV) * s.P  # flat (router, *) base, port added per use

        move_slot = self._slot(now + self._pipe)
        n_ej = int(eject.sum())
        n_fwd = n - n_ej
        if n_fwd:
            forward = ~eject
            ffi = gfi[forward]
            fpo = rp[forward] + gout[forward]
            fv = s.outv1[ffi]
            s.ocred1[fpo * s.V + fv] -= 1
            s.links1[fpo] += 1
            move_slot["arr"].append(
                (s.down_fi1[fpo] + fv, pk[forward], sq[forward])
            )
        if n_ej:
            epo = gfi[eject] // s.PV * s.C + gout[eject]
            move_slot["ej"].append((s.term1[epo], pk[eject], tail[eject]))
        self._slot_n[(now + self._pipe) % self._ring_size] += n

        credit_slot = self._slot(now + self._cdel)
        gp = (gfi // s.V) % s.P  # input port of the granted VC
        up = s.up_cfi1[rp + gp]
        local = gp < s.C
        remote = ~local & (up >= 0)
        cidx = (now + self._cdel) % self._ring_size
        gvc = gfi % s.V
        n_rem = int(remote.sum())
        if n_rem:
            credit_slot["cred"].append((up[remote] + gvc[remote], tail[remote]))
            self._slot_n[cidx] += n_rem
        if local.any():
            lterm = s.term1[(gfi[local] // s.PV) * s.C + gp[local]]
            credit_slot["nicred"].append(
                (lterm * s.V + gvc[local], tail[local])
            )
            self._slot_n[cidx] += lterm.size

        n_tail = int(tail.sum())
        if n_tail:
            # Only ``st`` must reset: pkt/dst/outp/outv are refreshed at the
            # next head arrival before any kernel reads them (reads are gated
            # on VA_WAIT / ACTIVE), so stale values are never observed.
            s.st1[gfi[tail]] = IDLE
            self._busy_vcs -= n_tail

        counters = self.network.counters
        counters.buffer_reads += n
        counters.xbar_traversals += n
        counters.link_traversals += n_fwd

    def _step(self) -> None:
        network = self.network
        now = network.cycle
        self.injector.tick(now)
        t0 = time.perf_counter() if self._obs is not None else 0.0
        self._deliver(now)
        self._ni_phase(now)
        if self._busy_vcs:
            va_kernel(self.s)
            grants = self._sa(self.s)
            if grants is not None:
                self._apply_grants(now, grants)
        self._kernel_cycles += 1
        if self._obs is not None:
            self._kernel_seconds += time.perf_counter() - t0
        network.counters.cycles += 1
        network.cycle = now + 1

    def flow_state(self) -> dict:
        """Flow-control snapshot (see :mod:`repro.network.state`).

        Same schema as ``Simulation.flow_state()``; byte-equal dicts after
        identical runs are the engines' no-drift contract.
        """
        if self._delegate is not None:
            return self._delegate.flow_state()
        return self.s.export_flow_state(self.network.cycle)

    # --- run control (mirrors Simulation.run exactly) -----------------------

    def _maybe_skip(self, budget: int) -> int:
        network = self.network
        if self._busy_vcs or network._active_nis:
            return 0
        now = network.cycle
        wake = self.injector.next_active_cycle(now)
        if wake is not None and wake <= now:
            return 0
        nxt = self._next_event_time(now)
        if nxt is not None and (wake is None or nxt < wake):
            wake = nxt
        target = now + budget if wake is None else min(wake, now + budget)
        network.skip_to(target)
        return target - now

    def _advance(self, cycles: int) -> None:
        network = self.network
        end = network.cycle + cycles
        while network.cycle < end:
            if self._maybe_skip(end - network.cycle):
                continue
            self._step()

    def run(
        self,
        warmup: int = 1000,
        measure: int = 3000,
        drain_limit: int | None = None,
    ) -> SimulationResult:
        """Run the three-phase methodology; see ``Simulation.run``."""
        if self._delegate is not None:
            return self._delegate.run(
                warmup=warmup, measure=measure, drain_limit=drain_limit
            )
        if warmup < 0 or measure <= 0:
            raise ValueError("warmup must be >= 0 and measure > 0")
        if drain_limit is None:
            drain_limit = max(2000, 2 * measure)
        timer = self._obs.timer if self._obs is not None else None
        t0 = time.perf_counter() if timer is not None else 0.0
        self._advance(warmup)
        if timer is not None:
            t1 = time.perf_counter()
            timer.add("warmup", t1 - t0)
            t0 = t1
        start = self.network.cycle
        self.stats.open_window(start, start + measure)
        self._advance(measure)
        if timer is not None:
            t1 = time.perf_counter()
            timer.add("measure", t1 - t0)
            t0 = t1
        drained_cycles = 0
        while self.stats.outstanding and drained_cycles < drain_limit:
            skipped = self._maybe_skip(drain_limit - drained_cycles)
            if skipped:
                drained_cycles += skipped
                continue
            self._step()
            drained_cycles += 1
        if timer is not None:
            timer.add("drain", time.perf_counter() - t0)
            timer.add("kernel", self._kernel_seconds)
        # Flush the SoA link counters into the network (report surface).
        link_counts = self.network._link_counts
        for r, row in enumerate(self.s.links.tolist()):
            counts = link_counts[r]
            for p, c in enumerate(row):
                counts[p] += c
        stats = self.stats
        counters = self.network.counters.snapshot()
        counters["vec_kernel_cycles"] = self._kernel_cycles
        if timer is not None:
            counters.update(timer.counter_items())
        metrics = None
        if self._obs is not None:
            metrics = self._obs.finalize(
                self.network,
                allocator=self.config.router.allocator,
                virtual_inputs=self.config.router.effective_virtual_inputs,
                topology=self.config.topology,
                injection_rate=self.injector.rate,
                seed=self._seed,
            )
        return SimulationResult(
            allocator=self.config.router.allocator,
            topology=self.config.topology,
            injection_rate=self.injector.rate,
            packet_length=self.injector.packet_length,
            avg_latency=stats.avg_latency(),
            throughput_flits=stats.throughput_flits_per_cycle(),
            throughput_packets_per_node=stats.throughput_packets_per_node(),
            fairness=stats.fairness_max_min_ratio(),
            packets_created=stats.packets_created,
            packets_ejected=stats.packets_ejected,
            drained=stats.outstanding == 0,
            cycles=self.network.cycle,
            per_source_ejected=list(stats.per_source_ejected),
            counters=counters,
            latency_p50=stats.latency_percentile(50),
            latency_p95=stats.latency_percentile(95),
            latency_p99=stats.latency_percentile(99),
            metrics=metrics,
        )
