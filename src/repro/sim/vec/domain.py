"""An array-backed partition domain: the SoA kernel behind SimDomain.

:class:`VecDomain` subclasses :class:`~repro.network.domain.DomainNetwork`
(so plan bookkeeping, object NIs for the injector, and boundary ``None``
holes come for free) but replaces the per-object stepping loop with a
:class:`~repro.sim.vec.stepping.VecStepper` over a per-domain
:class:`~repro.sim.vec.state.SoAState`.  The partition engine drives it
through the same SimDomain contract object domains satisfy — ``step()``,
``has_active_work()``, ``next_event_time()``, ``skip_to()``,
``export_flow_state()`` — so serial round-robin, worker forks (the SoA
tensors are inherited by fork like every other attribute), epoch
barriers, and the invariant checker all work unchanged.

Holes are masked structurally rather than per kernel: unowned routers'
tensor rows stay all-IDLE forever (no flit ever arrives there, so
``flatnonzero``-driven kernels never touch them), and unowned terminals
never enter ``_active_nis``.  The tensors span the full topology shape,
which keeps every monolithic flat-index table valid; the static tables
are shared across sibling domains via ``static_from``.

Boundary traffic meets the array world in two places:

* **egress** — :meth:`attach_egress` masks the cut link's source port in
  the stepper, which hands granted boundary flits (reconstructed as real
  ``Flit`` objects) to ``InterChipLink.send_flit`` instead of the ring;
* **ingress** — ferried flits and returning credits arrive through the
  inherited network event wheel (their latencies may exceed the ring
  horizon); :meth:`_drain_wheel` translates the cycle's events into one
  array chunk per kind and feeds them to the stepper's ring slot.
"""

from __future__ import annotations

from heapq import heappop

import numpy as np

from repro.network.domain import DomainNetwork
from repro.network.links import InterChipLink
from repro.network.network import _ARRIVAL, _CREDIT

from .state import SoAState
from .stepping import VecStepper


class VecDomain(DomainNetwork):
    """One chiplet domain stepped by the vectorized kernel."""

    def __init__(
        self,
        config,
        plan,
        domain: int,
        topology=None,
        *,
        static_from: "VecDomain | None" = None,
    ) -> None:
        super().__init__(config, plan, domain, topology)
        self.s = SoAState(
            self, static_from=static_from.s if static_from is not None else None
        )
        self._stepper = VecStepper(self, self.s)
        # Packets that crossed a link into this domain, by pid: each is
        # interned at most once even if (unreachable under DOR, but cheap
        # to guard) it re-enters later.
        self._pk_index: dict[int, int] = {}

    # --- boundary wiring ---------------------------------------------------

    def attach_egress(self, link: InterChipLink) -> None:
        super().attach_egress(link)
        spec = link.spec
        self._stepper.add_egress(spec.src_router * self.s.P + spec.src_port, link)

    def attach_ingress(self, link: InterChipLink) -> None:
        super().attach_ingress(link)
        spec = link.spec
        self._stepper.add_ingress(spec.dst_router * self.s.P + spec.dst_port, link)

    # --- SimDomain stepping contract ---------------------------------------

    def step(self) -> None:
        """One cycle: wheel drain + the stepper's three kernel phases.

        The injector tick is the partition engine's job (as for object
        domains), so this advances exactly one network cycle.
        """
        now = self.cycle
        stepper = self._stepper
        if self._events:
            self._drain_wheel(now)
        stepper.deliver(now)
        stepper.ni_phase(now)
        stepper.allocate(now)
        stepper.kernel_cycles += 1
        self.counters.cycles += 1
        self.cycle = now + 1

    def _drain_wheel(self, now: int) -> None:
        """Translate this cycle's wheel events into stepper ring chunks.

        Cut-link deliveries are the only wheel writers in a vec domain.
        Per-cycle uniqueness (one arrival per input port, one credit per
        output VC — link serialization only spreads sends further apart)
        makes the chunked fancy-indexed application exact, same as for
        ring-native events.  ``_in_flight_flits`` was already adjusted by
        the link at schedule time, so translation is pure re-indexing.
        """
        events = self._events.pop(now, None)
        if events is None:
            return
        times = self._event_times
        if times and times[0] == now:
            heappop(times)
        s = self.s
        P, V = s.P, s.V
        arr_fi: list[int] = []
        arr_pk: list[int] = []
        arr_sq: list[int] = []
        cred_fi: list[int] = []
        cred_rel: list[bool] = []
        pk_index = self._pk_index
        for ev in events:
            if ev[0] == _ARRIVAL:
                _, rid, port, vc, flit = ev
                packet = flit.packet
                idx = pk_index.get(packet.pid)
                if idx is None:
                    idx = s.intern(packet)
                    pk_index[packet.pid] = idx
                arr_fi.append((rid * P + port) * V + vc)
                arr_pk.append(idx)
                arr_sq.append(flit.seq)
            else:  # _CREDIT: sink is our boundary OutputPort object
                _, sink, vc, release = ev
                cred_fi.append((sink.owner * P + sink.index) * V + vc)
                cred_rel.append(release)
        stepper = self._stepper
        slot = stepper.slot(now)
        n = 0
        if arr_fi:
            slot["arr"].append(
                (
                    np.array(arr_fi, dtype=np.int64),
                    np.array(arr_pk, dtype=np.int64),
                    np.array(arr_sq, dtype=np.int64),
                )
            )
            n += len(arr_fi)
        if cred_fi:
            slot["cred"].append(
                (np.array(cred_fi, dtype=np.int64), np.array(cred_rel, dtype=bool))
            )
            n += len(cred_fi)
        stepper.add_slot_count(now, n)

    def has_active_work(self) -> bool:
        return bool(self._stepper.busy_vcs or self._active_nis)

    def next_event_time(self) -> int | None:
        ring = self._stepper.next_event_time(self.cycle)
        wheel = DomainNetwork.next_event_time(self)
        if ring is None:
            return wheel
        if wheel is None:
            return ring
        return min(ring, wheel)

    # skip_to is inherited: the SoA arrays hold no clock, so advancing
    # Network.cycle (+ counters) is the whole fast-forward.

    # --- engine-neutral introspection ---------------------------------------

    def counter_snapshot(self) -> dict:
        # Flush the SoA per-link counts into the object-side table (the
        # report surface), zeroing them so repeated snapshots don't
        # double-count.
        links = self.s.links
        if links.any():
            link_counts = self._link_counts
            for r, row in enumerate(links.tolist()):
                counts = link_counts[r]
                for p, c in enumerate(row):
                    counts[p] += c
            links[:] = 0
        snap = self.counters.snapshot()
        snap["vec_kernel_cycles"] = self._stepper.kernel_cycles
        return snap

    def export_flow_state(self) -> dict:
        return self.s.export_flow_state(
            self.cycle,
            owned_routers=self._owned_routers,
            owned_terminals=self._owned_terminals,
        )

    def outstanding_flits(self) -> int:
        """Flits between source-queue entry and ejection, array-side.

        The object ``pending_flits`` can't be used: while a packet streams
        from the SoA side its NI holds only a sentinel, so the remaining
        (unstreamed) flit count lives in ``ni_rem``.
        """
        queued = sum(
            p.num_flits for ni in self._live_interfaces for p in ni.queue
        )
        return queued + int(self.s.ni_rem.sum()) + self._in_flight_flits

    def credit_of(self, rid: int, port: int, vc: int) -> int:
        return int(self.s.ocred[rid, port, vc])

    def ni_credit_of(self, terminal: int, vc: int) -> int:
        return int(self.s.ni_cred1[terminal * self.s.V + vc])

    def occupancy_of(self, rid: int, port: int, vc: int) -> int:
        return int(self.s.occ[rid, port, vc])

    def pending_event_index(self) -> tuple[dict, dict]:
        arrivals, credits = DomainNetwork.pending_event_index(self)
        ring_arr, ring_cred = self._stepper.pending_ring_index()
        for key, count in ring_arr.items():
            arrivals[key] = arrivals.get(key, 0) + count
        for key, count in ring_cred.items():
            credits[key] = credits.get(key, 0) + count
        return arrivals, credits


__all__ = ["VecDomain"]
