"""Which configurations the vectorized engine can execute.

The struct-of-arrays kernel batches *separable* round-robin arbitration:
phase-1/phase-2 pointer updates are data-parallel across routers because
each arbiter's decision depends only on its own pointer and request lines.
Schemes whose grant rule is inherently sequential or graph-shaped have no
such formulation and stay on the object engines:

* ``wavefront`` — diagonal-sweep priority couples every (input, output)
  cell; the sweep order *is* the algorithm.
* ``augmenting_path`` — maximum matching via path search over the request
  graph.
* ``packet_chaining`` — reuses last cycle's matching with chained holds.
* ``sparoflo`` — multi-request iterative rounds with inter-round coupling.

VC-selection policies and topologies are gated the same way: the kernel
implements ``max_credit`` and ``vix_dimension`` arithmetic directly, and it
precomputes routing/lookahead tables from the topology, which is only valid
when the topology does not override dateline VC masking
(:meth:`~repro.topology.base.Topology.allowed_vcs`, e.g. the torus).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.registry import UnknownSchemeError, allocators, vc_policies
from repro.topology import make_topology
from repro.topology.base import Topology

if TYPE_CHECKING:
    from repro.network.config import NetworkConfig

#: Allocator schemes (canonical names) with an array formulation.
SUPPORTED_ALLOCATORS = ("input_first", "output_first", "vix", "ideal_vix")
#: VC-selection policies the VA kernel implements.
SUPPORTED_VC_POLICIES = ("max_credit", "vix_dimension")


def vectorization_unsupported_reason(config: "NetworkConfig") -> str | None:
    """Why ``config`` cannot run on the SoA kernel, or ``None`` if it can.

    Checks the allocator family, the VC-selection policy, and whether the
    topology keeps the base (permissive) ``allowed_vcs`` rule.  Returns a
    human-readable reason suitable for an error message or a fallback log.
    """
    allocator = allocators.canonical(config.router.allocator)
    if allocator not in SUPPORTED_ALLOCATORS:
        return (
            f"allocator {allocator!r} has no struct-of-arrays formulation "
            f"(vectorizable allocators: {list(SUPPORTED_ALLOCATORS)})"
        )
    policy = vc_policies.canonical(config.router.vc_policy)
    if policy not in SUPPORTED_VC_POLICIES:
        return (
            f"vc_policy {policy!r} is not implemented by the VA kernel "
            f"(vectorizable policies: {list(SUPPORTED_VC_POLICIES)})"
        )
    topo = make_topology(config.topology, config.num_terminals)
    if type(topo).allowed_vcs is not Topology.allowed_vcs:
        return (
            f"topology {config.topology!r} overrides allowed_vcs (dateline VC "
            "masking), which the VA kernel does not model"
        )
    k = config.router.effective_virtual_inputs
    if config.router.num_vcs % max(1, k) != 0:
        # Unreachable through the allocator constructors (they validate the
        # same divisibility), kept as a defensive invariant for the reshape.
        return (
            f"num_vcs ({config.router.num_vcs}) is not divisible by the "
            f"effective virtual inputs ({k})"
        )
    return None


def require_vectorizable(config: "NetworkConfig") -> None:
    """Raise the registry-style error when ``config`` cannot vectorize.

    Mirrors :class:`~repro.registry.UnknownSchemeError` phrasing so callers
    see the same shape of message as for an unknown scheme name, including
    which engines *can* run the configuration.
    """
    reason = vectorization_unsupported_reason(config)
    if reason is not None:
        raise UnknownSchemeError(
            f"configuration not supported by engine 'vectorized': {reason}; "
            "use engine 'dense' or 'gated' (object stepping) for this "
            "configuration"
        )
