"""Struct-of-arrays (numpy) simulation engine — the ``vectorized`` backend.

The capability checks (:mod:`~repro.sim.vec.support`) are numpy-free and
import eagerly — callers probe vectorizability without the dependency.
:class:`VectorizedSimulation` loads lazily on first attribute access and
is what actually needs numpy; the engine registry
(:mod:`repro.sim.engines`) catches the ImportError and re-raises it with
install guidance, so numpy-less environments keep the object engines fully
working.
"""

from .support import (
    SUPPORTED_ALLOCATORS,
    SUPPORTED_VC_POLICIES,
    require_vectorizable,
    vectorization_unsupported_reason,
)


def __getattr__(name: str):
    if name == "VectorizedSimulation":
        from .engine import VectorizedSimulation

        return VectorizedSimulation
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "SUPPORTED_ALLOCATORS",
    "SUPPORTED_VC_POLICIES",
    "VectorizedSimulation",
    "require_vectorizable",
    "vectorization_unsupported_reason",
]
