"""The SoA per-cycle stepper, shared by the monolithic and domain engines.

:class:`VecStepper` owns the hot path that used to live inside
:class:`~repro.sim.vec.engine.VectorizedSimulation`: the fixed-size event
ring, flit/credit delivery, the vectorized NI phase, and grant
application over one :class:`~repro.sim.vec.state.SoAState`.  The
monolithic engine drives one stepper over the whole network; the
partitioned engine drives one per :class:`~repro.sim.vec.domain.VecDomain`.

Boundary traffic is the only difference between the two: a domain
registers its cut-link ports via :meth:`add_egress`/:meth:`add_ingress`,
and :meth:`apply_grants` diverts granted flits on masked output ports
into :meth:`~repro.network.links.InterChipLink.send_flit` (and freed
buffer credits on masked input ports into ``send_credit``) instead of the
local ring — the exact calls the object engine's grant loop makes at a
boundary, so link serialization, latency, and outbox behavior are
identical across domain engines.  With no masks registered (the
monolithic case) the masked branches never run.

Per-cycle event uniqueness — at most one arrival per (router, input
port) and one credit per (output port, VC) per cycle, including across
links (one grant per output port per cycle, constant link latency,
serialization only spreads further apart) — is what makes the chunked
fancy-indexed updates exact and chunk order commutative.
"""

from __future__ import annotations

import numpy as np

from repro.network.flit import Flit, FlitType

from .kernels import (
    sa_input_first,
    sa_output_first,
    select_max_credit,
    select_vix_dimension,
    va_kernel,
)
from .state import ACTIVE, IDLE, VA_WAIT, SoAState


def boundary_flit(packet, seq: int, last: int) -> Flit:
    """Reconstruct the flit object a cut link carries.

    The kernel keeps flits as (packet index, seq) pairs; a link crossing
    needs the real :class:`~repro.network.flit.Flit` back (the far side
    may be an object domain, and worker mode pickles it).  The flit type
    is a pure function of (seq, last), matching ``Packet.make_flits``.
    """
    if last == 0:
        ftype = FlitType.SINGLE
    elif seq == 0:
        ftype = FlitType.HEAD
    elif seq == last:
        ftype = FlitType.TAIL
    else:
        ftype = FlitType.BODY
    return Flit(packet, ftype, seq)


class VecStepper:
    """Event ring + per-cycle kernel phases over one :class:`SoAState`."""

    __slots__ = (
        "net",
        "s",
        "_sa",
        "_pipe",
        "_cdel",
        "_ring_size",
        "_slots",
        "_slot_n",
        "busy_vcs",
        "kernel_cycles",
        "_egress",
        "_egress_mask",
        "_ingress",
        "_ingress_mask",
    )

    def __init__(self, network, s: SoAState) -> None:
        self.net = network
        self.s = s
        self._sa = sa_output_first if s.output_first else sa_input_first
        rc = network.config.router
        self._pipe = rc.pipeline_stages
        self._cdel = rc.credit_delay
        # Event ring: one slot per future cycle up to the longest *local*
        # latency (cut-link events ride the network wheel instead — their
        # latencies may exceed any fixed horizon).
        self._ring_size = max(self._pipe, self._cdel, 1) + 1
        self._slots = [
            {"arr": [], "cred": [], "nicred": [], "ej": []}
            for _ in range(self._ring_size)
        ]
        self._slot_n = [0] * self._ring_size
        #: Non-IDLE input VCs (the router-side has-work test for idle skip).
        self.busy_vcs = 0
        #: Cycles executed through the array kernel (reported in counters).
        self.kernel_cycles = 0
        # Cut-link boundary hooks: flat (router*P + port) -> InterChipLink.
        self._egress: dict[int, object] = {}
        self._egress_mask: np.ndarray | None = None
        self._ingress: dict[int, object] = {}
        self._ingress_mask: np.ndarray | None = None

    # --- boundary registration ---------------------------------------------

    def add_egress(self, port_flat: int, link) -> None:
        """Divert grants on flat output port ``port_flat`` into ``link``."""
        if self._egress_mask is None:
            self._egress_mask = np.zeros(self.s.RP, dtype=bool)
        self._egress_mask[port_flat] = True
        self._egress[port_flat] = link

    def add_ingress(self, port_flat: int, link) -> None:
        """Divert credits freed at flat input port ``port_flat`` into ``link``."""
        if self._ingress_mask is None:
            self._ingress_mask = np.zeros(self.s.RP, dtype=bool)
        self._ingress_mask[port_flat] = True
        self._ingress[port_flat] = link

    # --- event ring ---------------------------------------------------------

    def slot(self, when: int) -> dict:
        return self._slots[when % self._ring_size]

    def add_slot_count(self, when: int, n: int) -> None:
        self._slot_n[when % self._ring_size] += n

    def next_event_time(self, now: int) -> int | None:
        """Earliest future cycle with a scheduled ring event, or ``None``."""
        for delta in range(1, self._ring_size):
            if self._slot_n[(now + delta) % self._ring_size]:
                return now + delta
        return None

    def pending_ring_index(self):
        """Pending ring events by target, for the invariant checker.

        Returns ``(arrivals, credits)``: arrivals keyed ``(router, port,
        vc) -> count`` and credits keyed ``(router, port, vc)`` for router
        output VCs / ``("ni", terminal, vc)`` for NI injection credits.
        """
        s = self.s
        arrivals: dict[tuple, int] = {}
        credits: dict[tuple, int] = {}
        for slot in self._slots:
            for fi, _pk, _sq in slot["arr"]:
                for f in np.asarray(fi).reshape(-1).tolist():
                    key = (f // s.PV, (f // s.V) % s.P, f % s.V)
                    arrivals[key] = arrivals.get(key, 0) + 1
            for cfi, _rel in slot["cred"]:
                for c in np.asarray(cfi).reshape(-1).tolist():
                    key = (c // s.PV, (c // s.V) % s.P, c % s.V)
                    credits[key] = credits.get(key, 0) + 1
            for cfi, _rel in slot["nicred"]:
                for c in np.asarray(cfi).reshape(-1).tolist():
                    key = ("ni", c // s.V, c % s.V)
                    credits[key] = credits.get(key, 0) + 1
        return arrivals, credits

    # --- per-cycle phases ---------------------------------------------------

    def deliver(self, now: int) -> None:
        idx = now % self._ring_size
        if not self._slot_n[idx]:
            return
        slot = self._slots[idx]
        s = self.s
        counters = self.net.counters

        # Credit events carry the flat index of the upstream output VC; at
        # most one credit per (output port, vc) per cycle, so fancy += is
        # exact.  Releases can share a port, hence add.at for the free count.
        for cfi, rel in slot["cred"]:
            s.ocred1[cfi] += 1
            if rel.any():
                rfi = cfi[rel]
                s.oalloc1[rfi] = False
                np.add.at(s.nfree, rfi // s.V, 1)
        # NI credits use the same flat (terminal, vc) convention; like router
        # credits they are unique per (output vc, cycle), so fancy += is exact.
        for cfi, rel in slot["nicred"]:
            s.ni_cred1[cfi] += 1
            if rel.any():
                s.ni_alloc1[cfi[rel]] = False

        chunks = slot["arr"]
        if chunks:
            if len(chunks) == 1:
                fi, pk, sq = chunks[0]
            else:
                fi, pk, sq = (np.concatenate(parts) for parts in zip(*chunks))
            # At most one arrival per (router, input port) per cycle, so the
            # flat VC indices are distinct and fancy updates are exact.
            occ0 = s.occ1[fi]
            s.occ1[fi] = occ0 + 1
            fresh = occ0 == 0  # queue was empty: this flit is head-of-line
            s.hseq1[fi[fresh]] = sq[fresh]
            heads = sq == 0
            if heads.any():
                hfi = fi[heads]
                hpk = pk[heads]
                hd = s.pk_dst[hpk]
                out = s.route1[(hfi // s.PV) * s.T + hd]
                s.pkt1[hfi] = hpk
                s.dst1[hfi] = hd
                s.outp1[hfi] = out
                eject = out < s.C
                s.st1[hfi] = np.where(eject, ACTIVE, VA_WAIT)
                s.outv1[hfi[eject]] = 0
                self.busy_vcs += int(heads.sum())
            counters.buffer_writes += fi.size

        # Read per call: worker mode swaps the domain's collector after fork.
        stats = self.net.stats
        packets = s.packets
        # on_flit_ejected is a pure windowed count, so it batches per chunk;
        # tails still replay per packet (latency + outstanding bookkeeping).
        in_window = stats.window_start <= now < stats.window_end
        by_creation = stats.window_by_creation
        ws, we = stats.window_start, stats.window_end
        for terms, pks, tails in slot["ej"]:
            n = len(terms)
            counters.flits_ejected += n
            self.net._in_flight_flits -= n
            if in_window:
                stats.flits_ejected += n
            tpk = pks[tails].tolist()
            if not tpk:
                continue
            counters.packets_ejected += len(tpk)
            if in_window:
                stats.packets_ejected += len(tpk)
            # Inlined stats.on_packet_ejected (per-packet method dispatch is
            # measurable at saturation); the window test hoists per chunk.
            per_src = stats.per_source_ejected
            latencies = stats.latencies
            if by_creation:
                # WindowStats: measured-ness keyed by created_cycle (a
                # packet may be created in another worker's domain).
                for pki in tpk:
                    packet = packets[pki]
                    packet.ejected_cycle = now
                    if in_window:
                        per_src[packet.src] += 1
                    created = packet.created_cycle
                    if ws <= created < we:
                        latencies.append(now - created)
            else:
                outstanding = stats._outstanding
                for pki in tpk:
                    packet = packets[pki]
                    packet.ejected_cycle = now
                    if in_window:
                        per_src[packet.src] += 1
                    pid = packet.pid
                    if pid in outstanding:
                        outstanding.discard(pid)
                        latencies.append(now - packet.created_cycle)

        slot["arr"].clear()
        slot["cred"].clear()
        slot["nicred"].clear()
        slot["ej"].clear()
        self._slot_n[idx] = 0

    def ni_phase(self, now: int) -> None:
        """Vectorized ``NetworkInterface.next_flit`` across all active NIs.

        NIs are mutually independent within a cycle, so allocation and
        streaming batch over the active set (iteration order is
        irrelevant).  The object NIs keep owning the source queues — the
        injector's ``queue_length >= 4`` saturation check reads
        ``len(queue) + (1 if _current_flits else 0)``, so a sentinel is
        pushed into ``_current_flits`` while a packet streams from the SoA
        side and cleared when its tail leaves.
        """
        network = self.net
        active_nis = network._active_nis
        if not active_nis:
            return
        interfaces = network.interfaces
        s = self.s
        V = s.V
        terms = np.fromiter(active_nis, np.int64, len(active_nis))

        # Allocation: an active NI with no packet in flight always has a
        # queued packet (completion deactivates empty-queue NIs).  Matching
        # the object NI, a packet is only dequeued when some output VC is
        # unallocated *and* has credits.
        needy = terms[s.ni_rem[terms] == 0]
        if needy.size:
            cols = (needy * V)[:, None] + s._arV
            cand = ~s.ni_alloc1[cols] & (s.ni_cred1[cols] > 0)
            has = cand.any(-1)
            if not has.all():
                needy = needy[has]
                cand = cand[has]
                cols = cols[has]
            if needy.size:
                pkidx = np.empty(needy.size, dtype=np.int64)
                rems = np.empty(needy.size, dtype=np.int64)
                for i, t in enumerate(needy.tolist()):
                    ni = interfaces[t]
                    packet = ni.queue.popleft()
                    pkidx[i] = s.intern(packet)
                    rems[i] = packet.num_flits
                    ni._current_flits.append(None)  # queue_length sentinel
                if (cand.sum(-1) == 1).all():
                    choice = cand.argmax(-1)
                elif s.policy_vix:
                    direction = s.ni_dir1[needy * s.T + s.pk_dst[pkidx]]
                    choice = select_vix_dimension(
                        s, cand, s.ni_cred1[cols], direction
                    )
                else:
                    choice = select_max_credit(cand, s.ni_cred1[cols])
                s.ni_alloc1[needy * V + choice] = True
                s.ni_vc[needy] = choice
                s.ni_seq[needy] = 0
                s.ni_rem[needy] = rems
                s.ni_pk[needy] = pkidx

        # Streaming: one flit per NI per cycle when the allocated VC has a
        # credit (ejection-side credits are returned by apply_grants).
        vcs = s.ni_vc[terms]
        m = (s.ni_rem[terms] > 0) & (s.ni_cred1[terms * V + vcs] > 0)
        st = terms[m]
        if st.size == 0:
            return
        svc = vcs[m]
        s.ni_cred1[st * V + svc] -= 1
        sq = s.ni_seq[st]
        s.ni_seq[st] = sq + 1
        nrem = s.ni_rem[st] - 1
        s.ni_rem[st] = nrem
        self.slot(now + 1)["arr"].append((s.ni_fi1[st] + svc, s.ni_pk[st], sq))
        self._slot_n[(now + 1) % self._ring_size] += st.size
        network._in_flight_flits += st.size
        for t in st[nrem == 0].tolist():
            ni = interfaces[t]
            ni._current_flits.clear()
            if not ni.queue:
                active_nis.discard(t)

    def allocate(self, now: int) -> None:
        """VA + SA kernels and grant application for one cycle."""
        if not self.busy_vcs:
            return
        va_kernel(self.s)
        grants = self._sa(self.s)
        if grants is not None:
            self.apply_grants(now, grants)

    # --- boundary sends -----------------------------------------------------

    def _send_link_flits(self, now, fpo, fv, fpk, fsq) -> None:
        s = self.s
        packets = s.packets
        pk_last = s.pk_last
        egress = self._egress
        for po, vc, pki, seq in zip(
            fpo.tolist(), fv.tolist(), fpk.tolist(), fsq.tolist()
        ):
            egress[po].send_flit(
                now, vc, boundary_flit(packets[pki], seq, int(pk_last[pki]))
            )

    def _send_link_credits(self, now, ports, vcs, rels) -> None:
        ingress = self._ingress
        for po, vc, rel in zip(ports.tolist(), vcs.tolist(), rels.tolist()):
            ingress[po].send_credit(now, vc, bool(rel))

    def apply_grants(self, now: int, grants) -> None:
        gfi, gout = grants
        n = gfi.size
        s = self.s
        pk = s.pkt1[gfi]
        sq = s.hseq1[gfi]
        s.occ1[gfi] -= 1
        s.hseq1[gfi] = sq + 1
        tail = sq == s.pk_last[pk]
        eject = gout < s.C
        rp = (gfi // s.PV) * s.P  # flat (router, *) base, port added per use

        move_slot = self.slot(now + self._pipe)
        n_ej = int(eject.sum())
        n_fwd = n - n_ej
        n_ring = n_ej  # ring-scheduled moves (boundary flits ride the link)
        if n_fwd:
            forward = ~eject
            ffi = gfi[forward]
            fpo = rp[forward] + gout[forward]
            fv = s.outv1[ffi]
            # Credit decrement and link count apply to boundary ports too:
            # the source-side credit counter mirrors the remote buffer.
            s.ocred1[fpo * s.V + fv] -= 1
            s.links1[fpo] += 1
            fpk = pk[forward]
            fsq = sq[forward]
            bnd = (
                self._egress_mask[fpo] if self._egress_mask is not None else None
            )
            if bnd is not None and bnd.any():
                self._send_link_flits(
                    now, fpo[bnd], fv[bnd], fpk[bnd], fsq[bnd]
                )
                loc = ~bnd
                n_loc = int(loc.sum())
                if n_loc:
                    move_slot["arr"].append(
                        (s.down_fi1[fpo[loc]] + fv[loc], fpk[loc], fsq[loc])
                    )
                n_ring += n_loc
            else:
                move_slot["arr"].append((s.down_fi1[fpo] + fv, fpk, fsq))
                n_ring += n_fwd
        if n_ej:
            epo = gfi[eject] // s.PV * s.C + gout[eject]
            move_slot["ej"].append((s.term1[epo], pk[eject], tail[eject]))
        self._slot_n[(now + self._pipe) % self._ring_size] += n_ring

        credit_slot = self.slot(now + self._cdel)
        gp = (gfi // s.V) % s.P  # input port of the granted VC
        up = s.up_cfi1[rp + gp]
        gvc = gfi % s.V
        local = gp < s.C
        remote = ~local & (up >= 0)
        if self._ingress_mask is not None:
            ing = self._ingress_mask[rp + gp]
            if ing.any():
                # Boundary input port: the freed slot's credit crosses the
                # cut link back to the source domain.
                remote &= ~ing
                self._send_link_credits(now, (rp + gp)[ing], gvc[ing], tail[ing])
        cidx = (now + self._cdel) % self._ring_size
        n_rem = int(remote.sum())
        if n_rem:
            credit_slot["cred"].append((up[remote] + gvc[remote], tail[remote]))
            self._slot_n[cidx] += n_rem
        if local.any():
            lterm = s.term1[(gfi[local] // s.PV) * s.C + gp[local]]
            credit_slot["nicred"].append(
                (lterm * s.V + gvc[local], tail[local])
            )
            self._slot_n[cidx] += lterm.size

        n_tail = int(tail.sum())
        if n_tail:
            # Only ``st`` must reset: pkt/dst/outp/outv are refreshed at the
            # next head arrival before any kernel reads them (reads are gated
            # on VA_WAIT / ACTIVE), so stale values are never observed.
            s.st1[gfi[tail]] = IDLE
            self.busy_vcs -= n_tail

        counters = self.net.counters
        counters.buffer_reads += n
        counters.xbar_traversals += n
        counters.link_traversals += n_fwd


__all__ = ["VecStepper", "boundary_flit"]
