"""Batched VC-allocation and switch-allocation kernels.

Each function replays, with array ops across every router at once, the
exact decision sequence of the object engine's per-router loops.  The core
primitive is the batched round-robin grant over *sorted rolled offsets*:
the winner of a round-robin arbiter minimizes ``(slot - pointer) mod n``
(exactly :func:`repro.core.arbiter.rr_winner`; a drift-guard test pins the
two together), and because the pointer advances one past each winner, the
winners of successive rounds are simply the requesters in ascending offset
order.  Sorting requesters by ``(arbiter id, offset)`` therefore yields
every arbiter's full grant sequence in one argsort — group heads are the
round-1 winners, ranks within a group are round numbers.

Everything is addressed through the flat views and precomputed index/roll
tables of :class:`~repro.sim.vec.state.SoAState`: at these array sizes (a
few thousand elements) numpy per-op dispatch dominates, and single-array
flat indexing is several times cheaper than multi-axis fancy indexing or
axis reductions over request cubes.

Order independence, which is what makes batching legal:

* every VA requester targets exactly one output, so a VA round grants at
  most one winner per (router, output) and winners never collide;
* SA phase 1 winners are per crossbar input, phase 2 winners per output —
  a granted (input VC, output) pair is unique both ways;
* per-router allocator state (pointers, credits) is only read and written
  by that router's own arbitration, so routers are independent within a
  cycle (the object engine's sorted-rid loop has no cross-router effect).

Only the VA VC *choice* stays sequential (the policy consumes one free
output VC per round), replayed round by round over arrays that shrink to
the few outputs with multiple same-cycle heads.
"""

from __future__ import annotations

import numpy as np

from .state import ACTIVE, VA_WAIT, SoAState


def rr_pick(mask: np.ndarray, ptr: np.ndarray, n: int) -> np.ndarray:
    """Batched round-robin winner over the trailing axis.

    ``mask[..., n]`` holds the request lines, ``ptr[...]`` the pointers.
    The winner minimizes ``(slot - ptr) mod n`` among requesters — exactly
    :func:`repro.core.arbiter.rr_winner`.  Rows with no requester return 0;
    callers mask those out with ``mask.any(-1)``.  (Reference formulation;
    the production kernels use the sorted-offset form of the same rule.)
    """
    offsets = (np.arange(n) - ptr[..., None]) % n
    return np.where(mask, offsets, n).argmin(-1)


def select_max_credit(cand: np.ndarray, creds: np.ndarray) -> np.ndarray:
    """Vector :class:`~repro.core.vc_policy.MaxCreditPolicy`.

    ``cand[W, V]`` marks free VCs, ``creds[W, V]`` their credit counts.
    Most credits wins, ties to the lowest VC id (argmax takes the first
    maximum) — the object policy's strict-``>`` scan in VC order.
    """
    return np.where(cand, creds, -1).argmax(-1)


def select_vix_dimension(
    s: SoAState,
    cand: np.ndarray,
    creds: np.ndarray,
    direction: np.ndarray,
) -> np.ndarray:
    """Vector :class:`~repro.core.vc_policy.VixDimensionPolicy`.

    Groups the ``V = k * gs`` VCs into ``k`` sub-groups, prefers the group
    matching the downstream direction class (``direction``, -1 for "ejects
    downstream"), otherwise the group maximizing (candidate count, summed
    credits, lowest group id); within the group, most credits wins with
    ties to the lowest VC.

    The whole decision collapses to one argmax over a fused per-VC int64
    key: lexicographic (forced-group bonus, group score, -group id, local
    value) with the state's precomputed strides (``sumcap`` > any credit
    sum ranks candidate count above summed credits inside the group score;
    ``vix_bonus`` only lifts a direction's preferred group, so a forced
    group with no candidate — all its keys masked to -1 — falls back to
    the score ordering, exactly the object policy's ``score > 0`` test).
    Ties resolve to the first maximum = lowest VC of the lowest group.
    """
    val = np.where(cand, creds + s.sumcap, 0)
    score = val @ s.grp_mat
    key = score[:, s.gof] * s._m2 + (s.gtb + val) + s.vix_bonus[direction + 1]
    return np.where(cand, key, -1).argmax(-1)


def _group_heads(key_sorted: np.ndarray) -> np.ndarray:
    """Boolean mask of the first element of each run in a sorted key array."""
    head = np.empty(key_sorted.size, dtype=bool)
    head[0] = True
    np.not_equal(key_sorted[1:], key_sorted[:-1], out=head[1:])
    return head


def va_kernel(s: SoAState) -> int:
    """One cycle of VC allocation across every router; returns #granted.

    Replays ``Router.vc_allocate``: per (router, output) the round-robin
    arbiter picks one VA_WAIT head per round (pointer rotating past every
    winner), the VC policy assigns a free output VC, and rounds repeat
    while the output still has both a requester and a free VC.  Requesters
    left over when an output's VCs run out stay VA_WAIT for next cycle.

    The winners of all rounds and the final pointers come from one sort by
    rolled offset (see module docstring); only the per-round VC choice
    iterates, over the pairs still granting in that round.
    """
    PV, P, V, T = s.PV, s.P, s.V, s.T
    fi = np.flatnonzero(s.st1 == VA_WAIT)
    if fi.size == 0:
        return 0
    pair = (fi // PV) * P + s.outp1[fi]
    # Outputs with no free VC run no arbitration at all (no pointer
    # rotation, no grant) — drop their requesters up front.  At saturation
    # this is the overwhelming majority of the VA_WAIT set.
    ok = s.nfree[pair] > 0
    if not ok.all():
        fi = fi[ok]
        pair = pair[ok]
        if fi.size == 0:
            return 0
    slot = fi % PV
    off = s.roll_va1[s.va_ptr1[pair] * PV + slot]
    # Offsets are unique within a pair, so this key has no ties and the
    # sort groups requesters by pair in round (offset) order.
    order = np.argsort(pair * PV + off)
    fi = fi[order]
    pair = pair[order]
    slot = slot[order]
    # Rank within the pair group = the round this requester would win.
    idx = s._arN[: pair.size]
    rank = idx - np.maximum.accumulate(np.where(_group_heads(pair), idx, 0))
    # Rounds run while the output has requesters AND free VCs: this pair
    # grants min(#requesters, #free) rounds, in rank order.
    nwin = np.minimum(np.bincount(pair, minlength=s.RP), s.nfree)[pair]
    granted = rank < nwin
    ngrant = int(granted.sum())
    if ngrant == 0:
        return 0
    # The pointer ends one past the last winner (it rotated past each).
    last = granted & (rank == nwin - 1)
    s.va_ptr1[pair[last]] = s.inc_va[slot[last]]
    # Round-by-round VC choice: the policy consumes one free VC per grant,
    # so later rounds see the earlier choices.  Round 0 covers every
    # granting pair; later rounds only the (few) pairs with several
    # same-cycle heads for one output.
    gidx = np.flatnonzero(granted)
    r = 0
    while True:
        sel = gidx[rank[gidx] == r]
        if sel.size == 0:
            break
        gp = pair[sel]
        gfi = fi[sel]
        cols = (gp * V)[:, None] + s._arV
        cand = ~s.oalloc1[cols]
        if (s.nfree[gp] == 1).all():
            # Single free VC everywhere: the choice is forced, exactly as
            # the object router's lone-candidate shortcut (every policy
            # returns the only candidate).  The common case at saturation,
            # where grants chase individual credit releases.
            choice = cand.argmax(-1)
        elif s.policy_vix:
            direction = s.la1[gp * T + s.dst1[gfi]]
            choice = select_vix_dimension(s, cand, s.ocred1[cols], direction)
        else:
            choice = select_max_credit(cand, s.ocred1[cols])
        s.oalloc1[gp * V + choice] = True
        s.nfree[gp] -= 1
        s.st1[gfi] = ACTIVE
        s.outv1[gfi] = choice
        if sel.size == gidx.size:
            break
        r += 1
    return ngrant


def _sa_requests(s: SoAState):
    """Switch-allocation request lines: ACTIVE, buffered, and creditable.

    Returns flat VC index, assigned output port, and (router, output) pair
    id per request.  The credit test covers ejection too: local output
    ports never spend credits, so their count stays at ``buffer_depth``
    (>= 1) and the NI always sinks.
    """
    fi = np.flatnonzero((s.st1 == ACTIVE) & (s.occ1 > 0))
    if fi.size == 0:
        return None
    out = s.outp1[fi]
    po = (fi // s.PV) * s.P + out
    ok = s.ocred1[po * s.V + s.outv1[fi]] > 0
    if not ok.all():
        fi, out, po = fi[ok], out[ok], po[ok]
        if fi.size == 0:
            return None
    return fi, out, po


def sa_input_first(s: SoAState):
    """Input-first / VIX switch allocation (``SeparableInputFirstAllocator``).

    Phase 1: each crossbar input (``P * k`` per router, ``gs`` VCs each)
    round-robins among its requesting VCs.  Phase 2: each output
    round-robins among the crossbar inputs whose phase-1 winner wants it.
    Both pointers rotate whenever the arbiter saw any requester, matching
    the plain-pointer object allocator on every path (fast, single-dirty,
    and general).  Returns ``(flat VC index, output port)`` per grant.
    """
    sel = _sa_requests(s)
    if sel is None:
        return None
    fi, out, po = sel
    k, gs, Pk, V, PV = s.k, s.gs, s.Pk, s.V, s.PV
    if gs == 1:
        # Ideal VIX: one VC per crossbar input (k == V, so the global
        # crossbar-input id collapses to the flat VC index) — every
        # requester wins its own phase-1 arbiter and the width-1 pointer
        # rotation (0 + 1) % 1 is a no-op.
        wfi, wout, wpo, wg = fi, out, po, fi % PV
    else:
        vv = fi % V
        lv = vv % gs
        gg = (fi // V) * k + vv // gs  # global crossbar-input id
        off = s.roll_p1_1[s.in_ptr1[gg] * gs + lv]
        order = np.argsort(gg * gs + off)
        head = _group_heads(gg[order])
        win = order[head]
        # Every group present rotated its arbiter (one winner per group).
        s.in_ptr1[gg[win]] = s.inc_p1[lv[win]]
        wfi, wout, wpo = fi[win], out[win], po[win]
        wg = gg[win] % Pk
    # Phase 2: outputs arbitrate among their offering crossbar inputs.
    off2 = s.roll_p2_1[s.out_ptr1[wpo] * Pk + wg]
    order2 = np.argsort(wpo * Pk + off2)
    head2 = _group_heads(wpo[order2])
    win2 = order2[head2]
    s.out_ptr1[wpo[win2]] = s.inc_p2[wg[win2]]
    return wfi[win2], wout[win2]


def sa_output_first(s: SoAState):
    """Output-first switch allocation (``SeparableOutputFirstAllocator``).

    Phase 1: each output round-robins among **all** requesting (port, vc)
    lines within the router.  Phase 2: each input port round-robins among
    the outputs that picked one of its VCs (OF always runs a conventional
    k=1 crossbar input per port).  Returns ``(flat VC index, output port)``.
    """
    sel = _sa_requests(s)
    if sel is None:
        return None
    fi, out, po = sel
    V, P, PV = s.V, s.P, s.PV
    slot = fi % PV
    off = s.roll_of1_1[s.of_out_ptr1[po] * PV + slot]
    order = np.argsort(po * PV + off)
    head = _group_heads(po[order])
    win = order[head]
    s.of_out_ptr1[po[win]] = s.inc_of1[slot[win]]
    # Phase 2: each input port arbitrates among the outputs offering to it
    # (the arbiter slot is the *output* id).
    wfi, wout = fi[win], out[win]
    ig = wfi // V  # flat (router, input port) id
    off2 = s.roll_of2_1[s.of_in_ptr1[ig] * P + wout]
    order2 = np.argsort(ig * P + off2)
    head2 = _group_heads(ig[order2])
    win2 = order2[head2]
    s.of_in_ptr1[ig[win2]] = s.inc_of2[wout[win2]]
    return wfi[win2], wout[win2]
