"""Struct-of-arrays state for the vectorized engine.

The object engine scatters router state across ``Router``/``InputVC``/
``OutputPort`` instances; the SoA kernel keeps the same information as a
handful of dense numpy tensors indexed ``[router, port, vc]`` so one array
op touches every router per cycle:

====================  =========  ==================================================
array                 shape      object-engine equivalent
====================  =========  ==================================================
``st``                (R, P, V)  ``InputVC.state`` (IDLE / VA_WAIT / ACTIVE)
``occ``               (R, P, V)  ``len(InputVC.queue)``
``hseq``              (R, P, V)  seq number of the head-of-line flit
``pkt``               (R, P, V)  interned index of the packet owning the VC
``dst``               (R, P, V)  destination terminal of that packet
``outp`` / ``outv``   (R, P, V)  ``InputVC.out_port`` / ``InputVC.out_vc``
``ocred``             (R, P, V)  ``OutputPort.out_vcs[v].credits``
``oalloc``            (R, P, V)  ``OutputPort.out_vcs[v].allocated``
====================  =========  ==================================================

Buffered flits are not stored individually: wormhole links deliver a
packet's flits in seq order into an atomically-allocated VC, so a VC's
queue is always the contiguous seq range ``[hseq, hseq + occ)`` of one
packet — occupancy plus head seq reconstruct it exactly.

Arbiter pointers live in integer tensors (one per arbitration point) with
the same power-on value (0) and rotation rule as
:class:`~repro.core.arbiter.RoundRobinArbiter`.  Static topology facts
(routing, lookahead, link endpoints) are precomputed once into lookup
tables so the per-cycle kernels are pure array arithmetic.

Partition domains build one ``SoAState`` per
:class:`~repro.network.domain.DomainNetwork` over the *full* topology
shape — unowned routers are all-IDLE rows no kernel ever activates, so
they cost memory but no time.  The static tables depend only on
(topology, router config) and are identical across domains; passing
``static_from=<sibling state>`` shares them by reference instead of
rebuilding the O(R*P*T) lookahead table per domain.
"""

from __future__ import annotations

import numpy as np

from repro.registry import allocators, vc_policies

#: VC states, numerically identical to :class:`repro.network.buffer.VCState`.
IDLE = 0
VA_WAIT = 1
ACTIVE = 2


class SoAState:
    """Dense tensors mirroring one :class:`~repro.network.network.Network`.

    Built from a freshly-constructed network (power-on state: everything
    idle, every credit at ``buffer_depth``, every pointer at 0).
    """

    #: Static (never mutated after construction) attributes, shared by
    #: reference across same-shape states via ``static_from``.
    _STATIC_COMMON = (
        "R", "P", "V", "C", "T", "depth", "PV", "RP", "Pk",
        "route_tab", "down_r", "down_p", "up_r", "up_p", "term_tab", "la_tab",
        "output_first", "k", "gs", "policy_vix", "k_pol", "gs_pol", "sumcap",
        "roll_va", "inc_va", "roll_va1",
        "route1", "la1", "term1", "down_fi1", "up_cfi1",
        "grp_mat", "_arV", "_args", "_arN", "_arNk", "_arNV",
        "dirmap", "gof", "gtb", "_m2", "vix_bonus",
        "ni_fi1", "ni_dir1",
    )
    _STATIC_OF = (
        "roll_of1", "inc_of1", "roll_of2", "inc_of2", "roll_of1_1", "roll_of2_1",
    )
    _STATIC_IF = (
        "roll_p1", "inc_p1", "roll_p2", "inc_p2", "g_base",
        "roll_p1_1", "roll_p2_1",
    )

    def __init__(self, network, *, static_from: "SoAState | None" = None) -> None:
        if static_from is not None:
            extra = self._STATIC_OF if static_from.output_first else self._STATIC_IF
            for name in self._STATIC_COMMON + extra:
                setattr(self, name, getattr(static_from, name))
        else:
            self._build_static(network.topology, network.config)
        self._build_dynamic(network.config.router)

    def _build_static(self, topo, config) -> None:
        """Topology/scheme lookup tables (pure functions of the config)."""
        rc = config.router
        R = topo.num_routers
        P = topo.radix
        V = rc.num_vcs
        C = topo.concentration
        T = topo.num_terminals
        self.R, self.P, self.V, self.C, self.T = R, P, V, C, T
        self.depth = rc.buffer_depth

        # --- static topology tables ------------------------------------------
        # Output port toward each destination terminal (Router._route_table).
        self.route_tab = np.array(
            [[topo.route(r, t) for t in range(T)] for r in range(R)], dtype=np.int64
        )
        # Direction class per (non-local) port; -1 stands in for "ejects
        # downstream" (the policy's downstream_direction=None).
        cls_of_port = [
            -1 if topo.is_local_port(p) else topo.port_direction_class(p)
            for p in range(P)
        ]
        # Link endpoint tables.  down_* follow an output port to the
        # downstream (router, input port); up_* follow an input port back to
        # the upstream output port.  -1 marks dead edges / local ports (an
        # NI, not a router, sits upstream of a local input port).  Cut links
        # of a partition plan are included — the boundary egress mask (see
        # stepping.VecStepper) diverts them before down_fi1 is consulted.
        self.down_r = np.full((R, P), -1, dtype=np.int64)
        self.down_p = np.full((R, P), -1, dtype=np.int64)
        self.up_r = np.full((R, P), -1, dtype=np.int64)
        self.up_p = np.full((R, P), -1, dtype=np.int64)
        for spec in topo.links():
            self.down_r[spec.src_router, spec.src_port] = spec.dst_router
            self.down_p[spec.src_router, spec.src_port] = spec.dst_port
            self.up_r[spec.dst_router, spec.dst_port] = spec.src_router
            self.up_p[spec.dst_router, spec.dst_port] = spec.src_port
        # Terminal attached to each local port.
        self.term_tab = np.array(
            [[topo.terminal_of(r, p) for p in range(C)] for r in range(R)],
            dtype=np.int64,
        )
        # Lookahead table: Topology.lookahead_direction(r, p, t) with None
        # encoded as -1.  Only consulted for VA winners, whose out ports are
        # always wired and non-local.
        cls_arr = np.array(cls_of_port, dtype=np.int64)
        self.la_tab = np.full((R, P, T), -1, dtype=np.int64)
        for r in range(R):
            for p in range(C, P):
                nb = topo.neighbor(r, p)
                if nb is None:
                    continue
                nxt = self.route_tab[nb[0]]
                self.la_tab[r, p] = np.where(nxt < C, -1, cls_arr[nxt])

        # --- allocation-scheme shape -----------------------------------------
        allocator = allocators.canonical(rc.allocator)
        self.output_first = allocator == "output_first"
        # Crossbar inputs per port (phase-1/phase-2 arbiter shape).  OF is
        # registered as a conventional scheme (its registry factory drops
        # the configured virtual_inputs), so k is 1 there too, but keep the
        # distinction explicit: the OF kernel mirrors different phases.
        self.k = 1 if self.output_first else max(1, rc.effective_virtual_inputs)
        self.gs = V // self.k
        policy = vc_policies.canonical(rc.vc_policy)
        self.policy_vix = policy == "vix_dimension"
        # VC-policy sub-group shape (the policy sees the same effective k
        # the router hands it: 1 for conventional allocators).
        self.k_pol = max(1, rc.effective_virtual_inputs)
        self.gs_pol = max(1, V // self.k_pol)
        # Rank credits sums below candidate counts (policy key (count, sum)).
        self.sumcap = V * rc.buffer_depth + 1

        # --- round-robin roll / increment tables ------------------------------
        # roll_*[ptr, slot] = (slot - ptr) % n and inc_*[slot] = (slot + 1) % n,
        # precomputed per arbiter width so the kernels' winner argmin and
        # pointer rotation are single gathers instead of arange/sub/mod chains.
        def _roll(n: int) -> np.ndarray:
            return (np.arange(n) - np.arange(n)[:, None]) % n

        def _inc(n: int) -> np.ndarray:
            return (np.arange(n) + 1) % n

        self.roll_va = _roll(P * V)
        self.inc_va = _inc(P * V)
        if self.output_first:
            self.roll_of1 = _roll(P * V)
            self.inc_of1 = _inc(P * V)
            self.roll_of2 = _roll(P)
            self.inc_of2 = _inc(P)
        else:
            self.roll_p1 = _roll(self.gs)
            self.inc_p1 = _inc(self.gs)
            self.roll_p2 = _roll(P * self.k)
            self.inc_p2 = _inc(P * self.k)
            # VC-id base of each crossbar input: input p*k + j serves the
            # contiguous VC group [j*gs, (j+1)*gs).
            self.g_base = (np.arange(P * self.k) % self.k) * self.gs

        # --- flat aliases and index tables ------------------------------------
        # Kernels address every tensor through 1-D raveled views with
        # precomputed flat indices: single-array fancy indexing is several
        # times cheaper than multi-axis advanced indexing at these sizes
        # (dispatch overhead, not element count, dominates).
        self.PV = P * V
        self.RP = R * P
        self.Pk = P * self.k
        if self.output_first:
            self.roll_of1_1 = self.roll_of1.reshape(-1)
            self.roll_of2_1 = self.roll_of2.reshape(-1)
        else:
            self.roll_p1_1 = self.roll_p1.reshape(-1)
            self.roll_p2_1 = self.roll_p2.reshape(-1)
        self.roll_va1 = self.roll_va.reshape(-1)
        self.route1 = self.route_tab.reshape(-1)
        self.la1 = self.la_tab.reshape(-1)
        self.term1 = self.term_tab.reshape(-1)
        # Flat flit-arrival index of the VC fed by output port (r, p):
        # (down_r * P + down_p) * V, ready to add the VC id; -1 where unwired.
        self.down_fi1 = np.where(
            self.down_r >= 0, (self.down_r * P + self.down_p) * V, -1
        ).reshape(-1)
        # Flat credit index base of the upstream output VC behind input port
        # (r, p): (up_r * P + up_p) * V; -1 for local/unwired ports.
        self.up_cfi1 = np.where(
            self.up_r >= 0, (self.up_r * P + self.up_p) * V, -1
        ).reshape(-1)
        # Group-membership matrix for the vix_dimension score matmul:
        # grp_mat[v, j] = 1 iff VC v belongs to policy sub-group j.
        self.grp_mat = np.zeros((V, self.k_pol), dtype=np.int64)
        for j in range(self.k_pol):
            self.grp_mat[j * self.gs_pol : (j + 1) * self.gs_pol, j] = 1
        self._arV = np.arange(V)
        self._args = np.arange(self.gs_pol)
        # Cached arange (and its row strides) covering any kernel row count;
        # slicing a precomputed array beats per-call np.arange allocation.
        self._arN = np.arange(max(R * P * V, T))
        self._arNk = self._arN * self.k_pol
        self._arNV = self._arN * V
        # dirmap[d + 1] = max(d, 0) % k_pol for the policy's preferred-group
        # lookup (direction classes are bounded by the topology's dimensions,
        # well under T; -1 means "ejects downstream").
        self.dirmap = np.maximum(np.arange(-1, T + 1), 0) % self.k_pol
        # Fused vix_dimension sort key (see kernels.select_vix_dimension):
        # lexicographic (forced-group, group score, -group id, local value)
        # packed into one int64 per VC.  m1 exceeds any per-VC value
        # (creds + sumcap), m2 any group-id term, the bonus any group score
        # term; vix_bonus[d + 1, v] pre-resolves direction d to its forced
        # bonus row (all-zero for d = -1, "ejects downstream").
        gof = self._arV // self.gs_pol  # group of each VC
        m1 = self.sumcap + self.depth + 1
        self._m2 = self.k_pol * m1
        self.gtb = (self.k_pol - 1 - gof) * m1
        bonus = (V * (self.sumcap + self.depth) + 1) * self._m2
        self.vix_bonus = np.zeros((T + 2, V), dtype=np.int64)
        for d in range(T + 1):
            self.vix_bonus[d + 1] = (gof == self.dirmap[d + 1]) * bonus
        self.gof = gof

        rof = [topo.router_of(t) for t in range(T)]
        # Flat flit-arrival base of each terminal's injection channel.
        self.ni_fi1 = np.array(
            [(r * P + p) * V for r, p in rof], dtype=np.int64
        )
        # First-hop direction class per (source terminal, destination):
        # port_direction_class(route(router, dst)), None encoded as -1
        # (cls_arr already carries -1 for local ports).
        self.ni_dir1 = cls_arr[self.route_tab][
            np.array([r for r, _ in rof], dtype=np.int64)
        ].reshape(-1)

    def _build_dynamic(self, rc) -> None:
        """Per-run mutable state at power-on values."""
        R, P, V = self.R, self.P, self.V

        # --- dynamic per-VC state --------------------------------------------
        shape = (R, P, V)
        self.st = np.zeros(shape, dtype=np.int64)
        self.occ = np.zeros(shape, dtype=np.int64)
        self.hseq = np.zeros(shape, dtype=np.int64)
        self.pkt = np.full(shape, -1, dtype=np.int64)
        self.dst = np.full(shape, -1, dtype=np.int64)
        self.outp = np.full(shape, -1, dtype=np.int64)
        self.outv = np.full(shape, -1, dtype=np.int64)
        self.ocred = np.full(shape, rc.buffer_depth, dtype=np.int64)
        self.oalloc = np.zeros(shape, dtype=bool)

        # --- arbiter pointers -------------------------------------------------
        # VA: one radix*V arbiter per output port (Router._va_arbiters).
        self.va_ptr = np.zeros((R, P), dtype=np.int64)
        if self.output_first:
            # SA phase 1: one (P*V):1 arbiter per output port; phase 2: one
            # P:1 arbiter per input port (k is always 1 for OF).
            self.of_out_ptr = np.zeros((R, P), dtype=np.int64)
            self.of_in_ptr = np.zeros((R, P), dtype=np.int64)
        else:
            # SA phase 1: one gs:1 arbiter per crossbar input (P*k of them);
            # phase 2: one (P*k):1 arbiter per output port.
            self.in_ptr = np.zeros((R, P * self.k), dtype=np.int64)
            self.out_ptr = np.zeros((R, P), dtype=np.int64)

        # Flat views sharing memory with the tensors above.
        self.st1 = self.st.reshape(-1)
        self.occ1 = self.occ.reshape(-1)
        self.hseq1 = self.hseq.reshape(-1)
        self.pkt1 = self.pkt.reshape(-1)
        self.dst1 = self.dst.reshape(-1)
        self.outp1 = self.outp.reshape(-1)
        self.outv1 = self.outv.reshape(-1)
        self.ocred1 = self.ocred.reshape(-1)
        self.oalloc1 = self.oalloc.reshape(-1)
        self.ocred2d = self.ocred.reshape(R * P, V)
        self.oalloc2d = self.oalloc.reshape(R * P, V)
        self.va_ptr1 = self.va_ptr.reshape(-1)
        if self.output_first:
            self.of_out_ptr1 = self.of_out_ptr.reshape(-1)
            self.of_in_ptr1 = self.of_in_ptr.reshape(-1)
        else:
            self.in_ptr1 = self.in_ptr.reshape(-1)
            self.out_ptr1 = self.out_ptr.reshape(-1)
        # Free (unallocated) output-VC count per (router, port), maintained
        # incrementally by the VA kernel (-1 per grant) and credit release
        # (+1) — replaces a per-cycle oalloc reduction.
        self.nfree = np.full(R * P, V, dtype=np.int64)

        # --- vectorized NI state ----------------------------------------------
        # Mirrors NetworkInterface: per-terminal output VCs (credits +
        # allocation) and the packet currently streaming onto the injection
        # channel.  The object NIs keep owning the source queues (the
        # injector enqueues into them); only allocation/streaming vectorize.
        T = self.T
        self.ni_cred1 = np.full(T * V, rc.buffer_depth, dtype=np.int64)
        self.ni_alloc1 = np.zeros(T * V, dtype=bool)
        self.ni_vc = np.full(T, -1, dtype=np.int64)
        self.ni_rem = np.zeros(T, dtype=np.int64)
        self.ni_seq = np.zeros(T, dtype=np.int64)
        self.ni_pk = np.full(T, -1, dtype=np.int64)

        # Per-link flit counts, flushed into Network._link_counts at run end.
        self.links = np.zeros((R, P), dtype=np.int64)
        self.links1 = self.links.reshape(-1)

        # --- packet interning -------------------------------------------------
        # Flits are not objects in the kernel: events carry (packet index,
        # seq) and the arrays above carry the rest.  The real Packet objects
        # are kept (stats need ``ejected_cycle`` and ``created_cycle``).
        self.packets: list = []
        cap = 4096
        self.pk_dst = np.zeros(cap, dtype=np.int64)
        self.pk_last = np.zeros(cap, dtype=np.int64)

    def export_flow_state(
        self,
        cycle: int,
        owned_routers=None,
        owned_terminals=None,
    ) -> dict:
        """Flow-control snapshot in the object engine's schema.

        Emits exactly what :func:`repro.network.state.export_flow_state`
        produces for an object network in the same dynamic state — the
        cross-engine drift guard: after identical runs the two dicts must
        compare equal, credit by credit and pointer by pointer.

        ``owned_routers`` / ``owned_terminals`` restrict the snapshot to a
        partition domain's slice: unowned ids emit ``None`` rows, matching
        the object :class:`~repro.network.domain.DomainNetwork`'s holes.
        """
        from repro.network.state import FLOW_STATE_VERSION

        routers: list[dict | None] = []
        for r in range(self.R):
            if owned_routers is not None and r not in owned_routers:
                routers.append(None)
                continue
            credits: list[list[int] | None] = []
            allocated: list[list[bool] | None] = []
            for p in range(self.P):
                if p < self.C or self.down_r[r, p] < 0:
                    # Ejection/dead ports: no credit state (matches the
                    # object engine's unwired outputs).
                    credits.append(None)
                    allocated.append(None)
                else:
                    credits.append([int(c) for c in self.ocred[r, p]])
                    allocated.append([bool(a) for a in self.oalloc[r, p]])
            if self.output_first:
                sa = {
                    "output": [int(x) for x in self.of_out_ptr[r]],
                    "input": [[int(self.of_in_ptr[r, p])] for p in range(self.P)],
                }
            else:
                sa = {
                    "input": [
                        [int(self.in_ptr[r, p * self.k + g]) for g in range(self.k)]
                        for p in range(self.P)
                    ],
                    "output": [int(x) for x in self.out_ptr[r]],
                }
            routers.append(
                {
                    "credits": credits,
                    "allocated": allocated,
                    "va_pointers": [int(x) for x in self.va_ptr[r]],
                    "sa_pointers": sa,
                }
            )
        interfaces = [
            None
            if owned_terminals is not None and t not in owned_terminals
            else {
                "credits": [
                    int(c) for c in self.ni_cred1[t * self.V : (t + 1) * self.V]
                ],
                "allocated": [
                    bool(a) for a in self.ni_alloc1[t * self.V : (t + 1) * self.V]
                ],
            }
            for t in range(self.T)
        ]
        return {
            "version": FLOW_STATE_VERSION,
            "cycle": cycle,
            "routers": routers,
            "interfaces": interfaces,
        }

    def intern(self, packet) -> int:
        """Register a packet; returns its dense index for the event arrays."""
        idx = len(self.packets)
        if idx == self.pk_dst.size:
            self.pk_dst = np.concatenate([self.pk_dst, np.zeros_like(self.pk_dst)])
            self.pk_last = np.concatenate([self.pk_last, np.zeros_like(self.pk_last)])
        self.packets.append(packet)
        self.pk_dst[idx] = packet.dst
        self.pk_last[idx] = packet.num_flits - 1
        return idx
