"""Simulation engine, statistics, and the single-router testbench."""

from .engine import (
    Simulation,
    SimulationResult,
    is_saturated,
    run_simulation,
    saturation_throughput,
)
from .single_router import SingleRouterExperiment, SingleRouterResult
from .stats import StatsCollector
from .sweep import SweepPoint, find_saturation_rate, latency_sweep

__all__ = [
    "Simulation",
    "SimulationResult",
    "SingleRouterExperiment",
    "SingleRouterResult",
    "StatsCollector",
    "SweepPoint",
    "find_saturation_rate",
    "is_saturated",
    "latency_sweep",
    "run_simulation",
    "saturation_throughput",
]
