"""Simulation engine backends, registered like every other scheme axis.

The engines share one semantic contract — byte-identical
:class:`~repro.sim.engine.SimulationResult` values for the same
configuration and seed — and differ only in how the per-cycle work is
executed:

* ``dense`` — object stepping visiting every router and NI every cycle
  (the original reference loop; equivalence/benchmark baseline);
* ``gated`` — object stepping visiting only active components (the
  default: fastest at low load, ~parity with dense at saturation);
* ``vectorized`` — a struct-of-arrays numpy kernel batching VC and switch
  allocation across every router per cycle (:mod:`repro.sim.vec`); wins at
  and past saturation.  Only schemes whose grant semantics have an array
  formulation are supported (separable IF/OF and the VIX family); anything
  else fails loudly through :func:`repro.sim.vec.require_vectorizable`;
* ``partitioned`` — chiplet-partitioned domain stepping
  (:mod:`repro.sim.partition`): the topology is cut into a grid of
  :class:`~repro.network.domain.DomainNetwork` instances joined by
  inter-chip links, stepped round-robin or in worker processes.  A
  ``1x1`` partition with zero-latency links is byte-identical to
  ``dense``/``gated``; larger grids model multi-chip fabrics.

The registry keeps this a normal scheme axis: ``--engine`` on the CLI,
``engine=`` on :func:`~repro.sim.engine.run_simulation`,
:class:`~repro.parallel.SimJob`, and :class:`~repro.experiments.spec.ScenarioSpec`
all canonicalize through :data:`repro.registry.engines`, and ``python -m
repro list`` prints the table below.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.registry import engines as engine_registry

if TYPE_CHECKING:
    from repro.network.config import NetworkConfig

#: Capability flag: per-object Python stepping (Router/Arbiter instances).
OBJECT_STEPPING = "object_stepping"
#: Capability flag: skips idle routers/NIs (activity-gated stepping).
ACTIVITY_GATED = "activity_gated"
#: Capability flag: struct-of-arrays numpy cycle kernel.
SOA_KERNEL = "soa_kernel"
#: Capability flag: needs the optional numpy dependency at run time.
REQUIRES_NUMPY = "requires_numpy"
#: Capability flag: restricted scheme support (non-vectorizable allocators
#: and topologies are rejected with the registry-style error).
CAPABILITY_GATED = "capability_gated"
#: Capability flag: steps a grid of chiplet domains joined by inter-chip
#: links instead of one monolithic network.
DOMAIN_PARTITIONED = "domain_partitioned"

#: Environment variable naming the default engine (set by ``--engine``).
ENGINE_ENV = "REPRO_ENGINE"


def _object_engine(activity_gating: bool):
    def build(config: "NetworkConfig", **sim_kwargs):
        from repro.sim.engine import Simulation

        return Simulation(config, activity_gating=activity_gating, **sim_kwargs)

    build.__name__ = "make_gated" if activity_gating else "make_dense"
    return build


def _partitioned_engine(config: "NetworkConfig", **sim_kwargs):
    from repro.sim.partition import PartitionedSimulation

    return PartitionedSimulation(config, **sim_kwargs)


def _vectorized_engine(config: "NetworkConfig", **sim_kwargs):
    try:
        from repro.sim.vec import VectorizedSimulation
    except ImportError as exc:
        raise ImportError(
            "the 'vectorized' engine needs numpy, which is not installed; "
            "install it (pip install 'numpy>=1.24') or pick one of the "
            "object engines ('dense', 'gated')"
        ) from exc
    return VectorizedSimulation(config, **sim_kwargs)


engine_registry.register(
    "dense",
    _object_engine(False),
    aliases=("object",),
    label="dense object stepping",
    provenance="reference loop; every router and NI visited every cycle",
    flags=(OBJECT_STEPPING,),
)
engine_registry.register(
    "gated",
    _object_engine(True),
    aliases=("fast",),
    label="activity-gated object stepping",
    provenance="default; byte-identical to dense, skips idle components",
    flags=(OBJECT_STEPPING, ACTIVITY_GATED),
)
engine_registry.register(
    "partitioned",
    _partitioned_engine,
    aliases=("chiplet", "domains"),
    label="chiplet-partitioned domain stepping",
    provenance="grid of DomainNetworks joined by inter-chip links; "
    "1x1 partition byte-identical to dense/gated",
    flags=(OBJECT_STEPPING, DOMAIN_PARTITIONED),
)
engine_registry.register(
    "vectorized",
    _vectorized_engine,
    aliases=("vec", "numpy", "soa"),
    label="struct-of-arrays numpy kernel",
    provenance="batched per-cycle array ops; byte-identical to dense "
    "for separable IF/OF and the VIX family",
    flags=(SOA_KERNEL, REQUIRES_NUMPY, CAPABILITY_GATED),
)


def default_engine() -> str | None:
    """The environment-selected default engine, or ``None`` when unset."""
    name = os.environ.get(ENGINE_ENV, "").strip()
    return engine_registry.canonical(name) if name else None


def make_engine(name: str, config: "NetworkConfig", **sim_kwargs):
    """Build a simulation object for ``config`` on the named engine.

    ``sim_kwargs`` are the :class:`~repro.sim.engine.Simulation` keyword
    arguments minus ``activity_gating`` (each engine fixes its own stepping
    mode).  The returned object exposes ``run(warmup, measure,
    drain_limit)`` returning a :class:`~repro.sim.engine.SimulationResult`.
    """
    return engine_registry.create(name, config, **sim_kwargs)
