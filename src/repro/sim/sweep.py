"""Load sweeps and saturation-point search.

Utilities for the latency-vs-load studies every NoC evaluation runs:

* :func:`latency_sweep` — one simulation per injection rate, returning the
  (rate, latency, accepted-throughput) series of a Figure-8-style curve;
* :func:`find_saturation_rate` — bisection search for the injection rate at
  which the network stops accepting its offered load (the knee of the
  curve), a scalar that makes allocator comparisons one-number simple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.config import NetworkConfig
from repro.sim.engine import SimulationResult, run_simulation
from repro.traffic.patterns import TrafficPattern


@dataclass(frozen=True)
class SweepPoint:
    """One point of a latency/throughput-vs-load curve."""

    injection_rate: float
    avg_latency: float
    accepted_packets_per_node: float
    drained: bool


def latency_sweep(
    config: NetworkConfig,
    rates: tuple[float, ...],
    *,
    pattern: TrafficPattern | str = "uniform",
    seed: int = 1,
    warmup: int = 1000,
    measure: int = 3000,
) -> list[SweepPoint]:
    """Simulate every rate in ``rates`` and collect the curve."""
    if not rates:
        raise ValueError("need at least one injection rate")
    points = []
    for rate in rates:
        if rate < 0:
            raise ValueError(f"injection rate must be >= 0, got {rate}")
        res = run_simulation(
            config,
            pattern=pattern,
            injection_rate=rate,
            seed=seed,
            warmup=warmup,
            measure=measure,
        )
        points.append(_to_point(res))
    return points


def _to_point(res: SimulationResult) -> SweepPoint:
    return SweepPoint(
        injection_rate=res.injection_rate,
        avg_latency=res.avg_latency,
        accepted_packets_per_node=res.throughput_packets_per_node,
        drained=res.drained,
    )


def _accepts_load(
    config: NetworkConfig,
    rate: float,
    *,
    pattern: TrafficPattern | str,
    seed: int,
    warmup: int,
    measure: int,
    acceptance: float,
) -> bool:
    """True when the network delivers >= ``acceptance`` of its offered load
    and every measured packet drains."""
    res = run_simulation(
        config,
        pattern=pattern,
        injection_rate=rate,
        seed=seed,
        warmup=warmup,
        measure=measure,
    )
    if not res.drained:
        return False
    return res.throughput_packets_per_node >= acceptance * rate


def find_saturation_rate(
    config: NetworkConfig,
    *,
    pattern: TrafficPattern | str = "uniform",
    low: float = 0.0,
    high: float = 0.5,
    tolerance: float = 0.005,
    acceptance: float = 0.95,
    seed: int = 1,
    warmup: int = 500,
    measure: int = 1500,
) -> float:
    """Bisect for the highest injection rate the network still sustains.

    A rate is "sustained" when accepted throughput stays within
    ``acceptance`` of the offered load and all measured packets drain.
    Returns the midpoint of the final bracket (packets/cycle/node).
    """
    if not 0 <= low < high:
        raise ValueError(f"need 0 <= low < high, got [{low}, {high}]")
    if not 0 < tolerance < high - low:
        raise ValueError(f"tolerance {tolerance} out of range")
    if not 0 < acceptance <= 1:
        raise ValueError(f"acceptance must be in (0, 1], got {acceptance}")

    kwargs = dict(
        pattern=pattern,
        seed=seed,
        warmup=warmup,
        measure=measure,
        acceptance=acceptance,
    )
    # Ensure the bracket actually straddles the knee.
    if not _accepts_load(config, max(low, tolerance), **kwargs):
        return low
    if _accepts_load(config, high, **kwargs):
        return high
    lo, hi = max(low, tolerance), high
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if _accepts_load(config, mid, **kwargs):
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2
