"""Load sweeps and saturation-point search.

Utilities for the latency-vs-load studies every NoC evaluation runs:

* :func:`latency_sweep` — one simulation per injection rate, returning the
  (rate, latency, accepted-throughput) series of a Figure-8-style curve;
* :func:`find_saturation_rate` — bisection search for the injection rate at
  which the network stops accepting its offered load (the knee of the
  curve), a scalar that makes allocator comparisons one-number simple.

Both fan their independent simulation points through
:mod:`repro.parallel`: ``jobs=N`` runs N points at a time in worker
processes, and results land in the content-addressed cache so repeated
sweeps (and the redundant probes of a bisection) are free.  ``jobs=1``
(the default) preserves the original serial, in-process behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.config import NetworkConfig
from repro.parallel import ExecutionStats, ParallelRunner, ResultCache, SimJob
from repro.sim.engine import SimulationResult
from repro.traffic.patterns import TrafficPattern


@dataclass(frozen=True)
class SweepPoint:
    """One point of a latency/throughput-vs-load curve."""

    injection_rate: float
    avg_latency: float
    accepted_packets_per_node: float
    drained: bool
    #: 95th-percentile packet latency (nan when nothing was delivered).
    latency_p95: float = float("nan")


def latency_sweep(
    config: NetworkConfig,
    rates: tuple[float, ...],
    *,
    pattern: TrafficPattern | str = "uniform",
    seed: int = 1,
    warmup: int = 1000,
    measure: int = 3000,
    jobs: int | str | None = None,
    cache: ResultCache | str | None = "default",
    stats: ExecutionStats | None = None,
    fast_injection: bool = False,
) -> list[SweepPoint]:
    """Simulate every rate in ``rates`` and collect the curve.

    Rates are independent simulations, so ``jobs=N`` runs N of them
    concurrently; the returned list is always in ``rates`` order with
    values identical to a serial run.  ``fast_injection=True`` switches
    the points to geometric-gap injection — statistically equivalent
    curves, markedly faster at the low-load end of the sweep.
    """
    if not rates:
        raise ValueError("need at least one injection rate")
    for rate in rates:
        if rate < 0:
            raise ValueError(f"injection rate must be >= 0, got {rate}")
    sim_jobs = [
        SimJob(
            config,
            pattern=pattern,
            injection_rate=rate,
            seed=seed,
            warmup=warmup,
            measure=measure,
            fast_injection=fast_injection,
        )
        for rate in rates
    ]
    runner = ParallelRunner(jobs, cache=cache)
    results = runner.run(sim_jobs)
    if stats is not None:
        stats.merge(runner.stats)
    return [_to_point(res) for res in results]


def _to_point(res: SimulationResult) -> SweepPoint:
    return SweepPoint(
        injection_rate=res.injection_rate,
        avg_latency=res.avg_latency,
        accepted_packets_per_node=res.throughput_packets_per_node,
        drained=res.drained,
        latency_p95=res.latency_p95,
    )


def _accepts(res: SimulationResult, rate: float, acceptance: float) -> bool:
    """True when the network delivers >= ``acceptance`` of its offered load
    and every measured packet drains."""
    if not res.drained:
        return False
    return res.throughput_packets_per_node >= acceptance * rate


def find_saturation_rate(
    config: NetworkConfig,
    *,
    pattern: TrafficPattern | str = "uniform",
    low: float = 0.0,
    high: float = 0.5,
    tolerance: float = 0.005,
    acceptance: float = 0.95,
    seed: int = 1,
    warmup: int = 500,
    measure: int = 1500,
    jobs: int | str | None = None,
    cache: ResultCache | str | None = "default",
    stats: ExecutionStats | None = None,
    fast_injection: bool = False,
) -> float:
    """Bisect for the highest injection rate the network still sustains.

    A rate is "sustained" when accepted throughput stays within
    ``acceptance`` of the offered load and all measured packets drain.
    Returns the midpoint of the final bracket (packets/cycle/node).

    Each probed rate is simulated at most once per call (probes are
    memoized), and with ``jobs > 1`` the bracket endpoints plus the first
    two bisection levels are pre-probed concurrently — the midpoints are
    computed with the exact float expressions the bisection loop uses, so
    the search path and answer never change, only the wall clock.
    """
    if not 0 <= low < high:
        raise ValueError(f"need 0 <= low < high, got [{low}, {high}]")
    if not 0 < tolerance < high - low:
        raise ValueError(f"tolerance {tolerance} out of range")
    if not 0 < acceptance <= 1:
        raise ValueError(f"acceptance must be in (0, 1], got {acceptance}")

    runner = ParallelRunner(jobs, cache=cache)
    memo: dict[float, bool] = {}

    def job_for(rate: float) -> SimJob:
        return SimJob(
            config,
            pattern=pattern,
            injection_rate=rate,
            seed=seed,
            warmup=warmup,
            measure=measure,
            fast_injection=fast_injection,
        )

    def probe(rates: list[float]) -> None:
        fresh = [r for r in rates if r not in memo]
        if fresh:
            results = runner.run([job_for(r) for r in fresh])
            for r, res in zip(fresh, results):
                memo[r] = _accepts(res, r, acceptance)

    def accepts(rate: float) -> bool:
        if rate not in memo:
            probe([rate])
        return memo[rate]

    try:
        lo0 = max(low, tolerance)
        if runner.jobs > 1:
            # Speculatively probe the bracket checks and the first two
            # bisection levels in one parallel batch.  The midpoints must be
            # the exact floats the loop below computes, so the memo hits.
            m1 = (lo0 + high) / 2
            probe([lo0, high, m1, (lo0 + m1) / 2, (m1 + high) / 2])
        # Ensure the bracket actually straddles the knee.
        if not accepts(lo0):
            return low
        if accepts(high):
            return high
        lo, hi = lo0, high
        while hi - lo > tolerance:
            mid = (lo + hi) / 2
            if accepts(mid):
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2
    finally:
        if stats is not None:
            stats.merge(runner.stats)
