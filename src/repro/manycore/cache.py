"""Set-associative cache and MSHR models for the manycore substrate.

These implement the L2 banks of Table 2: 256 KB per bank, 16-way,
64-byte blocks, LRU replacement, 32 MSHRs with request merging.
"""

from __future__ import annotations

from collections import OrderedDict


class Cache:
    """Set-associative, write-allocate, LRU cache over block addresses.

    Addresses are *block* addresses (byte address // block size); the cache
    neither stores data nor distinguishes reads from writes — it models
    hit/miss behaviour and occupancy, which is all the network study needs.
    """

    def __init__(self, size_bytes: int, assoc: int, block_bytes: int = 64) -> None:
        if size_bytes <= 0 or assoc <= 0 or block_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        num_blocks = size_bytes // block_bytes
        if num_blocks < assoc or num_blocks % assoc != 0:
            raise ValueError(
                f"size {size_bytes}B / block {block_bytes}B = {num_blocks} blocks "
                f"does not divide into {assoc}-way sets"
            )
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_bytes = block_bytes
        self.num_sets = num_blocks // assoc
        # Per set: OrderedDict tag -> None, most recently used last.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_of(self, block_addr: int) -> tuple[OrderedDict[int, None], int]:
        index = block_addr % self.num_sets
        tag = block_addr // self.num_sets
        return self._sets[index], tag

    def lookup(self, block_addr: int) -> bool:
        """Tag check without LRU update or statistics (probe)."""
        cache_set, tag = self._set_of(block_addr)
        return tag in cache_set

    def access(self, block_addr: int) -> bool:
        """Access a block: True on hit (LRU updated), False on miss.

        A miss does **not** fill the block; call :meth:`fill` when the
        refill arrives (this mirrors the MSHR-mediated fill path).
        """
        cache_set, tag = self._set_of(block_addr)
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, block_addr: int) -> int | None:
        """Insert a block; returns the evicted block address, if any."""
        cache_set, tag = self._set_of(block_addr)
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return None
        evicted = None
        if len(cache_set) >= self.assoc:
            old_tag, _ = cache_set.popitem(last=False)
            evicted = old_tag * self.num_sets + block_addr % self.num_sets
        cache_set[tag] = None
        return evicted

    @property
    def occupancy(self) -> int:
        """Blocks currently resident."""
        return sum(len(s) for s in self._sets)

    def miss_rate(self) -> float:
        """Observed miss rate over all accesses so far."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class MSHRFile:
    """Miss Status Holding Registers with same-block merging.

    One entry per outstanding block miss; secondary misses to a block
    already in flight merge into the existing entry (no extra memory
    request).  ``allocate`` fails when every register is busy, which stalls
    the requester.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"MSHR capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[int, list[object]] = {}
        self.merges = 0
        self.allocation_failures = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def outstanding(self, block_addr: int) -> bool:
        """True when a miss on this block is already in flight."""
        return block_addr in self._entries

    def allocate(self, block_addr: int, waiter: object) -> str:
        """Register a miss; returns how it was handled.

        * ``"new"`` — a fresh entry was allocated (send a memory request);
        * ``"merged"`` — joined an in-flight miss (no new request);
        * ``"full"`` — no register free, the requester must retry.
        """
        if block_addr in self._entries:
            self._entries[block_addr].append(waiter)
            self.merges += 1
            return "merged"
        if self.full:
            self.allocation_failures += 1
            return "full"
        self._entries[block_addr] = [waiter]
        return "new"

    def release(self, block_addr: int) -> list[object]:
        """Complete a miss; returns every waiter that merged into it."""
        waiters = self._entries.pop(block_addr, None)
        if waiters is None:
            raise KeyError(f"no MSHR entry for block {block_addr:#x}")
        return waiters
