"""Benchmark catalogue: 35 applications with memory-intensity profiles.

The paper evaluates 35 benchmarks (SPEC CPU2006, scientific, and the
commercial traces sap/tpcw/sjbb/sjas) on a trace-driven manycore simulator.
We do not have those traces; each benchmark is instead characterized by

* ``mpki`` — total misses per kilo-instruction per core, defined exactly as
  in Table 4's caption: the sum of its L1-MPKI and L2-MPKI;
* ``l2_miss_ratio`` — fraction of L1 misses that also miss in the shared
  L2 (streaming codes high, cache-friendly codes low).

The MPKI values for the 26 benchmarks appearing in Mix1..Mix8 were fitted
(non-negative least squares around literature-informed priors) so that
**every Mix reproduces Table 4's per-core average MPKI exactly**; the
remaining 9 benchmarks complete the 35-benchmark suite with representative
values.  Synthetic reference generators built from these profiles drive the
same core/L1/L2/memory path a trace would.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Memory-intensity profile of one application."""

    name: str
    #: L1-MPKI + L2-MPKI per core (Table 4 definition).
    mpki: float
    #: Fraction of L1 misses that also miss in the shared L2.
    l2_miss_ratio: float

    def __post_init__(self) -> None:
        if self.mpki < 0:
            raise ValueError(f"{self.name}: mpki must be >= 0")
        if not 0.0 < self.l2_miss_ratio < 1.0:
            raise ValueError(f"{self.name}: l2_miss_ratio must be in (0, 1)")

    @property
    def l1_mpki(self) -> float:
        """L1 misses per kilo-instruction (these reach the network).

        With ``r`` the L2 miss ratio, L2-MPKI = L1-MPKI * r, so
        total = L1-MPKI * (1 + r).
        """
        return self.mpki / (1.0 + self.l2_miss_ratio)

    @property
    def l2_mpki(self) -> float:
        """L2 misses per kilo-instruction (these reach memory)."""
        return self.l1_mpki * self.l2_miss_ratio


def _b(name: str, mpki: float, l2r: float) -> tuple[str, BenchmarkProfile]:
    return name, BenchmarkProfile(name, mpki, l2r)


#: The 35-benchmark suite.  MPKI values for mix members are the Table 4 fit.
BENCHMARKS: dict[str, BenchmarkProfile] = dict(
    [
        # --- Mix members (fitted to Table 4 averages) --------------------
        _b("applu", 10.41, 0.50),
        _b("art", 27.32, 0.55),
        _b("astar", 7.08, 0.30),
        _b("barnes", 7.07, 0.35),
        _b("deal", 9.00, 0.25),
        _b("gcc", 6.00, 0.25),
        _b("gems", 84.09, 0.60),
        _b("gromacs", 1.00, 0.20),
        _b("hmmer", 2.16, 0.20),
        _b("lbm", 70.24, 0.65),
        _b("leslie", 40.83, 0.55),
        _b("libquantum", 54.06, 0.70),
        _b("mcf", 171.22, 0.55),
        _b("milc", 66.76, 0.65),
        _b("namd", 1.50, 0.20),
        _b("ocean", 31.49, 0.50),
        _b("omnet", 55.70, 0.45),
        _b("povray", 0.80, 0.15),
        _b("sap", 23.71, 0.35),
        _b("sjas", 34.40, 0.35),
        _b("sjbb", 46.62, 0.35),
        _b("sjeng", 0.50, 0.20),
        _b("swim", 66.86, 0.60),
        _b("tonto", 1.20, 0.15),
        _b("tpcw", 62.96, 0.40),
        _b("xalan", 38.99, 0.40),
        # --- remaining suite members (representative values) --------------
        _b("bzip2", 3.50, 0.30),
        _b("cactus", 12.00, 0.45),
        _b("calculix", 2.20, 0.25),
        _b("gobmk", 2.50, 0.20),
        _b("h264ref", 2.00, 0.20),
        _b("perlbench", 1.80, 0.25),
        _b("soplex", 25.00, 0.45),
        _b("sphinx3", 13.00, 0.40),
        _b("zeusmp", 9.00, 0.40),
    ]
)


def get_benchmark(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; suite has {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[key]
