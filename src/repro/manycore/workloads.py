"""Multiprogrammed workload mixes (paper Table 4).

Each Mix consists of 6 unique applications; the instance counts (10 or 11
copies, 64 cores total) are taken directly from Table 4.  The paper lists
Mix8 with counts summing to 63; we run mcf with 11 instances there to fill
the 64th core (noted in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from .benchmarks import BENCHMARKS, BenchmarkProfile, get_benchmark


@dataclass(frozen=True)
class WorkloadMix:
    """One multiprogrammed workload: (benchmark, instance count) pairs."""

    name: str
    apps: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        for app, count in self.apps:
            if app not in BENCHMARKS:
                raise ValueError(f"{self.name}: unknown benchmark {app!r}")
            if count < 1:
                raise ValueError(f"{self.name}: instance count must be >= 1")

    @property
    def num_cores(self) -> int:
        return sum(count for _, count in self.apps)

    def average_mpki(self) -> float:
        """Per-core average MPKI (the Table 4 'avg. MPKI' column)."""
        total = sum(get_benchmark(app).mpki * count for app, count in self.apps)
        return total / self.num_cores

    def core_assignment(self) -> list[BenchmarkProfile]:
        """Benchmark profile per core, instances of each app contiguous."""
        profiles: list[BenchmarkProfile] = []
        for app, count in self.apps:
            profiles.extend([get_benchmark(app)] * count)
        return profiles


#: Table 4's eight workloads, keyed by name.
MIXES: dict[str, WorkloadMix] = {
    mix.name: mix
    for mix in [
        WorkloadMix(
            "Mix1",
            (
                ("milc", 11), ("applu", 11), ("astar", 10),
                ("sjeng", 11), ("tonto", 11), ("hmmer", 10),
            ),
        ),
        WorkloadMix(
            "Mix2",
            (
                ("sjas", 11), ("gcc", 11), ("sjbb", 11),
                ("gromacs", 11), ("sjeng", 10), ("xalan", 10),
            ),
        ),
        WorkloadMix(
            "Mix3",
            (
                ("milc", 11), ("libquantum", 10), ("astar", 11),
                ("barnes", 11), ("tpcw", 11), ("povray", 10),
            ),
        ),
        WorkloadMix(
            "Mix4",
            (
                ("astar", 11), ("swim", 11), ("leslie", 10),
                ("omnet", 10), ("sjas", 11), ("art", 11),
            ),
        ),
        WorkloadMix(
            "Mix5",
            (
                ("applu", 11), ("lbm", 11), ("gems", 11),
                ("barnes", 10), ("xalan", 11), ("leslie", 10),
            ),
        ),
        WorkloadMix(
            "Mix6",
            (
                ("mcf", 11), ("ocean", 10), ("gromacs", 10),
                ("lbm", 11), ("deal", 11), ("sap", 11),
            ),
        ),
        WorkloadMix(
            "Mix7",
            (
                ("mcf", 10), ("namd", 11), ("hmmer", 11),
                ("tpcw", 11), ("omnet", 10), ("swim", 11),
            ),
        ),
        WorkloadMix(
            "Mix8",
            (
                ("gems", 10), ("sjbb", 11), ("sjas", 11),
                ("mcf", 11), ("xalan", 11), ("sap", 10),
            ),
        ),
    ]
}

#: The Table 4 per-mix average MPKI column (reproduction targets).
PAPER_MIX_MPKI: dict[str, float] = {
    "Mix1": 15.0,
    "Mix2": 21.3,
    "Mix3": 33.3,
    "Mix4": 38.4,
    "Mix5": 42.5,
    "Mix6": 52.2,
    "Mix7": 58.4,
    "Mix8": 66.9,
}

#: The Table 4 speedup column (VIX over baseline IF).
PAPER_MIX_SPEEDUP: dict[str, float] = {
    "Mix1": 1.03,
    "Mix2": 1.03,
    "Mix3": 1.04,
    "Mix4": 1.05,
    "Mix5": 1.05,
    "Mix6": 1.05,
    "Mix7": 1.06,
    "Mix8": 1.07,
}


def get_mix(name: str) -> WorkloadMix:
    """Look up a workload mix by name ("Mix1" .. "Mix8")."""
    if name not in MIXES:
        raise KeyError(f"unknown mix {name!r}; available: {sorted(MIXES)}")
    return MIXES[name]
