"""Manycore application-level substrate (Table 2 / Section 4.7)."""

from .benchmarks import BENCHMARKS, BenchmarkProfile, get_benchmark
from .cache import Cache, MSHRFile
from .core_model import Core
from .l2bank import L2Bank
from .memory import MemoryController
from .messages import CONTROL_FLITS, DATA_FLITS, Message, MessageKind
from .system import (
    ManycoreConfig,
    ManycoreResult,
    ManycoreSystem,
    default_mc_terminals,
)
from .workloads import (
    MIXES,
    PAPER_MIX_MPKI,
    PAPER_MIX_SPEEDUP,
    WorkloadMix,
    get_mix,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "CONTROL_FLITS",
    "Cache",
    "Core",
    "DATA_FLITS",
    "L2Bank",
    "MIXES",
    "MSHRFile",
    "ManycoreConfig",
    "ManycoreResult",
    "ManycoreSystem",
    "MemoryController",
    "Message",
    "MessageKind",
    "PAPER_MIX_MPKI",
    "PAPER_MIX_SPEEDUP",
    "WorkloadMix",
    "default_mc_terminals",
    "get_benchmark",
    "get_mix",
]
