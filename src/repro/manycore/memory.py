"""On-chip memory controller model (Table 2: 8 MCs, 80 ns access).

Each controller serializes refill requests at its DDR bandwidth (one
64-byte block every ``service_interval`` cycles across its 4 channels) and
returns data after the fixed access latency.  At 2 GHz, 80 ns = 160 cycles.
"""

from __future__ import annotations

from collections import deque

from .messages import Message, MessageKind


class MemoryController:
    """One memory controller endpoint."""

    def __init__(
        self,
        mc_id: int,
        terminal: int,
        *,
        access_latency: int = 160,
        service_interval: int = 4,
    ) -> None:
        if access_latency < 1 or service_interval < 1:
            raise ValueError("access_latency and service_interval must be >= 1")
        self.mc_id = mc_id
        self.terminal = terminal
        self.access_latency = access_latency
        self.service_interval = service_interval
        self._queue: deque[Message] = deque()
        # Requests in DRAM: (completion_cycle, message), FIFO because the
        # access latency is constant.
        self._in_service: deque[tuple[int, Message]] = deque()
        self._next_issue = 0
        self.requests_served = 0
        self.peak_queue = 0

    def receive_request(self, msg: Message, cycle: int) -> None:
        """Accept a refill request or a writeback from an L2 bank.

        Writebacks consume DRAM bandwidth (a queue/service slot) but
        produce no reply.
        """
        if msg.kind not in (MessageKind.MEM_REQUEST, MessageKind.L2_WRITEBACK):
            raise ValueError(f"memory controller got {msg.kind.name}")
        self._queue.append(msg)
        self.peak_queue = max(self.peak_queue, len(self._queue))

    def tick(self, cycle: int) -> list[tuple[MessageKind, int, int, int]]:
        """Issue/complete requests; returns reply message descriptors
        ``(kind, dst_terminal, block_addr, core_id)``."""
        if self._queue and cycle >= self._next_issue:
            msg = self._queue.popleft()
            self._in_service.append((cycle + self.access_latency, msg))
            self._next_issue = cycle + self.service_interval
        replies: list[tuple[MessageKind, int, int, int]] = []
        while self._in_service and self._in_service[0][0] <= cycle:
            _, msg = self._in_service.popleft()
            self.requests_served += 1
            if msg.kind is MessageKind.MEM_REQUEST:
                replies.append(
                    (MessageKind.MEM_REPLY, msg.src, msg.block_addr, msg.core_id)
                )
        return replies

    @property
    def busy(self) -> bool:
        """True while requests are queued or in DRAM."""
        return bool(self._queue or self._in_service)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)
