"""The 64-core manycore system (paper Table 2 + Section 4.7).

Wires cores, shared-L2 banks, and memory controllers to every terminal of
the network under test.  One core and one L2 bank sit at each terminal
(64 banks); 8 memory controllers share terminals along the top and bottom
of the die.  All component-to-component communication is network packets:
1-flit requests, 5-flit data replies.

The application-level metric is aggregate IPC over a measurement window;
Table 4's speedups are IPC ratios between two allocator configurations run
with identical seeds and workloads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.network.config import NetworkConfig
from repro.network.network import Network

from .benchmarks import BenchmarkProfile
from .core_model import Core
from .l2bank import L2Bank
from .memory import MemoryController
from .messages import Message, MessageKind
from .workloads import WorkloadMix


@dataclass(frozen=True)
class ManycoreConfig:
    """Structural parameters of the manycore system (Table 2 defaults)."""

    core_width: int = 2
    #: Outstanding misses before the core stalls — Table 2's "up to 16
    #: outstanding requests per core".  Memory-bound cores then load the
    #: network enough (together with writeback traffic) for the allocator
    #: to matter, which is what Table 4 measures.
    max_outstanding: int = 16
    l2_bank_bytes: int = 256 * 1024
    l2_assoc: int = 16
    block_bytes: int = 64
    l2_mshrs: int = 32
    l2_hit_latency: int = 6
    mem_latency: int = 160
    mem_service_interval: int = 4
    num_mcs: int = 8
    #: Fraction of evictions that are dirty and generate writeback traffic
    #: (L1 victims -> L2, L2 victims -> memory).  Writebacks are the bulk
    #: data traffic that loads the network beyond the request/reply pairs.
    dirty_fraction: float = 0.5


@dataclass
class ManycoreResult:
    """Outcome of one manycore simulation window."""

    cycles: int
    total_instructions: int
    per_core_ipc: list[float] = field(default_factory=list)
    l2_hits: int = 0
    l2_misses: int = 0
    mem_requests: int = 0
    avg_network_latency: float = float("nan")

    @property
    def aggregate_ipc(self) -> float:
        """System performance: total instructions per cycle."""
        return self.total_instructions / self.cycles if self.cycles else 0.0


def default_mc_terminals(num_terminals: int, num_mcs: int) -> list[int]:
    """Memory-controller placement: split across the first and last rows.

    For the 64-terminal configurations this puts 4 MCs on the top edge and
    4 on the bottom edge, the usual many-core floorplan.
    """
    if num_mcs < 1 or num_mcs > num_terminals:
        raise ValueError(f"cannot place {num_mcs} MCs on {num_terminals} terminals")
    half = num_mcs // 2
    top = [round((i + 0.5) * (num_terminals // 8) / max(1, half)) * 2 for i in range(half)]
    top = [min(t, num_terminals - 1) for t in top]
    bottom = [num_terminals - 1 - t for t in reversed(top)]
    rest = num_mcs - len(top) - len(bottom)
    middle = [num_terminals // 2 + i for i in range(rest)]
    placement = sorted(set(top + bottom + middle))
    # Collisions (tiny networks) fall back to even spacing.
    if len(placement) != num_mcs:
        placement = [i * num_terminals // num_mcs for i in range(num_mcs)]
    return placement


class ManycoreSystem:
    """Cores + caches + memory over the network under test."""

    def __init__(
        self,
        network_config: NetworkConfig,
        workload: WorkloadMix | list[BenchmarkProfile],
        *,
        config: ManycoreConfig | None = None,
        seed: int = 1,
    ) -> None:
        self.config = config or ManycoreConfig()
        self.network = Network(network_config)
        self.network.stats = self
        n = network_config.num_terminals
        if isinstance(workload, WorkloadMix):
            profiles = workload.core_assignment()
        else:
            profiles = list(workload)
        if len(profiles) != n:
            raise ValueError(
                f"workload assigns {len(profiles)} cores, network has {n} terminals"
            )
        mc_terms = default_mc_terminals(n, self.config.num_mcs)
        self.mcs = [
            MemoryController(
                i,
                t,
                access_latency=self.config.mem_latency,
                service_interval=self.config.mem_service_interval,
            )
            for i, t in enumerate(mc_terms)
        ]
        self._mc_at = {mc.terminal: mc for mc in self.mcs}
        self.banks = [
            L2Bank(
                b,
                b,
                mc_terms[b % len(mc_terms)],
                size_bytes=self.config.l2_bank_bytes,
                assoc=self.config.l2_assoc,
                block_bytes=self.config.block_bytes,
                mshrs=self.config.l2_mshrs,
                hit_latency=self.config.l2_hit_latency,
                dirty_fraction=self.config.dirty_fraction,
                seed=seed,
            )
            for b in range(n)
        ]
        self.cores = [
            Core(
                c,
                c,
                profiles[c],
                width=self.config.core_width,
                max_outstanding=self.config.max_outstanding,
                dirty_fraction=self.config.dirty_fraction,
                seed=seed,
            )
            for c in range(n)
        ]
        self._egress: list[deque[Message]] = [deque() for _ in range(n)]
        self._next_pid = 0
        self._latency_sum = 0
        self._latency_count = 0
        self.messages_delivered = 0

    # --- network observer hooks -------------------------------------------

    def on_flit_ejected(self, terminal: int, cycle: int) -> None:
        """Network hook (flit granularity); unused by the system."""

    def on_packet_ejected(self, packet, cycle: int) -> None:
        """Dispatch a delivered message to its destination component."""
        assert isinstance(packet, Message)
        self.messages_delivered += 1
        self._latency_sum += cycle - packet.created_cycle
        self._latency_count += 1
        kind = packet.kind
        if kind is MessageKind.L2_REQUEST:
            self.banks[packet.dst].receive_request(packet, cycle)
        elif kind is MessageKind.L2_REPLY:
            self.cores[packet.dst].receive_reply(packet.block_addr)
        elif kind is MessageKind.L1_WRITEBACK:
            self.banks[packet.dst].receive_writeback(packet)
        elif kind in (MessageKind.MEM_REQUEST, MessageKind.L2_WRITEBACK):
            self._mc_at[packet.dst].receive_request(packet, cycle)
        else:  # MEM_REPLY
            bank = self.banks[packet.dst]
            for kind, dst, addr, core_id in bank.receive_fill(packet):
                self._send(kind, bank.terminal, dst, addr, core_id, cycle)

    # --- message plumbing ------------------------------------------------

    def _send(
        self, kind: MessageKind, src: int, dst: int, block_addr: int, core_id: int, cycle: int
    ) -> None:
        msg = Message(self._next_pid, src, dst, cycle, kind, block_addr, core_id)
        self._next_pid += 1
        self._egress[src].append(msg)

    def _bank_of(self, block_addr: int) -> int:
        return block_addr % len(self.banks)

    def _flush_egress(self) -> None:
        for q in self._egress:
            while q and self.network.inject(q[0]):
                q.popleft()

    # --- simulation loop ------------------------------------------------------

    def step(self) -> None:
        """Advance the whole system by one cycle."""
        cycle = self.network.cycle
        for mc in self.mcs:
            for kind, dst, addr, core_id in mc.tick(cycle):
                self._send(kind, mc.terminal, dst, addr, core_id, cycle)
        for bank in self.banks:
            for kind, dst, addr, core_id in bank.tick(cycle):
                self._send(kind, bank.terminal, dst, addr, core_id, cycle)
        for core in self.cores:
            for addr in core.tick(cycle):
                self._send(
                    MessageKind.L2_REQUEST,
                    core.terminal,
                    self._bank_of(addr),
                    addr,
                    core.core_id,
                    cycle,
                )
            for addr in core.take_writebacks():
                self._send(
                    MessageKind.L1_WRITEBACK,
                    core.terminal,
                    self._bank_of(addr),
                    addr,
                    core.core_id,
                    cycle,
                )
        self._flush_egress()
        self.network.step()

    def run(self, warmup: int = 2000, measure: int = 8000) -> ManycoreResult:
        """Warm up, then measure aggregate IPC over ``measure`` cycles."""
        if warmup < 0 or measure <= 0:
            raise ValueError("warmup must be >= 0 and measure > 0")
        for _ in range(warmup):
            self.step()
        for core in self.cores:
            core.reset_counters()
        self._latency_sum = 0
        self._latency_count = 0
        for _ in range(measure):
            self.step()
        total = sum(core.instructions for core in self.cores)
        return ManycoreResult(
            cycles=measure,
            total_instructions=total,
            per_core_ipc=[core.ipc(measure) for core in self.cores],
            l2_hits=sum(b.hits for b in self.banks),
            l2_misses=sum(b.misses for b in self.banks),
            mem_requests=sum(mc.requests_served for mc in self.mcs),
            avg_network_latency=(
                self._latency_sum / self._latency_count
                if self._latency_count
                else float("nan")
            ),
        )
