"""Shared L2 cache bank (Table 2: 64 banks, 256 KB, 16-way, 6-cycle hit).

Each bank owns a slice of the block-address space (block interleaving),
performs real set-associative lookups, tracks outstanding refills in an
MSHR file with request merging, and converses with its memory controller
over the network under test.
"""

from __future__ import annotations

import random
from collections import deque

from .cache import Cache, MSHRFile
from .messages import Message, MessageKind


class L2Bank:
    """One bank of the shared L2."""

    def __init__(
        self,
        bank_id: int,
        terminal: int,
        mc_terminal: int,
        *,
        size_bytes: int = 256 * 1024,
        assoc: int = 16,
        block_bytes: int = 64,
        mshrs: int = 32,
        hit_latency: int = 6,
        dirty_fraction: float = 0.3,
        seed: int = 1,
    ) -> None:
        if hit_latency < 1:
            raise ValueError(f"hit_latency must be >= 1, got {hit_latency}")
        if not 0.0 <= dirty_fraction <= 1.0:
            raise ValueError(f"dirty_fraction must be in [0, 1], got {dirty_fraction}")
        self.bank_id = bank_id
        self.terminal = terminal
        self.mc_terminal = mc_terminal
        self.cache = Cache(size_bytes, assoc, block_bytes)
        self.mshrs = MSHRFile(mshrs)
        self.hit_latency = hit_latency
        self.dirty_fraction = dirty_fraction
        self._rng = random.Random((seed << 16) ^ bank_id)
        # Lookups in flight: (ready_cycle, request message), FIFO per bank.
        self._pending: deque[tuple[int, Message]] = deque()
        # Requests that found the MSHR file full and must retry.
        self._retry: deque[Message] = deque()
        self.requests_served = 0
        self.hits = 0
        self.misses = 0
        self.writebacks_received = 0
        self.writebacks_emitted = 0

    def receive_request(self, msg: Message, cycle: int) -> None:
        """Accept an L2 request from a core (post-ejection)."""
        if msg.kind is not MessageKind.L2_REQUEST:
            raise ValueError(f"L2 bank got {msg.kind.name}")
        self._pending.append((cycle + self.hit_latency, msg))

    def receive_fill(self, msg: Message) -> list[tuple[MessageKind, int, int, int]]:
        """Accept a memory refill; returns reply descriptors for waiters.

        Each descriptor is ``(kind, dst_terminal, block_addr, core_id)``.
        A dirty victim evicted by the fill adds an L2 writeback to memory.
        """
        if msg.kind is not MessageKind.MEM_REPLY:
            raise ValueError(f"L2 fill path got {msg.kind.name}")
        evicted = self.cache.fill(msg.block_addr)
        waiters = self.mshrs.release(msg.block_addr)
        replies = []
        for waiter in waiters:
            assert isinstance(waiter, Message)
            replies.append(
                (MessageKind.L2_REPLY, waiter.src, waiter.block_addr, waiter.core_id)
            )
        if evicted is not None and self._rng.random() < self.dirty_fraction:
            self.writebacks_emitted += 1
            replies.append(
                (MessageKind.L2_WRITEBACK, self.mc_terminal, evicted, -1)
            )
        return replies

    def receive_writeback(self, msg: Message) -> None:
        """Accept a dirty L1 eviction (data write, no reply).

        Uses non-counting probes so demand hit/miss statistics stay clean;
        a writeback that misses installs the block (write-allocate).
        """
        if msg.kind is not MessageKind.L1_WRITEBACK:
            raise ValueError(f"L2 writeback path got {msg.kind.name}")
        self.writebacks_received += 1
        if not self.cache.lookup(msg.block_addr):
            self.cache.fill(msg.block_addr)

    def _lookup(self, msg: Message) -> tuple[MessageKind, int, int, int] | None:
        """Run one tag lookup; returns an outgoing message descriptor."""
        addr = msg.block_addr
        if self.cache.access(addr):
            self.hits += 1
            self.requests_served += 1
            return (MessageKind.L2_REPLY, msg.src, addr, msg.core_id)
        self.misses += 1
        status = self.mshrs.allocate(addr, msg)
        if status == "new":
            self.requests_served += 1
            return (MessageKind.MEM_REQUEST, self.mc_terminal, addr, msg.core_id)
        if status == "merged":
            self.requests_served += 1
            return None
        self._retry.append(msg)
        return None

    def tick(self, cycle: int) -> list[tuple[MessageKind, int, int, int]]:
        """Process due lookups and MSHR retries; returns message descriptors."""
        out: list[tuple[MessageKind, int, int, int]] = []
        # One retry per cycle keeps the retry path fair and bounded.
        if self._retry and not self.mshrs.full:
            result = self._lookup(self._retry.popleft())
            if result is not None:
                out.append(result)
        while self._pending and self._pending[0][0] <= cycle:
            _, msg = self._pending.popleft()
            result = self._lookup(msg)
            if result is not None:
                out.append(result)
        return out

    @property
    def busy(self) -> bool:
        """True while any lookup, retry, or refill is outstanding."""
        return bool(self._pending or self._retry or self.mshrs.occupancy)
