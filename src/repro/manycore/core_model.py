"""Synthetic trace-driven core model.

Each core models a 2-way out-of-order processor (Table 2) running one
benchmark instance.  The instruction stream itself is not simulated — what
reaches the network is the core's **L1 miss stream**, generated at the
benchmark's L1-MPKI rate (L1 hits never leave the core and are folded into
its base IPC; the L1 geometry of Table 2 is what those MPKI numbers were
measured against).

Latency tolerance is modelled with a bounded memory-level-parallelism
window: the core keeps retiring instructions (and issuing further misses)
until ``max_outstanding`` misses are in flight, then stalls until a reply
returns.  This yields the standard trace-driven behaviour: low-MPKI cores
are insensitive to network latency, high-MPKI cores see it directly.

Address streams control the shared-L2 behaviour: with probability
``1 - l2_miss_ratio`` the core re-references a recently fetched block
(an L2 hit), otherwise it touches a never-seen block in its private region
(a compulsory L2 miss) — so the benchmark's L2 miss ratio is respected
while the real set-associative L2 bank model does the bookkeeping.
"""

from __future__ import annotations

import random
from collections import deque

from .benchmarks import BenchmarkProfile


class Core:
    """One core of the 64-core system."""

    #: Size of each core's private block-address region (never collides
    #: with other cores').
    REGION_BITS = 40

    def __init__(
        self,
        core_id: int,
        terminal: int,
        profile: BenchmarkProfile,
        *,
        width: int = 2,
        max_outstanding: int = 4,
        reuse_window: int = 128,
        dirty_fraction: float = 0.3,
        seed: int = 1,
    ) -> None:
        if width < 1 or max_outstanding < 1:
            raise ValueError("width and max_outstanding must be >= 1")
        if not 0.0 <= dirty_fraction <= 1.0:
            raise ValueError(f"dirty_fraction must be in [0, 1], got {dirty_fraction}")
        self.core_id = core_id
        self.terminal = terminal
        self.profile = profile
        self.width = width
        self.max_outstanding = max_outstanding
        self.dirty_fraction = dirty_fraction
        self.rng = random.Random((seed << 20) ^ core_id)
        self._miss_prob = profile.l1_mpki / 1000.0
        self._reuse: deque[int] = deque(maxlen=reuse_window)
        self._fresh_counter = 0
        self.outstanding: set[int] = set()
        self._writebacks: list[int] = []
        self.instructions = 0
        self.stall_cycles = 0
        self.misses_issued = 0
        self.writebacks_issued = 0

    def _generate_address(self) -> int:
        """Next L1-miss block address (reuse => likely L2 hit)."""
        if self._reuse and self.rng.random() >= self.profile.l2_miss_ratio:
            return self.rng.choice(self._reuse)
        addr = (self.core_id << self.REGION_BITS) | self._fresh_counter
        self._fresh_counter += 1
        self._reuse.append(addr)
        return addr

    def tick(self, cycle: int) -> list[int]:
        """Advance one cycle; returns block addresses of new L1 misses.

        The system turns each returned address into an L2 request message.
        """
        if len(self.outstanding) >= self.max_outstanding:
            self.stall_cycles += 1
            return []
        new_misses: list[int] = []
        for _ in range(self.width):
            self.instructions += 1
            if self.rng.random() < self._miss_prob:
                addr = self._generate_address()
                if addr not in self.outstanding:
                    self.outstanding.add(addr)
                    self.misses_issued += 1
                    new_misses.append(addr)
                    # The refill evicts an L1 block; dirty victims are
                    # written back to the L2 (fire-and-forget data packet).
                    if self._reuse and self.rng.random() < self.dirty_fraction:
                        self._writebacks.append(self.rng.choice(self._reuse))
                        self.writebacks_issued += 1
                if len(self.outstanding) >= self.max_outstanding:
                    break
        return new_misses

    def take_writebacks(self) -> list[int]:
        """Drain the dirty-eviction block addresses generated since the
        last call (the system turns them into writeback messages)."""
        out = self._writebacks
        self._writebacks = []
        return out

    def receive_reply(self, block_addr: int) -> None:
        """A data reply arrived; the miss completes."""
        self.outstanding.discard(block_addr)

    def reset_counters(self) -> None:
        """Zero performance counters (start of the measurement window)."""
        self.instructions = 0
        self.stall_cycles = 0
        self.misses_issued = 0
        self.writebacks_issued = 0

    def ipc(self, cycles: int) -> float:
        """Instructions per cycle over ``cycles``."""
        if cycles <= 0:
            raise ValueError(f"cycles must be > 0, got {cycles}")
        return self.instructions / cycles
