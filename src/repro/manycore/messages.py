"""Network messages exchanged by cores, L2 banks, and memory controllers.

A message is a network packet with protocol fields attached.  Sizes follow
the paper's 128-bit datapath: control messages (requests) are a single
flit; data replies carry a 64-byte cache block = 4 data flits + head.
"""

from __future__ import annotations

from enum import IntEnum

from repro.network.flit import Packet

#: Flits in a control (request) message.
CONTROL_FLITS = 1
#: Flits in a data (cache-block) message: 64B / 16B-per-flit + head flit.
DATA_FLITS = 5


class MessageKind(IntEnum):
    """Protocol message types."""

    #: Core -> L2 bank: read a block (1 flit).
    L2_REQUEST = 0
    #: L2 bank -> core: block data (5 flits).
    L2_REPLY = 1
    #: L2 bank -> memory controller: refill request (1 flit).
    MEM_REQUEST = 2
    #: Memory controller -> L2 bank: refill data (5 flits).
    MEM_REPLY = 3
    #: Core -> L2 bank: dirty L1 eviction, data, no reply (5 flits).
    L1_WRITEBACK = 4
    #: L2 bank -> memory controller: dirty L2 eviction, no reply (5 flits).
    L2_WRITEBACK = 5


_KIND_FLITS = {
    MessageKind.L2_REQUEST: CONTROL_FLITS,
    MessageKind.L2_REPLY: DATA_FLITS,
    MessageKind.MEM_REQUEST: CONTROL_FLITS,
    MessageKind.MEM_REPLY: DATA_FLITS,
    MessageKind.L1_WRITEBACK: DATA_FLITS,
    MessageKind.L2_WRITEBACK: DATA_FLITS,
}


class Message(Packet):
    """A protocol message travelling as a network packet."""

    __slots__ = ("kind", "block_addr", "core_id")

    def __init__(
        self,
        pid: int,
        src: int,
        dst: int,
        created_cycle: int,
        kind: MessageKind,
        block_addr: int,
        core_id: int,
    ) -> None:
        super().__init__(pid, src, dst, _KIND_FLITS[kind], created_cycle)
        self.kind = kind
        self.block_addr = block_addr
        self.core_id = core_id

    def __repr__(self) -> str:
        return (
            f"Message(pid={self.pid}, {self.kind.name}, {self.src}->{self.dst}, "
            f"block={self.block_addr:#x}, core={self.core_id})"
        )
