"""Calibrated circuit delay models (Tables 1 and 3 of the paper)."""

from .delay_model import (
    WAVEFRONT_OVERHEAD,
    RouterDelays,
    allocator_delay,
    crossbar_delay,
    router_delays,
    sa_stage_delay,
    va_stage_delay,
)

__all__ = [
    "RouterDelays",
    "WAVEFRONT_OVERHEAD",
    "allocator_delay",
    "crossbar_delay",
    "router_delays",
    "sa_stage_delay",
    "va_stage_delay",
]
