"""Circuit-level delay models for router pipeline stages (Tables 1 and 3).

The paper synthesized VA/SA logic (Synopsys DC, commercial 45 nm SOI) and
SPICE-modelled 128-bit matrix crossbars.  We reproduce those results with
analytic models calibrated by least squares to the six published
configurations:

* **Arbiter stages** grow logarithmically with arbiter size (tree-structured
  arbitration logic):

  - ``VA = 5.59 + 60.0 * log2(P * v)`` ps — VC allocation arbitrates among
    all ``P*v`` input VCs and is unchanged by VIX (Table 1 shows identical
    VA with and without VIX);
  - ``SA = 25.06 + 47.16 * log2(vcs_per_input_arbiter)
    + 57.16 * log2(output_arbiter_size)`` ps — for the baseline the input
    arbiters are ``v:1`` and output arbiters ``P:1``; VIX halves the input
    arbiter (``v/k:1``) and widens the output arbiter to ``kP:1``.

* **Crossbars** are wire dominated; delay grows quadratically with span
  (distributed RC) plus a linear buffering term:

  ``Xbar = 127.67 + 3.303*rows + 1.296*cols + 0.2948*rows^2
  + 0.3463*cols^2`` ps for a ``rows x cols`` 128-bit matrix crossbar.

Every model reproduces the corresponding Table 1 entry within 4 ps; an
exact calibration table is also consulted first so the published numbers
are returned verbatim for the paper's six configurations.

Table 3 is reproduced by the same SA model plus the paper's measured 39%
wavefront overhead; augmenting-path allocation has no single-cycle circuit
realization at router cycle times ("Infeasible"), modelled as ``math.inf``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# --- least-squares calibrated coefficients (see module docstring) ---------

_VA_BASE = 5.59
_VA_LOG = 60.0

_SA_BASE = 25.06
_SA_LOG_INPUT = 47.16
_SA_LOG_OUTPUT = 57.16

_XBAR_BASE = 127.67
_XBAR_ROW = 3.303
_XBAR_COL = 1.296
_XBAR_ROW2 = 0.2948
_XBAR_COL2 = 0.3463

#: Wavefront allocator delay relative to a separable allocator (Table 3:
#: 390 ps vs 280 ps at radix 5 — "39% higher cycle time").
WAVEFRONT_OVERHEAD = 390.0 / 280.0

#: Exact published values (radix, num_vcs, virtual_inputs) -> (va, sa, xbar).
_CALIBRATION: dict[tuple[int, int, int], tuple[float, float, float]] = {
    (5, 6, 1): (300.0, 280.0, 167.0),
    (5, 6, 2): (300.0, 290.0, 205.0),
    (8, 6, 1): (340.0, 315.0, 205.0),
    (8, 6, 2): (340.0, 330.0, 289.0),
    (10, 6, 1): (360.0, 340.0, 238.0),
    (10, 6, 2): (360.0, 345.0, 359.0),
}


def va_stage_delay(radix: int, num_vcs: int) -> float:
    """VC-allocation stage delay in ps (independent of VIX)."""
    if radix < 1 or num_vcs < 1:
        raise ValueError("radix and num_vcs must be >= 1")
    return _VA_BASE + _VA_LOG * math.log2(radix * num_vcs)


def sa_stage_delay(radix: int, num_vcs: int, virtual_inputs: int = 1) -> float:
    """Switch-allocation stage delay in ps for a separable allocator.

    ``virtual_inputs = k`` models VIX: ``kP`` input arbiters of ``(v/k):1``
    and ``P`` output arbiters of ``kP:1``.
    """
    if radix < 1 or num_vcs < 1 or virtual_inputs < 1:
        raise ValueError("radix, num_vcs, virtual_inputs must be >= 1")
    if virtual_inputs > num_vcs:
        raise ValueError("virtual_inputs cannot exceed num_vcs")
    input_size = max(2, num_vcs // virtual_inputs)
    output_size = max(2, radix * virtual_inputs)
    return (
        _SA_BASE
        + _SA_LOG_INPUT * math.log2(input_size)
        + _SA_LOG_OUTPUT * math.log2(output_size)
    )


def crossbar_delay(rows: int, cols: int) -> float:
    """Delay of a ``rows x cols`` 128-bit matrix crossbar in ps."""
    if rows < 1 or cols < 1:
        raise ValueError("crossbar dimensions must be >= 1")
    return (
        _XBAR_BASE
        + _XBAR_ROW * rows
        + _XBAR_COL * cols
        + _XBAR_ROW2 * rows * rows
        + _XBAR_COL2 * cols * cols
    )


@dataclass(frozen=True)
class RouterDelays:
    """Pipeline stage delays for one router configuration (Table 1 row)."""

    design: str
    radix: int
    num_vcs: int
    virtual_inputs: int
    va_ps: float
    sa_ps: float
    xbar_ps: float

    @property
    def crossbar_rows(self) -> int:
        return self.radix * self.virtual_inputs

    @property
    def crossbar_size(self) -> str:
        """Crossbar geometry as printed in Table 1 (e.g. ``10 x 5``)."""
        return f"{self.crossbar_rows} x {self.radix}"

    @property
    def cycle_time_ps(self) -> float:
        """Router cycle time: the slowest pipeline stage."""
        return max(self.va_ps, self.sa_ps, self.xbar_ps)

    @property
    def xbar_on_critical_path(self) -> bool:
        """True when the crossbar limits the router's cycle time."""
        return self.xbar_ps >= max(self.va_ps, self.sa_ps)

    @property
    def xbar_slack_fraction(self) -> float:
        """Crossbar delay as a fraction of the cycle time (paper: mesh VIX
        stays within 70%)."""
        return self.xbar_ps / self.cycle_time_ps


def router_delays(
    radix: int,
    num_vcs: int = 6,
    virtual_inputs: int = 1,
    *,
    design: str | None = None,
    calibrated: bool = True,
) -> RouterDelays:
    """Stage delays for a router configuration.

    With ``calibrated=True`` (default) the paper's exact published numbers
    are returned for its six synthesized configurations; other
    configurations (and ``calibrated=False``) use the analytic models.
    """
    key = (radix, num_vcs, virtual_inputs)
    if calibrated and key in _CALIBRATION:
        va, sa, xb = _CALIBRATION[key]
    else:
        va = va_stage_delay(radix, num_vcs)
        sa = sa_stage_delay(radix, num_vcs, virtual_inputs)
        xb = crossbar_delay(radix * virtual_inputs, radix)
    return RouterDelays(
        design=design or f"radix-{radix}" + (" VIX" if virtual_inputs > 1 else ""),
        radix=radix,
        num_vcs=num_vcs,
        virtual_inputs=virtual_inputs,
        va_ps=va,
        sa_ps=sa,
        xbar_ps=xb,
    )


def allocator_delay(scheme: str, radix: int = 5, num_vcs: int = 6) -> float:
    """Delay of one switch-allocation scheme in ps (Table 3).

    * separable / IF / VIX: the separable SA model (VIX adds a few ps via
      the wider output arbiter, see Table 1);
    * wavefront: 39% over separable (the paper's measurement);
    * augmenting path: infeasible within a router cycle -> ``inf``.
    """
    from repro.registry import allocators

    key = allocators.canonical(scheme)
    base = router_delays(radix, num_vcs, 1).sa_ps
    if key in ("input_first", "output_first", "packet_chaining", "sparoflo"):
        return base
    if key == "vix":
        return router_delays(radix, num_vcs, 2).sa_ps
    if key == "ideal_vix":
        return sa_stage_delay(radix, num_vcs, num_vcs)
    if key == "wavefront":
        return base * WAVEFRONT_OVERHEAD
    if key == "augmenting_path":
        return math.inf
    raise ValueError(f"no delay model for scheme {scheme!r}")
