"""Terminal-friendly charts for simulation results.

The paper's figures are line charts (latency vs injection rate) and bar
charts (throughput per scheme).  With no plotting dependency available,
these renderers draw them as fixed-width ASCII so experiment reports can
show the *shape* of a result — the knee of a latency curve, the ordering
of a bar group — directly in the terminal and in test logs.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence


def _finite(values: Sequence[float]) -> list[float]:
    return [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    y_max: float | None = None,
) -> str:
    """Render one or more ``(x, y)`` series as an ASCII line chart.

    Each series gets a marker character; points falling on the same cell
    show the marker drawn last.  Non-finite y values are skipped (a
    saturated latency point simply leaves the column empty).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("chart too small to draw")
    markers = "*o+x#@%&"
    all_x = _finite([x for pts in series.values() for x, _ in pts])
    all_y = _finite([y for pts in series.values() for _, y in pts])
    if not all_x or not all_y:
        raise ValueError("no finite data points")
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo = 0.0
    y_hi = y_max if y_max is not None else max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            if y > y_hi:
                y = y_hi
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    top_label = f"{y_hi:.4g}"
    for r, row in enumerate(grid):
        prefix = top_label.rjust(8) if r == 0 else " " * 8
        if r == height - 1:
            prefix = f"{y_lo:.4g}".rjust(8)
        lines.append(prefix + " |" + "".join(row))
    lines.append(" " * 8 + " +" + "-" * width)
    lines.append(
        " " * 8
        + "  "
        + f"{x_lo:.4g}".ljust(width - 8)
        + f"{x_hi:.4g}".rjust(8)
    )
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(f"{y_label} vs {x_label}:   {legend}")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render labelled values as horizontal ASCII bars."""
    if not values:
        raise ValueError("need at least one bar")
    finite = _finite(list(values.values()))
    if not finite:
        raise ValueError("no finite values")
    peak = max(finite)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    for name, value in values.items():
        if not math.isfinite(value):
            bar, shown = "?", "n/a"
        else:
            bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
            shown = f"{value:.4g}{unit}"
        lines.append(f"{str(name).ljust(label_width)} |{bar.ljust(width)} {shown}")
    return "\n".join(lines)
