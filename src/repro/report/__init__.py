"""Terminal reporting helpers (ASCII charts for experiment reports)."""

from .ascii_chart import bar_chart, line_chart

__all__ = ["bar_chart", "line_chart"]
