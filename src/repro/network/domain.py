"""A partition domain's slice of the network (one chiplet's SimDomain).

:class:`DomainNetwork` *is a* :class:`~repro.network.network.Network` —
same event wheel, same step/step_dense loops, same counters — that only
instantiates the routers and NIs its :class:`~repro.topology.partition.
PartitionPlan` domain owns.  Unowned ids stay ``None`` holes in the
full-length id-indexed lists, so every id-based lookup (routing tables,
event targets, upstream wiring) works unchanged; the per-cycle loops
iterate the compact ``_live_*`` aliases and never see a hole.

Boundary wiring is left open by ``_wire_link`` (cut links are skipped)
and closed by the partition engine, which threads one
:class:`~repro.network.links.InterChipLink` per cut link through
:meth:`attach_egress` / :meth:`attach_ingress`.  After that the domain
satisfies the SimDomain contract the partitioned engine steps against:

* own routers / NIs / flow state (``step``, ``step_dense``, ``inject``,
  occupancy queries, ``export_flow_state``);
* explicit boundary ports (:meth:`boundary_ports`, straight from the
  plan);
* a local activity flag (``has_active_work`` + ``next_event_time``) that
  the engine reduces into the fpgagraphlib-style global-quiescence test.
"""

from __future__ import annotations

from repro.topology import Topology
from repro.topology.partition import PartitionPlan

from .config import NetworkConfig
from .interface import NetworkInterface
from .links import InterChipLink, LinkIngress
from .network import Network
from .router import Router


class DomainNetwork(Network):
    """The sub-network owned by one partition domain."""

    def __init__(
        self,
        config: NetworkConfig,
        plan: PartitionPlan,
        domain: int,
        topology: Topology | None = None,
    ) -> None:
        if not 0 <= domain < plan.num_domains:
            raise ValueError(f"domain {domain} outside plan ({plan.num_domains} domains)")
        #: This domain's index in the plan (also its row-major grid slot).
        self.domain_index = domain
        self.plan = plan
        self._owned_routers = frozenset(plan.domain_routers[domain])
        self._owned_terminals = frozenset(plan.domain_terminals[domain])
        super().__init__(config, topology)

    # --- builder seams -----------------------------------------------------

    def _build_routers(self, rc) -> list[Router | None]:
        owned = self._owned_routers
        return [
            Router(r, rc, self.topology) if r in owned else None
            for r in range(self.topology.num_routers)
        ]

    def _build_interfaces(self, rc) -> list[NetworkInterface | None]:
        owned = self._owned_terminals
        return [
            NetworkInterface(
                t,
                *self.topology.router_of(t),
                config=rc,
                policy=self.routers[self.topology.router_of(t)[0]].vc_policy,
                topology=self.topology,
            )
            if t in owned
            else None
            for t in range(self.topology.num_terminals)
        ]

    def _wire_link(self, spec) -> None:
        # Interior link: both endpoints owned, wire as the monolith does.
        # Cut links stay unwired here; attach_egress/attach_ingress close
        # them with an InterChipLink once the peer domains exist.
        if (
            self.routers[spec.src_router] is not None
            and self.routers[spec.dst_router] is not None
        ):
            super()._wire_link(spec)

    # --- boundary wiring ---------------------------------------------------

    def owns_router(self, rid: int) -> bool:
        return self.routers[rid] is not None

    def boundary_ports(self) -> dict[str, tuple[tuple[int, int], ...]]:
        """This domain's ``egress``/``ingress`` boundary (router, port) pairs."""
        return self.plan.boundary_ports(self.domain_index)

    def attach_egress(self, link: InterChipLink) -> None:
        """Hook a cut link's source side to our boundary output port."""
        spec = link.spec
        out = self.routers[spec.src_router].outputs[spec.src_port]
        if out is None:
            raise RuntimeError(
                f"domain {self.domain_index}: cut link {spec} has no egress port"
            )
        out.link = link

    def attach_ingress(self, link: InterChipLink) -> None:
        """Hook a cut link's destination side to our boundary input port.

        The :class:`LinkIngress` proxy takes the upstream slot, so credits
        freed at this input port travel back across the link instead of
        being scheduled locally.
        """
        spec = link.spec
        self.routers[spec.dst_router].upstream[spec.dst_port] = LinkIngress(link)


__all__ = ["DomainNetwork"]
