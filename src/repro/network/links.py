"""Inter-chip links: the channels joining partitioned simulation domains.

When a :class:`~repro.topology.partition.PartitionPlan` cuts a topology
link, the two router ports it joined end up in different
:class:`~repro.network.domain.DomainNetwork` instances.  An
:class:`InterChipLink` replaces the direct wiring with an explicit
channel that keeps the credit loop *closed* across the cut:

* **forward** — a flit granted at the source router's boundary output
  port is serialized onto the link and arrives at the destination
  domain's input buffer after ``pipeline_stages + latency`` cycles
  (``latency`` = 0 reproduces the monolithic on-chip hop exactly);
* **reverse** — when the destination router forwards the flit onward,
  the freed buffer slot's credit travels back after ``credit_delay +
  credit_latency`` cycles and lands on the *source-side*
  :class:`~repro.network.router.OutputPort` credit counter.

Because the source port's credit counter still mirrors the destination
buffer depth exactly (only with longer loop delay), partitioning can
never overrun a buffer or introduce artificial deadlock beyond what the
added latency implies — the boundary credit contract of the ARCHITECTURE
doc, and the property the partition invariants check cycle by cycle.

``width`` models a narrow inter-chip channel as a serialization factor:
``0``/``1`` transfer one flit per cycle (an on-chip-width link), ``k >
1`` occupies the link for ``k`` cycles per flit (a ``k``:1 narrower
SerDes), back-pressuring through the ordinary credit loop.

Transport is split per side so the same class serves in-process
round-robin stepping (both domain networks local: events are scheduled
straight into the peer's wheel) and the epoch-synchronized worker mode
(the remote side is ``None``: messages buffer in ``outbox`` and the
coordinator ferries them at epoch barriers).

Link schemes are registered in :data:`repro.registry.links`; a scheme
factory returns a :class:`LinkConfig`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.registry import links as link_registry

#: Event kinds, mirroring :mod:`repro.network.network` (kept in sync by
#: ``tests/network/test_links.py``; duplicating the ints avoids a cycle).
_ARRIVAL = 0
_CREDIT = 1

#: Outbox message kinds for the worker-mode transport.
MSG_FLIT = 0
MSG_CREDIT = 1


@dataclass(frozen=True)
class LinkConfig:
    """Timing/width model of one inter-chip link scheme."""

    #: Extra forward cycles on top of the router pipeline (0 = on-chip hop).
    latency: int = 0
    #: Serialization factor: 0/1 = one flit per cycle, k>1 = one flit
    #: every k cycles (a k:1 narrower inter-chip channel).
    width: int = 0
    #: Extra cycles on the returning credit; ``None`` mirrors ``latency``
    #: (the usual symmetric-channel assumption).
    credit_latency: int | None = None

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency}")
        if self.width < 0:
            raise ValueError(f"link width factor must be >= 0, got {self.width}")
        if self.credit_latency is not None and self.credit_latency < 0:
            raise ValueError(
                f"link credit latency must be >= 0, got {self.credit_latency}"
            )

    @property
    def effective_credit_latency(self) -> int:
        return self.latency if self.credit_latency is None else self.credit_latency

    def min_cross_delay(self, pipeline_stages: int, credit_delay: int) -> int:
        """Earliest cycles-after-send any effect crosses this link.

        The safe epoch for conservatively-synchronized parallel domain
        stepping: a message generated at cycle ``t`` can influence the
        peer domain no earlier than ``t + min_cross_delay``.
        """
        return min(
            pipeline_stages + self.latency,
            credit_delay + self.effective_credit_latency,
        )


def _ideal_link(latency: int = 0, width: int = 0, credit_latency: int | None = None):
    """Zero-latency, full-width link regardless of arguments."""
    del latency, width, credit_latency
    return LinkConfig(latency=0, width=0, credit_latency=0)


link_registry.register(
    "credit",
    LinkConfig,
    aliases=("interchip",),
    label="credit-flow inter-chip link",
    provenance="configurable latency/width; closed credit loop across the cut",
)
link_registry.register(
    "ideal",
    _ideal_link,
    aliases=("zero",),
    label="ideal zero-latency link",
    provenance="latency 0, full width: boundary behaves like an on-chip hop",
)


def _env_int(name: str, default: int) -> int:
    """Integer environment knob with an error that names its source.

    Matches the ``resolve_jobs``/``$REPRO_JOBS`` contract: garbage in a
    ``REPRO_*`` variable must say which variable and what was expected,
    not surface as a bare ``int()`` traceback.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"invalid value {raw!r} (from ${name}): expected an integer"
        ) from None


@dataclass(frozen=True)
class PartitionConfig:
    """How a simulation is decomposed into chiplet domains.

    ``workers`` selects execution only (1 = serial round-robin, N/"auto"
    = epoch-synchronized worker processes); results are identical either
    way, so it is excluded from cache identities.
    """

    #: Partition scheme (:data:`repro.registry.partitioners` name).
    scheme: str = "grid"
    #: Partition grid ``(px, py)``; ``(1, 1)`` = monolithic-equivalent.
    dims: tuple[int, int] = (2, 2)
    #: Link scheme (:data:`repro.registry.links` name).
    link: str = "credit"
    link_latency: int = 0
    link_width: int = 0
    #: Extra cycles on the returning credit; ``None`` mirrors
    #: ``link_latency`` (the symmetric-channel default).
    link_credit_latency: int | None = None
    #: Engine stepping each domain: "gated" (default), "dense", or
    #: "vectorized" (the SoA kernel via :class:`repro.sim.vec.domain.
    #: VecDomain`; requires numpy and a vectorizable scheme).
    domain_engine: str = "gated"
    #: Worker processes for domain stepping: int or "auto" (1 = in-process).
    workers: int | str = 1

    def __post_init__(self) -> None:
        from repro.registry import partitioners

        object.__setattr__(self, "scheme", partitioners.canonical(self.scheme))
        object.__setattr__(self, "link", link_registry.canonical(self.link))
        dims = tuple(int(d) for d in self.dims)
        if len(dims) != 2 or dims[0] < 1 or dims[1] < 1:
            raise ValueError(f"partition dims must be (px>=1, py>=1), got {self.dims}")
        object.__setattr__(self, "dims", dims)
        engine = (self.domain_engine or "gated").strip().lower()
        if engine not in ("gated", "dense", "vectorized"):
            raise ValueError(
                f"domain_engine must be 'gated', 'dense', or 'vectorized', "
                f"got {self.domain_engine!r}"
            )
        object.__setattr__(self, "domain_engine", engine)

    def link_config(self) -> LinkConfig:
        """The :class:`LinkConfig` for this partition's cut links."""
        return link_registry.create(
            self.link,
            latency=self.link_latency,
            width=self.link_width,
            credit_latency=self.link_credit_latency,
        )

    def spec(self) -> dict:
        """Semantic content for cache keys (``workers`` excluded)."""
        return {
            "scheme": self.scheme,
            "dims": list(self.dims),
            "link": self.link,
            "link_latency": self.link_latency,
            "link_width": self.link_width,
            "link_credit_latency": self.link_credit_latency,
            "domain_engine": self.domain_engine,
        }

    @classmethod
    def from_env(cls) -> "PartitionConfig":
        """Resolve from ``REPRO_PARTITION*`` (used when ``REPRO_ENGINE=
        partitioned`` selects the engine without an explicit config).

        ``REPRO_PARTITION`` is the grid ("2x2", "1x1", ...); the link
        scheme, latency, width, credit latency, per-domain engine, and
        worker count ride ``REPRO_PARTITION_LINK`` /
        ``REPRO_LINK_LATENCY`` / ``REPRO_LINK_WIDTH`` /
        ``REPRO_LINK_CREDIT_LATENCY`` / ``REPRO_DOMAIN_ENGINE`` /
        ``REPRO_PARTITION_WORKERS``.  Malformed values raise a
        ``ValueError`` naming the variable and the expected form.
        """
        dims_text = os.environ.get("REPRO_PARTITION", "").strip().lower()
        dims = (2, 2)
        if dims_text:
            px, sep, py = dims_text.partition("x")
            if not sep or not px.isdigit() or not py.isdigit():
                raise ValueError(
                    f"REPRO_PARTITION expects PXxPY (e.g. 2x2), got {dims_text!r}"
                )
            dims = (int(px), int(py))
        workers_text = os.environ.get("REPRO_PARTITION_WORKERS", "").strip()
        workers: int | str = 1
        if workers_text:
            if workers_text == "auto":
                workers = "auto"
            else:
                try:
                    workers = int(workers_text)
                except ValueError:
                    raise ValueError(
                        f"invalid worker count {workers_text!r} (from "
                        f"$REPRO_PARTITION_WORKERS): expected an integer or "
                        f"'auto' (one worker per CPU core)"
                    ) from None
        credit_text = os.environ.get("REPRO_LINK_CREDIT_LATENCY", "").strip()
        return cls(
            dims=dims,
            link=os.environ.get("REPRO_PARTITION_LINK", "credit").strip() or "credit",
            link_latency=_env_int("REPRO_LINK_LATENCY", 0),
            link_width=_env_int("REPRO_LINK_WIDTH", 0),
            link_credit_latency=(
                _env_int("REPRO_LINK_CREDIT_LATENCY", 0) if credit_text else None
            ),
            domain_engine=os.environ.get("REPRO_DOMAIN_ENGINE", "gated").strip()
            or "gated",
            workers=workers,
        )


class LinkIngress:
    """Upstream credit sink standing in for a cut link at an input port.

    Installed as ``router.upstream[port]`` at the destination side of a
    cut: when the destination router frees a buffer slot, the grant loop
    routes the credit here (recognised by ``owner == -2``) instead of
    scheduling it locally, and the link carries it back to the source
    domain's output port.
    """

    __slots__ = ("link",)

    #: Sentinel distinguishing a link ingress from router output ports
    #: (owner >= 0 / -1) and NIs (owner -1) in the grant hot loop.
    owner = -2

    def __init__(self, link: "InterChipLink") -> None:
        self.link = link

    def send_credit(self, now: int, vc: int, release: bool) -> None:
        self.link.send_credit(now, vc, release)


class InterChipLink:
    """One cut topology link, realised as an explicit inter-chip channel.

    Each side that is *local* (its domain network lives in this process)
    is wired directly; a ``None`` side buffers messages in :attr:`outbox`
    for the epoch coordinator to ferry.  In-process stepping sets both
    sides, so the outbox stays empty and events land straight in the
    peer's wheel — safe under round-robin domain order because every
    delivery lies at least one cycle in the future (``pipeline_stages >=
    1`` and ``credit_delay >= 1``).
    """

    __slots__ = (
        "link_id",
        "spec",
        "config",
        "src_net",
        "dst_net",
        "outbox",
        "flits_carried",
        "credits_returned",
        "_pipe",
        "_credit_delay",
        "_credit_latency",
        "_src_port",
        "_slot",
        "_slot_free",
    )

    def __init__(
        self,
        link_id: int,
        spec,
        config: LinkConfig,
        *,
        src_net=None,
        dst_net=None,
    ) -> None:
        self.link_id = link_id
        self.spec = spec
        self.config = config
        self.src_net = src_net
        self.dst_net = dst_net
        #: Messages for the remote side(s), drained at epoch barriers.
        self.outbox: list[tuple] = []
        self.flits_carried = 0
        self.credits_returned = 0
        net = src_net if src_net is not None else dst_net
        rc = net.config.router
        self._pipe = rc.pipeline_stages
        self._credit_delay = rc.credit_delay
        self._credit_latency = config.effective_credit_latency
        self._src_port = (
            src_net.routers[spec.src_router].outputs[spec.src_port]
            if src_net is not None
            else None
        )
        # Serialization state: the cycle the link is next free to accept
        # a flit (width-factor model; unused at width <= 1).
        self._slot = -1
        self._slot_free = 0
        if src_net is not None:
            self._src_port.link = self

    # --- forward channel ---------------------------------------------------

    def _serialize(self, now: int) -> int:
        """The cycle this flit occupies the link (width back-pressure)."""
        width = self.config.width
        if width <= 1:
            return now
        slot = self._slot_free if self._slot_free > now else now
        self._slot_free = slot + width
        return slot

    def send_flit(self, now: int, vc: int, flit) -> None:
        """Source side: carry one granted flit toward the destination."""
        when = self._serialize(now) + self._pipe + self.config.latency
        self.flits_carried += 1
        # In-flight accounting migrates with the flit so each domain's
        # counter stays meaningful and the global sum stays exact.
        self.src_net._in_flight_flits -= 1
        if self.dst_net is not None:
            self._deliver_flit(when, vc, flit)
        else:
            self.outbox.append((MSG_FLIT, when, vc, flit))

    def _deliver_flit(self, when: int, vc: int, flit) -> None:
        spec = self.spec
        self.dst_net._schedule(when, (_ARRIVAL, spec.dst_router, spec.dst_port, vc, flit))
        self.dst_net._in_flight_flits += 1

    # --- reverse (credit) channel -----------------------------------------

    def send_credit(self, now: int, vc: int, release: bool) -> None:
        """Destination side: return one freed buffer slot's credit."""
        when = now + self._credit_delay + self._credit_latency
        self.credits_returned += 1
        if self.src_net is not None:
            self._deliver_credit(when, vc, release)
        else:
            self.outbox.append((MSG_CREDIT, when, vc, release))

    def _deliver_credit(self, when: int, vc: int, release: bool) -> None:
        self.src_net._schedule(when, (_CREDIT, self._src_port, vc, release))

    # --- worker-mode ferry -------------------------------------------------

    def drain_outbox(self) -> list[tuple]:
        """Take and clear the pending remote-side messages."""
        msgs, self.outbox = self.outbox, []
        return msgs

    def ingest(self, messages: list[tuple]) -> None:
        """Apply ferried messages on the side that owns the target domain."""
        for kind, when, vc, payload in messages:
            if kind == MSG_FLIT:
                self._deliver_flit(when, vc, payload)
            else:
                self._deliver_credit(when, vc, payload)

    def pending(self) -> int:
        """Flits buffered in the outbox (conservation accounting)."""
        return sum(1 for msg in self.outbox if msg[0] == MSG_FLIT)


__all__ = [
    "InterChipLink",
    "LinkConfig",
    "LinkIngress",
    "PartitionConfig",
]
